//! # mutiny-lab
//!
//! A full reproduction of *"Mutiny! How does Kubernetes fail, and what can we
//! do about it?"* (Barletta et al., DSN 2024) as a Rust workspace.
//!
//! The paper injects faults/errors (bit-flips, data-type sets, message drops)
//! into the Protobuf messages that carry the cluster state of Kubernetes into
//! its data store (etcd), and classifies the resulting orchestrator-level and
//! client-level failures. This workspace rebuilds the entire experimental
//! stack as a deterministic discrete-event simulation:
//!
//! * [`simkit`] — simulation kernel (virtual clock, event queue, seeded RNG);
//! * [`protowire`] — Protobuf-compatible wire codec with field reflection;
//! * [`model`] — the Kubernetes resource model (Pods, ReplicaSets,
//!   Deployments, DaemonSets, Services, Nodes, …) and the injection
//!   interceptor trait;
//! * [`etcd`] — an MVCC data store with watches, leases and quorum
//!   replication;
//! * [`apiserver`] — validation/admission, watch cache, audit
//!   log, server-side apply;
//! * [`kcm`], [`scheduler`], [`kubelet`],
//!   [`netsim`] — the remaining control-plane and node components;
//! * [`cluster`] — the glued-together `World`, the scenario-agnostic
//!   user-operation vocabulary, and the application client;
//! * [`scenarios`] — the pluggable scenario registry: the paper's three
//!   workloads plus rolling-update, node-drain and hpa-autoscale, with
//!   SimKube-style virtual-node topology scaling;
//! * [`faults`] — the pluggable fault engine: the paper's wire triplet
//!   (bit-flip / value-set / drop) plus temporal (delay, duplicate),
//!   infrastructure (partition, crash-restart) and node-level
//!   (kubelet-crash-restart, node-partition) fault families, the latter
//!   routed on per-node channel identity (`kubelet->apiserver@w1`);
//! * [`mutiny`] — the paper's contribution: the injector, the
//!   campaign manager, the failure classifiers, the FFDA dataset and the
//!   findings analyses.
//!
//! ## Quickstart
//!
//! ```
//! use mutiny_lab::prelude::*;
//!
//! // Build a five-node cluster, run the "deploy" scenario with no injection,
//! // and confirm the golden run converges with the service reachable.
//! let cfg = ExperimentConfig::golden(DEPLOY, 42);
//! let outcome = run_experiment(&cfg);
//! assert_eq!(outcome.orchestrator_failure, OrchestratorFailure::No);
//! assert_eq!(outcome.client_failure, ClientFailure::Nsi);
//! ```
//!
//! See `examples/` for end-to-end scenarios (uncontrolled replication, the
//! GKE-webhook-style outage of the paper's Figure 2, the Reddit Pi-Day
//! network outage) and `crates/bench` for the harnesses that regenerate every
//! table and figure of the paper's evaluation.
//!
//! ## The zero-alloc object hot path
//!
//! Campaign throughput is bounded by how fast one simulated cluster can
//! push state transitions through *serialize → store → watch → decode*.
//! That path performs no per-message allocations in the steady state:
//! encoding stages nested messages in pooled per-thread scratch and
//! commits one exactly-sized `Arc<[u8]>` ([`protowire::Message::encode_shared`]),
//! the store replicates and watch-logs that buffer by refcount
//! ([`etcd`]), and the apiserver's watch-cache drain skips re-decoding
//! entirely when an event hands back the very buffer the write path
//! committed — a revision-keyed decode cache guarded by `Arc::ptr_eq`,
//! so fault-corrupted deliveries (fresh allocations by construction)
//! always decode fresh. Set `MUTINY_DECODE_CACHE=0` to force full
//! decoding; campaign TSV output is byte-identical either way (enforced
//! by `tests/decode_cache_determinism.rs`).

pub use etcd_sim as etcd;
pub use k8s_apiserver as apiserver;
pub use k8s_cluster as cluster;
pub use k8s_kcm as kcm;
pub use k8s_kubelet as kubelet;
pub use k8s_model as model;
pub use k8s_netsim as netsim;
pub use k8s_scheduler as scheduler;
pub use mutiny_core as mutiny;
pub use mutiny_faults as faults;
pub use mutiny_mitigations as mitigations;
pub use mutiny_scenarios as scenarios;
pub use protowire;
pub use simkit;

/// Convenience re-exports for examples and downstream users.
pub mod prelude {
    pub use k8s_cluster::{ClusterConfig, MitigationsConfig, Topology, UserOp, World};
    pub use k8s_model::{Channel, ChannelClass, ChannelId, Kind, Object};
    pub use mutiny_scenarios::{
        registry, Scenario, ScenarioDef, DEPLOY, FAILOVER, HPA_AUTOSCALE, NODE_DRAIN,
        ROLLING_UPDATE, SCALE_UP,
    };
    pub use mutiny_faults::{
        registry as fault_registry, ArmedFault, Fault, FaultDef, BIT_FLIP, CRASH_RESTART, DELAY,
        DROP, DUPLICATE, KUBELET_CRASH_RESTART, NODE_PARTITION, PARTITION, VALUE_SET,
    };
    pub use mutiny_core::campaign::{
        plan_campaign, record_fields, run_experiment, run_experiment_with_baseline, run_world,
        ExperimentConfig, ExperimentOutcome,
    };
    pub use mutiny_core::classify::{ClientFailure, OrchestratorFailure};
    pub use mutiny_core::injector::{
        FaultKind, FieldMutation, InjectionPoint, InjectionSpec, Mutiny,
    };
    pub use protowire::reflect::Value;
}
