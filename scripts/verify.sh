#!/usr/bin/env bash
# Tier-1 verification plus a cheap smoke campaign.
#
# 1. Build + test exactly what the ROADMAP calls tier-1.
# 2. Run the campaign-throughput bench on a 2% plan over the full
#    scenario registry × the full fault registry (the paper's wire
#    triplet plus delay, duplicate, partition, crash-restart) so perf
#    regressions and cross-executor determinism breaks are caught
#    without paying for a full campaign. The bench asserts
#    work-stealing and static-chunk executors produce identical rows
#    and writes BENCH_campaign.json (scenario and fault counts
#    included, so the perf trajectory shows coverage growth).
# 3. Run one new-scenario-only slice (rolling-update) to smoke the
#    MUTINY_SCENARIOS filter and the scenario-keyed TSV cache paths.
# 4. Run one partition-fault-only slice to smoke the MUTINY_FAULTS
#    filter, the fault-keyed cache identity, and the window-fault
#    actuation path end to end.
# 5. Run one kubelet-crash-restart-only slice to smoke the node-level
#    fault path: per-node channel identity, victim planning from the
#    per-node traffic catalogue, and the blackout world actions
#    (silence + restart) end to end.
# 6. Re-run the partition slice with MUTINY_DECODE_CACHE=0 (every
#    watch-cache sync decodes from bytes) and diff its TSV against the
#    cached-mode TSV byte for byte: the revision-keyed decode cache must
#    be a pure performance device.
# 7. Run one cfg-resources-only slice through the ablation bench: the
#    config-defect admission path end to end, with the validating-
#    admission arm A/B'd against the unmitigated arm (per-family
#    detection coverage is printed by the bench).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo clippy --release -- -D warnings =="
cargo clippy --release --workspace --all-targets -- -D warnings

echo "== tier-1: cargo test -q =="
cargo test -q

# The TSV/baseline caches under target/ trust that the simulation code
# has not changed since they were written (they are keyed by env, not by
# code version). verify.sh is exactly the place where the code *has*
# changed, so clear them all: every smoke slice below must run fresh
# against the current build, and the decode-cache A/B must never diff
# against (or resume from) rows produced by an older commit.
TARGET_DIR="${CARGO_TARGET_DIR:-target}"
rm -f "$TARGET_DIR"/mutiny_campaign_*.tsv "$TARGET_DIR"/mutiny_campaign_*.tsv.partial \
      "$TARGET_DIR"/mutiny_baseline_*.tsv "$TARGET_DIR"/mutiny_baseline_*.tsv.partial

echo "== smoke campaign, full registries (MUTINY_SCALE=0.02) =="
MUTINY_SCALE=${MUTINY_SCALE:-0.02} \
MUTINY_GOLDEN_RUNS=${MUTINY_GOLDEN_RUNS:-6} \
cargo bench -q -p mutiny-bench --bench campaign_throughput

echo "== smoke campaign, rolling-update slice (MUTINY_SCALE=0.02) =="
MUTINY_SCALE=${MUTINY_SCALE:-0.02} \
MUTINY_GOLDEN_RUNS=${MUTINY_GOLDEN_RUNS:-6} \
MUTINY_SCENARIOS=rolling-update \
cargo bench -q -p mutiny-bench --bench table4_of_stats

echo "== smoke campaign, partition-fault slice (MUTINY_SCALE=0.02) =="
MUTINY_SCALE=${MUTINY_SCALE:-0.02} \
MUTINY_GOLDEN_RUNS=${MUTINY_GOLDEN_RUNS:-6} \
MUTINY_FAULTS=partition \
cargo bench -q -p mutiny-bench --bench table4_of_stats

echo "== smoke campaign, kubelet-crash-restart slice (MUTINY_SCALE=0.02) =="
MUTINY_SCALE=${MUTINY_SCALE:-0.02} \
MUTINY_GOLDEN_RUNS=${MUTINY_GOLDEN_RUNS:-6} \
MUTINY_FAULTS=kubelet-crash-restart \
cargo bench -q -p mutiny-bench --bench table4_of_stats

echo "== decode-cache A/B: partition slice with MUTINY_DECODE_CACHE=0 =="
MUTINY_SCALE=${MUTINY_SCALE:-0.02} \
MUTINY_GOLDEN_RUNS=${MUTINY_GOLDEN_RUNS:-6} \
MUTINY_FAULTS=partition \
MUTINY_DECODE_CACHE=0 \
cargo bench -q -p mutiny-bench --bench table4_of_stats
nodc_found=0
for nodc in "$TARGET_DIR"/mutiny_campaign_*_nodc.tsv; do
  [ -e "$nodc" ] || continue
  nodc_found=1
  cached="${nodc%_nodc.tsv}.tsv"
  if ! diff -q "$cached" "$nodc"; then
    echo "FAIL: MUTINY_DECODE_CACHE=0 changed the campaign TSV ($cached vs $nodc)"
    exit 1
  fi
done
if [ "$nodc_found" != 1 ]; then
  echo "FAIL: the MUTINY_DECODE_CACHE=0 slice produced no TSV to diff"
  exit 1
fi

echo "== smoke ablation, cfg-resources slice: validating on/off A/B =="
MUTINY_SCALE=${MUTINY_SCALE:-0.02} \
MUTINY_GOLDEN_RUNS=${MUTINY_GOLDEN_RUNS:-6} \
MUTINY_ABLATION_GOLDEN=${MUTINY_ABLATION_GOLDEN:-4} \
MUTINY_SCENARIOS=deploy \
MUTINY_FAULTS=cfg-resources \
cargo bench -q -p mutiny-bench --bench ablation_mitigations | tee /tmp/mutiny_cfg_ablation.out
if ! grep -q "^cfg-resources" /tmp/mutiny_cfg_ablation.out; then
  echo "FAIL: ablation bench printed no cfg-resources coverage row"
  exit 1
fi

echo "== verify OK =="
