#!/usr/bin/env bash
# Tier-1 verification plus a cheap smoke campaign.
#
# 1. Build + test exactly what the ROADMAP calls tier-1.
# 2. Run the campaign-throughput bench on a 2% plan over the full
#    scenario registry × the full fault registry (the paper's wire
#    triplet plus delay, duplicate, partition, crash-restart) so perf
#    regressions and cross-executor determinism breaks are caught
#    without paying for a full campaign. The bench asserts
#    work-stealing and static-chunk executors produce identical rows
#    and writes BENCH_campaign.json (scenario and fault counts
#    included, so the perf trajectory shows coverage growth).
# 3. Run one new-scenario-only slice (rolling-update) to smoke the
#    MUTINY_SCENARIOS filter and the scenario-keyed TSV cache paths.
# 4. Run one partition-fault-only slice to smoke the MUTINY_FAULTS
#    filter, the fault-keyed cache identity, and the window-fault
#    actuation path end to end.
# 5. Run one kubelet-crash-restart-only slice to smoke the node-level
#    fault path: per-node channel identity, victim planning from the
#    per-node traffic catalogue, and the blackout world actions
#    (silence + restart) end to end.
# 6. Re-run the partition slice with MUTINY_DECODE_CACHE=0 (every
#    watch-cache sync decodes from bytes) and diff its TSV against the
#    cached-mode TSV byte for byte: the revision-keyed decode cache must
#    be a pure performance device.
# 7. Re-run the partition slice with MUTINY_FORK=0 (replay the golden
#    prefix from t=0 instead of forking the world snapshot) and diff its
#    TSV against the forked-mode TSV byte for byte, then run the same
#    slice as MUTINY_SHARD=0/2 + 1/2, merge the shard TSVs with the
#    merge_shards bin, and diff the merge against the unsharded TSV:
#    fork-the-world and residue-class sharding must both be pure
#    performance devices.
# 8. Run one etcd-disk-full-only slice (the storage fault path: windowed
#    disk-budget clamp, write rejection, world-action actuation between
#    slices), then re-run it with MUTINY_STORAGE=log and diff the
#    log-engine TSV (cache suffix `_log`) against the mem TSV byte for
#    byte: the storage engine must be a pure implementation choice.
# 9. Run one cfg-resources-only slice through the ablation bench: the
#    config-defect admission path end to end, with the validating-
#    admission arm A/B'd against the unmitigated arm (per-family
#    detection coverage is printed by the bench).
# 10. Trace round trip: export the deploy scenario's golden trace from a
#    2% smoke slice (MUTINY_TRACE_EXPORT), replay it as a registered
#    trace scenario (MUTINY_TRACES), and diff the two golden-baseline
#    TSVs byte for byte — the replay must reproduce the recorded run.
#    A two-scenario MUTINY_GEN slice rides along to smoke the generator
#    registration path end to end.
#
# The step-2 smoke campaign also runs with MUTINY_METRICS set: the JSON
# export is schema-validated by the telemetry crate's own validator, a
# nonzero golden-prefix share is asserted (the phase profiler must have
# attributed experiment time), and BENCH_campaign.json must carry the
# phase breakdown.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo clippy --release -- -D warnings =="
cargo clippy --release --workspace --all-targets -- -D warnings

echo "== tier-1: cargo test -q =="
cargo test -q

# The TSV/baseline caches under target/ trust that the simulation code
# has not changed since they were written (they are keyed by env, not by
# code version). verify.sh is exactly the place where the code *has*
# changed, so clear them all: every smoke slice below must run fresh
# against the current build, and the decode-cache A/B must never diff
# against (or resume from) rows produced by an older commit.
TARGET_DIR="${CARGO_TARGET_DIR:-target}"
rm -f "$TARGET_DIR"/mutiny_campaign_*.tsv "$TARGET_DIR"/mutiny_campaign_*.tsv.partial \
      "$TARGET_DIR"/mutiny_baseline_*.tsv "$TARGET_DIR"/mutiny_baseline_*.tsv.partial

echo "== smoke campaign, full registries (MUTINY_SCALE=0.02, metrics on) =="
METRICS_JSON="$(pwd)/$TARGET_DIR/verify_metrics.json"
rm -f "$METRICS_JSON"
MUTINY_SCALE=${MUTINY_SCALE:-0.02} \
MUTINY_GOLDEN_RUNS=${MUTINY_GOLDEN_RUNS:-6} \
MUTINY_METRICS="$METRICS_JSON" \
cargo bench -q -p mutiny-bench --bench campaign_throughput

echo "== telemetry: validate JSON export + golden-prefix share =="
if [ ! -s "$METRICS_JSON" ]; then
  echo "FAIL: MUTINY_METRICS produced no JSON export at $METRICS_JSON"
  exit 1
fi
cargo run -q --release -p mutiny-telemetry --bin validate_metrics -- \
  "$METRICS_JSON" --require-prefix-share
if ! grep -q '"golden_prefix_share"' BENCH_campaign.json; then
  echo "FAIL: BENCH_campaign.json is missing the phase breakdown"
  exit 1
fi
if ! grep -q '"detection_latency"' BENCH_campaign.json; then
  echo "FAIL: BENCH_campaign.json is missing the detection-latency table"
  exit 1
fi
if ! grep -q '"storage_backend"' BENCH_campaign.json; then
  echo "FAIL: BENCH_campaign.json is missing the storage backend name"
  exit 1
fi

echo "== smoke campaign, rolling-update slice (MUTINY_SCALE=0.02) =="
MUTINY_SCALE=${MUTINY_SCALE:-0.02} \
MUTINY_GOLDEN_RUNS=${MUTINY_GOLDEN_RUNS:-6} \
MUTINY_SCENARIOS=rolling-update \
cargo bench -q -p mutiny-bench --bench table4_of_stats

echo "== smoke campaign, partition-fault slice (MUTINY_SCALE=0.02) =="
MUTINY_SCALE=${MUTINY_SCALE:-0.02} \
MUTINY_GOLDEN_RUNS=${MUTINY_GOLDEN_RUNS:-6} \
MUTINY_FAULTS=partition \
cargo bench -q -p mutiny-bench --bench table4_of_stats

echo "== smoke campaign, kubelet-crash-restart slice (MUTINY_SCALE=0.02) =="
MUTINY_SCALE=${MUTINY_SCALE:-0.02} \
MUTINY_GOLDEN_RUNS=${MUTINY_GOLDEN_RUNS:-6} \
MUTINY_FAULTS=kubelet-crash-restart \
cargo bench -q -p mutiny-bench --bench table4_of_stats

echo "== decode-cache A/B: partition slice with MUTINY_DECODE_CACHE=0 =="
MUTINY_SCALE=${MUTINY_SCALE:-0.02} \
MUTINY_GOLDEN_RUNS=${MUTINY_GOLDEN_RUNS:-6} \
MUTINY_FAULTS=partition \
MUTINY_DECODE_CACHE=0 \
cargo bench -q -p mutiny-bench --bench table4_of_stats
nodc_found=0
for nodc in "$TARGET_DIR"/mutiny_campaign_*_nodc.tsv; do
  [ -e "$nodc" ] || continue
  nodc_found=1
  cached="${nodc%_nodc.tsv}.tsv"
  if ! diff -q "$cached" "$nodc"; then
    echo "FAIL: MUTINY_DECODE_CACHE=0 changed the campaign TSV ($cached vs $nodc)"
    exit 1
  fi
done
if [ "$nodc_found" != 1 ]; then
  echo "FAIL: the MUTINY_DECODE_CACHE=0 slice produced no TSV to diff"
  exit 1
fi

echo "== fork A/B: partition slice with MUTINY_FORK=0 =="
MUTINY_SCALE=${MUTINY_SCALE:-0.02} \
MUTINY_GOLDEN_RUNS=${MUTINY_GOLDEN_RUNS:-6} \
MUTINY_FAULTS=partition \
MUTINY_FORK=0 \
cargo bench -q -p mutiny-bench --bench table4_of_stats
nofork_found=0
for nofork in "$TARGET_DIR"/mutiny_campaign_*_nofork.tsv; do
  [ -e "$nofork" ] || continue
  nofork_found=1
  forked="${nofork%_nofork.tsv}.tsv"
  if ! diff -q "$forked" "$nofork"; then
    echo "FAIL: MUTINY_FORK=0 changed the campaign TSV ($forked vs $nofork)"
    exit 1
  fi
done
if [ "$nofork_found" != 1 ]; then
  echo "FAIL: the MUTINY_FORK=0 slice produced no TSV to diff"
  exit 1
fi

echo "== shard merge: partition slice as MUTINY_SHARD=0/2 + 1/2 =="
for s in 0 1; do
  MUTINY_SCALE=${MUTINY_SCALE:-0.02} \
  MUTINY_GOLDEN_RUNS=${MUTINY_GOLDEN_RUNS:-6} \
  MUTINY_FAULTS=partition \
  MUTINY_SHARD="$s/2" \
  cargo bench -q -p mutiny-bench --bench table4_of_stats
done
shard_found=0
for shard0 in "$TARGET_DIR"/mutiny_campaign_*_shard0of2.tsv; do
  [ -e "$shard0" ] || continue
  shard_found=1
  shard1="${shard0%_shard0of2.tsv}_shard1of2.tsv"
  unsharded="${shard0%_shard0of2.tsv}.tsv"
  merged="$TARGET_DIR/verify_merged_shards.tsv"
  cargo run -q --release -p mutiny-bench --bin merge_shards -- \
    "$merged" "$shard0" "$shard1"
  if ! diff -q "$unsharded" "$merged"; then
    echo "FAIL: two-shard merge differs from the unsharded TSV ($unsharded)"
    exit 1
  fi
done
if [ "$shard_found" != 1 ]; then
  echo "FAIL: the MUTINY_SHARD slices produced no shard TSVs to merge"
  exit 1
fi

echo "== storage slice + engine A/B: etcd-disk-full, mem then MUTINY_STORAGE=log =="
MUTINY_SCALE=${MUTINY_SCALE:-0.02} \
MUTINY_GOLDEN_RUNS=${MUTINY_GOLDEN_RUNS:-6} \
MUTINY_FAULTS=etcd-disk-full \
cargo bench -q -p mutiny-bench --bench table4_of_stats
MUTINY_SCALE=${MUTINY_SCALE:-0.02} \
MUTINY_GOLDEN_RUNS=${MUTINY_GOLDEN_RUNS:-6} \
MUTINY_FAULTS=etcd-disk-full \
MUTINY_STORAGE=log \
cargo bench -q -p mutiny-bench --bench table4_of_stats
log_found=0
for logtsv in "$TARGET_DIR"/mutiny_campaign_*_log.tsv; do
  [ -e "$logtsv" ] || continue
  log_found=1
  mem="${logtsv%_log.tsv}.tsv"
  if ! diff -q "$mem" "$logtsv"; then
    echo "FAIL: MUTINY_STORAGE=log changed the campaign TSV ($mem vs $logtsv)"
    exit 1
  fi
done
if [ "$log_found" != 1 ]; then
  echo "FAIL: the MUTINY_STORAGE=log slice produced no TSV to diff"
  exit 1
fi

echo "== smoke ablation, cfg-resources slice: validating on/off A/B =="
MUTINY_SCALE=${MUTINY_SCALE:-0.02} \
MUTINY_GOLDEN_RUNS=${MUTINY_GOLDEN_RUNS:-6} \
MUTINY_ABLATION_GOLDEN=${MUTINY_ABLATION_GOLDEN:-4} \
MUTINY_SCENARIOS=deploy \
MUTINY_FAULTS=cfg-resources \
cargo bench -q -p mutiny-bench --bench ablation_mitigations | tee /tmp/mutiny_cfg_ablation.out
if ! grep -q "^cfg-resources" /tmp/mutiny_cfg_ablation.out; then
  echo "FAIL: ablation bench printed no cfg-resources coverage row"
  exit 1
fi

echo "== trace round trip: export deploy, replay, diff baseline TSVs =="
# Absolute path: cargo runs bench binaries with the *package* directory
# as CWD, so a relative trace dir would land under crates/bench/.
TRACE_DIR="$(pwd)/$TARGET_DIR/verify_traces"
rm -rf "$TRACE_DIR"
MUTINY_SCALE=${MUTINY_SCALE:-0.02} \
MUTINY_GOLDEN_RUNS=${MUTINY_GOLDEN_RUNS:-6} \
MUTINY_SCENARIOS=deploy \
MUTINY_TRACE_EXPORT="$TRACE_DIR" \
cargo bench -q -p mutiny-bench --bench table4_of_stats
if [ ! -s "$TRACE_DIR/deploy.trace" ]; then
  echo "FAIL: trace export produced no deploy.trace"
  exit 1
fi
MUTINY_SCALE=${MUTINY_SCALE:-0.02} \
MUTINY_GOLDEN_RUNS=${MUTINY_GOLDEN_RUNS:-6} \
MUTINY_TRACES="$TRACE_DIR" \
MUTINY_SCENARIOS=trace-deploy \
cargo bench -q -p mutiny-bench --bench table4_of_stats
runs="${MUTINY_GOLDEN_RUNS:-6}"
seed="${MUTINY_SEED:-2024}"
src_baseline="$TARGET_DIR/mutiny_baseline_deploy_g${runs}_seed${seed}.tsv"
replay_baseline="$TARGET_DIR/mutiny_baseline_trace-deploy_g${runs}_seed${seed}.tsv"
if ! diff -q "$src_baseline" "$replay_baseline"; then
  echo "FAIL: replayed golden baseline differs from the recorded scenario's"
  exit 1
fi

echo "== smoke campaign, generated-scenario slice (MUTINY_GEN=2:7) =="
MUTINY_SCALE=${MUTINY_SCALE:-0.02} \
MUTINY_GOLDEN_RUNS=${MUTINY_GOLDEN_RUNS:-6} \
MUTINY_GEN=2:7 \
MUTINY_SCENARIOS=gen-7-0,gen-7-1 \
cargo bench -q -p mutiny-bench --bench table4_of_stats

echo "== verify OK =="
