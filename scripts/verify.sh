#!/usr/bin/env bash
# Tier-1 verification plus a cheap smoke campaign.
#
# 1. Build + test exactly what the ROADMAP calls tier-1.
# 2. Run the campaign-throughput bench on a 2% plan so perf regressions
#    and cross-executor determinism breaks are caught without paying for
#    a full campaign. The bench asserts work-stealing and static-chunk
#    executors produce identical rows and writes BENCH_campaign.json.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== smoke campaign (MUTINY_SCALE=0.02) =="
MUTINY_SCALE=${MUTINY_SCALE:-0.02} \
MUTINY_GOLDEN_RUNS=${MUTINY_GOLDEN_RUNS:-6} \
cargo bench -q -p mutiny-bench --bench campaign_throughput

echo "== verify OK =="
