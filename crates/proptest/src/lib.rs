//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real proptest cannot be fetched. This shim implements the API surface
//! the workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map`, plus strategies for integer ranges,
//!   regex-like string patterns, tuples, [`collection::vec`],
//!   [`option::of`], [`Just`], [`any`], and [`prop_oneof!`];
//! * the [`proptest!`] and [`prop_compose!`] macros;
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`;
//! * `prop::sample::Index`.
//!
//! Unlike real proptest there is no shrinking: a failing case reports its
//! seed so it can be replayed deterministically. Case count defaults to 64
//! and can be overridden with `PROPTEST_CASES`.

use std::ops::Range;

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// The deterministic generator threaded through strategies
/// (splitmix64-based; seeds derive from the test name and case index).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of test values (shrinking-free shim of proptest's trait).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A strategy backed by a plain generation closure (used by
/// [`prop_compose!`]).
pub struct FnStrategy<F>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct OneOf<T>(Vec<Box<dyn Strategy<Value = T>>>);

impl<T> OneOf<T> {
    /// Builds a choice over `arms` (must be non-empty).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf(arms)
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

// Integer ranges.
macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )+};
}

int_range_strategy!(i64, u64, i32, u32, u8, usize);

// Tuples of strategies.
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

// ---------------------------------------------------------------------------
// Regex-like string patterns
// ---------------------------------------------------------------------------

// `&str` generates strings from a small regex subset: literal characters,
// `[...]` classes (ranges and literal members), and `{n}` / `{m,n}` / `?` /
// `+` / `*` quantifiers. This covers the patterns property tests typically
// use for names and labels.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        gen_pattern(self, rng)
    }
}

fn gen_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a class or a literal character.
        let class: Vec<(char, char)>;
        match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                class = parse_class(&chars[i + 1..close]);
                i = close + 1;
            }
            '\\' if i + 1 < chars.len() => {
                class = vec![(chars[i + 1], chars[i + 1])];
                i += 2;
            }
            c => {
                class = vec![(c, c)];
                i += 1;
            }
        }
        // Parse an optional quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("bad quantifier"),
                        b.trim().parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            _ => (1, 1),
        };
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            out.push(pick_from_class(&class, rng));
        }
    }
    out
}

fn parse_class(body: &[char]) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            ranges.push((body[i], body[i + 2]));
            i += 3;
        } else {
            ranges.push((body[i], body[i]));
            i += 1;
        }
    }
    assert!(!ranges.is_empty(), "empty character class");
    ranges
}

fn pick_from_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u64 = ranges.iter().map(|(a, b)| (*b as u64) - (*a as u64) + 1).sum();
    let mut n = rng.below(total);
    for (a, b) in ranges {
        let span = (*b as u64) - (*a as u64) + 1;
        if n < span {
            return char::from_u32(*a as u32 + n as u32).expect("valid char in class");
        }
        n -= span;
    }
    unreachable!("class pick out of bounds")
}

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy (shim of proptest's trait).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for prop::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> prop::sample::Index {
        prop::sample::Index(rng.next_u64())
    }
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Shim of proptest's `prop` facade module.
pub mod prop {
    /// Sampling helpers.
    pub mod sample {
        /// An index into a runtime-sized collection.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(pub(crate) u64);

        impl Index {
            /// Resolves against a collection of `len` elements.
            ///
            /// # Panics
            ///
            /// Panics when `len` is zero.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }
    }
}

// ---------------------------------------------------------------------------
// collection / option
// ---------------------------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// See [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Some 3 times out of 4, like real proptest's default weight.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// A strategy yielding `None` or `Some(element)`.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

// ---------------------------------------------------------------------------
// Test runner
// ---------------------------------------------------------------------------

/// Number of cases per property (override with `PROPTEST_CASES`).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(64)
}

fn seed_for(name: &str, case: u64) -> u64 {
    // FNV-1a over the test name, mixed with the case index.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Drives one property: runs [`case_count`] cases with per-case seeds and
/// panics (with the seed) on the first failure. Used by [`proptest!`].
pub fn run_cases<F: Fn(&mut TestRng) -> Result<(), String>>(name: &str, f: F) {
    for case in 0..case_count() {
        let seed = seed_for(name, case);
        let mut rng = TestRng::new(seed);
        if let Err(msg) = f(&mut rng) {
            panic!("[{name}] case {case} (seed {seed:#018x}) failed: {msg}");
        }
    }
}

/// Convenience prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose,
        prop_oneof, proptest, Just, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`run_cases`] cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                $body
                Ok(())
            });
        }
    )*};
}

/// Declares a named composite strategy:
/// `fn name()(arg in strategy, ...) -> T { body }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($param:tt)*)(
        $($arg:ident in $strat:expr),* $(,)?
    ) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($param)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy(move |__rng: &mut $crate::TestRng| -> $ret {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                $body
            })
        }
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$({
            let __boxed: Box<dyn $crate::Strategy<Value = _>> = Box::new($arm);
            __boxed
        }),+])
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), __l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_generation_matches_shape() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..200 {
            let s = crate::gen_pattern("[a-z][a-z0-9-]{0,14}[a-z0-9]", &mut rng);
            assert!(s.len() >= 2 && s.len() <= 16, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(!s.ends_with('-'));
            let t = crate::gen_pattern("[a-z]{1,8}:[0-9]{1,2}", &mut rng);
            let (name, ver) = t.split_once(':').expect("colon literal preserved");
            assert!((1..=8).contains(&name.len()));
            assert!((1..=2).contains(&ver.len()));
            assert!(ver.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn ranges_are_bounded() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..500 {
            let v = crate::Strategy::generate(&(-4i64..20), &mut rng);
            assert!((-4..20).contains(&v));
            let u = crate::Strategy::generate(&(0u8..8), &mut rng);
            assert!(u < 8);
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        let a = crate::seed_for("some_test", 5);
        let b = crate::seed_for("some_test", 5);
        assert_eq!(a, b);
        assert_ne!(a, crate::seed_for("some_test", 6));
        assert_ne!(a, crate::seed_for("other_test", 5));
    }

    proptest! {
        /// The shim's own macro pipeline works end to end.
        #[test]
        fn shim_smoke(name in "[a-c]{1,3}", n in 0i64..10, flag in any::<bool>(), opt in crate::option::of(0i64..3), v in crate::collection::vec(0u8..4, 0..5)) {
            prop_assert!(!name.is_empty() && name.len() <= 3);
            prop_assert!((0..10).contains(&n), "n out of range: {}", n);
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(n - 11, n);
            if let Some(x) = opt {
                prop_assert!(x < 3);
            }
            prop_assert!(v.len() < 5);
            prop_assume!(n != 3);
            prop_assert!(n != 3);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_just(phase in prop_oneof![Just("a"), Just("b")], pick in any::<prop::sample::Index>()) {
            prop_assert!(phase == "a" || phase == "b");
            prop_assert!(pick.index(7) < 7);
        }
    }
}
