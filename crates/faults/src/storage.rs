//! Storage-engine fault families: the etcd store itself misbehaves.
//!
//! The paper's fault matrix tampers with messages *between* components;
//! these four families instead attack the data store the whole control
//! plane trusts — the §II-D etcd dependency the paper's at-rest
//! corruption probe (§V-C1) only scratched. None of them touch a wire:
//! the [`StorageActuator`] passes every message and acts through
//! out-of-band [`WorldAction`]s the experiment driver applies to the
//! store between time slices, so the faults work identically on every
//! [`StorageBackend`](etcd_sim::StorageBackend).
//!
//! * **etcd-disk-full** — clamp the disk budget to current usage for a
//!   window: every growing write is rejected
//!   (`etcd.writes_rejected`), the degradation the §VI guard watches
//!   for. Heals by restoring the budget; the rejected-write latch
//!   stays, as on a real cluster that ran out of disk mid-rollout.
//! * **etcd-compaction-pressure** — force a store + watch-log
//!   compaction on every poll while the window is open: watch cursors
//!   that lag behind the head observe `EtcdError::Compacted` and must
//!   re-list, the real etcd watch-replay hazard.
//! * **etcd-corrupt-at-rest** — replace one stored value's bytes on
//!   one replica's disk (the §V-C1 threat): a quorum read masks it, an
//!   unquorum read serves garbage, and on the log engine the
//!   corruption is durable across crash recovery.
//! * **etcd-inconsistent-view** — serve one replica's stale snapshot
//!   to every reader for a window while writes keep advancing the
//!   revision: the inconsistent-read anomaly of the multi-master BFT
//!   analysis (arXiv:1904.06206).
//!
//! Victims are planned deterministically from the recorded store wire
//! (`apiserver->etcd` traffic is the evidence the store is in use),
//! with a per-(scenario, family) RNG fork jittering each window — the
//! same filter-stability contract the node families keep.

use crate::injector::{FaultKind, InjectionPoint, InjectionRecord, InjectionSpec, StorageOp};
use crate::recorder::RecordedTraffic;
use crate::{Fault, FaultActuator, FaultDef, WorldAction};
use k8s_model::{ChannelClass, ChannelId, Interceptor, Kind, MsgCtx, Op, WireVerdict};
use simkit::Rng;

/// Disk-full window: (start offset, duration). Long enough that the
/// workload's steady writes hit the clamped budget repeatedly.
pub const ETCD_DISK_FULL_WINDOW: (u64, u64) = (2_000, 10_000);
/// Jitter added to the disk-full window start.
pub const ETCD_DISK_FULL_JITTER_MS: u64 = 1_000;
/// Compaction-pressure window: (start offset, duration). Every poll
/// inside the window forces a compaction.
pub const ETCD_COMPACTION_WINDOW: (u64, u64) = (2_000, 8_000);
/// Jitter added to the compaction-pressure window start.
pub const ETCD_COMPACTION_JITTER_MS: u64 = 1_000;
/// Replica indices corrupt-at-rest plans one spec for (applied modulo
/// the configured replica count at actuation, so the plan fits both
/// single- and multi-replica stores).
pub const ETCD_CORRUPT_REPLICAS: u32 = 2;
/// Offset at which at-rest corruption strikes.
pub const ETCD_CORRUPT_OFFSET_MS: u64 = 2_000;
/// Jitter added to the corruption strike time.
pub const ETCD_CORRUPT_JITTER_MS: u64 = 1_000;
/// Stored-key index space the corruption victim is drawn from (modulo
/// the object count at actuation).
pub const ETCD_CORRUPT_KEY_SPACE: u64 = 16;
/// Inconsistent-view window: (start offset, duration). Short enough
/// that reconciliation repairs the divergence after the heal.
pub const ETCD_INCONSISTENT_WINDOW: (u64, u64) = (2_000, 6_000);
/// Jitter added to the inconsistent-view window start.
pub const ETCD_INCONSISTENT_JITTER_MS: u64 = 1_000;

/// The recorded store wire, if the scenario produced any
/// apiserver→etcd traffic: the (channel, kind) evidence storage
/// families plan from. The first recorded kind is used (stable order),
/// since storage faults are store-wide — the kind is informational.
fn store_wire(traffic: &RecordedTraffic) -> Option<(ChannelId, Kind)> {
    traffic
        .kinds
        .iter()
        .find(|(channel, _, _)| channel.class() == ChannelClass::ApiToEtcd)
        .map(|(channel, kind, _)| (*channel, *kind))
}

/// The built-in family actuating [`StorageOp`] `op` — the storage
/// counterpart of `config::family_for_defect`.
pub fn family_for_op(op: StorageOp) -> Fault {
    match op {
        StorageOp::DiskFull => ETCD_DISK_FULL,
        StorageOp::CompactionPressure => ETCD_COMPACTION_PRESSURE,
        StorageOp::CorruptAtRest => ETCD_CORRUPT_AT_REST,
        StorageOp::InconsistentView => ETCD_INCONSISTENT_VIEW,
    }
}

/// The armed storage-fault actuator: passes every wire message and
/// drives its window through [`WorldAction`]s the experiment driver
/// applies to the store between time slices.
#[derive(Debug)]
pub struct StorageActuator {
    spec: InjectionSpec,
    armed_from: u64,
    record: Option<InjectionRecord>,
    opened: bool,
    closed: bool,
}

impl StorageActuator {
    /// Arms one storage spec, anchoring its window at `from`.
    pub fn armed_from(spec: InjectionSpec, from: u64) -> StorageActuator {
        StorageActuator { spec, armed_from: from, record: None, opened: false, closed: false }
    }

    fn mark_fired(&mut self, at: u64, op: StorageOp, replica: u32) {
        if self.record.is_none() {
            mutiny_telemetry::counter_add("fault.fired", 1);
            mutiny_telemetry::counter_add("storage.fault.fired", 1);
            self.record = Some(InjectionRecord {
                at,
                key: format!("<storage:{op}@r{replica}>"),
                op: Op::Update,
                before: None,
                after: None,
            });
        }
    }
}

impl Interceptor for StorageActuator {
    fn on_message(&mut self, _ctx: &MsgCtx<'_>) -> WireVerdict {
        // Storage faults never touch the wire.
        WireVerdict::Pass
    }
}

impl FaultActuator for StorageActuator {
    fn record(&self) -> Option<&InjectionRecord> {
        self.record.as_ref()
    }

    fn poll_actions(&mut self, now: u64) -> Vec<WorldAction> {
        let InjectionPoint::Storage { op, from_off, dur_ms, replica, param } = self.spec.point
        else {
            return Vec::new();
        };
        let start = self.armed_from + from_off;
        let mut actions = Vec::new();
        if now >= start && !self.opened {
            self.opened = true;
            self.mark_fired(start, op, replica);
            match op {
                StorageOp::DiskFull => actions.push(WorldAction::EtcdClampDiskBudget),
                // Compaction pressure is handled below: it fires on
                // every poll inside the window, the open poll included.
                StorageOp::CompactionPressure => {}
                StorageOp::CorruptAtRest => {
                    actions.push(WorldAction::EtcdCorruptReplica { replica, nth: param });
                }
                StorageOp::InconsistentView => {
                    actions.push(WorldAction::EtcdBeginInconsistentView { replica });
                }
            }
        }
        if op == StorageOp::CompactionPressure && now >= start && now < start + dur_ms {
            actions.push(WorldAction::EtcdForceCompaction);
        }
        if now >= start + dur_ms && self.opened && !self.closed {
            self.closed = true;
            match op {
                StorageOp::DiskFull => actions.push(WorldAction::EtcdRestoreDiskBudget),
                StorageOp::InconsistentView => actions.push(WorldAction::EtcdEndInconsistentView),
                // One-shot corruption and compaction pressure need no
                // heal action: the window closing is the heal.
                StorageOp::CompactionPressure | StorageOp::CorruptAtRest => {}
            }
        }
        actions
    }
}

/// Plans one windowed storage spec on the recorded store wire.
fn plan_window(
    traffic: &RecordedTraffic,
    rng: &mut Rng,
    op: StorageOp,
    (base_off, dur_ms): (u64, u64),
    jitter_ms: u64,
    replica: u32,
) -> Vec<InjectionSpec> {
    let Some((channel, kind)) = store_wire(traffic) else {
        return Vec::new();
    };
    // The fork label keeps the window independent of any other family's
    // draws (the same filter-stability contract node families keep).
    let mut wrng = rng.fork("window");
    vec![InjectionSpec {
        channel,
        kind,
        point: InjectionPoint::Storage {
            op,
            from_off: base_off + wrng.below(jitter_ms),
            dur_ms,
            replica,
            param: 0,
        },
        occurrence: 1,
    }]
}

// --- etcd-disk-full --------------------------------------------------------

struct EtcdDiskFull;

impl FaultDef for EtcdDiskFull {
    fn name(&self) -> &'static str {
        "etcd-disk-full"
    }

    fn label(&self) -> &'static str {
        "Etcd disk full"
    }

    fn fault_kind(&self) -> FaultKind {
        FaultKind::Storage
    }

    fn expectation(&self) -> &'static str {
        "writes rejected for the window; the guard sees etcd degraded and rolls back"
    }

    fn plan(&self, traffic: &RecordedTraffic, rng: &mut Rng) -> Vec<InjectionSpec> {
        plan_window(
            traffic,
            rng,
            StorageOp::DiskFull,
            ETCD_DISK_FULL_WINDOW,
            ETCD_DISK_FULL_JITTER_MS,
            0,
        )
    }

    fn arm(&self, spec: &InjectionSpec, from: u64) -> Box<dyn FaultActuator> {
        Box::new(StorageActuator::armed_from(spec.clone(), from))
    }
}

static ETCD_DISK_FULL_DEF: EtcdDiskFull = EtcdDiskFull;
/// Windowed disk-budget exhaustion: growing writes are rejected until
/// the window heals.
pub static ETCD_DISK_FULL: Fault = Fault::new(&ETCD_DISK_FULL_DEF);

// --- etcd-compaction-pressure ----------------------------------------------

struct EtcdCompactionPressure;

impl FaultDef for EtcdCompactionPressure {
    fn name(&self) -> &'static str {
        "etcd-compaction-pressure"
    }

    fn label(&self) -> &'static str {
        "Compaction pressure"
    }

    fn fault_kind(&self) -> FaultKind {
        FaultKind::Storage
    }

    fn expectation(&self) -> &'static str {
        "lagging watch cursors observe Compacted and re-list; state converges"
    }

    fn plan(&self, traffic: &RecordedTraffic, rng: &mut Rng) -> Vec<InjectionSpec> {
        plan_window(
            traffic,
            rng,
            StorageOp::CompactionPressure,
            ETCD_COMPACTION_WINDOW,
            ETCD_COMPACTION_JITTER_MS,
            0,
        )
    }

    fn arm(&self, spec: &InjectionSpec, from: u64) -> Box<dyn FaultActuator> {
        Box::new(StorageActuator::armed_from(spec.clone(), from))
    }
}

static ETCD_COMPACTION_PRESSURE_DEF: EtcdCompactionPressure = EtcdCompactionPressure;
/// Forced store + watch-log compactions for a window: watch replay
/// becomes impossible and cursors must re-list.
pub static ETCD_COMPACTION_PRESSURE: Fault = Fault::new(&ETCD_COMPACTION_PRESSURE_DEF);

// --- etcd-corrupt-at-rest --------------------------------------------------

struct EtcdCorruptAtRest;

impl FaultDef for EtcdCorruptAtRest {
    fn name(&self) -> &'static str {
        "etcd-corrupt-at-rest"
    }

    fn label(&self) -> &'static str {
        "Corrupt at rest"
    }

    fn fault_kind(&self) -> FaultKind {
        FaultKind::Storage
    }

    fn expectation(&self) -> &'static str {
        "quorum reads mask a single corrupted replica; a 1-replica store serves garbage"
    }

    fn plan(&self, traffic: &RecordedTraffic, rng: &mut Rng) -> Vec<InjectionSpec> {
        let Some((channel, kind)) = store_wire(traffic) else {
            return Vec::new();
        };
        // Per-replica fork: filtering one replica's spec out never
        // shifts another replica's strike time or victim key.
        (0..ETCD_CORRUPT_REPLICAS)
            .map(|replica| {
                let mut rrng = rng.fork(&format!("r{replica}"));
                InjectionSpec {
                    channel,
                    kind,
                    point: InjectionPoint::Storage {
                        op: StorageOp::CorruptAtRest,
                        from_off: ETCD_CORRUPT_OFFSET_MS + rrng.below(ETCD_CORRUPT_JITTER_MS),
                        dur_ms: 0,
                        replica,
                        param: rrng.below(ETCD_CORRUPT_KEY_SPACE) as u32,
                    },
                    occurrence: 1,
                }
            })
            .collect()
    }

    fn arm(&self, spec: &InjectionSpec, from: u64) -> Box<dyn FaultActuator> {
        Box::new(StorageActuator::armed_from(spec.clone(), from))
    }
}

static ETCD_CORRUPT_AT_REST_DEF: EtcdCorruptAtRest = EtcdCorruptAtRest;
/// One replica's stored bytes replaced on disk (§V-C1), quorum-vote
/// observable and durable across crash recovery on the log engine.
pub static ETCD_CORRUPT_AT_REST: Fault = Fault::new(&ETCD_CORRUPT_AT_REST_DEF);

// --- etcd-inconsistent-view ------------------------------------------------

struct EtcdInconsistentView;

impl FaultDef for EtcdInconsistentView {
    fn name(&self) -> &'static str {
        "etcd-inconsistent-view"
    }

    fn label(&self) -> &'static str {
        "Inconsistent view"
    }

    fn fault_kind(&self) -> FaultKind {
        FaultKind::Storage
    }

    fn expectation(&self) -> &'static str {
        "readers see a frozen snapshot while writes advance; reconciliation repairs on heal"
    }

    fn plan(&self, traffic: &RecordedTraffic, rng: &mut Rng) -> Vec<InjectionSpec> {
        // Replica 1 — a follower on multi-replica stores (modulo wraps
        // to the leader on a single-replica store).
        plan_window(
            traffic,
            rng,
            StorageOp::InconsistentView,
            ETCD_INCONSISTENT_WINDOW,
            ETCD_INCONSISTENT_JITTER_MS,
            1,
        )
    }

    fn arm(&self, spec: &InjectionSpec, from: u64) -> Box<dyn FaultActuator> {
        Box::new(StorageActuator::armed_from(spec.clone(), from))
    }
}

static ETCD_INCONSISTENT_VIEW_DEF: EtcdInconsistentView = EtcdInconsistentView;
/// One replica's stale snapshot served to every reader for a window
/// while writes keep advancing the revision (arXiv:1904.06206).
pub static ETCD_INCONSISTENT_VIEW: Fault = Fault::new(&ETCD_INCONSISTENT_VIEW_DEF);

/// The storage-engine families, in table order.
pub static STORAGE_BUILTIN: [Fault; 4] = [
    ETCD_DISK_FULL,
    ETCD_COMPACTION_PRESSURE,
    ETCD_CORRUPT_AT_REST,
    ETCD_INCONSISTENT_VIEW,
];

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_model::Channel;

    fn traffic() -> RecordedTraffic {
        RecordedTraffic {
            fields: Vec::new(),
            kinds: vec![
                (Channel::UserToApi.into(), Kind::Deployment, 3u64),
                (Channel::ApiToEtcd.into(), Kind::ReplicaSet, 40u64),
            ],
            node_kinds: Vec::new(),
            user_kinds: Vec::new(),
        }
    }

    fn storage_point(spec: &InjectionSpec) -> (StorageOp, u64, u64, u32, u32) {
        let InjectionPoint::Storage { op, from_off, dur_ms, replica, param } = spec.point else {
            panic!("expected storage point: {spec:?}");
        };
        (op, from_off, dur_ms, replica, param)
    }

    #[test]
    fn families_plan_only_from_store_traffic() {
        let rng = Rng::new(3);
        for fault in STORAGE_BUILTIN {
            let plan = fault.plan(&traffic(), &mut rng.fork(fault.name()));
            assert!(!plan.is_empty(), "{fault} planned nothing");
            for spec in &plan {
                assert_eq!(spec.channel.class(), ChannelClass::ApiToEtcd);
                assert_eq!(spec.kind, Kind::ReplicaSet);
            }
            // No store wire recorded → nothing to attack.
            let no_store = RecordedTraffic {
                kinds: vec![(Channel::UserToApi.into(), Kind::Deployment, 3u64)],
                ..RecordedTraffic::default()
            };
            assert!(fault.plan(&no_store, &mut rng.fork(fault.name())).is_empty());
        }
    }

    #[test]
    fn windows_respect_base_and_jitter() {
        let mut rng = Rng::new(3);
        let plan = ETCD_DISK_FULL.plan(&traffic(), &mut rng);
        let (op, from_off, dur_ms, replica, _) = storage_point(&plan[0]);
        assert_eq!(op, StorageOp::DiskFull);
        let (base, dur) = ETCD_DISK_FULL_WINDOW;
        assert!(from_off >= base && from_off < base + ETCD_DISK_FULL_JITTER_MS);
        assert_eq!(dur_ms, dur);
        assert_eq!(replica, 0);
    }

    #[test]
    fn corruption_plans_one_spec_per_replica_independently() {
        let mut rng = Rng::new(3);
        let plan = ETCD_CORRUPT_AT_REST.plan(&traffic(), &mut rng);
        assert_eq!(plan.len(), ETCD_CORRUPT_REPLICAS as usize);
        let replicas: Vec<u32> = plan.iter().map(|s| storage_point(s).3).collect();
        assert_eq!(replicas, vec![0, 1]);
        for spec in &plan {
            let (op, from_off, dur_ms, _, param) = storage_point(spec);
            assert_eq!(op, StorageOp::CorruptAtRest);
            assert!((ETCD_CORRUPT_OFFSET_MS..ETCD_CORRUPT_OFFSET_MS + ETCD_CORRUPT_JITTER_MS)
                .contains(&from_off));
            assert_eq!(dur_ms, 0);
            assert!((param as u64) < ETCD_CORRUPT_KEY_SPACE);
        }
        // The per-replica fork contract: replica 1's spec is the same
        // whether or not replica 0 is part of the draw order.
        let again = ETCD_CORRUPT_AT_REST.plan(&traffic(), &mut Rng::new(3));
        assert_eq!(plan, again);
    }

    #[test]
    fn planning_is_deterministic_per_seed() {
        let a = ETCD_COMPACTION_PRESSURE.plan(&traffic(), &mut Rng::new(9));
        let b = ETCD_COMPACTION_PRESSURE.plan(&traffic(), &mut Rng::new(9));
        assert_eq!(a, b);
        let c = ETCD_COMPACTION_PRESSURE.plan(&traffic(), &mut Rng::new(10));
        assert_ne!(a, c, "jitter must depend on the fork seed");
    }

    #[test]
    fn disk_full_lifecycle_brackets_the_window() {
        let mut rng = Rng::new(3);
        let spec = ETCD_DISK_FULL.plan(&traffic(), &mut rng).remove(0);
        let (_, from_off, dur_ms, _, _) = storage_point(&spec);
        let mut actuator = ETCD_DISK_FULL.arm(&spec, 1_000);
        let start = 1_000 + from_off;

        assert!(actuator.poll_actions(start - 100).is_empty());
        assert!(actuator.record().is_none());
        // Open: clamp, and the fault is recorded as fired.
        assert_eq!(actuator.poll_actions(start + 10), vec![WorldAction::EtcdClampDiskBudget]);
        assert!(actuator.record().is_some(), "storage faults fire when the window opens");
        // Inside: nothing more to do.
        assert!(actuator.poll_actions(start + dur_ms / 2).is_empty());
        // Heal: restore exactly once.
        assert_eq!(
            actuator.poll_actions(start + dur_ms),
            vec![WorldAction::EtcdRestoreDiskBudget]
        );
        assert!(actuator.poll_actions(start + dur_ms + 500).is_empty());
    }

    #[test]
    fn compaction_pressure_forces_compaction_every_poll_inside_the_window() {
        let mut rng = Rng::new(3);
        let spec = ETCD_COMPACTION_PRESSURE.plan(&traffic(), &mut rng).remove(0);
        let (_, from_off, dur_ms, _, _) = storage_point(&spec);
        let mut actuator = ETCD_COMPACTION_PRESSURE.arm(&spec, 0);
        let start = from_off;

        assert!(actuator.poll_actions(start - 1).is_empty());
        assert_eq!(actuator.poll_actions(start), vec![WorldAction::EtcdForceCompaction]);
        assert_eq!(actuator.poll_actions(start + 250), vec![WorldAction::EtcdForceCompaction]);
        assert_eq!(
            actuator.poll_actions(start + dur_ms - 1),
            vec![WorldAction::EtcdForceCompaction]
        );
        assert!(actuator.poll_actions(start + dur_ms).is_empty());
        assert!(actuator.record().is_some());
    }

    #[test]
    fn corruption_strikes_once() {
        let mut rng = Rng::new(3);
        let spec = ETCD_CORRUPT_AT_REST.plan(&traffic(), &mut rng).remove(0);
        let (_, from_off, _, replica, param) = storage_point(&spec);
        let mut actuator = ETCD_CORRUPT_AT_REST.arm(&spec, 500);
        let start = 500 + from_off;

        assert!(actuator.poll_actions(start - 10).is_empty());
        assert_eq!(
            actuator.poll_actions(start),
            vec![WorldAction::EtcdCorruptReplica { replica, nth: param }]
        );
        assert_eq!(actuator.record().unwrap().key, format!("<storage:corrupt-at-rest@r{replica}>"));
        assert!(actuator.poll_actions(start + 250).is_empty());
    }

    #[test]
    fn inconsistent_view_begins_and_ends() {
        let mut rng = Rng::new(3);
        let spec = ETCD_INCONSISTENT_VIEW.plan(&traffic(), &mut rng).remove(0);
        let (_, from_off, dur_ms, replica, _) = storage_point(&spec);
        let mut actuator = ETCD_INCONSISTENT_VIEW.arm(&spec, 0);
        let start = from_off;

        assert_eq!(
            actuator.poll_actions(start + 10),
            vec![WorldAction::EtcdBeginInconsistentView { replica }]
        );
        assert!(actuator.poll_actions(start + dur_ms / 2).is_empty());
        assert_eq!(actuator.poll_actions(start + dur_ms), vec![WorldAction::EtcdEndInconsistentView]);
        assert!(actuator.poll_actions(start + dur_ms + 250).is_empty());
    }

    #[test]
    fn storage_faults_never_touch_the_wire() {
        let mut rng = Rng::new(3);
        let spec = ETCD_DISK_FULL.plan(&traffic(), &mut rng).remove(0);
        let mut actuator = ETCD_DISK_FULL.arm(&spec, 0);
        let bytes = [1u8, 2, 3];
        let ctx = MsgCtx {
            channel: Channel::ApiToEtcd.into(),
            kind: Kind::ReplicaSet,
            key: "/registry/replicasets/default/web",
            op: Op::Update,
            bytes: Some(&bytes),
            now: 5_000,
        };
        assert_eq!(actuator.on_message(&ctx), WireVerdict::Pass);
    }

    #[test]
    fn family_for_op_maps_every_op() {
        assert_eq!(family_for_op(StorageOp::DiskFull), ETCD_DISK_FULL);
        assert_eq!(family_for_op(StorageOp::CompactionPressure), ETCD_COMPACTION_PRESSURE);
        assert_eq!(family_for_op(StorageOp::CorruptAtRest), ETCD_CORRUPT_AT_REST);
        assert_eq!(family_for_op(StorageOp::InconsistentView), ETCD_INCONSISTENT_VIEW);
        // And implied_by round-trips through the op.
        for (op, fault) in [
            (StorageOp::DiskFull, ETCD_DISK_FULL),
            (StorageOp::InconsistentView, ETCD_INCONSISTENT_VIEW),
        ] {
            let spec = InjectionSpec {
                channel: Channel::ApiToEtcd.into(),
                kind: Kind::Pod,
                point: InjectionPoint::Storage { op, from_off: 0, dur_ms: 1, replica: 0, param: 0 },
                occurrence: 1,
            };
            assert_eq!(Fault::implied_by(&spec), fault);
        }
    }
}
