//! Mutiny: the fault/error injector (re-homed from `mutiny_core`).
//!
//! Each wire injection is characterized by the triplet of §IV-A:
//!
//! * **where** — a communication [`Channel`], a resource [`Kind`], and
//!   either a field path, a serialization-protocol byte, or the whole
//!   message;
//! * **what** — a bit-flip, a data-type set, or a message drop;
//! * **when** — the occurrence index of messages *related to the same
//!   resource instance* in which the target appears.
//!
//! The fault engine widens the "what" axis beyond the paper's triplet
//! with **temporal** faults (delay, duplicate) and **infrastructure**
//! faults (channel partition, component crash-restart); those are window-
//! or occurrence-anchored rather than field-anchored, but they reuse the
//! same spec shape so campaign plans, TSV rows and tables stay uniform.
//!
//! Mutiny implements [`Interceptor`] (and [`FaultActuator`]), sits on the
//! wire paths of the simulated apiserver, and — for the one-shot families
//! — fires exactly once per experiment. Window families (partition,
//! crash-restart) drop every matching message while their window is open.

use crate::{FaultActuator, WorldAction};
use k8s_model::{ChannelClass, ChannelId, Interceptor, Kind, MsgCtx, Object, Op, WireVerdict};
use protowire::corrupt;
use protowire::reflect::{Reflect, Value};
use std::collections::HashMap;

/// What part of the message (or channel timeline) the injection targets.
#[derive(Debug, Clone, PartialEq)]
pub enum InjectionPoint {
    /// A named leaf field (reflection path, e.g. `spec.replicas`).
    Field {
        /// Reflection path of the field.
        path: String,
        /// The mutation to apply.
        mutation: FieldMutation,
    },
    /// A raw serialization-protocol byte (position as a fraction of the
    /// encoded length, so one spec applies to variable-size messages).
    ProtoByte {
        /// Byte position as a fraction in `[0, 1)`.
        byte_frac: f64,
        /// Bit to flip within that byte.
        bit: u8,
    },
    /// Drop the whole message (the sender still sees success).
    Drop,
    /// Hold the matching message for `hold_ms` simulated milliseconds,
    /// then deliver it unchanged (temporal fault: stale state lands late).
    Delay {
        /// How long the message is held before delivery.
        hold_ms: u64,
    },
    /// Deliver the matching message normally **and** redeliver an
    /// identical copy `echo_ms` later (a duplicated retransmission that
    /// can resurrect superseded state).
    Duplicate {
        /// Delay of the echoed copy.
        echo_ms: u64,
    },
    /// Drop **every** message on the spec's channel during a time window
    /// starting `from_off` ms after arming and lasting `dur_ms`, then
    /// heal (infrastructure fault: a channel partition). The spec's kind
    /// is informational — the partition is channel-wide.
    Partition {
        /// Window start, relative to the arming time.
        from_off: u64,
        /// Window length.
        dur_ms: u64,
    },
    /// A component blackout: like [`InjectionPoint::Partition`], every
    /// message on the component's egress channel is dropped during the
    /// window (lease renewals included, so the component loses
    /// leadership), and on heal the affected component restarts with a
    /// watch re-list (for the apiserver, the watch cache is rebuilt from
    /// the store).
    Crash {
        /// Window start, relative to the arming time.
        from_off: u64,
        /// Window length.
        dur_ms: u64,
    },
    /// A configuration defect: mutate the decoded object at the
    /// apiserver's **admission hook** instead of corrupting bytes on the
    /// wire. The result is a *valid, decodable* spec that is
    /// semantically wrong (request above limit, selector mismatch,
    /// flappy probe, pathological grace, wild replica count) — it probes
    /// controller logic, not parsers. Actuated by
    /// [`ConfigDefect`](crate::config::ConfigDefect), which counts
    /// matching admission events globally (the "Nth admitted spec of
    /// this kind on this channel"), not per instance.
    Config {
        /// Defect class (the `cfg-*` family suffix, e.g. `resources`).
        defect: String,
        /// Family-specific parameter selecting the concrete mutation
        /// (see the family docs in [`config`](crate::config)).
        param: i64,
    },
    /// A storage-engine fault: act on the etcd store itself instead of
    /// the wire — disk-budget exhaustion, forced compaction pressure,
    /// at-rest corruption of one replica's bytes, or an inconsistent
    /// read view. Actuated out-of-band through
    /// [`WorldAction`](crate::WorldAction)s emitted by the
    /// storage-family actuator ([`storage`](crate::storage)); messages
    /// on the wire are never touched.
    Storage {
        /// Which storage operation the fault performs.
        op: StorageOp,
        /// Window start, relative to the arming time.
        from_off: u64,
        /// Window length (`0` for one-shot operations like at-rest
        /// corruption).
        dur_ms: u64,
        /// Victim replica index (applied modulo the configured replica
        /// count, so one plan fits any cluster size).
        replica: u32,
        /// Operation-specific parameter (e.g. which stored key, by
        /// index modulo the object count, corruption targets).
        param: u32,
    },
}

/// The storage operation a [`InjectionPoint::Storage`] spec performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StorageOp {
    /// Clamp the disk budget to the current usage for the window, so
    /// every growing write is rejected (`etcd.writes_rejected`).
    DiskFull,
    /// Force a store + watch-log compaction on every poll while the
    /// window is open: lagging watch cursors observe
    /// `EtcdError::Compacted` and must re-list.
    CompactionPressure,
    /// Replace one stored value's bytes on one replica's disk (§V-C1
    /// at-rest corruption, quorum-vote observable).
    CorruptAtRest,
    /// Serve one replica's stale snapshot to every reader for the
    /// window while writes keep advancing the revision (the
    /// inconsistent-view anomaly of the multi-master BFT analysis,
    /// arXiv:1904.06206).
    InconsistentView,
}

impl std::fmt::Display for StorageOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StorageOp::DiskFull => "disk-full",
            StorageOp::CompactionPressure => "compaction-pressure",
            StorageOp::CorruptAtRest => "corrupt-at-rest",
            StorageOp::InconsistentView => "inconsistent-view",
        };
        f.write_str(s)
    }
}

/// The value mutation applied to a field (§IV-C rules).
#[derive(Debug, Clone, PartialEq)]
pub enum FieldMutation {
    /// Flip bit `n` of an integer value (the campaign uses 0 and 4 —
    /// the paper's "1st and 5th" bits).
    FlipIntBit(u8),
    /// Flip the least-significant bit of character `n` of a string
    /// (stays a valid character for ASCII input).
    FlipStringChar(usize),
    /// Invert a boolean.
    FlipBool,
    /// Set an explicit value (data-type set: `0`, empty string, or a
    /// semantics-specific value for critical fields).
    Set(Value),
}

impl FieldMutation {
    /// The fault-model bucket this mutation reports under.
    pub fn fault_kind(&self) -> FaultKind {
        match self {
            FieldMutation::FlipIntBit(_)
            | FieldMutation::FlipStringChar(_)
            | FieldMutation::FlipBool => FaultKind::BitFlip,
            FieldMutation::Set(_) => FaultKind::ValueSet,
        }
    }
}

/// The coarse fault-model buckets: the paper's three (Table IV rows)
/// plus the temporal and infrastructure additions of the fault engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultKind {
    /// Bit-flips (including serialization-byte flips and bool inversion).
    BitFlip,
    /// Data-type sets (extreme/invalid/wrong values).
    ValueSet,
    /// Message drops.
    Drop,
    /// Delayed delivery.
    Delay,
    /// Duplicated delivery.
    Duplicate,
    /// Channel partition (windowed drop-all, then heal).
    Partition,
    /// Component blackout with restart + re-list on recovery.
    Crash,
    /// Configuration defect: a valid-but-wrong spec mutated at
    /// admission time.
    Config,
    /// Storage-engine fault: the etcd store itself misbehaves (disk
    /// full, compaction pressure, at-rest corruption, inconsistent
    /// view).
    Storage,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::BitFlip => "Bit-flip",
            FaultKind::ValueSet => "Value set",
            FaultKind::Drop => "Drop",
            FaultKind::Delay => "Delay",
            FaultKind::Duplicate => "Duplicate",
            FaultKind::Partition => "Partition",
            FaultKind::Crash => "Crash-restart",
            FaultKind::Config => "Config defect",
            FaultKind::Storage => "Storage",
        };
        f.write_str(s)
    }
}

/// A complete injection specification (one experiment injects one fault).
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionSpec {
    /// The wire to tamper with: a class-wide id targets every matching
    /// wire, a node-scoped id (e.g. `kubelet->apiserver@w1`) pins one
    /// node's kubelet.
    pub channel: ChannelId,
    /// Resource kind to target (informational for window faults, which
    /// are channel-wide).
    pub kind: Kind,
    /// Where in the message (or channel timeline).
    pub point: InjectionPoint,
    /// 1-based occurrence index (per resource instance); window faults
    /// use 1 by convention.
    pub occurrence: u32,
}

impl InjectionSpec {
    /// The fault-model bucket of this spec.
    pub fn fault_kind(&self) -> FaultKind {
        match &self.point {
            InjectionPoint::Field { mutation, .. } => mutation.fault_kind(),
            InjectionPoint::ProtoByte { .. } => FaultKind::BitFlip,
            InjectionPoint::Drop => FaultKind::Drop,
            InjectionPoint::Delay { .. } => FaultKind::Delay,
            InjectionPoint::Duplicate { .. } => FaultKind::Duplicate,
            InjectionPoint::Partition { .. } => FaultKind::Partition,
            InjectionPoint::Crash { .. } => FaultKind::Crash,
            InjectionPoint::Config { .. } => FaultKind::Config,
            InjectionPoint::Storage { .. } => FaultKind::Storage,
        }
    }

    /// Short human-readable target description (for reports).
    pub fn target_description(&self) -> String {
        match &self.point {
            InjectionPoint::Field { path, mutation } => {
                format!("{}:{path} {mutation:?}", self.kind)
            }
            InjectionPoint::ProtoByte { byte_frac, bit } => {
                format!("{}:proto-byte@{byte_frac:.2} bit {bit}", self.kind)
            }
            InjectionPoint::Drop => format!("{}:drop", self.kind),
            InjectionPoint::Delay { hold_ms } => format!("{}:delay {hold_ms}ms", self.kind),
            InjectionPoint::Duplicate { echo_ms } => {
                format!("{}:duplicate after {echo_ms}ms", self.kind)
            }
            InjectionPoint::Partition { from_off, dur_ms } => {
                format!("{}:partition @+{from_off}ms for {dur_ms}ms", self.channel)
            }
            InjectionPoint::Crash { from_off, dur_ms } => {
                format!("{}:crash @+{from_off}ms for {dur_ms}ms", self.channel)
            }
            InjectionPoint::Config { defect, param } => {
                format!("{}:config {defect} (param {param})", self.kind)
            }
            InjectionPoint::Storage { op, from_off, dur_ms, replica, .. } => {
                format!("etcd:{op} r{replica} @+{from_off}ms for {dur_ms}ms")
            }
        }
    }

    fn window(&self) -> Option<(u64, u64)> {
        match &self.point {
            InjectionPoint::Partition { from_off, dur_ms }
            | InjectionPoint::Crash { from_off, dur_ms } => Some((*from_off, *dur_ms)),
            _ => None,
        }
    }
}

/// What Mutiny actually did, recorded when the trigger fires.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionRecord {
    /// Simulated time of the injection (window start for window faults).
    pub at: u64,
    /// Registry key of the tampered instance (`<channel>` for window
    /// faults opened before any message flowed).
    pub key: String,
    /// Operation of the tampered message.
    pub op: Op,
    /// Pre-injection field value, when applicable.
    pub before: Option<Value>,
    /// Post-injection field value, when applicable.
    pub after: Option<Value>,
}

/// The Mutiny injector: arms one [`InjectionSpec`] and actuates it.
///
/// ```
/// use k8s_model::{Channel, Kind};
/// use mutiny_faults::injector::{FieldMutation, InjectionPoint, InjectionSpec, Mutiny};
///
/// let spec = InjectionSpec {
///     channel: Channel::ApiToEtcd.into(),
///     kind: Kind::ReplicaSet,
///     point: InjectionPoint::Field {
///         path: "spec.replicas".into(),
///         mutation: FieldMutation::FlipIntBit(4),
///     },
///     occurrence: 1,
/// };
/// let mutiny = Mutiny::armed(spec);
/// assert!(mutiny.record().is_none()); // fires only when the message flows
/// ```
#[derive(Debug)]
pub struct Mutiny {
    spec: Option<InjectionSpec>,
    counters: HashMap<String, u32>,
    record: Option<InjectionRecord>,
    /// Messages before this time are ignored: the campaign manager
    /// programs the trigger only after scenario setup, right before the
    /// orchestration workload executes (§IV-C's experiment phases).
    armed_from: u64,
    /// The crash-restart heal action was already emitted.
    restarted: bool,
    /// The node-blackout silence action was already emitted.
    silenced: bool,
}

impl Default for Mutiny {
    fn default() -> Self {
        Mutiny::disarmed()
    }
}

impl Mutiny {
    /// An injector with no armed fault (golden runs).
    pub fn disarmed() -> Mutiny {
        Mutiny {
            spec: None,
            counters: HashMap::new(),
            record: None,
            armed_from: 0,
            restarted: false,
            silenced: false,
        }
    }

    /// An injector armed with one spec, counting occurrences immediately.
    pub fn armed(spec: InjectionSpec) -> Mutiny {
        Mutiny::armed_from(spec, 0)
    }

    /// An injector armed with one spec, counting occurrences (and
    /// anchoring fault windows) only at or after time `from` (the
    /// workload window).
    pub fn armed_from(spec: InjectionSpec, from: u64) -> Mutiny {
        Mutiny {
            spec: Some(spec),
            counters: HashMap::new(),
            record: None,
            armed_from: from,
            restarted: false,
            silenced: false,
        }
    }

    /// The injection record, once the trigger has fired.
    pub fn record(&self) -> Option<&InjectionRecord> {
        self.record.as_ref()
    }

    /// True once the injection fired.
    pub fn fired(&self) -> bool {
        self.record.is_some()
    }

    fn mark_window_open(&mut self, start: u64, channel: ChannelId) {
        if self.record.is_none() {
            mutiny_telemetry::counter_add("fault.fired", 1);
            self.record = Some(InjectionRecord {
                at: start,
                key: format!("<{channel}>"),
                op: Op::Update,
                before: None,
                after: None,
            });
        }
    }
}

impl Interceptor for Mutiny {
    fn on_message(&mut self, ctx: &MsgCtx<'_>) -> WireVerdict {
        let Some(spec) = &self.spec else {
            return WireVerdict::Pass;
        };
        if ctx.now < self.armed_from {
            return WireVerdict::Pass; // workload window only
        }

        // Window faults are channel-wide and fire for every message while
        // the window is open — unlike the one-shot families below.
        if let Some((from_off, dur_ms)) = spec.window() {
            if !spec.channel.matches(ctx.channel) {
                return WireVerdict::Pass;
            }
            let start = self.armed_from + from_off;
            if ctx.now >= start && ctx.now < start + dur_ms {
                if self.record.is_none() {
                    mutiny_telemetry::counter_add("fault.fired", 1);
                    self.record = Some(InjectionRecord {
                        at: ctx.now,
                        key: ctx.key.to_owned(),
                        op: ctx.op,
                        before: None,
                        after: None,
                    });
                }
                return WireVerdict::Drop;
            }
            return WireVerdict::Pass;
        }

        if self.record.is_some() {
            return WireVerdict::Pass; // one fault per experiment
        }
        if !spec.channel.matches(ctx.channel) || ctx.kind != spec.kind {
            return WireVerdict::Pass;
        }

        match &spec.point {
            InjectionPoint::Drop => {
                let count = bump(&mut self.counters, ctx.key);
                if count == spec.occurrence {
                    mutiny_telemetry::counter_add("fault.fired", 1);
                    self.record = Some(InjectionRecord {
                        at: ctx.now,
                        key: ctx.key.to_owned(),
                        op: ctx.op,
                        before: None,
                        after: None,
                    });
                    return WireVerdict::Drop;
                }
            }
            InjectionPoint::Delay { hold_ms } => {
                let count = bump(&mut self.counters, ctx.key);
                if count == spec.occurrence {
                    mutiny_telemetry::counter_add("fault.fired", 1);
                    self.record = Some(InjectionRecord {
                        at: ctx.now,
                        key: ctx.key.to_owned(),
                        op: ctx.op,
                        before: None,
                        after: None,
                    });
                    return WireVerdict::Delay(*hold_ms);
                }
            }
            InjectionPoint::Duplicate { echo_ms } => {
                let count = bump(&mut self.counters, ctx.key);
                if count == spec.occurrence {
                    mutiny_telemetry::counter_add("fault.fired", 1);
                    self.record = Some(InjectionRecord {
                        at: ctx.now,
                        key: ctx.key.to_owned(),
                        op: ctx.op,
                        before: None,
                        after: None,
                    });
                    return WireVerdict::Duplicate(*echo_ms);
                }
            }
            InjectionPoint::ProtoByte { byte_frac, bit } => {
                let Some(bytes) = ctx.bytes else {
                    return WireVerdict::Pass;
                };
                if bytes.is_empty() {
                    return WireVerdict::Pass;
                }
                let count = bump(&mut self.counters, ctx.key);
                if count == spec.occurrence {
                    let idx = ((bytes.len() as f64) * byte_frac.clamp(0.0, 0.999)) as usize;
                    let tampered = corrupt::flip_bit(bytes, idx, *bit);
                    mutiny_telemetry::counter_add("fault.fired", 1);
                    self.record = Some(InjectionRecord {
                        at: ctx.now,
                        key: ctx.key.to_owned(),
                        op: ctx.op,
                        before: None,
                        after: None,
                    });
                    return WireVerdict::Replace(tampered);
                }
            }
            InjectionPoint::Field { path, mutation } => {
                let Some(bytes) = ctx.bytes else {
                    return WireVerdict::Pass;
                };
                // Only messages in which the injection target appears count
                // towards the occurrence index (§IV-A, "when").
                let Ok(mut obj) = Object::decode(ctx.kind, bytes) else {
                    return WireVerdict::Pass;
                };
                let Some(before) = obj.get_field(path) else {
                    return WireVerdict::Pass;
                };
                let count = bump(&mut self.counters, ctx.key);
                if count == spec.occurrence {
                    let after = mutate(&before, mutation);
                    let applied = obj.set_field(path, after.clone());
                    mutiny_telemetry::counter_add("fault.fired", 1);
                    self.record = Some(InjectionRecord {
                        at: ctx.now,
                        key: ctx.key.to_owned(),
                        op: ctx.op,
                        before: Some(before),
                        after: applied.then_some(after),
                    });
                    if applied {
                        return WireVerdict::Replace(obj.encode());
                    }
                }
            }
            InjectionPoint::Config { .. } => {
                // Config defects act at the admission hook, not on the
                // wire; a Config spec armed into Mutiny (the implied-
                // family compatibility path) simply passes everything.
            }
            InjectionPoint::Storage { .. } => {
                // Storage faults act on the store through world actions
                // (see `storage::StorageActuator`), never on the wire; a
                // Storage spec armed into Mutiny passes everything.
            }
            InjectionPoint::Partition { .. } | InjectionPoint::Crash { .. } => {
                unreachable!("window faults handled above")
            }
        }
        WireVerdict::Pass
    }
}

impl FaultActuator for Mutiny {
    fn record(&self) -> Option<&InjectionRecord> {
        self.record.as_ref()
    }

    fn poll_actions(&mut self, now: u64) -> Vec<WorldAction> {
        let Some(spec) = self.spec.clone() else {
            return Vec::new();
        };
        let Some((from_off, dur_ms)) = spec.window() else {
            return Vec::new();
        };
        let start = self.armed_from + from_off;
        // A window fault is injected even when no message happens to flow
        // through it: mark it fired once the window opens.
        if now >= start {
            self.mark_window_open(start, spec.channel);
        }
        let is_crash = matches!(spec.point, InjectionPoint::Crash { .. });
        let mut actions = Vec::new();
        // A node blackout silences the whole kubelet process while the
        // window is open (the wire drop above already swallows anything
        // it still tries to send).
        if is_crash && now >= start && !self.silenced {
            if let (ChannelClass::KubeletToApi, Some(node)) =
                (spec.channel.class(), spec.channel.node())
            {
                self.silenced = true;
                actions.push(WorldAction::SilenceKubelet(node));
            }
        }
        if is_crash && now >= start + dur_ms && !self.restarted {
            self.restarted = true;
            // The apiserver restarts with a store re-list; a blacked-out
            // kubelet restarts with a node-local re-list; kcm and the
            // scheduler recover through lease loss + full resync, which
            // the blackout itself already forces.
            match (spec.channel.class(), spec.channel.node()) {
                (ChannelClass::ApiToEtcd, _) => actions.push(WorldAction::RestartApiserver),
                (ChannelClass::KubeletToApi, Some(node)) => {
                    actions.push(WorldAction::RestartKubelet(node));
                }
                _ => {}
            }
        }
        actions
    }
}

fn bump(counters: &mut HashMap<String, u32>, key: &str) -> u32 {
    let c = counters.entry(key.to_owned()).or_insert(0);
    *c += 1;
    *c
}

/// Applies a mutation to a value (§IV-C rules).
pub fn mutate(before: &Value, mutation: &FieldMutation) -> Value {
    match (before, mutation) {
        (Value::Int(v), FieldMutation::FlipIntBit(bit)) => {
            Value::Int(corrupt::flip_int_bit(*v, *bit))
        }
        (Value::Str(s), FieldMutation::FlipStringChar(i)) => {
            Value::Str(corrupt::flip_char_lsb(s, *i).unwrap_or_else(|| s.clone()))
        }
        (Value::Bool(b), FieldMutation::FlipBool) => Value::Bool(!b),
        (_, FieldMutation::Set(v)) => v.clone(),
        // Type-mismatched mutations leave the value unchanged (the
        // campaign generator never produces them, but corrupted specs
        // must not panic).
        (v, _) => v.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_model::{Channel, ObjectMeta, ReplicaSet};

    fn rs_bytes(replicas: i64) -> Vec<u8> {
        let mut rs = ReplicaSet::default();
        rs.metadata = ObjectMeta::named("default", "web-rs");
        rs.spec.replicas = replicas;
        Object::ReplicaSet(rs).encode()
    }

    fn ctx<'a>(bytes: &'a [u8], key: &'a str, now: u64) -> MsgCtx<'a> {
        MsgCtx {
            channel: Channel::ApiToEtcd.into(),
            kind: Kind::ReplicaSet,
            key,
            op: Op::Update,
            bytes: Some(bytes),
            now,
        }
    }

    fn field_spec(occurrence: u32, mutation: FieldMutation) -> InjectionSpec {
        InjectionSpec {
            channel: Channel::ApiToEtcd.into(),
            kind: Kind::ReplicaSet,
            point: InjectionPoint::Field {
                path: "spec.replicas".into(),
                mutation,
            },
            occurrence,
        }
    }

    #[test]
    fn fires_on_requested_occurrence_only() {
        let mut m = Mutiny::armed(field_spec(2, FieldMutation::FlipIntBit(0)));
        let bytes = rs_bytes(2);
        assert_eq!(
            m.on_message(&ctx(&bytes, "/registry/replicasets/default/web-rs", 1)),
            WireVerdict::Pass
        );
        let v = m.on_message(&ctx(&bytes, "/registry/replicasets/default/web-rs", 2));
        match v {
            WireVerdict::Replace(new_bytes) => {
                let obj = Object::decode(Kind::ReplicaSet, &new_bytes).unwrap();
                assert_eq!(obj.get_field("spec.replicas"), Some(Value::Int(3)));
            }
            other => panic!("expected Replace, got {other:?}"),
        }
        let rec = m.record().unwrap();
        assert_eq!(rec.before, Some(Value::Int(2)));
        assert_eq!(rec.after, Some(Value::Int(3)));
        // Fires exactly once.
        assert_eq!(
            m.on_message(&ctx(&bytes, "/registry/replicasets/default/web-rs", 3)),
            WireVerdict::Pass
        );
    }

    #[test]
    fn occurrences_are_counted_per_instance() {
        let mut m = Mutiny::armed(field_spec(2, FieldMutation::FlipIntBit(0)));
        let bytes = rs_bytes(2);
        // Two different instances at occurrence 1 each: no fire.
        assert_eq!(
            m.on_message(&ctx(&bytes, "/registry/replicasets/default/a", 1)),
            WireVerdict::Pass
        );
        assert_eq!(
            m.on_message(&ctx(&bytes, "/registry/replicasets/default/b", 2)),
            WireVerdict::Pass
        );
        // Second message of instance a: fire.
        assert!(matches!(
            m.on_message(&ctx(&bytes, "/registry/replicasets/default/a", 3)),
            WireVerdict::Replace(_)
        ));
    }

    #[test]
    fn wrong_channel_or_kind_ignored() {
        let mut m = Mutiny::armed(field_spec(1, FieldMutation::FlipIntBit(0)));
        let bytes = rs_bytes(2);
        let mut c = ctx(&bytes, "/k", 0);
        c.channel = Channel::KcmToApi.into();
        assert_eq!(m.on_message(&c), WireVerdict::Pass);
        let mut c = ctx(&bytes, "/k", 0);
        c.kind = Kind::Pod;
        assert_eq!(m.on_message(&c), WireVerdict::Pass);
        assert!(!m.fired());
    }

    #[test]
    fn drop_returns_drop_verdict() {
        let mut m = Mutiny::armed(InjectionSpec {
            channel: Channel::ApiToEtcd.into(),
            kind: Kind::ReplicaSet,
            point: InjectionPoint::Drop,
            occurrence: 1,
        });
        let bytes = rs_bytes(2);
        assert_eq!(m.on_message(&ctx(&bytes, "/k", 5)), WireVerdict::Drop);
        assert_eq!(m.record().unwrap().at, 5);
    }

    #[test]
    fn proto_byte_flip_changes_bytes() {
        let mut m = Mutiny::armed(InjectionSpec {
            channel: Channel::ApiToEtcd.into(),
            kind: Kind::ReplicaSet,
            point: InjectionPoint::ProtoByte {
                byte_frac: 0.5,
                bit: 3,
            },
            occurrence: 1,
        });
        let bytes = rs_bytes(2);
        match m.on_message(&ctx(&bytes, "/k", 0)) {
            WireVerdict::Replace(tampered) => {
                assert_eq!(tampered.len(), bytes.len());
                assert_ne!(tampered, bytes);
            }
            other => panic!("expected Replace, got {other:?}"),
        }
    }

    #[test]
    fn value_mutations() {
        assert_eq!(
            mutate(&Value::Int(2), &FieldMutation::FlipIntBit(4)),
            Value::Int(18)
        );
        assert_eq!(
            mutate(&Value::Str("web".into()), &FieldMutation::FlipStringChar(0)),
            Value::Str("veb".into())
        );
        assert_eq!(
            mutate(&Value::Bool(true), &FieldMutation::FlipBool),
            Value::Bool(false)
        );
        assert_eq!(
            mutate(&Value::Int(7), &FieldMutation::Set(Value::Int(0))),
            Value::Int(0)
        );
        // Mismatched types degrade to no-op instead of panicking.
        assert_eq!(
            mutate(&Value::Int(7), &FieldMutation::FlipBool),
            Value::Int(7)
        );
    }

    #[test]
    fn field_absent_does_not_count_occurrence() {
        let mut m = Mutiny::armed(InjectionSpec {
            channel: Channel::ApiToEtcd.into(),
            kind: Kind::ReplicaSet,
            point: InjectionPoint::Field {
                path: "spec.template.metadata.labels['missing']".into(),
                mutation: FieldMutation::Set(Value::Str(String::new())),
            },
            occurrence: 1,
        });
        let bytes = rs_bytes(2);
        for i in 0..5 {
            assert_eq!(m.on_message(&ctx(&bytes, "/k", i)), WireVerdict::Pass);
        }
        assert!(!m.fired());
    }

    #[test]
    fn delay_holds_the_requested_occurrence() {
        let mut m = Mutiny::armed(InjectionSpec {
            channel: Channel::ApiToEtcd.into(),
            kind: Kind::ReplicaSet,
            point: InjectionPoint::Delay { hold_ms: 3_000 },
            occurrence: 2,
        });
        let bytes = rs_bytes(2);
        assert_eq!(m.on_message(&ctx(&bytes, "/k", 1)), WireVerdict::Pass);
        assert_eq!(
            m.on_message(&ctx(&bytes, "/k", 2)),
            WireVerdict::Delay(3_000)
        );
        assert!(m.fired());
        // One-shot: the next occurrence passes.
        assert_eq!(m.on_message(&ctx(&bytes, "/k", 3)), WireVerdict::Pass);
    }

    #[test]
    fn duplicate_echoes_the_requested_occurrence() {
        let mut m = Mutiny::armed(InjectionSpec {
            channel: Channel::ApiToEtcd.into(),
            kind: Kind::ReplicaSet,
            point: InjectionPoint::Duplicate { echo_ms: 1_000 },
            occurrence: 1,
        });
        let bytes = rs_bytes(2);
        assert_eq!(
            m.on_message(&ctx(&bytes, "/k", 1)),
            WireVerdict::Duplicate(1_000)
        );
        assert_eq!(m.record().unwrap().key, "/k");
    }

    #[test]
    fn partition_drops_everything_inside_the_window_only() {
        let mut m = Mutiny::armed_from(
            InjectionSpec {
                channel: Channel::ApiToEtcd.into(),
                kind: Kind::Pod, // informational: the window is channel-wide
                point: InjectionPoint::Partition {
                    from_off: 100,
                    dur_ms: 200,
                },
                occurrence: 1,
            },
            1_000,
        );
        let bytes = rs_bytes(2);
        // Before the window: pass.
        assert_eq!(m.on_message(&ctx(&bytes, "/a", 1_050)), WireVerdict::Pass);
        // Inside: every message drops, regardless of kind.
        assert_eq!(m.on_message(&ctx(&bytes, "/a", 1_100)), WireVerdict::Drop);
        assert_eq!(m.on_message(&ctx(&bytes, "/b", 1_250)), WireVerdict::Drop);
        // After the heal: pass again.
        assert_eq!(m.on_message(&ctx(&bytes, "/a", 1_300)), WireVerdict::Pass);
        assert_eq!(m.record().unwrap().at, 1_100);
        // Wrong channel is never touched.
        let mut c = ctx(&bytes, "/a", 1_150);
        c.channel = Channel::KcmToApi.into();
        let mut m2 = Mutiny::armed_from(
            InjectionSpec {
                channel: Channel::ApiToEtcd.into(),
                kind: Kind::Pod,
                point: InjectionPoint::Partition {
                    from_off: 100,
                    dur_ms: 200,
                },
                occurrence: 1,
            },
            1_000,
        );
        assert_eq!(m2.on_message(&c), WireVerdict::Pass);
    }

    #[test]
    fn crash_emits_restart_action_after_heal() {
        let mut m = Mutiny::armed_from(
            InjectionSpec {
                channel: Channel::ApiToEtcd.into(),
                kind: Kind::Pod,
                point: InjectionPoint::Crash {
                    from_off: 100,
                    dur_ms: 200,
                },
                occurrence: 1,
            },
            1_000,
        );
        assert!(m.poll_actions(1_000).is_empty());
        assert!(!m.fired());
        // Window open: fired even without traffic, no action yet.
        assert!(m.poll_actions(1_150).is_empty());
        assert!(m.fired());
        // Heal: exactly one restart action.
        assert_eq!(m.poll_actions(1_350), vec![WorldAction::RestartApiserver]);
        assert!(m.poll_actions(1_400).is_empty());
    }

    #[test]
    fn kcm_crash_restarts_via_lease_loss_not_world_action() {
        let mut m = Mutiny::armed_from(
            InjectionSpec {
                channel: Channel::KcmToApi.into(),
                kind: Kind::Lease,
                point: InjectionPoint::Crash {
                    from_off: 0,
                    dur_ms: 100,
                },
                occurrence: 1,
            },
            0,
        );
        // Component blackouts on the api-ingress channels recover through
        // lease expiry + resync; no world action is needed.
        assert!(m.poll_actions(500).is_empty());
        assert!(m.fired());
    }
}
