//! Configuration-defect fault families, actuated at the admission hook.
//!
//! The wire triplet corrupts *bytes*; the config-defects study
//! (arXiv:2512.05062) shows Kubernetes breaks just as often from
//! *semantically bad specs* — wrong resource requests, mismatched
//! selectors, bad probe and grace values — that parse cleanly and sail
//! through admission. These five families reproduce that dimension: each
//! one rewrites a **valid, decodable** object inside the apiserver's
//! admission chain (after built-in validation, before admission
//! policies), exactly where a bad-but-well-formed manifest enters a real
//! cluster. The defects probe controller logic rather than parsers.
//!
//! | family          | defect                                        | params |
//! |-----------------|-----------------------------------------------|--------|
//! | `cfg-resources` | zero request / huge request / request > limit | 0, 1, 2 |
//! | `cfg-selector`  | template-label typo / emptied selector        | 0, 1 |
//! | `cfg-probe`     | probe window that flaps healthy pods          | period s |
//! | `cfg-grace`     | pathological `terminationGracePeriodSeconds`  | grace s |
//! | `cfg-replicas`  | replica count off by orders of magnitude      | 0 or ×N |
//!
//! Victims come from the [`RecordedTraffic::user_kinds`] admission
//! catalogue (spec-writing create/update events per channel class on the
//! user and kcm ingress channels), and every (defect, class, kind) victim
//! gets its own labelled RNG fork — so `MUTINY_FAULTS` filtering never
//! shifts the surviving specs, the same contract the node-level families
//! honour.
//!
//! Unlike the wire families, occurrence counting is **global per
//! matching (channel, kind)** — "the Nth admitted spec of this kind on
//! this channel" — because the planner's input (the admission catalogue)
//! aggregates the same way; the two sides agree event-for-event, so a
//! planned occurrence is always reachable in the replay.

use crate::injector::{FaultKind, InjectionPoint, InjectionRecord, InjectionSpec};
use crate::recorder::RecordedTraffic;
use crate::{Fault, FaultActuator, FaultDef};
use k8s_model::{
    AdmitCtx, ChannelClass, ChannelId, Interceptor, Kind, MsgCtx, Object, WireVerdict,
};
use protowire::reflect::Value;
use simkit::Rng;

/// The ingress channel classes config defects plan victims from: user
/// submissions plus controller-created children (so every scenario has
/// admission traffic for pods and replicasets, not just what the user
/// applies directly).
pub const VICTIM_CLASSES: [ChannelClass; 2] = [ChannelClass::UserToApi, ChannelClass::KcmToApi];

/// CPU request (millicores) of the huge-request defect: far above any
/// simulated node's allocatable, so the pod stays Pending.
pub const HUGE_CPU_MILLI: i64 = 64_000;

/// Grace values (seconds) planned by `cfg-grace`: a near-zero grace that
/// finalizes pods before endpoints converge, and a huge one that parks
/// deleted pods in Terminating for the rest of the run.
pub const GRACE_PARAMS: [i64; 2] = [1, 3_600];

/// Replica defects planned by `cfg-replicas`: scale-to-zero and a
/// two-orders-of-magnitude multiplier.
pub const REPLICAS_PARAMS: [i64; 2] = [0, 100];

/// Probe periods (seconds) planned by `cfg-probe`; the failure threshold
/// is forced to 1, so the probe window lands below the kubelet's
/// aggressive-window bound and flaps healthy pods.
pub const PROBE_PARAMS: [i64; 1] = [1];

/// Defect modes of `cfg-resources`.
pub const RESOURCES_PARAMS: [i64; 3] = [0, 1, 2];

/// Defect modes of `cfg-selector`.
pub const SELECTOR_PARAMS: [i64; 2] = [0, 1];

/// Kinds that carry containers (directly or through a pod template).
const CONTAINER_KINDS: [Kind; 4] = [
    Kind::Pod,
    Kind::ReplicaSet,
    Kind::Deployment,
    Kind::DaemonSet,
];

/// Kinds that carry a selector/template pair.
const WORKLOAD_KINDS: [Kind; 3] = [Kind::ReplicaSet, Kind::Deployment, Kind::DaemonSet];

/// Kinds that carry a replica count.
const REPLICA_KINDS: [Kind; 2] = [Kind::ReplicaSet, Kind::Deployment];

/// Plans one spec per (victim, param): victims are the admission-
/// catalogue entries of the relevant kinds on [`VICTIM_CLASSES`], and
/// each victim's occurrence is drawn from its own labelled fork.
fn plan_defect(
    traffic: &RecordedTraffic,
    rng: &mut Rng,
    defect: &'static str,
    kinds: &[Kind],
    params: &[i64],
) -> Vec<InjectionSpec> {
    let mut plan = Vec::new();
    for (class, kind, count) in traffic.admission_kinds(&VICTIM_CLASSES) {
        if !kinds.contains(&kind) || count == 0 {
            continue;
        }
        // Per-victim fork: removing another (class, kind) victim from
        // the catalogue never shifts this one's occurrences.
        let mut vrng = rng.fork(&format!("{defect}/{class}/{kind}"));
        for &param in params {
            plan.push(InjectionSpec {
                channel: ChannelId::class_wide(class),
                kind,
                point: InjectionPoint::Config {
                    defect: defect.into(),
                    param,
                },
                occurrence: (vrng.below(count) + 1) as u32,
            });
        }
    }
    plan
}

/// The admission actuator shared by every config-defect family: passes
/// all wire traffic untouched and mutates the Nth matching admitted
/// object, once.
#[derive(Debug)]
pub struct ConfigDefect {
    spec: InjectionSpec,
    armed_from: u64,
    seen: u64,
    record: Option<InjectionRecord>,
}

impl ConfigDefect {
    /// Arms one config spec; admission events before `from` are ignored
    /// (the workload window).
    pub fn armed_from(spec: InjectionSpec, from: u64) -> ConfigDefect {
        ConfigDefect {
            spec,
            armed_from: from,
            seen: 0,
            record: None,
        }
    }
}

impl Interceptor for ConfigDefect {
    fn on_message(&mut self, _ctx: &MsgCtx<'_>) -> WireVerdict {
        WireVerdict::Pass
    }

    fn on_admission(&mut self, ctx: &AdmitCtx<'_>, obj: &mut Object) -> bool {
        if self.record.is_some() || ctx.now < self.armed_from {
            return false;
        }
        if !self.spec.channel.matches(ctx.channel) || ctx.kind != self.spec.kind {
            return false;
        }
        let InjectionPoint::Config { defect, param } = &self.spec.point else {
            return false;
        };
        self.seen += 1;
        if self.seen != u64::from(self.spec.occurrence) {
            return false;
        }
        let (before, after, applied) = apply_defect(defect, *param, obj);
        mutiny_telemetry::counter_add("fault.fired", 1);
        self.record = Some(InjectionRecord {
            at: ctx.now,
            key: ctx.key.to_owned(),
            op: ctx.op,
            before,
            after,
        });
        applied
    }
}

impl FaultActuator for ConfigDefect {
    fn record(&self) -> Option<&InjectionRecord> {
        self.record.as_ref()
    }
}

/// The pod spec an object carries: its own for pods, the template's for
/// workloads.
fn pod_spec_mut(obj: &mut Object) -> Option<&mut k8s_model::PodSpec> {
    match obj {
        Object::Pod(p) => Some(&mut p.spec),
        Object::ReplicaSet(r) => Some(&mut r.spec.template.spec),
        Object::Deployment(d) => Some(&mut d.spec.template.spec),
        Object::DaemonSet(d) => Some(&mut d.spec.template.spec),
        _ => None,
    }
}

/// Applies one defect mutation; returns (before, after, applied). An
/// unapplicable defect (wrong kind, no containers) records nothing and
/// leaves the object untouched.
fn apply_defect(
    defect: &str,
    param: i64,
    obj: &mut Object,
) -> (Option<Value>, Option<Value>, bool) {
    match defect {
        "resources" => {
            let Some(spec) = pod_spec_mut(obj) else {
                return (None, None, false);
            };
            let Some(c) = spec.containers.first_mut() else {
                return (None, None, false);
            };
            match param {
                // Missing requests: the scheduler bin-packs on zero.
                0 => {
                    let before = Value::Int(c.cpu_milli);
                    c.cpu_milli = 0;
                    c.memory_mb = 0;
                    (Some(before), Some(Value::Int(0)), true)
                }
                // Huge request: unschedulable, the pod stays Pending.
                1 => {
                    let before = Value::Int(c.cpu_milli);
                    c.cpu_milli = HUGE_CPU_MILLI;
                    (Some(before), Some(Value::Int(HUGE_CPU_MILLI)), true)
                }
                // Limit below request: starts, then crash-loops under
                // throttling (both values positive, so it validates).
                _ => {
                    let limit = (c.cpu_milli / 2).max(1);
                    let before = Value::Int(c.cpu_limit_milli);
                    c.cpu_limit_milli = limit;
                    (Some(before), Some(Value::Int(limit)), true)
                }
            }
        }
        "selector" => {
            let (selector, template) = match obj {
                Object::ReplicaSet(r) => (&mut r.spec.selector, &mut r.spec.template),
                Object::Deployment(d) => (&mut d.spec.selector, &mut d.spec.template),
                Object::DaemonSet(d) => (&mut d.spec.selector, &mut d.spec.template),
                _ => return (None, None, false),
            };
            if param == 0 {
                // Template-label typo: created pods never match the
                // selector — the controller orphans them and keeps
                // spawning replacements.
                let Some((_, value)) = template.metadata.labels.iter_mut().next() else {
                    return (None, None, false);
                };
                let before = Value::Str(value.clone());
                value.push_str("-typo");
                (Some(before), Some(Value::Str(value.clone())), true)
            } else {
                // Emptied selector: matches nothing, same orphan storm
                // from the other direction.
                let before = Value::Int(selector.match_labels.len() as i64);
                selector.match_labels.clear();
                (Some(before), Some(Value::Int(0)), true)
            }
        }
        "probe" => {
            let Some(spec) = pod_spec_mut(obj) else {
                return (None, None, false);
            };
            let before = Value::Int(spec.probe_period_seconds);
            spec.probe_period_seconds = param.max(1);
            spec.probe_failure_threshold = 1;
            (
                Some(before),
                Some(Value::Int(spec.probe_period_seconds)),
                true,
            )
        }
        "grace" => {
            let Some(spec) = pod_spec_mut(obj) else {
                return (None, None, false);
            };
            let before = Value::Int(spec.termination_grace_period_seconds);
            spec.termination_grace_period_seconds = param.max(1);
            (
                Some(before),
                Some(Value::Int(spec.termination_grace_period_seconds)),
                true,
            )
        }
        "replicas" => {
            let replicas = match obj {
                Object::ReplicaSet(r) => &mut r.spec.replicas,
                Object::Deployment(d) => &mut d.spec.replicas,
                _ => return (None, None, false),
            };
            let before = Value::Int(*replicas);
            *replicas = if param == 0 {
                0
            } else {
                replicas.saturating_mul(param).max(param)
            };
            (Some(before), Some(Value::Int(*replicas)), true)
        }
        _ => (None, None, false),
    }
}

/// Looks up the family a defect class belongs to (the implied-family
/// mapping for hand-built Config specs).
pub fn family_for_defect(defect: &str) -> Option<Fault> {
    match defect {
        "resources" => Some(CFG_RESOURCES),
        "selector" => Some(CFG_SELECTOR),
        "probe" => Some(CFG_PROBE),
        "grace" => Some(CFG_GRACE),
        "replicas" => Some(CFG_REPLICAS),
        _ => None,
    }
}

macro_rules! config_family {
    (
        $(#[$doc:meta])*
        $ty:ident, $def:ident, $handle:ident,
        name: $name:literal, label: $label:literal, defect: $defect:literal,
        kinds: $kinds:expr, params: $params:expr,
        expectation: $expectation:literal
    ) => {
        struct $ty;

        impl FaultDef for $ty {
            fn name(&self) -> &'static str {
                $name
            }

            fn label(&self) -> &'static str {
                $label
            }

            fn fault_kind(&self) -> FaultKind {
                FaultKind::Config
            }

            fn expectation(&self) -> &'static str {
                $expectation
            }

            fn plan(&self, traffic: &RecordedTraffic, rng: &mut Rng) -> Vec<InjectionSpec> {
                plan_defect(traffic, rng, $defect, &$kinds, &$params)
            }

            fn arm(&self, spec: &InjectionSpec, from: u64) -> Box<dyn FaultActuator> {
                Box::new(ConfigDefect::armed_from(spec.clone(), from))
            }
        }

        static $def: $ty = $ty;
        $(#[$doc])*
        pub static $handle: Fault = Fault::new(&$def);
    };
}

config_family!(
    /// Missing/wrong resource requests and limits, including the classic
    /// request-above-limit defect.
    CfgResources, CFG_RESOURCES_DEF, CFG_RESOURCES,
    name: "cfg-resources", label: "Cfg resources", defect: "resources",
    kinds: CONTAINER_KINDS, params: RESOURCES_PARAMS,
    expectation: "Pending pods (huge request) or crash-loops (limit < request): LeR/Tim"
);

config_family!(
    /// Selector/template-label mismatch: the controller orphans or
    /// double-adopts its pods.
    CfgSelector, CFG_SELECTOR_DEF, CFG_SELECTOR,
    name: "cfg-selector", label: "Cfg selector", defect: "selector",
    kinds: WORKLOAD_KINDS, params: SELECTOR_PARAMS,
    expectation: "orphaned pods and respawn storms: MoR or system-wide Sta"
);

config_family!(
    /// Probe thresholds/periods that flap healthy pods in and out of
    /// readiness.
    CfgProbe, CFG_PROBE_DEF, CFG_PROBE,
    name: "cfg-probe", label: "Cfg probe", defect: "probe",
    kinds: CONTAINER_KINDS, params: PROBE_PARAMS,
    expectation: "readiness flapping, endpoints churn: LeR/Net"
);

config_family!(
    /// Zero/huge `terminationGracePeriodSeconds` through the per-pod
    /// reaper.
    CfgGrace, CFG_GRACE_DEF, CFG_GRACE,
    name: "cfg-grace", label: "Cfg grace", defect: "grace",
    kinds: CONTAINER_KINDS, params: GRACE_PARAMS,
    expectation: "rolling updates stall on Terminating pods (huge) or drop traffic (tiny): Tim/MoR"
);

config_family!(
    /// Replica counts off by orders of magnitude.
    CfgReplicas, CFG_REPLICAS_DEF, CFG_REPLICAS,
    name: "cfg-replicas", label: "Cfg replicas", defect: "replicas",
    kinds: REPLICA_KINDS, params: REPLICAS_PARAMS,
    expectation: "scale-to-zero outages (SU) or spawn storms (Sta/MoR)"
);

/// The five config-defect families, in registry order.
pub static CONFIG_BUILTIN: [Fault; 5] = [
    CFG_RESOURCES,
    CFG_SELECTOR,
    CFG_PROBE,
    CFG_GRACE,
    CFG_REPLICAS,
];

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_model::{Channel, LabelSelector, ObjectMeta, Op, Pod, ReplicaSet};

    fn traffic() -> RecordedTraffic {
        RecordedTraffic {
            user_kinds: vec![
                (Channel::KcmToApi, Kind::Pod, 12),
                (Channel::KcmToApi, Kind::ReplicaSet, 4),
                (Channel::UserToApi, Kind::Deployment, 2),
                (Channel::UserToApi, Kind::Service, 2),
            ],
            ..RecordedTraffic::default()
        }
    }

    fn rs() -> Object {
        let mut rs = ReplicaSet::default();
        rs.metadata = ObjectMeta::named("default", "web-rs");
        rs.spec.replicas = 2;
        rs.spec.selector = LabelSelector::eq("app", "web");
        rs.spec
            .template
            .metadata
            .labels
            .insert("app".into(), "web".into());
        rs.spec.template.spec.containers.push(k8s_model::Container {
            name: "web".into(),
            image: "registry.local/web:1.0".into(),
            cpu_milli: 500,
            memory_mb: 256,
            ..Default::default()
        });
        Object::ReplicaSet(rs)
    }

    fn pod() -> Object {
        let mut p = Pod::default();
        p.metadata = ObjectMeta::named("default", "web-1");
        p.spec.containers.push(k8s_model::Container {
            name: "web".into(),
            cpu_milli: 500,
            memory_mb: 256,
            ..Default::default()
        });
        Object::Pod(p)
    }

    fn admit_ctx(class: Channel, kind: Kind, now: u64) -> AdmitCtx<'static> {
        AdmitCtx {
            channel: class.into(),
            kind,
            key: "/registry/x/default/y",
            op: Op::Create,
            now,
        }
    }

    #[test]
    fn families_plan_from_the_admission_catalogue() {
        let t = traffic();
        let mut rng = Rng::new(7);
        let plan = CFG_RESOURCES.plan(&t, &mut rng);
        // Pod + ReplicaSet (kcm) + Deployment (user), 3 params each;
        // Service is not a container kind.
        assert_eq!(plan.len(), 3 * RESOURCES_PARAMS.len(), "{plan:?}");
        for spec in &plan {
            let InjectionPoint::Config { defect, .. } = &spec.point else {
                panic!("expected config point: {spec:?}");
            };
            assert_eq!(defect, "resources");
            assert!(spec.occurrence >= 1);
            let (_, _, count) = t
                .user_kinds
                .iter()
                .find(|(c, k, _)| *c == spec.channel.class() && *k == spec.kind)
                .unwrap();
            assert!(
                u64::from(spec.occurrence) <= *count,
                "occurrence beyond catalogue"
            );
        }
        // Replicas: RS (kcm) + Deployment (user), 2 params each.
        let plan = CFG_REPLICAS.plan(&traffic(), &mut Rng::new(7));
        assert_eq!(plan.len(), 2 * REPLICAS_PARAMS.len());
    }

    #[test]
    fn victim_forks_are_independent_of_the_catalogue() {
        // Dropping the pod victim must not shift the deployment's spec.
        let full = CFG_PROBE.plan(&traffic(), &mut Rng::new(3));
        let mut reduced = traffic();
        reduced
            .user_kinds
            .retain(|(_, k, _)| *k == Kind::Deployment);
        let only_deploy = CFG_PROBE.plan(&reduced, &mut Rng::new(3));
        assert_eq!(
            full.iter()
                .filter(|s| s.kind == Kind::Deployment)
                .collect::<Vec<_>>(),
            only_deploy.iter().collect::<Vec<_>>(),
            "catalogue changes shifted a surviving victim's spec"
        );
    }

    #[test]
    fn actuator_fires_on_the_nth_matching_admission() {
        let spec = InjectionSpec {
            channel: ChannelId::class_wide(Channel::KcmToApi),
            kind: Kind::Pod,
            point: InjectionPoint::Config {
                defect: "probe".into(),
                param: 1,
            },
            occurrence: 2,
        };
        let mut act = ConfigDefect::armed_from(spec, 1_000);
        let mut obj = pod();
        // Before the window: not counted.
        assert!(!act.on_admission(&admit_ctx(Channel::KcmToApi, Kind::Pod, 500), &mut obj));
        // Wrong class/kind: not counted.
        assert!(!act.on_admission(&admit_ctx(Channel::UserToApi, Kind::Pod, 1_100), &mut obj));
        assert!(!act.on_admission(
            &admit_ctx(Channel::KcmToApi, Kind::Service, 1_100),
            &mut obj
        ));
        // First match passes, second fires.
        assert!(!act.on_admission(&admit_ctx(Channel::KcmToApi, Kind::Pod, 1_200), &mut obj));
        assert!(act.on_admission(&admit_ctx(Channel::KcmToApi, Kind::Pod, 1_300), &mut obj));
        let p = obj.as_pod().unwrap();
        assert_eq!(p.spec.probe_period_seconds, 1);
        assert_eq!(p.spec.probe_failure_threshold, 1);
        let rec = act.record().expect("fired");
        assert_eq!(rec.at, 1_300);
        assert_eq!(rec.before, Some(Value::Int(0)));
        // One-shot: the next match passes untouched.
        let mut other = pod();
        assert!(!act.on_admission(&admit_ctx(Channel::KcmToApi, Kind::Pod, 1_400), &mut other));
        assert_eq!(other.as_pod().unwrap().spec.probe_period_seconds, 0);
    }

    #[test]
    fn resource_defects_mutate_requests_and_limits() {
        let mut zeroed = pod();
        apply_defect("resources", 0, &mut zeroed);
        let c = &zeroed.as_pod().unwrap().spec.containers[0];
        assert_eq!((c.cpu_milli, c.memory_mb), (0, 0));

        let mut huge = pod();
        apply_defect("resources", 1, &mut huge);
        assert_eq!(
            huge.as_pod().unwrap().spec.containers[0].cpu_milli,
            HUGE_CPU_MILLI
        );

        let mut throttled = rs();
        let (before, after, applied) = apply_defect("resources", 2, &mut throttled);
        assert!(applied);
        assert_eq!(before, Some(Value::Int(0)));
        assert_eq!(after, Some(Value::Int(250)));
        let Object::ReplicaSet(r) = &throttled else {
            unreachable!()
        };
        assert!(r.spec.template.spec.containers[0].request_exceeds_limit());
        // Both values positive: the defect validates.
        assert!(k8s_apiserver_validates(&throttled));
    }

    fn k8s_apiserver_validates(_obj: &Object) -> bool {
        // Structural stand-in: the defect only touches positive numeric
        // fields, which the built-in validation accepts by construction.
        true
    }

    #[test]
    fn selector_defects_break_the_invariant_but_stay_decodable() {
        use k8s_model::workloads::selector_matches_template;
        for param in SELECTOR_PARAMS {
            let mut obj = rs();
            let (_, _, applied) = apply_defect("selector", param, &mut obj);
            assert!(applied, "param {param}");
            let Object::ReplicaSet(r) = &obj else {
                unreachable!()
            };
            assert!(
                !selector_matches_template(&r.spec.selector, &r.spec.template),
                "param {param} left the invariant intact"
            );
            // Still a valid, decodable object.
            let bytes = obj.encode();
            assert_eq!(Object::decode(Kind::ReplicaSet, &bytes).unwrap(), obj);
        }
        // Pods carry no selector: unapplicable, nothing recorded.
        let mut p = pod();
        let (_, _, applied) = apply_defect("selector", 0, &mut p);
        assert!(!applied);
    }

    #[test]
    fn grace_and_replica_defects() {
        let mut obj = pod();
        apply_defect("grace", 3_600, &mut obj);
        assert_eq!(
            obj.as_pod().unwrap().spec.termination_grace_period_seconds,
            3_600
        );

        let mut obj = rs();
        let (before, after, _) = apply_defect("replicas", 100, &mut obj);
        assert_eq!(
            (before, after),
            (Some(Value::Int(2)), Some(Value::Int(200)))
        );
        let mut obj = rs();
        apply_defect("replicas", 0, &mut obj);
        let Object::ReplicaSet(r) = &obj else {
            unreachable!()
        };
        assert_eq!(r.spec.replicas, 0);
    }

    #[test]
    fn every_family_maps_back_from_its_defect() {
        for fault in CONFIG_BUILTIN {
            assert_eq!(fault.fault_kind(), FaultKind::Config);
            assert!(!fault.expectation().is_empty());
            let suffix = fault.name().strip_prefix("cfg-").unwrap();
            assert_eq!(family_for_defect(suffix), Some(fault));
        }
        assert_eq!(family_for_defect("no-such-defect"), None);
    }
}
