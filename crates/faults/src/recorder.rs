//! Field recording: the campaign's first phase.
//!
//! "First, we record the fields of the resource instances sent to Etcd
//! during the execution of a nominal orchestration workload" (§IV-C). The
//! [`FieldRecorder`] is an [`Interceptor`] that observes (never tampers
//! with) messages and catalogues every leaf field per (channel, kind),
//! along with a sample value and per-instance occurrence statistics.
//!
//! Recording is two-layered, mirroring the channel taxonomy:
//!
//! * the **class filter** (`channels`) selects which traffic is decoded
//!   into [`RecordedField`]s and class-aggregated kind counts — exactly
//!   the paper's phase-1 catalogue, unchanged by node identity;
//! * **node-scoped traffic** (kubelet wires carrying a `@node` identity)
//!   is *always* catalogued into per-node kind counts, regardless of the
//!   class filter — node-level fault families need victim nodes even
//!   when the campaign's field catalogue targets the store wire.

use k8s_model::{
    AdmitCtx, Channel, ChannelClass, ChannelId, Interceptor, Kind, MsgCtx, Object, WireVerdict,
};
use protowire::reflect::{FieldType, Reflect, Value};
use std::collections::{BTreeMap, HashMap};

/// One recorded field: where it was seen and what it looked like.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedField {
    /// The wire the containing messages travelled on (node-scoped for
    /// kubelet traffic, class-wide otherwise).
    pub channel: ChannelId,
    /// Resource kind.
    pub kind: Kind,
    /// Reflection path.
    pub path: String,
    /// Scalar type.
    pub field_type: FieldType,
    /// First observed value (representative sample).
    pub sample: Value,
    /// Messages in which the field appeared.
    pub message_count: u64,
    /// Maximum per-instance occurrence count observed.
    pub max_occurrence: u32,
}

/// Everything phase 1 recorded for one scenario — the input every
/// [`FaultDef`](crate::FaultDef) plans from.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordedTraffic {
    /// Recorded fields, in stable (channel, kind, path) order.
    pub fields: Vec<RecordedField>,
    /// Kinds observed per channel **class** (message counts aggregated
    /// across nodes) — the historical planning input, so the wire
    /// triplet and the temporal/infrastructure families plan the same
    /// specs they always did.
    pub kinds: Vec<(ChannelId, Kind, u64)>,
    /// Kinds observed per **node-scoped** wire (kubelet traffic), in
    /// stable (channel, kind) order — the victim catalogue of the
    /// node-level families. Unlike [`RecordedTraffic::kinds`], these
    /// counts include byte-less (delete) and undecodable messages:
    /// victim discovery only needs evidence that the wire carried
    /// traffic, not a decoded field catalogue, so the two counts are
    /// not comparable for identical traffic.
    pub node_kinds: Vec<(ChannelId, Kind, u64)>,
    /// Kinds observed at the **admission hook** per channel class, in
    /// stable (class, kind) order — the victim catalogue of the
    /// config-defect families. Counted from the apiserver's
    /// `on_admission` callback (spec-writing create/update requests
    /// that survived built-in validation), *always* recorded regardless
    /// of the class filter, so the counts line up one-to-one with what
    /// an armed admission actuator will observe in a replay.
    pub user_kinds: Vec<(ChannelClass, Kind, u64)>,
}

impl RecordedTraffic {
    /// The node names with recorded traffic, in stable order.
    pub fn nodes(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for (ch, _, _) in &self.node_kinds {
            if let Some(node) = ch.node() {
                if !out.contains(&node) {
                    out.push(node);
                }
            }
        }
        out
    }

    /// The admission-catalogue entries of the given classes, in stable
    /// order — the victim catalogue the config-defect families plan
    /// over.
    pub fn admission_kinds(&self, classes: &[ChannelClass]) -> Vec<(ChannelClass, Kind, u64)> {
        self.user_kinds
            .iter()
            .copied()
            .filter(|(c, _, _)| classes.contains(c))
            .collect()
    }

    /// The distinct node-scoped wires of one class, in stable order,
    /// each paired with the first kind observed on it — the victim
    /// catalogue the node-level families plan over.
    pub fn node_wires(&self, class: ChannelClass) -> Vec<(ChannelId, Kind)> {
        let mut out: Vec<(ChannelId, Kind)> = Vec::new();
        for (channel, kind, _count) in &self.node_kinds {
            if channel.class() == class && !out.iter().any(|(c, _)| c == channel) {
                out.push((*channel, *kind));
            }
        }
        out
    }
}

/// Records the message fields flowing on selected channel classes.
#[derive(Debug)]
pub struct FieldRecorder {
    /// Channel classes to catalogue fields on.
    channels: Vec<ChannelClass>,
    /// Recording is active only at or after this time (the workload
    /// window; setup traffic is not part of the nominal workload).
    from: u64,
    fields: BTreeMap<(ChannelId, Kind, String), RecordedField>,
    instance_counts: HashMap<(ChannelId, Kind, String), u32>,
    /// Message drops per (channel class, kind) are derived from these.
    message_counts: BTreeMap<(ChannelClass, Kind), u64>,
    /// Per-node message counts (node-scoped wires only).
    node_counts: BTreeMap<(ChannelId, Kind), u64>,
    /// Admission-hook event counts per (class, kind) — the victim
    /// catalogue of the config-defect families.
    admission_counts: BTreeMap<(ChannelClass, Kind), u64>,
}

impl FieldRecorder {
    /// Records messages on `channels`, starting at time `from`.
    pub fn new(channels: Vec<Channel>, from: u64) -> FieldRecorder {
        FieldRecorder {
            channels,
            from,
            fields: BTreeMap::new(),
            instance_counts: HashMap::new(),
            message_counts: BTreeMap::new(),
            node_counts: BTreeMap::new(),
            admission_counts: BTreeMap::new(),
        }
    }

    /// The recorded fields, in stable (channel, kind, path) order.
    pub fn fields(&self) -> Vec<RecordedField> {
        self.fields.values().cloned().collect()
    }

    /// Kinds observed per channel class, with message counts.
    pub fn kinds_seen(&self) -> Vec<(ChannelId, Kind, u64)> {
        self.message_counts
            .iter()
            .map(|((c, k), n)| (ChannelId::class_wide(*c), *k, *n))
            .collect()
    }

    /// Kinds observed per node-scoped wire, with message counts.
    pub fn node_kinds_seen(&self) -> Vec<(ChannelId, Kind, u64)> {
        self.node_counts
            .iter()
            .map(|((c, k), n)| (*c, *k, *n))
            .collect()
    }

    /// Kinds observed at the admission hook per channel class.
    pub fn user_kinds_seen(&self) -> Vec<(ChannelClass, Kind, u64)> {
        self.admission_counts
            .iter()
            .map(|((c, k), n)| (*c, *k, *n))
            .collect()
    }

    /// Everything recorded, bundled for the planners.
    pub fn traffic(&self) -> RecordedTraffic {
        RecordedTraffic {
            fields: self.fields(),
            kinds: self.kinds_seen(),
            node_kinds: self.node_kinds_seen(),
            user_kinds: self.user_kinds_seen(),
        }
    }
}

impl Interceptor for FieldRecorder {
    fn on_message(&mut self, ctx: &MsgCtx<'_>) -> WireVerdict {
        if ctx.now < self.from {
            return WireVerdict::Pass;
        }
        // Node-scoped wires are always catalogued (victim discovery for
        // node-level families), independent of the class filter below.
        if ctx.channel.node().is_some() {
            *self.node_counts.entry((ctx.channel, ctx.kind)).or_insert(0) += 1;
        }
        if !self.channels.contains(&ctx.channel.class()) {
            return WireVerdict::Pass;
        }
        let Some(bytes) = ctx.bytes else {
            return WireVerdict::Pass;
        };
        let Ok(obj) = Object::decode(ctx.kind, bytes) else {
            return WireVerdict::Pass;
        };

        *self
            .message_counts
            .entry((ctx.channel.class(), ctx.kind))
            .or_insert(0) += 1;
        let inst = self
            .instance_counts
            .entry((ctx.channel, ctx.kind, ctx.key.to_owned()))
            .or_insert(0);
        *inst += 1;
        let occurrence = *inst;

        let channel = ctx.channel;
        let kind = ctx.kind;
        let fields = &mut self.fields;
        obj.visit_fields("", &mut |path, value| {
            let entry = fields
                .entry((channel, kind, path.to_owned()))
                .or_insert_with(|| RecordedField {
                    channel,
                    kind,
                    path: path.to_owned(),
                    field_type: value.field_type(),
                    sample: value.clone(),
                    message_count: 0,
                    max_occurrence: 0,
                });
            entry.message_count += 1;
            entry.max_occurrence = entry.max_occurrence.max(occurrence);
            // Prefer a non-default sample if one shows up later.
            let default_sample = matches!(&entry.sample, Value::Int(0) | Value::Bool(false))
                || entry.sample.as_str().map(str::is_empty).unwrap_or(false);
            if default_sample {
                entry.sample = value;
            }
        });
        WireVerdict::Pass
    }

    fn on_admission(&mut self, ctx: &AdmitCtx<'_>, _obj: &mut Object) -> bool {
        // The admission catalogue is always recorded (like the per-node
        // wire catalogue): config-defect families need victims even when
        // the field catalogue targets the store wire. Counting here —
        // not on the wire — makes the catalogue agree event-for-event
        // with what an armed admission actuator will see in a replay.
        if ctx.now >= self.from {
            *self
                .admission_counts
                .entry((ctx.channel.class(), ctx.kind))
                .or_insert(0) += 1;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_model::{Node, ObjectMeta, Op, ReplicaSet};

    #[test]
    fn records_fields_with_occurrences() {
        let mut rec = FieldRecorder::new(vec![Channel::ApiToEtcd], 100);
        let mut rs = ReplicaSet::default();
        rs.metadata = ObjectMeta::named("default", "web-rs");
        rs.spec.replicas = 2;
        let bytes = Object::ReplicaSet(rs).encode();

        for (now, key) in [(50u64, "/a"), (150, "/a"), (200, "/a"), (250, "/b")] {
            let ctx = MsgCtx {
                channel: Channel::ApiToEtcd.into(),
                kind: Kind::ReplicaSet,
                key,
                op: Op::Update,
                bytes: Some(&bytes),
                now,
            };
            assert_eq!(rec.on_message(&ctx), WireVerdict::Pass);
        }

        let fields = rec.fields();
        let replicas = fields
            .iter()
            .find(|f| f.path == "spec.replicas")
            .expect("spec.replicas recorded");
        // The message at t=50 predates the window.
        assert_eq!(replicas.message_count, 3);
        assert_eq!(replicas.max_occurrence, 2); // /a seen twice in-window
        assert_eq!(replicas.sample, Value::Int(2));
        assert_eq!(
            rec.kinds_seen(),
            vec![(Channel::ApiToEtcd.into(), Kind::ReplicaSet, 3)]
        );
        assert!(rec.node_kinds_seen().is_empty());
    }

    #[test]
    fn ignores_unselected_channels() {
        let mut rec = FieldRecorder::new(vec![Channel::KcmToApi], 0);
        let rs = ReplicaSet::default();
        let bytes = Object::ReplicaSet(rs).encode();
        let ctx = MsgCtx {
            channel: Channel::ApiToEtcd.into(),
            kind: Kind::ReplicaSet,
            key: "/a",
            op: Op::Create,
            bytes: Some(&bytes),
            now: 10,
        };
        rec.on_message(&ctx);
        assert!(rec.fields().is_empty());
    }

    #[test]
    fn admission_events_build_the_config_victim_catalogue() {
        let mut rec = FieldRecorder::new(vec![Channel::ApiToEtcd], 100);
        let mut pod = k8s_model::Pod::default();
        pod.metadata = ObjectMeta::named("default", "p");
        let mut obj = Object::Pod(pod);
        for (now, class) in [
            (50u64, Channel::UserToApi),
            (150, Channel::UserToApi),
            (200, Channel::KcmToApi),
        ] {
            let ctx = AdmitCtx {
                channel: class.into(),
                kind: Kind::Pod,
                key: "/registry/pods/default/p",
                op: Op::Create,
                now,
            };
            assert!(
                !rec.on_admission(&ctx, &mut obj),
                "the recorder never mutates"
            );
        }
        let traffic = rec.traffic();
        // The event at t=50 predates the window; the class filter
        // (store wire) does not apply to the admission catalogue.
        assert_eq!(
            traffic.user_kinds,
            vec![
                (Channel::KcmToApi, Kind::Pod, 1),
                (Channel::UserToApi, Kind::Pod, 1)
            ]
        );
        assert_eq!(
            traffic.admission_kinds(&[Channel::UserToApi]),
            vec![(Channel::UserToApi, Kind::Pod, 1)]
        );
    }

    #[test]
    fn node_scoped_traffic_is_always_catalogued() {
        // The class filter targets the store wire, but per-node kubelet
        // traffic still lands in the victim catalogue.
        let mut rec = FieldRecorder::new(vec![Channel::ApiToEtcd], 0);
        let bytes = Object::Node(Node::worker("w2", 8_000, 4_096)).encode();
        for node in ["w2", "w1", "w2"] {
            let ctx = MsgCtx {
                channel: ChannelId::node_scoped(Channel::KubeletToApi, node),
                kind: Kind::Node,
                key: "/registry/nodes/x",
                op: Op::Update,
                bytes: Some(&bytes),
                now: 10,
            };
            rec.on_message(&ctx);
        }
        let traffic = rec.traffic();
        // No fields (class filter excludes kubelet), but node kinds exist.
        assert!(traffic.fields.is_empty());
        assert!(traffic.kinds.is_empty());
        assert_eq!(
            traffic.node_kinds,
            vec![
                (
                    ChannelId::node_scoped(Channel::KubeletToApi, "w1"),
                    Kind::Node,
                    1
                ),
                (
                    ChannelId::node_scoped(Channel::KubeletToApi, "w2"),
                    Kind::Node,
                    2
                ),
            ]
        );
        assert_eq!(traffic.nodes(), vec!["w1", "w2"]);
    }
}
