//! Field recording: the campaign's first phase.
//!
//! "First, we record the fields of the resource instances sent to Etcd
//! during the execution of a nominal orchestration workload" (§IV-C). The
//! [`FieldRecorder`] is an [`Interceptor`] that observes (never tampers
//! with) messages and catalogues every leaf field per (channel, kind),
//! along with a sample value and per-instance occurrence statistics.

use k8s_model::{Channel, Interceptor, Kind, MsgCtx, Object, WireVerdict};
use protowire::reflect::{FieldType, Reflect, Value};
use std::collections::{BTreeMap, HashMap};

/// One recorded field: where it was seen and what it looked like.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedField {
    /// Channel the containing messages travelled on.
    pub channel: Channel,
    /// Resource kind.
    pub kind: Kind,
    /// Reflection path.
    pub path: String,
    /// Scalar type.
    pub field_type: FieldType,
    /// First observed value (representative sample).
    pub sample: Value,
    /// Messages in which the field appeared.
    pub message_count: u64,
    /// Maximum per-instance occurrence count observed.
    pub max_occurrence: u32,
}

/// Records the message fields flowing on selected channels.
#[derive(Debug)]
pub struct FieldRecorder {
    /// Channels to observe.
    channels: Vec<Channel>,
    /// Recording is active only at or after this time (the workload
    /// window; setup traffic is not part of the nominal workload).
    from: u64,
    fields: BTreeMap<(Channel, Kind, String), RecordedField>,
    instance_counts: HashMap<(Channel, Kind, String), u32>,
    /// Message drops per (channel, kind) are derived from these.
    message_counts: BTreeMap<(Channel, Kind), u64>,
}

impl FieldRecorder {
    /// Records messages on `channels`, starting at time `from`.
    pub fn new(channels: Vec<Channel>, from: u64) -> FieldRecorder {
        FieldRecorder {
            channels,
            from,
            fields: BTreeMap::new(),
            instance_counts: HashMap::new(),
            message_counts: BTreeMap::new(),
        }
    }

    /// The recorded fields, in stable (channel, kind, path) order.
    pub fn fields(&self) -> Vec<RecordedField> {
        self.fields.values().cloned().collect()
    }

    /// Kinds observed per channel, with message counts.
    pub fn kinds_seen(&self) -> Vec<(Channel, Kind, u64)> {
        self.message_counts.iter().map(|((c, k), n)| (*c, *k, *n)).collect()
    }
}

impl Interceptor for FieldRecorder {
    fn on_message(&mut self, ctx: &MsgCtx<'_>) -> WireVerdict {
        if ctx.now < self.from || !self.channels.contains(&ctx.channel) {
            return WireVerdict::Pass;
        }
        let Some(bytes) = ctx.bytes else { return WireVerdict::Pass };
        let Ok(obj) = Object::decode(ctx.kind, bytes) else { return WireVerdict::Pass };

        *self.message_counts.entry((ctx.channel, ctx.kind)).or_insert(0) += 1;
        let inst = self
            .instance_counts
            .entry((ctx.channel, ctx.kind, ctx.key.to_owned()))
            .or_insert(0);
        *inst += 1;
        let occurrence = *inst;

        let channel = ctx.channel;
        let kind = ctx.kind;
        let fields = &mut self.fields;
        obj.visit_fields("", &mut |path, value| {
            let entry = fields.entry((channel, kind, path.to_owned())).or_insert_with(|| {
                RecordedField {
                    channel,
                    kind,
                    path: path.to_owned(),
                    field_type: value.field_type(),
                    sample: value.clone(),
                    message_count: 0,
                    max_occurrence: 0,
                }
            });
            entry.message_count += 1;
            entry.max_occurrence = entry.max_occurrence.max(occurrence);
            // Prefer a non-default sample if one shows up later.
            let default_sample = matches!(
                &entry.sample,
                Value::Int(0) | Value::Bool(false)
            ) || entry.sample.as_str().map(str::is_empty).unwrap_or(false);
            if default_sample {
                entry.sample = value;
            }
        });
        WireVerdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_model::{ObjectMeta, Op, ReplicaSet};

    #[test]
    fn records_fields_with_occurrences() {
        let mut rec = FieldRecorder::new(vec![Channel::ApiToEtcd], 100);
        let mut rs = ReplicaSet::default();
        rs.metadata = ObjectMeta::named("default", "web-rs");
        rs.spec.replicas = 2;
        let bytes = Object::ReplicaSet(rs).encode();

        for (now, key) in [(50u64, "/a"), (150, "/a"), (200, "/a"), (250, "/b")] {
            let ctx = MsgCtx {
                channel: Channel::ApiToEtcd,
                kind: Kind::ReplicaSet,
                key,
                op: Op::Update,
                bytes: Some(&bytes),
                now,
            };
            assert_eq!(rec.on_message(&ctx), WireVerdict::Pass);
        }

        let fields = rec.fields();
        let replicas = fields
            .iter()
            .find(|f| f.path == "spec.replicas")
            .expect("spec.replicas recorded");
        // The message at t=50 predates the window.
        assert_eq!(replicas.message_count, 3);
        assert_eq!(replicas.max_occurrence, 2); // /a seen twice in-window
        assert_eq!(replicas.sample, Value::Int(2));
        assert_eq!(rec.kinds_seen(), vec![(Channel::ApiToEtcd, Kind::ReplicaSet, 3)]);
    }

    #[test]
    fn ignores_unselected_channels() {
        let mut rec = FieldRecorder::new(vec![Channel::KcmToApi], 0);
        let rs = ReplicaSet::default();
        let bytes = Object::ReplicaSet(rs).encode();
        let ctx = MsgCtx {
            channel: Channel::ApiToEtcd,
            kind: Kind::ReplicaSet,
            key: "/a",
            op: Op::Create,
            bytes: Some(&bytes),
            now: 10,
        };
        rec.on_message(&ctx);
        assert!(rec.fields().is_empty());
    }
}
