//! The built-in fault families: the paper's §IV wire triplet plus the
//! temporal and infrastructure additions.
//!
//! * **bit-flip** — per-field bit-flips (int bits 0 and 4, string-char
//!   LSB, bool inversion) at occurrences 1–3, plus per-kind
//!   serialization-byte corruptions;
//! * **value-set** — per-field data-type sets (`0`, empty string) at
//!   occurrences 1–3;
//! * **drop** — per-kind message drops at occurrences 1–10;
//! * **delay** — hold one message for a few simulated seconds, then
//!   deliver it (stale state lands late — the cloud-edge latency fault);
//! * **duplicate** — deliver one message normally and echo an identical
//!   copy later (a duplicated retransmission resurrecting old state);
//! * **partition** — drop *every* message on a channel during a time
//!   window, then heal;
//! * **crash-restart** — a component blackout: the apiserver, the Kcm or
//!   the scheduler loses its egress channel for a window (lease renewals
//!   included, so leadership lapses) and recovers with a watch re-list.

use crate::injector::{FaultKind, FieldMutation, InjectionPoint, InjectionSpec};
use crate::recorder::RecordedTraffic;
use crate::{Fault, FaultDef};
use k8s_model::{Channel, Kind};
use protowire::reflect::{FieldType, Value};
use simkit::Rng;

/// Serialization-byte injections generated per recorded kind.
pub const PROTO_INJECTIONS_PER_KIND: usize = 8;
/// Message-drop occurrences per recorded kind (paper: 1–10).
pub const DROP_OCCURRENCES: u32 = 10;
/// Field-injection occurrence indexes (paper: 1–3).
pub const FIELD_OCCURRENCES: u32 = 3;
/// Occurrence indexes the temporal families target.
pub const TEMPORAL_OCCURRENCES: u32 = 2;
/// How long the delay family holds a message.
pub const DELAY_HOLD_MS: u64 = 3_000;
/// How much later the duplicate family echoes its copy.
pub const DUPLICATE_ECHO_MS: u64 = 1_500;
/// Partition windows planned per channel: (start offset, duration).
pub const PARTITION_WINDOWS: [(u64, u64); 2] = [(2_000, 4_000), (10_000, 4_000)];
/// Blackout window of the crash-restart family: (start offset, duration).
pub const CRASH_WINDOW: (u64, u64) = (2_000, 6_000);

/// The paper's original wire triplet, in campaign order — the set
/// `generate_plan` reproduces for §IV-C-faithful campaigns.
pub static WIRE_BUILTIN: [Fault; 3] = [BIT_FLIP, VALUE_SET, DROP];

// --- bit-flip --------------------------------------------------------------

struct BitFlip;

impl FaultDef for BitFlip {
    fn name(&self) -> &'static str {
        "bit-flip"
    }

    fn label(&self) -> &'static str {
        "Bit-flip"
    }

    fn fault_kind(&self) -> FaultKind {
        FaultKind::BitFlip
    }

    fn expectation(&self) -> &'static str {
        "mostly No/MoR/LeR; Sta/Out on critical dependency fields (F2)"
    }

    fn plan(&self, traffic: &RecordedTraffic, rng: &mut Rng) -> Vec<InjectionSpec> {
        let mut plan = Vec::new();
        for f in &traffic.fields {
            let mutations: Vec<FieldMutation> = match f.field_type {
                FieldType::Int => {
                    vec![FieldMutation::FlipIntBit(0), FieldMutation::FlipIntBit(4)]
                }
                FieldType::Str => {
                    let len = f.sample.as_str().map(str::len).unwrap_or(0);
                    let mut m = Vec::new();
                    if len >= 1 {
                        m.push(FieldMutation::FlipStringChar(0));
                    }
                    if len >= 2 {
                        m.push(FieldMutation::FlipStringChar(1));
                    }
                    m
                }
                FieldType::Bool => vec![FieldMutation::FlipBool],
            };
            for mutation in mutations {
                for occurrence in 1..=FIELD_OCCURRENCES {
                    plan.push(InjectionSpec {
                        channel: f.channel,
                        kind: f.kind,
                        point: InjectionPoint::Field {
                            path: f.path.clone(),
                            mutation: mutation.clone(),
                        },
                        occurrence,
                    });
                }
            }
        }
        for (channel, kind, _count) in &traffic.kinds {
            for _ in 0..PROTO_INJECTIONS_PER_KIND {
                plan.push(InjectionSpec {
                    channel: *channel,
                    kind: *kind,
                    point: InjectionPoint::ProtoByte {
                        byte_frac: rng.f64(),
                        bit: rng.below(8) as u8,
                    },
                    occurrence: 1 + rng.below(u64::from(FIELD_OCCURRENCES)) as u32,
                });
            }
        }
        plan
    }
}

static BIT_FLIP_DEF: BitFlip = BitFlip;
/// The paper's bit-flip fault model.
pub static BIT_FLIP: Fault = Fault::new(&BIT_FLIP_DEF);

// --- value-set -------------------------------------------------------------

struct ValueSet;

impl FaultDef for ValueSet {
    fn name(&self) -> &'static str {
        "value-set"
    }

    fn label(&self) -> &'static str {
        "Value set"
    }

    fn fault_kind(&self) -> FaultKind {
        FaultKind::ValueSet
    }

    fn expectation(&self) -> &'static str {
        "valid-but-wrong values propagate; zeroed replicas/selectors go Sta/SU"
    }

    fn plan(&self, traffic: &RecordedTraffic, _rng: &mut Rng) -> Vec<InjectionSpec> {
        let mut plan = Vec::new();
        for f in &traffic.fields {
            let mutations: Vec<FieldMutation> = match f.field_type {
                FieldType::Int => vec![FieldMutation::Set(Value::Int(0))],
                FieldType::Str => {
                    let len = f.sample.as_str().map(str::len).unwrap_or(0);
                    if len >= 1 {
                        vec![FieldMutation::Set(Value::Str(String::new()))]
                    } else {
                        Vec::new()
                    }
                }
                FieldType::Bool => Vec::new(),
            };
            for mutation in mutations {
                for occurrence in 1..=FIELD_OCCURRENCES {
                    plan.push(InjectionSpec {
                        channel: f.channel,
                        kind: f.kind,
                        point: InjectionPoint::Field {
                            path: f.path.clone(),
                            mutation: mutation.clone(),
                        },
                        occurrence,
                    });
                }
            }
        }
        plan
    }
}

static VALUE_SET_DEF: ValueSet = ValueSet;
/// The paper's data-type-set fault model.
pub static VALUE_SET: Fault = Fault::new(&VALUE_SET_DEF);

// --- drop ------------------------------------------------------------------

struct Drop;

impl FaultDef for Drop {
    fn name(&self) -> &'static str {
        "drop"
    }

    fn label(&self) -> &'static str {
        "Drop"
    }

    fn fault_kind(&self) -> FaultKind {
        FaultKind::Drop
    }

    fn expectation(&self) -> &'static str {
        "level-triggered reconciliation absorbs most; early drops cause Tim"
    }

    fn plan(&self, traffic: &RecordedTraffic, _rng: &mut Rng) -> Vec<InjectionSpec> {
        let mut plan = Vec::new();
        for (channel, kind, _count) in &traffic.kinds {
            for occurrence in 1..=DROP_OCCURRENCES {
                plan.push(InjectionSpec {
                    channel: *channel,
                    kind: *kind,
                    point: InjectionPoint::Drop,
                    occurrence,
                });
            }
        }
        plan
    }
}

static DROP_DEF: Drop = Drop;
/// The paper's message-drop fault model.
pub static DROP: Fault = Fault::new(&DROP_DEF);

// --- delay -----------------------------------------------------------------

struct Delay;

impl FaultDef for Delay {
    fn name(&self) -> &'static str {
        "delay"
    }

    fn label(&self) -> &'static str {
        "Delay"
    }

    fn fault_kind(&self) -> FaultKind {
        FaultKind::Delay
    }

    fn expectation(&self) -> &'static str {
        "stale state lands late: Tim on startup-path kinds, else No"
    }

    fn plan(&self, traffic: &RecordedTraffic, _rng: &mut Rng) -> Vec<InjectionSpec> {
        let mut plan = Vec::new();
        for (channel, kind, _count) in &traffic.kinds {
            for occurrence in 1..=TEMPORAL_OCCURRENCES {
                plan.push(InjectionSpec {
                    channel: *channel,
                    kind: *kind,
                    point: InjectionPoint::Delay {
                        hold_ms: DELAY_HOLD_MS,
                    },
                    occurrence,
                });
            }
        }
        plan
    }
}

static DELAY_DEF: Delay = Delay;
/// Delayed delivery: one message is held for [`DELAY_HOLD_MS`].
pub static DELAY: Fault = Fault::new(&DELAY_DEF);

// --- duplicate -------------------------------------------------------------

struct Duplicate;

impl FaultDef for Duplicate {
    fn name(&self) -> &'static str {
        "duplicate"
    }

    fn label(&self) -> &'static str {
        "Duplicate"
    }

    fn fault_kind(&self) -> FaultKind {
        FaultKind::Duplicate
    }

    fn expectation(&self) -> &'static str {
        "an echoed write resurrects superseded state until the next sync"
    }

    fn plan(&self, traffic: &RecordedTraffic, _rng: &mut Rng) -> Vec<InjectionSpec> {
        let mut plan = Vec::new();
        for (channel, kind, _count) in &traffic.kinds {
            for occurrence in 1..=TEMPORAL_OCCURRENCES {
                plan.push(InjectionSpec {
                    channel: *channel,
                    kind: *kind,
                    point: InjectionPoint::Duplicate {
                        echo_ms: DUPLICATE_ECHO_MS,
                    },
                    occurrence,
                });
            }
        }
        plan
    }
}

static DUPLICATE_DEF: Duplicate = Duplicate;
/// Duplicated delivery: one message is echoed [`DUPLICATE_ECHO_MS`] later.
pub static DUPLICATE: Fault = Fault::new(&DUPLICATE_DEF);

// --- partition -------------------------------------------------------------

struct Partition;

impl FaultDef for Partition {
    fn name(&self) -> &'static str {
        "partition"
    }

    fn label(&self) -> &'static str {
        "Partition"
    }

    fn fault_kind(&self) -> FaultKind {
        FaultKind::Partition
    }

    fn expectation(&self) -> &'static str {
        "writes silently vanish for the window; reconcilers repair after heal"
    }

    fn plan(&self, traffic: &RecordedTraffic, _rng: &mut Rng) -> Vec<InjectionSpec> {
        // One spec per (channel, window); the kind is informational — a
        // partition is channel-wide — and taken from the first recorded
        // kind so reports show what traffic the window hit.
        let mut channels: Vec<(k8s_model::ChannelId, Kind)> = Vec::new();
        for (channel, kind, _count) in &traffic.kinds {
            if !channels.iter().any(|(c, _)| c == channel) {
                channels.push((*channel, *kind));
            }
        }
        let mut plan = Vec::new();
        for (channel, kind) in channels {
            for (from_off, dur_ms) in PARTITION_WINDOWS {
                plan.push(InjectionSpec {
                    channel,
                    kind,
                    point: InjectionPoint::Partition { from_off, dur_ms },
                    occurrence: 1,
                });
            }
        }
        plan
    }
}

static PARTITION_DEF: Partition = Partition;
/// Channel partition: windowed drop-all, then heal.
pub static PARTITION: Fault = Fault::new(&PARTITION_DEF);

// --- crash-restart ---------------------------------------------------------

struct CrashRestart;

impl FaultDef for CrashRestart {
    fn name(&self) -> &'static str {
        "crash-restart"
    }

    fn label(&self) -> &'static str {
        "Crash-restart"
    }

    fn fault_kind(&self) -> FaultKind {
        FaultKind::Crash
    }

    fn expectation(&self) -> &'static str {
        "blackout + re-list: leadership lapses, state freezes, then converges"
    }

    fn plan(&self, _traffic: &RecordedTraffic, _rng: &mut Rng) -> Vec<InjectionSpec> {
        // Component blackouts are planned regardless of recorded traffic:
        // the apiserver (its store egress), the Kcm and the scheduler.
        // The kind names the traffic class the blackout most visibly
        // silences (lease renewals for the controllers).
        let (from_off, dur_ms) = CRASH_WINDOW;
        [
            (Channel::ApiToEtcd, Kind::Pod),
            (Channel::KcmToApi, Kind::Lease),
            (Channel::SchedulerToApi, Kind::Lease),
        ]
        .into_iter()
        .map(|(channel, kind)| InjectionSpec {
            channel: channel.into(),
            kind,
            point: InjectionPoint::Crash { from_off, dur_ms },
            occurrence: 1,
        })
        .collect()
    }
}

static CRASH_RESTART_DEF: CrashRestart = CrashRestart;
/// Component crash-restart: blackout window plus re-list on recovery.
pub static CRASH_RESTART: Fault = Fault::new(&CRASH_RESTART_DEF);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::RecordedField;

    fn field(kind: Kind, path: &str, sample: Value) -> RecordedField {
        RecordedField {
            channel: Channel::ApiToEtcd.into(),
            kind,
            path: path.into(),
            field_type: sample.field_type(),
            sample,
            message_count: 5,
            max_occurrence: 3,
        }
    }

    fn fixture() -> RecordedTraffic {
        RecordedTraffic {
            fields: vec![
                field(Kind::ReplicaSet, "spec.replicas", Value::Int(2)),
                field(Kind::Pod, "spec.nodeName", Value::Str("w1".into())),
            ],
            kinds: vec![(Channel::ApiToEtcd.into(), Kind::ReplicaSet, 5u64)],
            node_kinds: Vec::new(),
            user_kinds: Vec::new(),
        }
    }

    #[test]
    fn wire_triplet_reproduces_paper_plan_counts() {
        let traffic = fixture();
        let mut rng = Rng::new(1);
        // Int: 2 flips × 3 occ; Str (len 2): 2 flips × 3; proto: 8.
        assert_eq!(BIT_FLIP.plan(&traffic, &mut rng).len(), 6 + 6 + 8);
        // Int set + Str set, × 3 occurrences each.
        assert_eq!(VALUE_SET.plan(&traffic, &mut rng).len(), 6);
        // Drops 1–10 for the one recorded kind.
        let drops = DROP.plan(&traffic, &mut rng);
        assert_eq!(drops.len(), 10);
        assert!(drops.iter().all(|s| s.point == InjectionPoint::Drop));
    }

    #[test]
    fn temporal_families_target_each_recorded_kind() {
        let traffic = fixture();
        let mut rng = Rng::new(1);
        let delays = DELAY.plan(&traffic, &mut rng);
        assert_eq!(delays.len(), TEMPORAL_OCCURRENCES as usize);
        assert!(delays.iter().all(|s| matches!(
            s.point,
            InjectionPoint::Delay {
                hold_ms: DELAY_HOLD_MS
            }
        )));
        let dups = DUPLICATE.plan(&traffic, &mut rng);
        assert_eq!(dups.len(), TEMPORAL_OCCURRENCES as usize);
    }

    #[test]
    fn infrastructure_families_plan_windows() {
        let traffic = fixture();
        let mut rng = Rng::new(1);
        let partitions = PARTITION.plan(&traffic, &mut rng);
        assert_eq!(partitions.len(), PARTITION_WINDOWS.len());
        assert!(partitions.iter().all(|s| s.channel == Channel::ApiToEtcd));
        let crashes = CRASH_RESTART.plan(&traffic, &mut rng);
        assert_eq!(crashes.len(), 3, "apiserver, kcm, scheduler");
        let channels: Vec<k8s_model::ChannelId> = crashes.iter().map(|s| s.channel).collect();
        assert!(channels.contains(&Channel::ApiToEtcd.into()));
        assert!(channels.contains(&Channel::KcmToApi.into()));
        assert!(channels.contains(&Channel::SchedulerToApi.into()));
    }

    #[test]
    fn proto_byte_planning_is_deterministic_per_seed() {
        let traffic = fixture();
        let a = BIT_FLIP.plan(&traffic, &mut Rng::new(9));
        let b = BIT_FLIP.plan(&traffic, &mut Rng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn every_builtin_documents_an_expectation() {
        for f in crate::registry::BUILTIN {
            assert!(
                !f.expectation().is_empty(),
                "{f} has no classification hint"
            );
        }
    }
}
