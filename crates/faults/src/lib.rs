//! # mutiny-faults — the pluggable fault engine
//!
//! The paper's campaign injects the §IV single-shot wire triplet
//! (bit-flip / value-set / drop). This crate turns the fault dimension
//! into the same kind of open-ended registry `mutiny_scenarios` gives the
//! workload dimension: a [`FaultDef`] describes one **fault family** —
//! its name, how it plans [`InjectionSpec`]s from recorded wire traffic,
//! and how it arms an [`Interceptor`]-compatible [`FaultActuator`] — and
//! lives in a **registry** next to the eighteen [`registry::BUILTIN`]
//! entries:
//!
//! * the paper's wire triplet, re-homed: **bit-flip**, **value-set**,
//!   **drop**;
//! * temporal faults: **delay** (hold a message for N sim-ms, then
//!   deliver) and **duplicate** (deliver now and echo a copy later);
//! * infrastructure faults: **partition** (drop every message on a
//!   channel during a time window, then heal) and **crash-restart**
//!   (apiserver/kcm/scheduler blackout with a watch re-list on
//!   recovery), the fault classes of the cloud-edge study
//!   (arXiv:2507.16109) and the multi-master BFT analysis
//!   (arXiv:1904.06206);
//! * node-level faults, routed on per-node channel identity
//!   (`kubelet->apiserver@w1`): **kubelet-crash-restart** (a single-node
//!   kubelet blackout — heartbeats lapse, the node-lifecycle controller
//!   evicts, the scheduler re-places, and the kubelet re-lists on
//!   restart) and **node-partition** (a windowed drop-all on one node's
//!   wire, healed by the kubelet's status replay), the per-node fault
//!   granularity of the cloud-edge study (arXiv:2507.16109) and the
//!   availability-manager analysis (arXiv:1901.04946);
//! * configuration defects, actuated at the apiserver's **admission
//!   hook** rather than on the wire — **cfg-resources**,
//!   **cfg-selector**, **cfg-probe**, **cfg-grace**, **cfg-replicas** —
//!   valid, decodable spec mutations probing controller logic, the
//!   misconfiguration dimension of the config-defects study
//!   (arXiv:2512.05062);
//! * storage-engine faults, actuated on the etcd store itself through
//!   out-of-band [`WorldAction`]s rather than on any wire —
//!   **etcd-disk-full** (windowed budget exhaustion),
//!   **etcd-compaction-pressure** (forced compactions; lagging watch
//!   cursors observe `Compacted` and re-list), **etcd-corrupt-at-rest**
//!   (one replica's stored bytes replaced, §V-C1, quorum-vote
//!   observable) and **etcd-inconsistent-view** (one replica's stale
//!   snapshot served to every reader while writes advance, per the
//!   multi-master BFT analysis arXiv:1904.06206).
//!
//! Campaign plans, result rows, the bench TSV schema and Tables III–V
//! all key on the fault-family *name*, so [`registry::register`] adds a
//! third-party family with **zero `mutiny_core` changes** — exactly like
//! scenarios. Everything stays deterministic: planning forks a labelled
//! RNG per (scenario, family), and actuators are pure functions of their
//! spec and the message stream.
//!
//! ```
//! use mutiny_faults::{registry, BIT_FLIP, DELAY, PARTITION};
//!
//! assert_eq!(BIT_FLIP.name(), "bit-flip");
//! assert_eq!(registry::find("partition"), Some(PARTITION));
//! assert!(registry::all().len() >= 7);
//! assert_eq!(DELAY.fault_kind(), mutiny_faults::injector::FaultKind::Delay);
//! ```

pub mod builtin;
pub mod config;
pub mod injector;
pub mod node;
pub mod recorder;
pub mod storage;

pub use builtin::{
    BIT_FLIP, CRASH_RESTART, DELAY, DROP, DUPLICATE, PARTITION, VALUE_SET, WIRE_BUILTIN,
};
pub use config::{
    ConfigDefect, CFG_GRACE, CFG_PROBE, CFG_REPLICAS, CFG_RESOURCES, CFG_SELECTOR, CONFIG_BUILTIN,
};
pub use injector::{
    FaultKind, FieldMutation, InjectionPoint, InjectionRecord, InjectionSpec, Mutiny, StorageOp,
};
pub use node::{KUBELET_CRASH_RESTART, NODE_PARTITION};
pub use storage::{
    StorageActuator, ETCD_COMPACTION_PRESSURE, ETCD_CORRUPT_AT_REST, ETCD_DISK_FULL,
    ETCD_INCONSISTENT_VIEW, STORAGE_BUILTIN,
};
pub use recorder::{FieldRecorder, RecordedField, RecordedTraffic};

use k8s_model::{AdmitCtx, Interceptor, MsgCtx, NodeName, Object, WireVerdict};
use simkit::Rng;
use std::cell::RefCell;
use std::rc::Rc;

/// A fault family definition: everything the campaign machinery needs to
/// plan and actuate one class of faults.
///
/// Implementations must be deterministic — [`FaultDef::plan`] receives a
/// family-labelled forked RNG and must always produce the same specs for
/// the same recorded traffic.
pub trait FaultDef: Send + Sync {
    /// Short stable name, used in the result tables, the campaign TSV
    /// cache, and `MUTINY_FAULTS` filters. Must be unique across the
    /// registry and must not contain whitespace, tabs, or commas.
    fn name(&self) -> &'static str;

    /// Paper-style table label (e.g. `Bit-flip`).
    fn label(&self) -> &'static str {
        self.name()
    }

    /// The coarse fault-model bucket this family reports under.
    fn fault_kind(&self) -> FaultKind;

    /// Expected-classification hint: what a campaign over this family
    /// typically produces (documentation for table readers, not an
    /// assertion).
    fn expectation(&self) -> &'static str {
        ""
    }

    /// Plans this family's injection specs for one scenario, from the
    /// [`RecordedTraffic`] of a nominal run of that scenario: the field
    /// catalogue, the class-aggregated (channel, kind, message-count)
    /// summary, and the per-node wire catalogue node-level families pick
    /// their victims from.
    fn plan(&self, traffic: &RecordedTraffic, rng: &mut Rng) -> Vec<InjectionSpec>;

    /// Arms the actuator for one planned spec; `from` is the workload
    /// start time (occurrence counting and fault windows anchor there).
    /// The default arms [`Mutiny`], which actuates every built-in point
    /// type; families with bespoke wire behavior return their own
    /// [`FaultActuator`].
    fn arm(&self, spec: &InjectionSpec, from: u64) -> Box<dyn FaultActuator> {
        Box::new(Mutiny::armed_from(spec.clone(), from))
    }
}

/// An action a fault asks the experiment driver to apply to the world —
/// the hook that lets infrastructure faults act beyond the wire without
/// re-entering the interceptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorldAction {
    /// Restart the apiserver: the watch cache is dropped and rebuilt from
    /// the store with quorum reads (the re-list on crash recovery).
    RestartApiserver,
    /// A node blackout opened: the named node's kubelet goes dark
    /// (heartbeats and status resyncs stop; its wire is dropped by the
    /// interceptor for as long as the window is open).
    SilenceKubelet(NodeName),
    /// A node blackout healed: the named node's kubelet restarts with a
    /// node-local re-list and resumes heartbeating (containers survived).
    RestartKubelet(NodeName),
    /// Clamp etcd's disk budget to its current usage: every growing
    /// write is rejected until the budget is restored (the disk-full
    /// window opening).
    EtcdClampDiskBudget,
    /// Restore etcd's original disk budget (the disk-full window
    /// healing). Rejected-write counters stay latched.
    EtcdRestoreDiskBudget,
    /// Force an etcd store + watch-log compaction now: watch cursors
    /// that lag behind the head observe `Compacted` and must re-list.
    EtcdForceCompaction,
    /// Replace one stored value's bytes on one replica's disk (at-rest
    /// corruption, §V-C1). `replica` and `nth` are applied modulo the
    /// replica and object counts, so a planned spec fits any store.
    EtcdCorruptReplica {
        /// Victim replica index (modulo the replica count).
        replica: u32,
        /// Victim key index in stored-key order (modulo the count).
        nth: u32,
    },
    /// Pin every read to the named replica's current snapshot while
    /// writes keep advancing the revision (inconsistent view opening).
    EtcdBeginInconsistentView {
        /// Replica whose snapshot is served (modulo the replica count).
        replica: u32,
    },
    /// Drop the pinned snapshot and serve live quorum reads again
    /// (inconsistent view healing).
    EtcdEndInconsistentView,
}

/// A live, armed fault: the wire interceptor plus the out-of-band hooks
/// the experiment driver polls between time slices.
pub trait FaultActuator: Interceptor {
    /// The injection record, once the fault fired.
    fn record(&self) -> Option<&InjectionRecord>;

    /// Called by the experiment driver after each time slice; returned
    /// actions are applied to the world (outside any interceptor borrow,
    /// so actuators never re-enter the apiserver).
    fn poll_actions(&mut self, _now: u64) -> Vec<WorldAction> {
        Vec::new()
    }
}

/// Adapts a shared [`FaultActuator`] handle to the apiserver's
/// [`Interceptor`] seam, so the experiment driver can keep polling the
/// actuator while the apiserver owns the interceptor slot.
pub struct SharedActuator(pub Rc<RefCell<Box<dyn FaultActuator>>>);

impl Interceptor for SharedActuator {
    fn on_message(&mut self, ctx: &MsgCtx<'_>) -> WireVerdict {
        self.0.borrow_mut().on_message(ctx)
    }

    fn on_admission(&mut self, ctx: &AdmitCtx<'_>, obj: &mut Object) -> bool {
        self.0.borrow_mut().on_admission(ctx, obj)
    }
}

/// A planned (family, spec) pair — the unit an experiment injects.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmedFault {
    /// The fault family.
    pub fault: Fault,
    /// The concrete spec the family planned.
    pub spec: InjectionSpec,
}

impl ArmedFault {
    /// Pairs a spec with an explicit family.
    pub fn new(fault: Fault, spec: InjectionSpec) -> ArmedFault {
        ArmedFault { fault, spec }
    }

    /// Pairs a spec with the built-in family its point shape implies
    /// (compatibility path for call sites that predate the registry).
    pub fn implied(spec: InjectionSpec) -> ArmedFault {
        ArmedFault {
            fault: Fault::implied_by(&spec),
            spec,
        }
    }

    /// Arms the actuator for this fault.
    pub fn arm(&self, from: u64) -> Box<dyn FaultActuator> {
        self.fault.arm(&self.spec, from)
    }
}

/// A cheap copyable handle to a registered fault family.
///
/// Equality, ordering, and hashing are by [`Fault::name`], so handles
/// work as `HashMap` keys and sort keys (table rows iterate registry
/// order).
#[derive(Clone, Copy)]
pub struct Fault(&'static dyn FaultDef);

impl Fault {
    /// Wraps a static definition. Exposed so `register` and tests can
    /// build handles; campaign code normally gets handles from the
    /// registry.
    pub const fn new(def: &'static dyn FaultDef) -> Fault {
        Fault(def)
    }

    /// Short stable name (see [`FaultDef::name`]).
    pub fn name(self) -> &'static str {
        self.0.name()
    }

    /// Paper-style table label.
    pub fn label(self) -> &'static str {
        self.0.label()
    }

    /// Coarse fault-model bucket.
    pub fn fault_kind(self) -> FaultKind {
        self.0.fault_kind()
    }

    /// Expected-classification hint.
    pub fn expectation(self) -> &'static str {
        self.0.expectation()
    }

    /// Plans this family's specs for one scenario's recorded traffic.
    pub fn plan(self, traffic: &RecordedTraffic, rng: &mut Rng) -> Vec<InjectionSpec> {
        self.0.plan(traffic, rng)
    }

    /// Arms the actuator for one spec (see [`FaultDef::arm`]).
    pub fn arm(self, spec: &InjectionSpec, from: u64) -> Box<dyn FaultActuator> {
        self.0.arm(spec, from)
    }

    /// The built-in family a spec's point shape implies — the
    /// compatibility mapping for specs built by hand (ablations, tests)
    /// rather than by a family's own planner.
    pub fn implied_by(spec: &InjectionSpec) -> Fault {
        let node_scoped = spec.channel.node().is_some();
        match spec.fault_kind() {
            FaultKind::BitFlip => BIT_FLIP,
            FaultKind::ValueSet => VALUE_SET,
            FaultKind::Drop => DROP,
            FaultKind::Delay => DELAY,
            FaultKind::Duplicate => DUPLICATE,
            FaultKind::Partition if node_scoped => NODE_PARTITION,
            FaultKind::Partition => PARTITION,
            FaultKind::Crash if node_scoped => KUBELET_CRASH_RESTART,
            FaultKind::Crash => CRASH_RESTART,
            FaultKind::Config => match &spec.point {
                InjectionPoint::Config { defect, .. } => {
                    config::family_for_defect(defect).unwrap_or(CFG_RESOURCES)
                }
                _ => CFG_RESOURCES,
            },
            FaultKind::Storage => match &spec.point {
                InjectionPoint::Storage { op, .. } => storage::family_for_op(*op),
                _ => ETCD_DISK_FULL,
            },
        }
    }
}

impl PartialEq for Fault {
    fn eq(&self, other: &Fault) -> bool {
        self.name() == other.name()
    }
}

impl Eq for Fault {}

impl PartialOrd for Fault {
    fn partial_cmp(&self, other: &Fault) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Fault {
    fn cmp(&self, other: &Fault) -> std::cmp::Ordering {
        registry::order_key(*self)
            .cmp(&registry::order_key(*other))
            .then_with(|| self.name().cmp(other.name()))
    }
}

impl std::hash::Hash for Fault {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name().hash(state);
    }
}

impl std::fmt::Debug for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Fault").field(&self.name()).finish()
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The fault registry: the built-ins plus anything added at runtime.
pub mod registry {
    use super::{builtin, config, node, storage, Fault, FaultDef};
    use std::sync::{OnceLock, RwLock};

    /// The built-in fault families, in table order: the paper's wire
    /// triplet first, then the temporal and infrastructure additions,
    /// then the node-level families, then the config-defect families,
    /// then the storage-engine families.
    pub static BUILTIN: [Fault; 18] = [
        builtin::BIT_FLIP,
        builtin::VALUE_SET,
        builtin::DROP,
        builtin::DELAY,
        builtin::DUPLICATE,
        builtin::PARTITION,
        builtin::CRASH_RESTART,
        node::KUBELET_CRASH_RESTART,
        node::NODE_PARTITION,
        config::CFG_RESOURCES,
        config::CFG_SELECTOR,
        config::CFG_PROBE,
        config::CFG_GRACE,
        config::CFG_REPLICAS,
        storage::ETCD_DISK_FULL,
        storage::ETCD_COMPACTION_PRESSURE,
        storage::ETCD_CORRUPT_AT_REST,
        storage::ETCD_INCONSISTENT_VIEW,
    ];

    fn extras() -> &'static RwLock<Vec<Fault>> {
        static EXTRAS: OnceLock<RwLock<Vec<Fault>>> = OnceLock::new();
        EXTRAS.get_or_init(|| RwLock::new(Vec::new()))
    }

    /// Every registered family, built-ins first, then third-party
    /// registrations in registration order.
    pub fn all() -> Vec<Fault> {
        let mut out: Vec<Fault> = BUILTIN.to_vec();
        out.extend(
            extras()
                .read()
                .expect("fault registry poisoned")
                .iter()
                .copied(),
        );
        out
    }

    /// Looks a family up by name.
    pub fn find(name: &str) -> Option<Fault> {
        all().into_iter().find(|f| f.name() == name)
    }

    /// Registers a third-party fault family and returns its handle. The
    /// definition is leaked (registries live for the program); names must
    /// be unique, non-empty, and free of whitespace/commas (they key the
    /// TSV cache and env filters).
    ///
    /// # Errors
    ///
    /// Returns an error naming the conflict when the name is invalid or
    /// already taken.
    pub fn register(def: Box<dyn FaultDef>) -> Result<Fault, String> {
        let name = def.name();
        if name.is_empty() || name.contains(|c: char| c.is_whitespace() || c == ',') {
            return Err(format!("invalid fault name {name:?}"));
        }
        let mut extras = extras().write().expect("fault registry poisoned");
        if BUILTIN
            .iter()
            .chain(extras.iter())
            .any(|f| f.name() == name)
        {
            return Err(format!("fault name {name:?} already registered"));
        }
        let fault = Fault::new(Box::leak(def));
        extras.push(fault);
        Ok(fault)
    }

    /// Stable sort key: position in the registry (built-ins keep table
    /// order), unknown handles after everything else by name.
    pub(super) fn order_key(f: Fault) -> usize {
        BUILTIN
            .iter()
            .position(|b| b.name() == f.name())
            .or_else(|| {
                extras()
                    .read()
                    .ok()?
                    .iter()
                    .position(|e| e.name() == f.name())
                    .map(|i| BUILTIN.len() + i)
            })
            .unwrap_or(usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_model::{Channel, Kind};
    use std::collections::HashSet;

    #[test]
    fn registered_names_are_unique_and_stable() {
        let all = registry::all();
        assert!(all.len() >= 7, "registry lost built-ins: {all:?}");
        let names: Vec<&str> = all.iter().map(|f| f.name()).collect();
        let unique: HashSet<&str> = names.iter().copied().collect();
        assert_eq!(
            unique.len(),
            names.len(),
            "duplicate fault names: {names:?}"
        );
        // The TSV cache, MUTINY_FAULTS filters, and the tables key on
        // these exact strings.
        for expect in [
            "bit-flip",
            "value-set",
            "drop",
            "delay",
            "duplicate",
            "partition",
            "crash-restart",
            "kubelet-crash-restart",
            "node-partition",
            "cfg-resources",
            "cfg-selector",
            "cfg-probe",
            "cfg-grace",
            "cfg-replicas",
            "etcd-disk-full",
            "etcd-compaction-pressure",
            "etcd-corrupt-at-rest",
            "etcd-inconsistent-view",
        ] {
            assert!(names.contains(&expect), "{expect} missing from {names:?}");
            assert_eq!(registry::find(expect).map(|f| f.name()), Some(expect));
        }
        assert_eq!(registry::find("no-such-fault"), None);
    }

    #[test]
    fn registry_rejects_duplicates_and_bad_names() {
        struct Dup;
        impl FaultDef for Dup {
            fn name(&self) -> &'static str {
                "drop"
            }
            fn fault_kind(&self) -> FaultKind {
                FaultKind::Drop
            }
            fn plan(&self, _traffic: &RecordedTraffic, _rng: &mut Rng) -> Vec<InjectionSpec> {
                Vec::new()
            }
        }
        assert!(registry::register(Box::new(Dup)).is_err());

        struct Bad;
        impl FaultDef for Bad {
            fn name(&self) -> &'static str {
                "has space"
            }
            fn fault_kind(&self) -> FaultKind {
                FaultKind::Drop
            }
            fn plan(&self, _traffic: &RecordedTraffic, _rng: &mut Rng) -> Vec<InjectionSpec> {
                Vec::new()
            }
        }
        assert!(registry::register(Box::new(Bad)).is_err());
    }

    #[test]
    fn handles_compare_and_hash_by_name() {
        use std::collections::HashMap;
        assert_eq!(BIT_FLIP, registry::find("bit-flip").unwrap());
        assert_ne!(BIT_FLIP, DROP);
        let mut m: HashMap<Fault, u32> = HashMap::new();
        m.insert(BIT_FLIP, 1);
        m.insert(CRASH_RESTART, 2);
        assert_eq!(m.get(&registry::find("bit-flip").unwrap()), Some(&1));
        // Registry order is table order.
        let mut v = vec![PARTITION, BIT_FLIP, DELAY];
        v.sort();
        assert_eq!(v, vec![BIT_FLIP, DELAY, PARTITION]);
        assert_eq!(VALUE_SET.to_string(), "value-set");
        assert_eq!(VALUE_SET.label(), "Value set");
    }

    #[test]
    fn implied_family_matches_point_shape() {
        use k8s_model::ChannelId;
        let spec = |point| InjectionSpec {
            channel: Channel::ApiToEtcd.into(),
            kind: Kind::Pod,
            point,
            occurrence: 1,
        };
        // Node-scoped window specs imply the node-level families.
        let node_spec = |point| InjectionSpec {
            channel: ChannelId::node_scoped(Channel::KubeletToApi, "w1"),
            kind: Kind::Node,
            point,
            occurrence: 1,
        };
        assert_eq!(
            Fault::implied_by(&node_spec(InjectionPoint::Crash {
                from_off: 0,
                dur_ms: 1
            })),
            KUBELET_CRASH_RESTART
        );
        assert_eq!(
            Fault::implied_by(&node_spec(InjectionPoint::Partition {
                from_off: 0,
                dur_ms: 1
            })),
            NODE_PARTITION
        );
        assert_eq!(Fault::implied_by(&spec(InjectionPoint::Drop)), DROP);
        assert_eq!(
            Fault::implied_by(&spec(InjectionPoint::Delay { hold_ms: 10 })),
            DELAY
        );
        assert_eq!(
            Fault::implied_by(&spec(InjectionPoint::Crash {
                from_off: 0,
                dur_ms: 1
            })),
            CRASH_RESTART
        );
        assert_eq!(
            Fault::implied_by(&spec(InjectionPoint::Field {
                path: "spec.replicas".into(),
                mutation: FieldMutation::Set(protowire::reflect::Value::Int(0)),
            })),
            VALUE_SET
        );
    }

    #[test]
    fn third_party_family_plans_and_arms_with_default_actuator() {
        // A third-party family composed from the built-in point
        // vocabulary: a "slow-wire" fault that delays the second
        // occurrence of every kind by a fixed 7 s.
        struct SlowWire;
        impl FaultDef for SlowWire {
            fn name(&self) -> &'static str {
                "slow-wire-test"
            }
            fn fault_kind(&self) -> FaultKind {
                FaultKind::Delay
            }
            fn plan(&self, traffic: &RecordedTraffic, _rng: &mut Rng) -> Vec<InjectionSpec> {
                traffic
                    .kinds
                    .iter()
                    .map(|(channel, kind, _)| InjectionSpec {
                        channel: *channel,
                        kind: *kind,
                        point: InjectionPoint::Delay { hold_ms: 7_000 },
                        occurrence: 2,
                    })
                    .collect()
            }
        }
        let fault = registry::register(Box::new(SlowWire)).expect("register");
        assert_eq!(registry::find("slow-wire-test"), Some(fault));
        let traffic = RecordedTraffic {
            kinds: vec![(Channel::ApiToEtcd.into(), Kind::Pod, 5u64)],
            ..RecordedTraffic::default()
        };
        let mut rng = Rng::new(1);
        let specs = fault.plan(&traffic, &mut rng);
        assert_eq!(specs.len(), 1);
        let mut actuator = fault.arm(&specs[0], 0);
        assert!(actuator.record().is_none());
        assert!(actuator.poll_actions(10).is_empty());
    }
}
