//! Node-level fault families, routed on per-node channel identity.
//!
//! The paper's fault matrix stops at five cluster-wide channels, but real
//! Kubernetes failures are overwhelmingly node-scoped: a single kubelet
//! goes dark, one node's link flaps. Both families here target one node's
//! `kubelet->apiserver@<node>` wire and pick their victims
//! deterministically from the recorded per-node traffic, with a
//! per-(scenario, family, node) RNG fork jittering each node's window —
//! so `MUTINY_FAULTS` filtering never perturbs surviving specs, and
//! adding or removing a node never shifts another node's plan.
//!
//! * **kubelet-crash-restart** — a single-node kubelet blackout: the
//!   wire drops everything for the window and the kubelet process is
//!   silenced ([`WorldAction::SilenceKubelet`](crate::WorldAction)), so
//!   heartbeats lapse, the node-lifecycle controller marks the node
//!   NotReady and evicts its pods, and the scheduler re-places them on
//!   surviving nodes — the availability-manager recovery path
//!   (arXiv:1901.04946). On heal the kubelet restarts with a node-local
//!   re-list ([`WorldAction::RestartKubelet`](crate::WorldAction));
//!   containers survive, and the next status resync repairs divergence.
//! * **node-partition** — a windowed drop-all on one node's wire, then
//!   heal: short enough that the node keeps its Ready status (the
//!   heartbeat grace absorbs it), so the interesting question is what
//!   status updates silently vanished and how the kubelet's periodic
//!   status replay repairs the stored state after the heal (the
//!   cloud-edge link-flap fault of arXiv:2507.16109).

use crate::injector::{FaultKind, InjectionPoint, InjectionSpec};
use crate::recorder::RecordedTraffic;
use crate::{Fault, FaultDef};
use k8s_model::{ChannelClass, ChannelId, Kind};
use simkit::Rng;

/// Blackout window of the kubelet-crash-restart family: (start offset,
/// duration). The duration must cover the whole eviction→re-place cycle
/// while the node is dark: the node-lifecycle controller's heartbeat
/// grace (40 s by default) plus its eviction grace (5 s), then pod
/// termination grace and the owning ReplicaSet's resync creating the
/// replacements (a few seconds more) — so the re-placed pods land on
/// surviving nodes, not on the freshly healed victim.
pub const KUBELET_CRASH_WINDOW: (u64, u64) = (2_000, 60_000);
/// Per-node jitter added to the blackout start (drawn from the node's
/// own RNG fork).
pub const KUBELET_CRASH_JITTER_MS: u64 = 1_000;
/// Partition windows planned per node wire: (start offset, duration).
/// Both stay far below the heartbeat grace, so the node never goes
/// NotReady — the fault is pure wire loss plus status replay.
pub const NODE_PARTITION_WINDOWS: [(u64, u64); 2] = [(2_000, 8_000), (14_000, 8_000)];
/// Per-node jitter added to each partition window start.
pub const NODE_PARTITION_JITTER_MS: u64 = 1_000;

/// The kubelet wires with recorded traffic, in stable order — the
/// victim catalogue both families plan over.
fn victim_wires(traffic: &RecordedTraffic) -> Vec<(ChannelId, Kind)> {
    traffic.node_wires(ChannelClass::KubeletToApi)
}

// --- kubelet-crash-restart -------------------------------------------------

struct KubeletCrashRestart;

impl FaultDef for KubeletCrashRestart {
    fn name(&self) -> &'static str {
        "kubelet-crash-restart"
    }

    fn label(&self) -> &'static str {
        "Kubelet crash"
    }

    fn fault_kind(&self) -> FaultKind {
        FaultKind::Crash
    }

    fn expectation(&self) -> &'static str {
        "node NotReady, pods evicted and re-placed; kubelet re-lists on heal"
    }

    fn plan(&self, traffic: &RecordedTraffic, rng: &mut Rng) -> Vec<InjectionSpec> {
        let (base_off, dur_ms) = KUBELET_CRASH_WINDOW;
        victim_wires(traffic)
            .into_iter()
            .map(|(channel, kind)| {
                // Per-node fork: dropping one node from the victim set
                // never shifts another node's window.
                let mut nrng = rng.fork(channel.node().unwrap_or(""));
                InjectionSpec {
                    channel,
                    kind,
                    point: InjectionPoint::Crash {
                        from_off: base_off + nrng.below(KUBELET_CRASH_JITTER_MS),
                        dur_ms,
                    },
                    occurrence: 1,
                }
            })
            .collect()
    }
}

static KUBELET_CRASH_RESTART_DEF: KubeletCrashRestart = KubeletCrashRestart;
/// Single-node kubelet blackout with eviction, re-placement, and a
/// node-local re-list on restart.
pub static KUBELET_CRASH_RESTART: Fault = Fault::new(&KUBELET_CRASH_RESTART_DEF);

// --- node-partition --------------------------------------------------------

struct NodePartition;

impl FaultDef for NodePartition {
    fn name(&self) -> &'static str {
        "node-partition"
    }

    fn label(&self) -> &'static str {
        "Node partition"
    }

    fn fault_kind(&self) -> FaultKind {
        FaultKind::Partition
    }

    fn expectation(&self) -> &'static str {
        "one node's status vanishes for the window; status replay heals it"
    }

    fn plan(&self, traffic: &RecordedTraffic, rng: &mut Rng) -> Vec<InjectionSpec> {
        let mut plan = Vec::new();
        for (channel, kind) in victim_wires(traffic) {
            let mut nrng = rng.fork(channel.node().unwrap_or(""));
            for (base_off, dur_ms) in NODE_PARTITION_WINDOWS {
                plan.push(InjectionSpec {
                    channel,
                    kind,
                    point: InjectionPoint::Partition {
                        from_off: base_off + nrng.below(NODE_PARTITION_JITTER_MS),
                        dur_ms,
                    },
                    occurrence: 1,
                });
            }
        }
        plan
    }
}

static NODE_PARTITION_DEF: NodePartition = NodePartition;
/// Windowed drop-all on a single node's kubelet wire, healed by the
/// kubelet's periodic status replay.
pub static NODE_PARTITION: Fault = Fault::new(&NODE_PARTITION_DEF);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorldAction;
    use k8s_model::{Channel, MsgCtx, Op, WireVerdict};

    fn traffic() -> RecordedTraffic {
        let wire =
            |node: &str, kind, n| (ChannelId::node_scoped(Channel::KubeletToApi, node), kind, n);
        RecordedTraffic {
            fields: Vec::new(),
            kinds: vec![(Channel::ApiToEtcd.into(), Kind::Pod, 40u64)],
            node_kinds: vec![
                wire("w1", Kind::Node, 6),
                wire("w1", Kind::Pod, 9),
                wire("w2", Kind::Node, 6),
            ],
            user_kinds: Vec::new(),
        }
    }

    #[test]
    fn crash_plans_one_blackout_per_node() {
        let mut rng = Rng::new(3);
        let plan = KUBELET_CRASH_RESTART.plan(&traffic(), &mut rng);
        assert_eq!(plan.len(), 2, "one spec per node wire: {plan:?}");
        let nodes: Vec<_> = plan.iter().filter_map(|s| s.channel.node()).collect();
        assert_eq!(nodes, vec!["w1", "w2"]);
        for spec in &plan {
            let InjectionPoint::Crash { from_off, dur_ms } = spec.point else {
                panic!("expected crash point: {spec:?}");
            };
            let (base, dur) = KUBELET_CRASH_WINDOW;
            assert!(from_off >= base && from_off < base + KUBELET_CRASH_JITTER_MS);
            assert_eq!(dur_ms, dur);
        }
    }

    #[test]
    fn partition_plans_windows_per_node() {
        let mut rng = Rng::new(3);
        let plan = NODE_PARTITION.plan(&traffic(), &mut rng);
        assert_eq!(plan.len(), 2 * NODE_PARTITION_WINDOWS.len());
        assert!(plan.iter().all(|s| s.channel.node().is_some()));
        assert!(plan
            .iter()
            .all(|s| matches!(s.point, InjectionPoint::Partition { .. })));
    }

    #[test]
    fn per_node_forks_are_independent_of_the_victim_set() {
        // Removing w1 from the catalogue must not change w2's window —
        // the per-(family, node) fork contract behind filter stability.
        let mut full_rng = Rng::new(3);
        let full = KUBELET_CRASH_RESTART.plan(&traffic(), &mut full_rng);
        let mut reduced = traffic();
        reduced
            .node_kinds
            .retain(|(c, _, _)| c.node() == Some("w2"));
        let mut reduced_rng = Rng::new(3);
        let only_w2 = KUBELET_CRASH_RESTART.plan(&reduced, &mut reduced_rng);
        assert_eq!(
            full.iter()
                .filter(|s| s.channel.node() == Some("w2"))
                .collect::<Vec<_>>(),
            only_w2.iter().collect::<Vec<_>>(),
            "victim-set changes shifted another node's spec"
        );
    }

    #[test]
    fn planning_is_deterministic_per_seed() {
        let a = NODE_PARTITION.plan(&traffic(), &mut Rng::new(9));
        let b = NODE_PARTITION.plan(&traffic(), &mut Rng::new(9));
        assert_eq!(a, b);
        let c = NODE_PARTITION.plan(&traffic(), &mut Rng::new(10));
        assert_ne!(a, c, "jitter must depend on the fork seed");
    }

    #[test]
    fn armed_blackout_targets_only_its_node() {
        let mut rng = Rng::new(3);
        let plan = KUBELET_CRASH_RESTART.plan(&traffic(), &mut rng);
        let spec = plan
            .iter()
            .find(|s| s.channel.node() == Some("w1"))
            .unwrap()
            .clone();
        let InjectionPoint::Crash { from_off, dur_ms } = spec.point else {
            unreachable!()
        };
        let mut actuator = KUBELET_CRASH_RESTART.arm(&spec, 1_000);
        let start = 1_000 + from_off;

        let ctx = |node: &str, now| MsgCtx {
            channel: ChannelId::node_scoped(Channel::KubeletToApi, node),
            kind: Kind::Node,
            key: "/registry/nodes/x",
            op: Op::Update,
            bytes: None,
            now,
        };
        // Inside the window: w1's wire is dead, w2's is untouched.
        assert_eq!(
            actuator.on_message(&ctx("w1", start + 10)),
            WireVerdict::Drop
        );
        assert_eq!(
            actuator.on_message(&ctx("w2", start + 10)),
            WireVerdict::Pass
        );
        // The blackout lifecycle: silence at open, restart at heal.
        assert_eq!(
            actuator.poll_actions(start + 10),
            vec![WorldAction::SilenceKubelet("w1")]
        );
        assert!(
            actuator.record().is_some(),
            "window faults fire when the window opens"
        );
        assert_eq!(
            actuator.poll_actions(start + dur_ms),
            vec![WorldAction::RestartKubelet("w1")]
        );
        assert!(actuator.poll_actions(start + dur_ms + 500).is_empty());
        // Healed: the wire passes again.
        assert_eq!(
            actuator.on_message(&ctx("w1", start + dur_ms + 10)),
            WireVerdict::Pass
        );
    }
}
