//! The DaemonSet controller: one pod per eligible node.
//!
//! DaemonSet pods carry system-node-critical priority and pre-bound
//! `nodeName`s (they bypass the scheduler), which is why the paper's
//! uncontrolled-replication example is at its most destructive here: the
//! spawned pods preempt application pods node by node until the cluster
//! serves nothing (§V-C1's Outage path).

use crate::{name_suffix, Ctx};
use k8s_model::{Channel, DaemonSet, Kind, Node, Object, Pod};
use simkit::TraceLevel;
use std::collections::BTreeMap;

/// Reconciles one DaemonSet.
///
/// # Errors
///
/// Returns a description of the first API failure; the caller requeues
/// with backoff.
pub(crate) fn reconcile(ctx: &mut Ctx<'_>, ns: &str, name: &str) -> Result<(), String> {
    let Some(ds_obj) = ctx.api.get(Kind::DaemonSet, ns, name) else {
        return Ok(());
    };
    let Object::DaemonSet(ds) = &*ds_obj else {
        return Ok(());
    };
    if ds.metadata.is_terminating() {
        return Ok(());
    }
    if k8s_model::is_suspended(&ds.metadata) {
        ctx.metrics.suspended_skips += 1;
        return Ok(()); // tripped circuit breaker (§VI-B)
    }

    let node_objs = ctx.api.list(Kind::Node, None);
    let nodes: Vec<&Node> = node_objs
        .iter()
        .filter_map(|o| match &**o {
            Object::Node(n) if !n.metadata.is_terminating() => Some(n),
            _ => None,
        })
        .collect();

    // Classify pods exactly like the ReplicaSet controller: owned pods
    // whose labels stopped matching are released (the infinite-spawn seam).
    let pod_objs = ctx.api.list(Kind::Pod, Some(ns));
    let mut by_node: BTreeMap<String, Vec<&Pod>> = BTreeMap::new();
    for obj in &pod_objs {
        let Object::Pod(pod) = &**obj else { continue };
        if pod.metadata.is_terminating() {
            continue;
        }
        let is_mine = pod
            .metadata
            .controller_ref()
            .map(|c| c.kind == "DaemonSet" && c.uid == ds.metadata.uid)
            .unwrap_or(false);
        if !is_mine {
            continue;
        }
        if !ds.spec.selector.matches(&pod.metadata.labels) {
            let mut released = pod.clone();
            released.metadata.owner_references.retain(|o| !o.controller);
            ctx.api
                .update(Channel::KcmToApi, Object::Pod(released))
                .map_err(|e| format!("release ds pod {}: {e}", pod.metadata.name))?;
            ctx.metrics.orphaned += 1;
            ctx.log(
                TraceLevel::Warn,
                "kcm/daemonset",
                format!("released pod {} (labels no longer match selector)", pod.metadata.name),
            );
            continue;
        }
        by_node.entry(pod.spec.node_name.clone()).or_default().push(pod);
    }

    let mut ready = 0i64;
    for node in &nodes {
        match by_node.get(node.metadata.name.as_str()) {
            None => create_pod(ctx, ds, &node.metadata.name)?,
            Some(pods) => {
                ready += pods.iter().filter(|p| p.is_ready()).count() as i64;
                // Duplicates on one node: keep the oldest.
                if pods.len() > 1 {
                    let mut extra: Vec<&Pod> = pods.to_vec();
                    extra.sort_by_key(|p| p.metadata.creation_timestamp);
                    for p in &extra[1..] {
                        ctx.api
                            .delete(Channel::KcmToApi, Kind::Pod, ns, &p.metadata.name)
                            .map_err(|e| format!("delete duplicate ds pod: {e}"))?;
                        ctx.metrics.pods_deleted += 1;
                    }
                }
            }
        }
    }

    // Pods bound to nodes that no longer exist.
    for (node_name, pods) in &by_node {
        if !nodes.iter().any(|n| &n.metadata.name == node_name) {
            for p in pods {
                ctx.api
                    .delete(Channel::KcmToApi, Kind::Pod, ns, &p.metadata.name)
                    .map_err(|e| format!("delete ds pod on missing node: {e}"))?;
                ctx.metrics.pods_deleted += 1;
            }
        }
    }

    let mut updated = ds.clone();
    updated.status.desired = nodes.len() as i64;
    updated.status.ready = ready;
    updated.status.observed_generation = ds.metadata.generation;
    if updated.status != ds.status {
        ctx.api
            .update(Channel::KcmToApi, Object::DaemonSet(updated))
            .map_err(|e| format!("update ds status: {e}"))?;
    }
    Ok(())
}

fn create_pod(ctx: &mut Ctx<'_>, ds: &DaemonSet, node: &str) -> Result<(), String> {
    let mut pod = Pod::default();
    pod.metadata = ds.spec.template.metadata.clone();
    pod.metadata.namespace = ds.metadata.namespace.clone();
    pod.metadata.name = format!("{}-{}", ds.metadata.name, name_suffix(ctx.rng));
    pod.metadata.set_controller_ref("DaemonSet", &ds.metadata.name, &ds.metadata.uid);
    pod.spec = ds.spec.template.spec.clone();
    pod.spec.node_name = node.to_owned(); // DaemonSet pods bypass the scheduler
    ctx.api
        .create(Channel::KcmToApi, Object::Pod(pod))
        .map_err(|e| format!("create pod for ds {}: {e}", ds.metadata.name))?;
    ctx.metrics.pods_created += 1;
    Ok(())
}
