//! The Endpoints controller: resolves each Service's backend set.
//!
//! A Service selects pods through a plain label map; ready pods with an
//! assigned IP become endpoint addresses consumed by every node's
//! kube-proxy. Corrupting the service selector, the target port, or the
//! endpoint addresses yields the paper's Service-Network failures — the
//! main source of client-visible Intermittent Availability and Service
//! Unreachable outcomes (§V-C1).

use crate::Ctx;
use k8s_model::{Channel, EndpointAddress, Endpoints, Kind, Object};

/// Reconciles the Endpoints object of one Service.
///
/// # Errors
///
/// Returns a description of the first API failure; the caller requeues
/// with backoff.
pub(crate) fn reconcile(ctx: &mut Ctx<'_>, ns: &str, name: &str) -> Result<(), String> {
    let svc_obj = ctx.api.get(Kind::Service, ns, name);
    let svc = match svc_obj.as_deref() {
        Some(Object::Service(s)) => s,
        _ => {
            // Service is gone: remove its endpoints.
            if ctx.api.get(Kind::Endpoints, ns, name).is_some() {
                ctx.api
                    .delete(Channel::KcmToApi, Kind::Endpoints, ns, name)
                    .map_err(|e| format!("delete endpoints {name}: {e}"))?;
            }
            return Ok(());
        }
    };

    // Resolve ready backends.
    let mut addresses: Vec<EndpointAddress> = Vec::new();
    for obj in ctx.api.list(Kind::Pod, Some(ns)) {
        let Object::Pod(pod) = &*obj else { continue };
        if pod.metadata.is_terminating() || !svc.selects(&pod.metadata.labels) {
            continue;
        }
        if !pod.is_ready() || pod.status.pod_ip.is_empty() || pod.spec.node_name.is_empty() {
            continue;
        }
        addresses.push(EndpointAddress {
            ip: pod.status.pod_ip.clone(),
            pod_name: pod.metadata.name.clone(),
            node_name: pod.spec.node_name.clone(),
            ready: true,
        });
    }
    addresses.sort_by(|a, b| a.pod_name.cmp(&b.pod_name));

    let port = if svc.spec.target_port != 0 { svc.spec.target_port } else { svc.spec.port };

    match ctx.api.get(Kind::Endpoints, ns, name).as_deref() {
        Some(Object::Endpoints(existing)) => {
            if existing.addresses != addresses || existing.port != port {
                let mut updated = existing.clone();
                updated.addresses = addresses;
                updated.port = port;
                ctx.api
                    .update(Channel::KcmToApi, Object::Endpoints(updated))
                    .map_err(|e| format!("update endpoints {name}: {e}"))?;
            }
        }
        _ => {
            let mut ep = Endpoints::default();
            ep.metadata = k8s_model::ObjectMeta::named(ns, name);
            ep.metadata.set_controller_ref("Service", &svc.metadata.name, &svc.metadata.uid);
            ep.addresses = addresses;
            ep.port = port;
            ctx.api
                .create(Channel::KcmToApi, Object::Endpoints(ep))
                .map_err(|e| format!("create endpoints {name}: {e}"))?;
        }
    }
    Ok(())
}
