//! The garbage collector: cascading deletion and orphan cleanup.
//!
//! Three sweeps, all driven by the ownerReference/namespace dependency
//! metadata whose corruption the paper's critical-field analysis flags:
//!
//! 1. **cascading deletion** — children whose controller owner no longer
//!    exists (by uid) are deleted; a corrupted ownerReference uid therefore
//!    gets a healthy pod deleted;
//! 2. **ghost-node pod GC** — pods bound to nonexistent nodes are removed
//!    after a grace period (the mechanism that, per the paper's Timing
//!    example, deletes a pod whose `nodeName` was corrupted, ~50 s in);
//! 3. **namespace cleanup** — objects in a deleted namespace are removed,
//!    modelling the real-world "erroneous namespace deletion" outages.

use crate::Ctx;
use k8s_model::{Channel, Kind, Object};
use simkit::TraceLevel;
use std::collections::{HashMap, HashSet};

/// Runs one garbage-collection pass.
pub(crate) fn tick(ctx: &mut Ctx<'_>, ghost_seen: &mut HashMap<String, u64>) {
    // Live owner uids (the kinds that own children in this model).
    let mut live_uids: HashSet<String> = HashSet::new();
    for kind in [Kind::ReplicaSet, Kind::DaemonSet, Kind::Deployment, Kind::Service] {
        for obj in ctx.api.list(kind, None) {
            live_uids.insert(obj.meta().uid.clone());
        }
    }
    let node_names: HashSet<String> =
        ctx.api.list(Kind::Node, None).iter().map(|n| n.name().to_owned()).collect();
    let namespaces: HashSet<String> =
        ctx.api.list(Kind::Namespace, None).iter().map(|n| n.name().to_owned()).collect();

    // Sweep 1 + 2: pods.
    let pods = ctx.api.list(Kind::Pod, None);
    let mut still_ghost: HashMap<String, u64> = HashMap::new();
    // One scratch key for the whole sweep: the ghost-map probe runs per
    // pod per tick, and only the (rare) still-ghost pods own their key.
    let mut key = String::new();
    for obj in &pods {
        let Object::Pod(pod) = &**obj else { continue };
        if pod.metadata.is_terminating() {
            continue;
        }
        obj.key_into(&mut key);

        // Cascading deletion: controller owner vanished.
        if let Some(ctrl) = pod.metadata.controller_ref() {
            if !ctrl.uid.is_empty() && !live_uids.contains(&ctrl.uid) {
                ctx.log(
                    TraceLevel::Info,
                    "kcm/gc",
                    format!("deleting pod {} (owner uid {} gone)", pod.metadata.name, ctrl.uid),
                );
                let _ = ctx.api.delete(
                    Channel::KcmToApi,
                    Kind::Pod,
                    &pod.metadata.namespace,
                    &pod.metadata.name,
                );
                ctx.metrics.gc_deleted += 1;
                continue;
            }
        }

        // Ghost-node GC: bound to a node that does not exist.
        if pod.is_bound() && !node_names.contains(&pod.spec.node_name) {
            let first = ghost_seen.get(&key).copied().unwrap_or(ctx.now);
            if ctx.now.saturating_sub(first) >= ctx.cfg.ghost_pod_gc_ms {
                ctx.log(
                    TraceLevel::Warn,
                    "kcm/gc",
                    format!(
                        "deleting pod {} bound to nonexistent node {:?}",
                        pod.metadata.name, pod.spec.node_name
                    ),
                );
                let _ = ctx.api.delete(
                    Channel::KcmToApi,
                    Kind::Pod,
                    &pod.metadata.namespace,
                    &pod.metadata.name,
                );
                ctx.metrics.gc_deleted += 1;
            } else {
                still_ghost.insert(key.clone(), first);
            }
        }
    }
    *ghost_seen = still_ghost;

    // Sweep 1b: ReplicaSets whose Deployment vanished.
    for obj in ctx.api.list(Kind::ReplicaSet, None) {
        let Object::ReplicaSet(rs) = &*obj else { continue };
        if let Some(ctrl) = rs.metadata.controller_ref() {
            if ctrl.kind == "Deployment" && !ctrl.uid.is_empty() && !live_uids.contains(&ctrl.uid)
            {
                // A deployment uid counts as live only if some deployment
                // holds it; `live_uids` already includes all deployments.
                let _ = ctx.api.delete(
                    Channel::KcmToApi,
                    Kind::ReplicaSet,
                    &rs.metadata.namespace,
                    &rs.metadata.name,
                );
                ctx.metrics.gc_deleted += 1;
            }
        }
    }

    // Sweep 3: namespaced objects in deleted namespaces.
    for kind in [Kind::Pod, Kind::ReplicaSet, Kind::Deployment, Kind::DaemonSet, Kind::Service, Kind::Endpoints, Kind::ConfigMap] {
        for obj in ctx.api.list(kind, None) {
            let ns = obj.namespace();
            if !ns.is_empty() && !namespaces.contains(ns) {
                ctx.log(
                    TraceLevel::Warn,
                    "kcm/gc",
                    format!("deleting {} {} (namespace {ns:?} gone)", kind_str(&obj), obj.name()),
                );
                let _ = ctx.api.delete(Channel::KcmToApi, obj.kind(), ns, obj.name());
                ctx.metrics.gc_deleted += 1;
            }
        }
    }
}

fn kind_str(obj: &Object) -> String {
    obj.kind().to_string()
}
