//! The horizontal-pod-autoscaler controller.
//!
//! Reads the per-service load metric published by the network fabric (a
//! ConfigMap maintained by the kube-proxy agents) and reconciles the
//! target Deployment's replica count towards
//! `ceil(load / targetLoadPerReplica)`.
//!
//! The controller trusts its metric source — which is exactly the fault
//! class the paper's FFDA calls *Wrong Autoscale Trigger* ("autoscaling of
//! Pods or Nodes is based on misleading information", Table I(a)). A
//! corrupted metric value, target, or bound mis-sizes the service (MoR or
//! LeR) and at the extremes floods the cluster with pods, the same
//! capacity-exhaustion path as the GKE incident of Figure 2.

use crate::Ctx;
use k8s_model::{Channel, Kind, Object};
use simkit::TraceLevel;

/// Namespace of the load-metric ConfigMap.
pub const METRICS_NAMESPACE: &str = "kube-system";
/// Name of the load-metric ConfigMap (data: `"<ns>/<service>"` → RPS).
pub const METRICS_CONFIGMAP: &str = "service-load";

/// Minimum time between scale actions on one target (stabilization
/// window; kube-controller-manager defaults to similar magnitudes).
pub const SCALE_COOLDOWN_MS: u64 = 15_000;

/// Reads the published load (requests/second) for `ns/service`.
pub fn observed_load(
    api: &mut k8s_apiserver::ApiServer,
    ns: &str,
    service: &str,
) -> Option<i64> {
    let cm_obj = api.get(Kind::ConfigMap, METRICS_NAMESPACE, METRICS_CONFIGMAP)?;
    let Object::ConfigMap(cm) = &*cm_obj else {
        return None;
    };
    cm.data.get(&format!("{ns}/{service}")).and_then(|v| v.parse().ok())
}

/// Reconciles one HorizontalPodAutoscaler.
///
/// # Errors
///
/// Returns a description of the first API failure; the caller requeues
/// with backoff.
pub(crate) fn reconcile(ctx: &mut Ctx<'_>, ns: &str, name: &str) -> Result<(), String> {
    let Some(hpa_obj) = ctx.api.get(Kind::HorizontalPodAutoscaler, ns, name) else {
        return Ok(());
    };
    let Object::HorizontalPodAutoscaler(hpa) = &*hpa_obj else {
        return Ok(());
    };
    if hpa.metadata.is_terminating() || k8s_model::is_suspended(&hpa.metadata) {
        return Ok(());
    }

    let target = hpa.spec.scale_target.clone();
    let Some(dep_obj) = ctx.api.get(Kind::Deployment, ns, &target) else {
        return Err(format!("hpa {ns}/{name}: target deployment {target:?} not found"));
    };
    let Object::Deployment(dep) = &*dep_obj else {
        return Err(format!("hpa {ns}/{name}: target {target:?} is not a deployment"));
    };

    // The metric is keyed by the service fronting the target Deployment;
    // by convention the workloads name it `<deployment>-svc`.
    let service = format!("{target}-svc");
    let Some(load) = observed_load(ctx.api, ns, &service) else {
        return Ok(()); // no metric published yet: hold
    };

    let desired = hpa.desired_for(load);
    let current = dep.spec.replicas.max(0);

    // Status first, so operators can see what the controller saw (F4:
    // silent divergence is the failure mode to avoid).
    let mut updated = hpa.clone();
    updated.status.observed_load = load;
    updated.status.current_replicas = current;
    updated.status.desired_replicas = desired;

    let cooldown_over = {
        let last = hpa.status.last_scale_time.max(0) as u64;
        ctx.now.saturating_sub(last) >= SCALE_COOLDOWN_MS
    };
    if desired != current && cooldown_over {
        let mut scaled = dep.clone();
        scaled.spec.replicas = desired;
        ctx.api
            .update(Channel::KcmToApi, Object::Deployment(scaled))
            .map_err(|e| format!("hpa scale {ns}/{target} to {desired}: {e}"))?;
        ctx.metrics.hpa_scalings += 1;
        updated.status.last_scale_time = ctx.now as i64;
        ctx.log(
            TraceLevel::Info,
            "kcm/hpa",
            format!("scaled {ns}/{target} {current} -> {desired} (load {load} rps)"),
        );
    }

    if updated.status != hpa.status {
        ctx.api
            .update(Channel::KcmToApi, Object::HorizontalPodAutoscaler(updated))
            .map_err(|e| format!("update hpa status: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ctx, KcmConfig, KcmMetrics};
    use k8s_apiserver::{ApiServer, InterceptorHandle, TraceHandle};
    use k8s_model::{
        ConfigMap, Container, Deployment, HorizontalPodAutoscaler, LabelSelector, NoopInterceptor,
        ObjectMeta, SUSPEND_ANNOTATION,
    };
    use simkit::{Rng, Trace};
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::rc::Rc;

    fn api() -> ApiServer {
        let interceptor: InterceptorHandle = Rc::new(RefCell::new(NoopInterceptor));
        let trace: TraceHandle = Rc::new(RefCell::new(Trace::new(256)));
        ApiServer::new(etcd_sim::Etcd::new(1, 8 << 20), interceptor, trace)
    }

    fn install_deployment(api: &mut ApiServer, replicas: i64) {
        let mut d = Deployment::default();
        d.metadata = ObjectMeta::named("default", "web-1");
        d.spec.replicas = replicas;
        d.spec.selector = LabelSelector::eq("app", "web-1");
        d.spec.template.metadata.labels.insert("app".into(), "web-1".into());
        d.spec.template.spec.containers.push(Container {
            name: "c".into(),
            image: "img:1".into(),
            cpu_milli: 100,
            memory_mb: 64,
            ..Default::default()
        });
        api.create(Channel::UserToApi, Object::Deployment(d)).unwrap();
    }

    fn install_hpa(api: &mut ApiServer, min: i64, max: i64, target: i64) {
        let mut h = HorizontalPodAutoscaler::default();
        h.metadata = ObjectMeta::named("default", "web-1-hpa");
        h.spec.scale_target = "web-1".into();
        h.spec.min_replicas = min;
        h.spec.max_replicas = max;
        h.spec.target_load = target;
        api.create(Channel::UserToApi, Object::HorizontalPodAutoscaler(h)).unwrap();
    }

    fn publish_load(api: &mut ApiServer, rps: &str) {
        let key = "default/web-1-svc".to_owned();
        match api.get(Kind::ConfigMap, METRICS_NAMESPACE, METRICS_CONFIGMAP).as_deref() {
            Some(Object::ConfigMap(cm)) => {
                let mut cm = cm.clone();
                cm.data.insert(key, rps.into());
                api.update(Channel::KcmToApi, Object::ConfigMap(cm)).unwrap();
            }
            _ => {
                let mut cm = ConfigMap::default();
                cm.metadata = ObjectMeta::named(METRICS_NAMESPACE, METRICS_CONFIGMAP);
                cm.data.insert(key, rps.into());
                api.create(Channel::KcmToApi, Object::ConfigMap(cm)).unwrap();
            }
        }
    }

    fn reconcile_at(api: &mut ApiServer, now: u64) -> (Result<(), String>, KcmMetrics) {
        let trace: TraceHandle = Rc::new(RefCell::new(Trace::new(64)));
        let mut metrics = KcmMetrics::default();
        let mut rng = Rng::new(1);
        let cfg = KcmConfig::default();
        let mut expectations = HashMap::new();
        let mut ctx = Ctx {
            api,
            now,
            rng: &mut rng,
            trace: &trace,
            metrics: &mut metrics,
            cfg: &cfg,
            expectations: &mut expectations,
        };
        let res = reconcile(&mut ctx, "default", "web-1-hpa");
        (res, metrics)
    }

    fn replicas(api: &mut ApiServer) -> i64 {
        match api.get(Kind::Deployment, "default", "web-1").as_deref() {
            Some(Object::Deployment(d)) => d.spec.replicas,
            _ => -1,
        }
    }

    #[test]
    fn scales_up_to_match_load() {
        let mut a = api();
        install_deployment(&mut a, 2);
        install_hpa(&mut a, 1, 8, 5);
        publish_load(&mut a, "20");
        let (res, m) = reconcile_at(&mut a, 20_000);
        res.unwrap();
        assert_eq!(m.hpa_scalings, 1);
        assert_eq!(replicas(&mut a), 4);
        if let Some(Object::HorizontalPodAutoscaler(h)) =
            a.get(Kind::HorizontalPodAutoscaler, "default", "web-1-hpa").as_deref()
        {
            assert_eq!(h.status.observed_load, 20);
            assert_eq!(h.status.desired_replicas, 4);
            assert_eq!(h.status.last_scale_time, 20_000);
        } else {
            panic!("hpa missing");
        }
    }

    #[test]
    fn holds_without_a_published_metric() {
        let mut a = api();
        install_deployment(&mut a, 2);
        install_hpa(&mut a, 1, 8, 5);
        let (res, m) = reconcile_at(&mut a, 20_000);
        res.unwrap();
        assert_eq!(m.hpa_scalings, 0);
        assert_eq!(replicas(&mut a), 2);
    }

    #[test]
    fn cooldown_blocks_consecutive_scale_actions() {
        let mut a = api();
        install_deployment(&mut a, 2);
        install_hpa(&mut a, 1, 8, 5);
        publish_load(&mut a, "20");
        let (res, _) = reconcile_at(&mut a, 20_000);
        res.unwrap();
        assert_eq!(replicas(&mut a), 4);
        publish_load(&mut a, "40");
        // Inside the stabilization window: no action.
        let (res, m) = reconcile_at(&mut a, 20_000 + SCALE_COOLDOWN_MS - 1);
        res.unwrap();
        assert_eq!(m.hpa_scalings, 0);
        assert_eq!(replicas(&mut a), 4);
        // After the window: the pending demand is applied.
        let (res, m) = reconcile_at(&mut a, 20_000 + SCALE_COOLDOWN_MS);
        res.unwrap();
        assert_eq!(m.hpa_scalings, 1);
        assert_eq!(replicas(&mut a), 8);
    }

    #[test]
    fn suspended_hpa_is_skipped() {
        let mut a = api();
        install_deployment(&mut a, 2);
        install_hpa(&mut a, 1, 8, 5);
        if let Some(h) = a.get(Kind::HorizontalPodAutoscaler, "default", "web-1-hpa") {
            let mut h = (*h).clone();
            h.meta_mut().annotations.insert(SUSPEND_ANNOTATION.into(), "true".into());
            a.update(Channel::UserToApi, h).unwrap();
        }
        publish_load(&mut a, "20");
        let (res, m) = reconcile_at(&mut a, 20_000);
        res.unwrap();
        assert_eq!(m.hpa_scalings, 0);
        assert_eq!(replicas(&mut a), 2);
    }

    #[test]
    fn missing_target_is_a_reconcile_error() {
        let mut a = api();
        install_hpa(&mut a, 1, 8, 5);
        publish_load(&mut a, "20");
        let (res, _) = reconcile_at(&mut a, 20_000);
        assert!(res.unwrap_err().contains("not found"));
    }

    #[test]
    fn unparsable_metric_reads_as_absent() {
        let mut a = api();
        install_deployment(&mut a, 2);
        install_hpa(&mut a, 1, 8, 5);
        publish_load(&mut a, "garbage"); // a corrupted metric string
        let (res, m) = reconcile_at(&mut a, 20_000);
        res.unwrap();
        assert_eq!(m.hpa_scalings, 0);
        assert_eq!(replicas(&mut a), 2);
        assert_eq!(observed_load(&mut a, "default", "web-1-svc"), None);
    }
}
