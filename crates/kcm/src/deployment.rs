//! The Deployment controller: ReplicaSet management and rolling updates.
//!
//! Two behaviours matter for the campaign:
//!
//! * **overwrite recovery** — a corrupted `ReplicaSet.spec.replicas` is
//!   reset from the owning Deployment on the next sync, one of the paper's
//!   observed recovery paths ("the value is overwritten", §V-C1);
//! * **MaxUnavailable / MaxSurge** — rolling updates keep a minimum number
//!   of replicas available, limiting the blast radius of bad updates
//!   (§II-D), which the ablation bench toggles.

use crate::Ctx;
use k8s_model::{Channel, Deployment, Kind, Object, ReplicaSet};
use protowire::Message;

/// Stable hash of a pod template (names the template's ReplicaSet).
pub fn template_hash(d: &Deployment) -> u64 {
    let bytes = d.spec.template.encode();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Reconciles one Deployment.
///
/// # Errors
///
/// Returns a description of the first API failure; the caller requeues
/// with backoff.
pub(crate) fn reconcile(ctx: &mut Ctx<'_>, ns: &str, name: &str) -> Result<(), String> {
    let Some(dep_obj) = ctx.api.get(Kind::Deployment, ns, name) else {
        return Ok(()); // deleted; GC reaps owned ReplicaSets
    };
    let Object::Deployment(dep) = &*dep_obj else {
        return Ok(());
    };
    if dep.metadata.is_terminating() || dep.spec.paused {
        return Ok(());
    }
    if k8s_model::is_suspended(&dep.metadata) {
        ctx.metrics.suspended_skips += 1;
        return Ok(()); // tripped circuit breaker (§VI-B)
    }

    let desired = dep.spec.replicas.max(0);
    let hash = template_hash(dep);
    let new_rs_name = format!("{}-{:08x}", dep.metadata.name, hash & 0xffff_ffff);

    // Collect owned ReplicaSets.
    let mut owned: Vec<ReplicaSet> = ctx
        .api
        .list(Kind::ReplicaSet, Some(ns))
        .into_iter()
        .filter_map(|o| match &*o {
            Object::ReplicaSet(rs)
                if rs
                    .metadata
                    .controller_ref()
                    .map(|c| c.kind == "Deployment" && c.uid == dep.metadata.uid)
                    .unwrap_or(false) =>
            {
                Some(rs.clone())
            }
            _ => None,
        })
        .collect();
    owned.sort_by(|a, b| a.metadata.name.cmp(&b.metadata.name));

    let new_rs = owned.iter().find(|rs| rs.metadata.name == new_rs_name).cloned();
    let mut old_rses: Vec<ReplicaSet> =
        owned.iter().filter(|rs| rs.metadata.name != new_rs_name).cloned().collect();
    // Scale the oldest history down first, as kubectl rollout does.
    old_rses.sort_by(|a, b| {
        (a.metadata.creation_timestamp, &a.metadata.name)
            .cmp(&(b.metadata.creation_timestamp, &b.metadata.name))
    });

    let max_surge = dep.spec.max_surge.max(0);
    let max_unavailable = dep.spec.max_unavailable.max(0);
    let old_total: i64 = old_rses.iter().map(|rs| rs.spec.replicas.max(0)).sum();
    // Availability is capped by the *spec*: after a scale-down the
    // ReplicaSet's status lags for a few syncs, and trusting the stale
    // ready count here would let consecutive syncs drain every old pod
    // before a single new one serves (a real availability-floor breach).
    let old_ready: i64 = old_rses
        .iter()
        .map(|rs| rs.status.ready_replicas.clamp(0, rs.spec.replicas.max(0)))
        .sum();

    let new_rs = match new_rs {
        Some(rs) => rs,
        None => {
            // Create the ReplicaSet for the current template, respecting
            // the surge budget while old ReplicaSets still run.
            let initial = if old_total == 0 {
                desired
            } else {
                (desired + max_surge - old_total).clamp(0, desired)
            };
            let mut rs = ReplicaSet::default();
            rs.metadata = k8s_model::ObjectMeta::named(&dep.metadata.namespace, &new_rs_name);
            rs.metadata.labels = dep.spec.template.metadata.labels.clone();
            rs.metadata.set_controller_ref("Deployment", &dep.metadata.name, &dep.metadata.uid);
            rs.spec.replicas = initial;
            rs.spec.selector = dep.spec.selector.clone();
            rs.spec.template = dep.spec.template.clone();
            ctx.api
                .create(Channel::KcmToApi, Object::ReplicaSet(rs))
                .map_err(|e| format!("create rs {new_rs_name}: {e}"))?;
            return Ok(()); // continue on the next event
        }
    };

    if old_rses.is_empty() {
        // Steady state: enforce the replica count (the recovery path that
        // overwrites corrupted ReplicaSet.spec.replicas).
        if new_rs.spec.replicas != desired {
            let mut fixed = new_rs.clone();
            fixed.spec.replicas = desired;
            ctx.api
                .update(Channel::KcmToApi, Object::ReplicaSet(fixed))
                .map_err(|e| format!("sync rs replicas: {e}"))?;
        }
    } else {
        // Rolling update: scale new up within the surge budget, old down
        // within the availability floor.
        let current_total = new_rs.spec.replicas.max(0) + old_total;
        let allowed_total = desired + max_surge;
        if new_rs.spec.replicas < desired && current_total < allowed_total {
            let grow = (desired - new_rs.spec.replicas).min(allowed_total - current_total);
            let mut scaled = new_rs.clone();
            scaled.spec.replicas += grow;
            ctx.api
                .update(Channel::KcmToApi, Object::ReplicaSet(scaled))
                .map_err(|e| format!("scale up new rs: {e}"))?;
        }

        let min_available = (desired - max_unavailable).max(0);
        let new_ready = new_rs.status.ready_replicas.clamp(0, new_rs.spec.replicas.max(0));
        let total_ready = new_ready + old_ready;
        let mut headroom = total_ready - min_available;
        if headroom > 0 {
            for old in &old_rses {
                if headroom <= 0 {
                    break;
                }
                let cur = old.spec.replicas.max(0);
                if cur == 0 {
                    if old.status.replicas > 0 {
                        // Pods still terminating; deleting the ReplicaSet
                        // now would orphan them into the GC's lap.
                        continue;
                    }
                    // Fully drained: remove the historical ReplicaSet.
                    ctx.api
                        .delete(Channel::KcmToApi, Kind::ReplicaSet, ns, &old.metadata.name)
                        .map_err(|e| format!("delete drained rs: {e}"))?;
                    continue;
                }
                let shrink = cur.min(headroom);
                let mut scaled = old.clone();
                scaled.spec.replicas = cur - shrink;
                headroom -= shrink;
                ctx.api
                    .update(Channel::KcmToApi, Object::ReplicaSet(scaled))
                    .map_err(|e| format!("scale down old rs: {e}"))?;
            }
        }
    }

    // Status refresh.
    let mut updated = dep.clone();
    updated.status.replicas = new_rs.status.replicas + old_rses.iter().map(|r| r.status.replicas).sum::<i64>();
    updated.status.ready_replicas =
        new_rs.status.ready_replicas + old_ready;
    updated.status.updated_replicas = new_rs.status.ready_replicas;
    updated.status.observed_generation = dep.metadata.generation;
    if updated.status != dep.status {
        ctx.api
            .update(Channel::KcmToApi, Object::Deployment(updated))
            .map_err(|e| format!("update deployment status: {e}"))?;
    }
    Ok(())
}
