//! The ReplicaSet controller: keeps `spec.replicas` pods matching the
//! selector alive.
//!
//! Ownership semantics follow Kubernetes: the controller manages pods whose
//! controller ownerReference points at it, adopts matching orphans, and
//! *releases* owned pods whose labels no longer satisfy the selector. That
//! release path is what turns a single corrupted bit into the paper's
//! uncontrolled-replication loop: when the stored pod template stops
//! matching the selector (an invariant only enforced at the API boundary,
//! which store-channel injections bypass), every pod the controller creates
//! is immediately released and replaced, forever.

use crate::{name_suffix, Ctx};
use k8s_model::{Channel, Kind, Object, Pod, ReplicaSet};
use simkit::TraceLevel;

/// Reconciles one ReplicaSet.
///
/// # Errors
///
/// Returns a description of the first API failure; the caller requeues
/// with backoff.
pub(crate) fn reconcile(ctx: &mut Ctx<'_>, ns: &str, name: &str) -> Result<(), String> {
    let Some(rs_obj) = ctx.api.get(Kind::ReplicaSet, ns, name) else {
        return Ok(()); // deleted; GC reaps the children
    };
    let Object::ReplicaSet(rs) = &*rs_obj else {
        return Ok(());
    };
    if rs.metadata.is_terminating() {
        return Ok(());
    }
    if k8s_model::is_suspended(&rs.metadata) {
        ctx.metrics.suspended_skips += 1;
        return Ok(()); // tripped circuit breaker (§VI-B)
    }

    let pod_objs = ctx.api.list(Kind::Pod, Some(ns));
    let mut owned: Vec<Pod> = Vec::new();
    for obj in &pod_objs {
        let Object::Pod(pod) = &**obj else { continue };
        if pod.metadata.is_terminating() {
            continue;
        }
        let is_mine = pod
            .metadata
            .controller_ref()
            .map(|c| c.kind == "ReplicaSet" && c.uid == rs.metadata.uid)
            .unwrap_or(false);
        let matches = rs.spec.selector.matches(&pod.metadata.labels);
        if is_mine && !matches {
            // Release: the pod no longer belongs to us.
            release_pod(ctx, pod)?;
            continue;
        }
        if !is_mine && matches && pod.metadata.controller_ref().is_none() {
            if let Some(adopted) = adopt_pod(ctx, pod, rs)? {
                owned.push(adopted);
            }
            continue;
        }
        if is_mine {
            owned.push(pod.clone());
        }
    }

    let active: Vec<&Pod> = owned
        .iter()
        .filter(|p| p.status.phase != "Succeeded" && p.status.phase != "Failed")
        .collect();
    let desired = rs.spec.replicas.max(0) as usize;

    // Expectations: while previously issued creates are unobserved (and
    // unexpired), the controller must not issue more. A silently dropped
    // create therefore leaves the ReplicaSet below target until the TTL —
    // the paper's dominant message-drop outcome (LeR).
    let rs_key = rs_registry_key(rs);
    let may_act = ctx
        .expectations
        .get(&rs_key)
        .map(|e| e.fulfilled(ctx.now))
        .unwrap_or(true);
    if may_act {
        ctx.expectations.remove(&rs_key);
    }

    if may_act && active.len() < desired {
        let missing = desired - active.len();
        let burst = missing.min(ctx.cfg.create_burst);
        let mut issued = 0usize;
        for _ in 0..burst {
            create_pod(ctx, rs)?;
            issued += 1;
        }
        if issued > 0 {
            ctx.expectations.insert(
                rs_key.clone(),
                crate::Expectation {
                    pending: issued,
                    seen: Default::default(),
                    deadline: ctx.now + crate::EXPECTATION_TTL_MS,
                },
            );
        }
    } else if may_act && active.len() > desired {
        // Prefer deleting not-ready, then youngest pods.
        let mut victims: Vec<&&Pod> = active.iter().collect();
        victims.sort_by_key(|p| (p.is_ready(), std::cmp::Reverse(p.metadata.creation_timestamp)));
        for pod in victims.into_iter().take(active.len() - desired) {
            ctx.api
                .delete(Channel::KcmToApi, Kind::Pod, ns, &pod.metadata.name)
                .map_err(|e| format!("delete pod {}: {e}", pod.metadata.name))?;
            ctx.metrics.pods_deleted += 1;
        }
    }

    // Status update (only when changed, to avoid write storms).
    let ready = active.iter().filter(|p| p.is_ready()).count() as i64;
    let mut updated = rs.clone();
    updated.status.replicas = active.len() as i64;
    updated.status.ready_replicas = ready;
    updated.status.observed_generation = rs.metadata.generation;
    if updated.status != rs.status {
        ctx.api
            .update(Channel::KcmToApi, Object::ReplicaSet(updated))
            .map_err(|e| format!("update rs status: {e}"))?;
    }
    Ok(())
}

fn rs_registry_key(rs: &ReplicaSet) -> String {
    k8s_model::registry_key(Kind::ReplicaSet, &rs.metadata.namespace, &rs.metadata.name)
}

fn release_pod(ctx: &mut Ctx<'_>, pod: &Pod) -> Result<(), String> {
    let mut released = pod.clone();
    released.metadata.owner_references.retain(|o| !o.controller);
    ctx.api
        .update(Channel::KcmToApi, Object::Pod(released))
        .map_err(|e| format!("release pod {}: {e}", pod.metadata.name))?;
    ctx.metrics.orphaned += 1;
    ctx.log(
        TraceLevel::Warn,
        "kcm/replicaset",
        format!("released pod {} (labels no longer match selector)", pod.metadata.name),
    );
    Ok(())
}

fn adopt_pod(ctx: &mut Ctx<'_>, pod: &Pod, rs: &ReplicaSet) -> Result<Option<Pod>, String> {
    let mut adopted = pod.clone();
    adopted.metadata.set_controller_ref("ReplicaSet", &rs.metadata.name, &rs.metadata.uid);
    match ctx.api.update(Channel::KcmToApi, Object::Pod(adopted.clone())) {
        Ok(_) => {
            ctx.metrics.adoptions += 1;
            Ok(Some(adopted))
        }
        Err(e) => Err(format!("adopt pod {}: {e}", pod.metadata.name)),
    }
}

fn create_pod(ctx: &mut Ctx<'_>, rs: &ReplicaSet) -> Result<(), String> {
    let mut pod = Pod::default();
    pod.metadata = rs.spec.template.metadata.clone();
    pod.metadata.namespace = rs.metadata.namespace.clone();
    pod.metadata.name = format!("{}-{}", rs.metadata.name, name_suffix(ctx.rng));
    pod.metadata.set_controller_ref("ReplicaSet", &rs.metadata.name, &rs.metadata.uid);
    pod.spec = rs.spec.template.spec.clone();
    ctx.api
        .create(Channel::KcmToApi, Object::Pod(pod))
        .map_err(|e| format!("create pod for rs {}: {e}", rs.metadata.name))?;
    ctx.metrics.pods_created += 1;
    Ok(())
}
