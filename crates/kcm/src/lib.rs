//! # k8s-kcm — the simulated kube-controller-manager
//!
//! Runs the reconciliation loops that keep the observed cluster state
//! converging to the desired state (§II-C): Deployment, ReplicaSet,
//! DaemonSet, Endpoints, node lifecycle, and garbage collection. The design
//! mirrors the properties the paper's campaign probes:
//!
//! * **level-triggered reconciliation** — every loop compares full current
//!   state against desired state, so dropped messages are eventually
//!   repaired by the periodic resync (the resiliency strategy that absorbs
//!   most message-drop injections);
//! * **label/owner dependency tracking** — controllers find their children
//!   through selectors and ownerReferences; corrupting either produces
//!   orphaning, adoption, or the uncontrolled-replication loop behind the
//!   paper's most severe failures (F2);
//! * **leader election** — only one active Kcm instance; a corrupted lease
//!   locks reconciliation out entirely (a Stall cause);
//! * **work queues with backoff** — the circuit breaker that prevents a
//!   failing reconcile from monopolizing the control plane;
//! * **bounded reconcile budget per step** — control-plane overload makes
//!   the backlog observable, as in the paper's capacity incidents.

pub mod daemonset;
pub mod deployment;
pub mod endpoints;
pub mod gc;
pub mod hpa;
pub mod node_lifecycle;
pub mod replicaset;

/// Re-export of the shared work-queue utility.
pub use k8s_apiserver::workqueue;

use k8s_apiserver::intern::Interner;
use k8s_apiserver::{ApiServer, LeaderElector, TraceHandle};
use k8s_model::{Channel, Kind, Object};
use simkit::{Rng, TraceLevel};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use workqueue::WorkQueue;

/// Pending-create expectations of one ReplicaSet (the mechanism that keeps
/// the real controller from double-creating while its informer cache lags,
/// and that leaves it *stuck* when a create is silently lost — the paper's
/// dominant message-drop failure, LeR).
#[derive(Debug, Clone, Default)]
pub struct Expectation {
    /// Creates issued and not yet observed.
    pub pending: usize,
    /// Pod keys observed (via watch events) since the creates were issued.
    pub seen: HashSet<String>,
    /// Expectations expire after this time (K8s: 5 minutes).
    pub deadline: u64,
}

impl Expectation {
    /// True when the controller may act again.
    pub fn fulfilled(&self, now: u64) -> bool {
        self.seen.len() >= self.pending || now >= self.deadline
    }
}

/// Expectation time-to-live (kube-controller-manager: 5 minutes).
pub const EXPECTATION_TTL_MS: u64 = 300_000;

/// One reconcile unit of work, keyed by interned `(namespace, name)` —
/// watch-event routing enqueues the same handful of names thousands of
/// times per run, so queue churn is refcount bumps, not string copies.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WorkItem {
    /// Reconcile a Deployment.
    Deployment(Rc<str>, Rc<str>),
    /// Reconcile a ReplicaSet.
    ReplicaSet(Rc<str>, Rc<str>),
    /// Reconcile a DaemonSet.
    DaemonSet(Rc<str>, Rc<str>),
    /// Reconcile a Service's Endpoints.
    Service(Rc<str>, Rc<str>),
    /// Reconcile a HorizontalPodAutoscaler.
    Hpa(Rc<str>, Rc<str>),
}

/// Tunables for the controller manager.
#[derive(Debug, Clone)]
pub struct KcmConfig {
    /// Full informer resync period (level-trigger safety net).
    pub resync_interval_ms: u64,
    /// Maximum reconciles processed per step (control-plane capacity).
    pub step_budget: usize,
    /// Pods per ReplicaSet/DaemonSet create burst.
    pub create_burst: usize,
    /// Node heartbeat staleness before the node is marked NotReady.
    pub node_grace_ms: u64,
    /// Delay between a NoExecute taint appearing and pod eviction.
    pub eviction_grace_ms: u64,
    /// Age after which pods bound to nonexistent nodes are deleted.
    pub ghost_pod_gc_ms: u64,
    /// Stop evictions when every node is unhealthy (§II-D).
    pub full_disruption_mode: bool,
    /// Node-health check cadence.
    pub node_check_interval_ms: u64,
    /// Garbage-collection cadence.
    pub gc_interval_ms: u64,
}

impl Default for KcmConfig {
    fn default() -> Self {
        KcmConfig {
            resync_interval_ms: 10_000,
            step_budget: 50,
            create_burst: 10,
            node_grace_ms: 40_000,
            eviction_grace_ms: 5_000,
            ghost_pod_gc_ms: 20_000,
            full_disruption_mode: true,
            node_check_interval_ms: 5_000,
            gc_interval_ms: 10_000,
        }
    }
}

/// Counters exposed to the failure classifiers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KcmMetrics {
    /// Pods created by workload controllers.
    pub pods_created: u64,
    /// Pods deleted by workload controllers (scale-down, duplicates).
    pub pods_deleted: u64,
    /// Pods evicted by the node-lifecycle controller.
    pub pods_evicted: u64,
    /// Objects deleted by the garbage collector.
    pub gc_deleted: u64,
    /// Pods adopted (matching orphans taken over).
    pub adoptions: u64,
    /// Pods orphaned (labels stopped matching the owner's selector).
    pub orphaned: u64,
    /// Reconciles that returned an error.
    pub reconcile_errors: u64,
    /// Reconciles skipped because the circuit breaker suspended the owner.
    pub suspended_skips: u64,
    /// Scale actions taken by the autoscaler controller.
    pub hpa_scalings: u64,
}

/// Shared state handed to every reconcile function.
pub(crate) struct Ctx<'a> {
    pub api: &'a mut ApiServer,
    pub now: u64,
    pub rng: &'a mut Rng,
    pub trace: &'a TraceHandle,
    pub metrics: &'a mut KcmMetrics,
    pub cfg: &'a KcmConfig,
    pub expectations: &'a mut HashMap<String, Expectation>,
}

impl Ctx<'_> {
    pub(crate) fn log(&self, level: TraceLevel, component: &str, msg: String) {
        self.trace.borrow_mut().log(self.now, level, component, msg);
    }
}

/// The controller manager.
#[derive(Clone)]
pub struct Kcm {
    cursor: u64,
    elector: LeaderElector,
    queue: WorkQueue<WorkItem>,
    cfg: KcmConfig,
    /// Metrics exposed to the classifiers.
    pub metrics: KcmMetrics,
    trace: TraceHandle,
    rng: Rng,
    last_resync: Option<u64>,
    last_node_check: u64,
    last_gc: u64,
    /// First time a NoExecute taint was observed per node.
    taint_seen: HashMap<String, u64>,
    /// First time a pod was observed bound to a nonexistent node.
    ghost_seen: HashMap<String, u64>,
    /// Pending-create expectations per ReplicaSet key.
    expectations: HashMap<String, Expectation>,
    /// Scratch buffer for owner-key probes in the watch router (one
    /// probe per routed pod event; the buffer outlives them all).
    owner_key_scratch: String,
    /// Interned `(namespace, name)` pool backing [`WorkItem`] keys.
    names: Interner,
    needs_resync: bool,
}

impl std::fmt::Debug for Kcm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kcm")
            .field("leader", &self.elector.is_leader())
            .field("queue", &self.queue.len())
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl Kcm {
    /// Creates a controller manager watching from the apiserver's current
    /// event head.
    pub fn new(identity: &str, cfg: KcmConfig, api: &ApiServer, trace: TraceHandle, rng: Rng) -> Kcm {
        Kcm {
            cursor: api.watch_head(),
            elector: LeaderElector::new("kcm-leader", identity, Channel::KcmToApi),
            queue: WorkQueue::new()
                .with_telemetry("kcm.queue.depth_hw", "kcm.reconcile.wait_ms"),
            cfg,
            metrics: KcmMetrics::default(),
            trace,
            rng,
            last_resync: None,
            last_node_check: 0,
            last_gc: 0,
            taint_seen: HashMap::new(),
            ghost_seen: HashMap::new(),
            expectations: HashMap::new(),
            owner_key_scratch: String::new(),
            names: Interner::new(),
            needs_resync: true,
        }
    }

    /// True while this instance holds the Kcm leader lease.
    pub fn is_leader(&self) -> bool {
        self.elector.is_leader()
    }

    /// Reconcile backlog depth (control-plane load indicator).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Runs one controller-manager step at simulated time `now`.
    /// Repoints the shared trace buffer (fork-the-world gives each forked
    /// run its own trace so siblings never interleave log lines).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    pub fn step(&mut self, api: &mut ApiServer, now: u64) {
        if !self.elector.step(api, now) {
            // Not leading: drop event backlog; full resync on re-election.
            self.cursor = api.watch_head();
            self.needs_resync = true;
            return;
        }

        // Watch events → work items.
        let (events, next) = api.poll_events(self.cursor);
        self.cursor = next;
        for ev in &events {
            self.route_event(api, &ev.key, ev.kind, ev.object.as_deref(), now);
        }

        // Periodic full resync (and resync on leadership gain).
        let due = self
            .last_resync
            .map(|t| now.saturating_sub(t) >= self.cfg.resync_interval_ms)
            .unwrap_or(true);
        if due || self.needs_resync {
            self.resync(api, now);
            self.last_resync = Some(now);
            self.needs_resync = false;
        }

        let mut metrics = self.metrics;
        {
            let mut ctx = Ctx {
                api,
                now,
                rng: &mut self.rng,
                trace: &self.trace,
                metrics: &mut metrics,
                cfg: &self.cfg,
                expectations: &mut self.expectations,
            };

            // Singleton loops on their own cadence.
            if now.saturating_sub(self.last_node_check) >= self.cfg.node_check_interval_ms {
                self.last_node_check = now;
                node_lifecycle::tick(&mut ctx, &mut self.taint_seen);
            }
            if now.saturating_sub(self.last_gc) >= self.cfg.gc_interval_ms {
                self.last_gc = now;
                gc::tick(&mut ctx, &mut self.ghost_seen);
            }
        }

        // Drain the work queue within the step budget.
        for _ in 0..self.cfg.step_budget {
            let Some(item) = self.queue.pop_ready(now) else { break };
            let mut ctx = Ctx {
                api,
                now,
                rng: &mut self.rng,
                trace: &self.trace,
                metrics: &mut metrics,
                cfg: &self.cfg,
                expectations: &mut self.expectations,
            };
            let result = match &item {
                WorkItem::Deployment(ns, n) => deployment::reconcile(&mut ctx, ns, n),
                WorkItem::ReplicaSet(ns, n) => replicaset::reconcile(&mut ctx, ns, n),
                WorkItem::DaemonSet(ns, n) => daemonset::reconcile(&mut ctx, ns, n),
                WorkItem::Service(ns, n) => endpoints::reconcile(&mut ctx, ns, n),
                WorkItem::Hpa(ns, n) => hpa::reconcile(&mut ctx, ns, n),
            };
            match result {
                Ok(()) => self.queue.forget_failures(&item),
                Err(msg) => {
                    metrics.reconcile_errors = metrics.reconcile_errors.saturating_add(1);
                    self.trace.borrow_mut().log(
                        now,
                        TraceLevel::Warn,
                        "kcm",
                        format!("reconcile {item:?} failed: {msg}; backing off"),
                    );
                    self.queue.requeue_failed(item, now);
                }
            }
        }
        self.metrics = metrics;
    }

    fn resync(&mut self, api: &mut ApiServer, now: u64) {
        for obj in api.list(Kind::Deployment, None) {
            let item =
                WorkItem::Deployment(self.names.intern(obj.namespace()), self.names.intern(obj.name()));
            self.queue.enqueue(item, now);
        }
        for obj in api.list(Kind::ReplicaSet, None) {
            let item =
                WorkItem::ReplicaSet(self.names.intern(obj.namespace()), self.names.intern(obj.name()));
            self.queue.enqueue(item, now);
        }
        for obj in api.list(Kind::DaemonSet, None) {
            let item =
                WorkItem::DaemonSet(self.names.intern(obj.namespace()), self.names.intern(obj.name()));
            self.queue.enqueue(item, now);
        }
        for obj in api.list(Kind::Service, None) {
            let item =
                WorkItem::Service(self.names.intern(obj.namespace()), self.names.intern(obj.name()));
            self.queue.enqueue(item, now);
        }
        for obj in api.list(Kind::HorizontalPodAutoscaler, None) {
            let item =
                WorkItem::Hpa(self.names.intern(obj.namespace()), self.names.intern(obj.name()));
            self.queue.enqueue(item, now);
        }
    }

    fn route_event(
        &mut self,
        api: &mut ApiServer,
        key: &str,
        kind: Kind,
        obj: Option<&Object>,
        now: u64,
    ) {
        let Some((ns, name)) = split_key_parts(key) else { return };
        let (ns, name) = (self.names.intern(ns), self.names.intern(name));
        match kind {
            Kind::Pod => {
                // Owner-based routing.
                let mut routed_owner = false;
                if let Some(Object::Pod(p)) = obj {
                    if let Some(ctrl) = p.metadata.controller_ref() {
                        routed_owner = true;
                        match ctrl.kind.as_str() {
                            "ReplicaSet" => {
                                // Creation observed: fulfil expectations.
                                // The probe key is formatted into scratch
                                // (most probes miss — only ReplicaSets
                                // with in-flight creates have an entry).
                                k8s_model::registry_key_into(
                                    &mut self.owner_key_scratch,
                                    Kind::ReplicaSet,
                                    &ns,
                                    &ctrl.name,
                                );
                                if let Some(exp) =
                                    self.expectations.get_mut(&self.owner_key_scratch)
                                {
                                    exp.seen.insert(key.to_owned());
                                }
                                let owner = self.names.intern(&ctrl.name);
                                self
                                .queue
                                .enqueue(WorkItem::ReplicaSet(ns.clone(), owner), now)
                            },
                            "DaemonSet" => {
                                let owner = self.names.intern(&ctrl.name);
                                self
                                .queue
                                .enqueue(WorkItem::DaemonSet(ns.clone(), owner), now)
                            }
                            _ => routed_owner = false,
                        }
                    }
                }
                if !routed_owner {
                    // Orphan or deletion: wake every workload controller in
                    // the namespace (adoption/replacement checks).
                    for rs in api.list(Kind::ReplicaSet, Some(&ns)) {
                        let item = WorkItem::ReplicaSet(ns.clone(), self.names.intern(rs.name()));
                        self.queue.enqueue(item, now);
                    }
                    for ds in api.list(Kind::DaemonSet, Some(&ns)) {
                        let item = WorkItem::DaemonSet(ns.clone(), self.names.intern(ds.name()));
                        self.queue.enqueue(item, now);
                    }
                }
                // Endpoints follow pod readiness.
                for svc in api.list(Kind::Service, Some(&ns)) {
                    let item = WorkItem::Service(ns.clone(), self.names.intern(svc.name()));
                    self.queue.enqueue(item, now);
                }
            }
            Kind::ReplicaSet => {
                self.queue.enqueue(WorkItem::ReplicaSet(ns.clone(), name.clone()), now);
                if let Some(Object::ReplicaSet(rs)) = obj {
                    if let Some(ctrl) = rs.metadata.controller_ref() {
                        if ctrl.kind == "Deployment" {
                            let owner = self.names.intern(&ctrl.name);
                            self.queue.enqueue(WorkItem::Deployment(ns, owner), now);
                        }
                    }
                }
            }
            Kind::Deployment => self.queue.enqueue(WorkItem::Deployment(ns, name), now),
            Kind::DaemonSet => self.queue.enqueue(WorkItem::DaemonSet(ns, name), now),
            Kind::Service => self.queue.enqueue(WorkItem::Service(ns, name), now),
            Kind::Endpoints => self.queue.enqueue(WorkItem::Service(ns, name), now),
            Kind::Node => {
                // A node change affects every DaemonSet.
                for ds in api.list(Kind::DaemonSet, None) {
                    let item = WorkItem::DaemonSet(
                        self.names.intern(ds.namespace()),
                        self.names.intern(ds.name()),
                    );
                    self.queue.enqueue(item, now);
                }
            }
            Kind::HorizontalPodAutoscaler => {
                self.queue.enqueue(WorkItem::Hpa(ns, name), now);
            }
            Kind::ConfigMap => {
                // A refreshed load metric wakes every autoscaler.
                if &*name == hpa::METRICS_CONFIGMAP {
                    for h in api.list(Kind::HorizontalPodAutoscaler, None) {
                        let item = WorkItem::Hpa(
                            self.names.intern(h.namespace()),
                            self.names.intern(h.name()),
                        );
                        self.queue.enqueue(item, now);
                    }
                }
            }
            Kind::Namespace | Kind::Lease => {}
        }
    }
}

/// Splits a registry key into `(namespace, name)`; cluster-scoped keys get
/// an empty namespace.
pub fn split_key(key: &str) -> Option<(String, String)> {
    split_key_parts(key).map(|(ns, n)| (ns.to_owned(), n.to_owned()))
}

/// Borrowed flavor of [`split_key`]: the watch router interns the parts
/// instead of allocating them.
fn split_key_parts(key: &str) -> Option<(&str, &str)> {
    let mut parts = key.strip_prefix("/registry/")?.split('/');
    let _plural = parts.next()?;
    let a = parts.next()?;
    match parts.next() {
        Some(b) => Some((a, b)),
        None => Some(("", a)),
    }
}

/// Generates a pod-name suffix (5 lowercase base-36 characters).
pub(crate) fn name_suffix(rng: &mut Rng) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    (0..5).map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize] as char).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_key_variants() {
        assert_eq!(
            split_key("/registry/pods/default/web-1"),
            Some(("default".into(), "web-1".into()))
        );
        assert_eq!(split_key("/registry/nodes/worker-1"), Some(("".into(), "worker-1".into())));
        assert_eq!(split_key("/other"), None);
    }

    #[test]
    fn suffix_is_deterministic_per_seed() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(1);
        assert_eq!(name_suffix(&mut a), name_suffix(&mut b));
        let s = name_suffix(&mut a);
        assert_eq!(s.len(), 5);
        assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
    }
}
