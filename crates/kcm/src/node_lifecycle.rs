//! The node-lifecycle controller: heartbeat monitoring, NotReady marking,
//! taint-based eviction, and full disruption mode.
//!
//! This loop drives two of the paper's scenarios. The failover workload
//! applies a NoExecute taint and relies on this controller to evict the
//! pods so the ReplicaSet respawns them elsewhere. And the Figure 2 cascade
//! (the GKE webhook outage) starts with heartbeats failing to arrive: nodes
//! are marked NotReady and their pods evicted — unless *every* node is
//! unhealthy, in which case full disruption mode suspends evictions because
//! the fault is probably in the heartbeat reporting itself (§II-D).

use crate::Ctx;
use k8s_model::node::{TAINT_NO_EXECUTE, TAINT_UNREACHABLE};
use k8s_model::{Channel, Kind, Node, Object};
use simkit::TraceLevel;
use std::collections::HashMap;

/// Runs one node-health pass.
pub(crate) fn tick(ctx: &mut Ctx<'_>, taint_seen: &mut HashMap<String, u64>) {
    let node_objs = ctx.api.list(Kind::Node, None);
    let nodes: Vec<&Node> = node_objs
        .iter()
        .filter_map(|o| match &**o {
            Object::Node(n) => Some(n),
            _ => None,
        })
        .collect();
    if nodes.is_empty() {
        return;
    }

    let is_stale = |n: &Node| {
        ctx.now.saturating_sub(n.status.last_heartbeat.max(0) as u64) > ctx.cfg.node_grace_ms
    };
    let unhealthy = nodes.iter().filter(|n| is_stale(n) || !n.status.ready).count();
    let full_disruption =
        ctx.cfg.full_disruption_mode && unhealthy == nodes.len();
    if full_disruption {
        ctx.log(
            TraceLevel::Warn,
            "kcm/node-lifecycle",
            "all nodes unhealthy: entering full disruption mode, evictions suspended".to_owned(),
        );
    }

    for node in nodes.iter().copied() {
        let stale = is_stale(node);
        if stale && node.status.ready {
            let mut marked = node.clone();
            marked.status.ready = false;
            ctx.log(
                TraceLevel::Warn,
                "kcm/node-lifecycle",
                format!("node {} heartbeat stale; marking NotReady", node.metadata.name),
            );
            let _ = ctx.api.update(Channel::KcmToApi, Object::Node(marked));
            continue;
        }
        if stale && !full_disruption && !node.has_unreachable_taint() {
            let mut tainted = node.clone();
            tainted.add_taint(TAINT_UNREACHABLE, TAINT_NO_EXECUTE);
            let _ = ctx.api.update(Channel::KcmToApi, Object::Node(tainted));
        }
        if !stale && node.has_unreachable_taint() {
            let mut healed = node.clone();
            healed.remove_taint(TAINT_UNREACHABLE);
            let _ = ctx.api.update(Channel::KcmToApi, Object::Node(healed));
        }
    }

    // Track how long each node has carried a NoExecute taint; evict the
    // non-tolerating pods once the grace period elapses.
    let mut currently_tainted: Vec<&Node> = Vec::new();
    for node in nodes.iter().copied() {
        if node.has_taint_effect(TAINT_NO_EXECUTE) {
            taint_seen.entry(node.metadata.name.clone()).or_insert(ctx.now);
            currently_tainted.push(node);
        } else {
            taint_seen.remove(node.metadata.name.as_str());
        }
    }

    if full_disruption {
        return;
    }

    for node in currently_tainted {
        let since = taint_seen[node.metadata.name.as_str()];
        if ctx.now.saturating_sub(since) < ctx.cfg.eviction_grace_ms {
            continue;
        }
        let pods = ctx.api.list(Kind::Pod, None);
        for obj in &pods {
            let Object::Pod(pod) = &**obj else { continue };
            if pod.spec.node_name != node.metadata.name || pod.metadata.is_terminating() {
                continue;
            }
            if pod.tolerates(TAINT_UNREACHABLE, TAINT_NO_EXECUTE)
                || node
                    .spec
                    .taints
                    .iter()
                    .any(|t| t.effect == TAINT_NO_EXECUTE && pod.tolerates(&t.key, &t.effect))
            {
                continue;
            }
            ctx.log(
                TraceLevel::Info,
                "kcm/node-lifecycle",
                format!("evicting pod {} from tainted node {}", pod.metadata.name, node.metadata.name),
            );
            let _ = ctx.api.delete(
                Channel::KcmToApi,
                Kind::Pod,
                &pod.metadata.namespace,
                &pod.metadata.name,
            );
            ctx.metrics.pods_evicted += 1;
        }
    }
}

trait NodeExt {
    fn has_unreachable_taint(&self) -> bool;
}

impl NodeExt for Node {
    fn has_unreachable_taint(&self) -> bool {
        self.spec.taints.iter().any(|t| t.key == TAINT_UNREACHABLE)
    }
}
