//! The generative scenario synthesizer.
//!
//! [`generate_program`] composes the scenario primitives
//! ([`mutiny_scenarios::primitives`]) into a seeded workload program: a
//! couple of preinstalled applications, two to four workload fragments
//! (deploys, scale staircases, staged rollouts, node lifecycle events)
//! at accumulating start offsets, and an optional autoscaler. Generation
//! is **pure planning** — it draws only from a [`Rng`] forked off the
//! seed and the program index, touches no world state, and reads no
//! clocks — so the same `(seed, index)` always yields the same program,
//! and a generated scenario's campaign rows are byte-identical at any
//! worker-thread count.

use k8s_cluster::{ClusterConfig, UserOp, World};
use mutiny_scenarios::{primitives, registry, Scenario, ScenarioDef};
use simkit::Rng;

/// Image generated rollout fragments move applications to.
pub const GEN_IMAGE: &str = "registry.local/web:gen";

const GEN_HPA_MIN: i64 = 2;
const GEN_HPA_MAX: i64 = 8;
const GEN_HPA_TARGET_LOAD: i64 = 5;

/// A synthesized workload program: what a generated scenario runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedProgram {
    /// Preinstalled application indexes (always `1..=k`).
    pub apps: Vec<u32>,
    /// The timed op schedule, sorted by offset.
    pub ops: Vec<(u64, UserOp)>,
    /// Whether the scenario installs an autoscaler over `web-1` (and
    /// turns on metric publication).
    pub autoscale: bool,
}

/// Synthesizes the program for generated scenario `index` under `seed`.
pub fn generate_program(seed: u64, index: u64) -> GeneratedProgram {
    let mut rng = Rng::new(seed).fork_n(index);
    let preinstalled = rng.range(1, 3) as u32;
    let apps: Vec<u32> = (1..=preinstalled).collect();

    let fragments = rng.range(2, 4);
    let mut next_new = preinstalled + 1;
    let mut node_fragment_used = false;
    let mut at = 2_000u64;
    let mut ops: Vec<(u64, UserOp)> = Vec::new();

    for _ in 0..fragments {
        // At most one node-lifecycle fragment per program: a second
        // cordon/taint on a 4-worker testbed starves the workload more
        // than it exercises the orchestrator.
        let kinds = if node_fragment_used { 3 } else { 4 };
        match rng.below(kinds) {
            0 => {
                let count = rng.range(1, 2) as u32;
                let replicas = rng.range(1, 3) as i64;
                ops.extend(primitives::deploy(at, 200, next_new, count, replicas));
                next_new += count;
            }
            1 => {
                let index = 1 + rng.below(u64::from(next_new - 1)) as u32;
                let lo = rng.range(2, 3) as i64;
                let hi = lo + rng.range(1, 2) as i64;
                let step_ms = rng.range(4, 8) * 1_000;
                ops.extend(primitives::scale_staircase(at, 100, step_ms, &[index], lo..=hi));
            }
            2 => {
                let index = 1 + rng.below(u64::from(next_new - 1)) as u32;
                ops.extend(primitives::rolling_update(at, 10_000, &[index], GEN_IMAGE));
            }
            _ => {
                node_fragment_used = true;
                // w4 hosts the synthetic client; leave it alone so
                // generated programs keep the service observable.
                let node = format!("w{}", rng.range(1, 3));
                if rng.chance(0.5) {
                    ops.extend(primitives::taint(at, &node));
                } else {
                    ops.extend(primitives::drain(at, &node, 3_000, 4_000, 6));
                }
            }
        }
        at += rng.range(5, 8) * 1_000;
    }
    // Stable sort: fragments already accumulate offsets, but fragments
    // overlap by design (a staircase outlives the gap to the next
    // fragment) and the schedule contract is time order.
    ops.sort_by_key(|(t, _)| *t);

    GeneratedProgram { apps, ops, autoscale: rng.chance(0.25) }
}

/// A registered synthesized scenario.
struct GeneratedScenario {
    name: &'static str,
    apps: &'static [u32],
    ops: Vec<(u64, UserOp)>,
    autoscale: bool,
}

impl ScenarioDef for GeneratedScenario {
    fn name(&self) -> &'static str {
        self.name
    }

    fn preinstalled_apps(&self) -> &'static [u32] {
        self.apps
    }

    fn ops(&self) -> Vec<(u64, UserOp)> {
        self.ops.clone()
    }

    fn configure(&self, cfg: &mut ClusterConfig) {
        if self.autoscale {
            cfg.net.publish_metrics = true;
        }
    }

    fn setup(&self, world: &mut World) {
        if self.autoscale {
            primitives::install_autoscaler(
                world,
                1,
                GEN_HPA_MIN,
                GEN_HPA_MAX,
                GEN_HPA_TARGET_LOAD,
            );
        }
    }
}

/// Synthesizes and registers `n` scenarios named `gen-<seed>-<index>`.
/// Re-registering the same `(n, seed)` in one process resolves to the
/// existing registrations.
///
/// # Errors
///
/// Returns the registry's error when a name collides with a non-generated
/// scenario.
pub fn register_generated(n: u64, seed: u64) -> Result<Vec<Scenario>, String> {
    let mut out = Vec::with_capacity(n as usize);
    for index in 0..n {
        let name: &'static str =
            Box::leak(format!("gen-{seed}-{index}").into_boxed_str());
        let program = generate_program(seed, index);
        let def = GeneratedScenario {
            name,
            apps: Box::leak(program.apps.into_boxed_slice()),
            ops: program.ops,
            autoscale: program.autoscale,
        };
        match registry::register(Box::new(def)) {
            Ok(s) => out.push(s),
            Err(e) => match registry::find(name) {
                Some(s) => out.push(s),
                None => return Err(e),
            },
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_program() {
        for index in 0..8 {
            assert_eq!(generate_program(42, index), generate_program(42, index));
        }
        assert_ne!(generate_program(42, 0), generate_program(43, 0));
    }

    #[test]
    fn programs_are_plausible_workloads() {
        for index in 0..16 {
            let p = generate_program(7, index);
            assert!(!p.apps.is_empty() && p.apps.len() <= 3, "apps: {:?}", p.apps);
            assert_eq!(p.apps, (1..=p.apps.len() as u32).collect::<Vec<_>>());
            assert!(!p.ops.is_empty(), "program {index} has no ops");
            assert!(p.ops.windows(2).all(|w| w[0].0 <= w[1].0), "unsorted: {:?}", p.ops);
            // At most one node-lifecycle fragment, and never the client node.
            let node_ops: Vec<&str> = p
                .ops
                .iter()
                .filter_map(|(_, op)| match op {
                    UserOp::TaintNode { node } | UserOp::CordonNode { node } => {
                        Some(node.as_str())
                    }
                    _ => None,
                })
                .collect();
            assert!(node_ops.len() <= 1, "program {index}: {node_ops:?}");
            assert!(node_ops.iter().all(|n| *n != "w4"), "client node touched");
        }
    }

    #[test]
    fn generated_scenarios_register_and_rerun() {
        let first = register_generated(2, 99_001).unwrap();
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].name(), "gen-99001-0");
        assert_eq!(registry::find("gen-99001-1"), Some(first[1]));
        let again = register_generated(2, 99_001).unwrap();
        assert_eq!(again, first);
    }
}
