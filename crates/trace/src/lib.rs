//! # mutiny-trace — record, replay, and synthesize workload traces
//!
//! The campaign engine's scenarios are *programs*: timed user operations
//! against the simulated cluster. This crate closes the loop around them
//! with three pillars:
//!
//! 1. **Record** ([`record`]): a [`TraceRecorder`] taps the apiserver
//!    request pipeline and captures every user-originated write — verb,
//!    kind, target, and the exact submitted object bytes — into a
//!    versioned [`TraceFileMsg`] ([`file`]). Any golden or campaign run
//!    is exportable (`MUTINY_TRACE_EXPORT=<dir>` at the bench layer).
//! 2. **Replay** ([`replay`]): a [`TraceScenario`] loads a trace file
//!    and re-submits its events through the same request pipeline at the
//!    recorded sim-clock offsets. Registered scenarios join the campaign
//!    cross-product unchanged (`MUTINY_TRACES=<dir>`).
//! 3. **Generate** ([`generate`]): a seeded synthesizer composes the
//!    scenario primitives (`mutiny_scenarios::primitives`) into
//!    deterministic workload programs (`MUTINY_GEN=<n>:<seed>`).
//!    Generation is pure planning — the same seed always yields the same
//!    program, so generated campaign rows stay byte-identical across
//!    worker-thread counts.
//!
//! ```no_run
//! use k8s_cluster::ClusterConfig;
//! use mutiny_trace::{export_scenario, replay::TraceScenario};
//! use std::path::Path;
//!
//! let dir = Path::new("traces");
//! let path = export_scenario(&ClusterConfig::default(), mutiny_scenarios::DEPLOY, 1, dir)
//!     .expect("export");
//! let scenario = TraceScenario::from_file(&path).expect("load");
//! ```

pub mod file;
pub mod generate;
pub mod record;
pub mod replay;

pub use file::{read_trace, write_trace, TraceError, TraceEventMsg, TraceFileMsg};
pub use file::{TRACE_EXT, TRACE_MAGIC, TRACE_VERSION};
pub use generate::{generate_program, register_generated, GeneratedProgram};
pub use record::{export_scenario, record_scenario, TraceRecorder};
pub use replay::{register_traces, TraceScenario};

use k8s_cluster::World;
use k8s_model::Kind;

/// A canonical digest of the apiserver's object store: every object's
/// registry key plus its encoded bytes, sorted by key. Two worlds whose
/// digests are equal ended in the same state — the round-trip tests
/// compare a recorded run against its replay with this.
pub fn world_digest(world: &mut World) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for kind in Kind::ALL {
        world.api.for_each(kind, None, |obj| out.push((obj.key(), obj.encode())));
    }
    out.sort();
    out
}
