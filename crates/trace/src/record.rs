//! The trace recorder: a [`RequestTap`] that captures user-originated
//! writes, and the golden-run exporter built on it.
//!
//! The recorder taps the request pipeline at submission time — before the
//! wire verdict, validation, or admission — so a trace holds exactly what
//! the client sent, successful or not (a rejected write is part of the
//! workload too: it feeds the audit log the paper's Figure 7 counts).
//! Pre-workload traffic (bootstrap creates, scenario setup) is excluded
//! by the `t0` threshold; replay reproduces that phase from the recorded
//! scenario metadata instead.

use crate::file::{TraceError, TraceEventMsg, TraceFileMsg, TRACE_VERSION};
use k8s_apiserver::{RequestTap, SubmittedWrite};
use k8s_cluster::{ClusterConfig, RunStats, WORKLOAD_START_MS};
use k8s_model::{Channel, ChannelId, NoopInterceptor};
use mutiny_scenarios::Scenario;
use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;

/// Records every user-channel write at or after a sim-time threshold.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    threshold: u64,
    events: Vec<TraceEventMsg>,
}

impl TraceRecorder {
    /// A recorder capturing user writes at sim times `>= threshold`
    /// (normally [`WORKLOAD_START_MS`], so setup traffic is excluded).
    pub fn new(threshold: u64) -> TraceRecorder {
        TraceRecorder { threshold, events: Vec::new() }
    }

    /// Takes the recorded events (oldest first), leaving the recorder
    /// empty.
    pub fn take_events(&mut self) -> Vec<TraceEventMsg> {
        std::mem::take(&mut self.events)
    }
}

impl RequestTap for TraceRecorder {
    fn on_submit(&mut self, write: &SubmittedWrite<'_>) {
        if write.at < self.threshold {
            return;
        }
        if !ChannelId::from(Channel::UserToApi).matches(write.channel) {
            return;
        }
        let mut ev = TraceEventMsg::default();
        ev.at = write.at as i64;
        ev.channel = write.channel.to_string();
        ev.verb = write.op.to_string();
        ev.kind = write.kind.to_string();
        ev.namespace = write.namespace.to_string();
        ev.name = write.name.to_string();
        if let Some(obj) = write.object {
            ev.payload = obj.encode();
        }
        self.events.push(ev);
    }
}

/// Runs one golden (fault-free) run of `scenario` with a recorder tapped
/// in and returns the resulting trace plus the run's statistics.
pub fn record_scenario(
    cluster: &ClusterConfig,
    scenario: Scenario,
    seed: u64,
) -> (TraceFileMsg, RunStats) {
    let cfg = ClusterConfig { seed, ..cluster.clone() };
    let mut world = scenario.build_world(&cfg, Rc::new(RefCell::new(NoopInterceptor)));
    let recorder = Rc::new(RefCell::new(TraceRecorder::new(WORKLOAD_START_MS)));
    world.api.set_request_tap(recorder.clone());
    scenario.schedule(&mut world);
    world.run_to_horizon();

    let mut trace = TraceFileMsg::default();
    trace.version = TRACE_VERSION;
    trace.source = scenario.name().to_string();
    trace.apps = scenario.preinstalled_apps().iter().map(u32::to_string).collect();
    trace.t0 = WORKLOAD_START_MS as i64;
    trace.events = recorder.borrow_mut().take_events();
    (trace, world.stats)
}

/// Records `scenario` (one golden run at `seed`) and writes the trace to
/// `<dir>/<scenario>.trace`. Returns the written path.
///
/// # Errors
///
/// [`TraceError::Io`] on filesystem failure.
pub fn export_scenario(
    cluster: &ClusterConfig,
    scenario: Scenario,
    seed: u64,
    dir: &Path,
) -> Result<std::path::PathBuf, TraceError> {
    let (trace, _) = record_scenario(cluster, scenario, seed);
    let path = dir.join(format!("{}.{}", scenario.name(), crate::file::TRACE_EXT));
    crate::file::write_trace(&path, &trace)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_captures_deploy_workload() {
        let (trace, _) = record_scenario(&ClusterConfig::default(), mutiny_scenarios::DEPLOY, 11);
        // Three CreateApp ops → three Deployments + three Services.
        assert_eq!(trace.events.len(), 6);
        assert!(trace.events.iter().all(|e| e.at >= WORKLOAD_START_MS as i64));
        assert!(trace.events.iter().all(|e| e.verb == "create"));
        assert!(trace.events.iter().all(|e| !e.payload.is_empty()));
        assert_eq!(trace.source, "deploy");
        assert_eq!(trace.apps, vec!["1".to_string()]);
        // Events are recorded in submission order.
        assert!(trace.events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn threshold_excludes_setup_traffic() {
        // A zero-threshold recorder installed before `prepare` sees the
        // bootstrap writes — proving the default threshold is what keeps
        // them out of exported traces.
        let mut world = k8s_cluster::World::new(
            ClusterConfig::default(),
            Rc::new(RefCell::new(NoopInterceptor)),
        );
        let recorder = Rc::new(RefCell::new(TraceRecorder::new(0)));
        world.api.set_request_tap(recorder.clone());
        world.prepare(&[1]);
        let events = recorder.borrow_mut().take_events();
        assert!(!events.is_empty(), "expected bootstrap user writes");
        assert!(
            events.iter().all(|e| e.at < WORKLOAD_START_MS as i64),
            "all prepare traffic predates the workload window"
        );
    }
}
