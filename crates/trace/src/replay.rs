//! Replaying a recorded trace as a first-class campaign scenario.
//!
//! A [`TraceScenario`] wraps one trace file: its preinstalled apps come
//! from the recorded provenance, and its op schedule re-submits every
//! recorded write ([`UserOp::Replay`]) at the recorded offset from the
//! workload start. Because replayed payloads enter the request pipeline
//! exactly where the originals did — pre-wire, pre-admission — a replay
//! under the same seed and cluster config reproduces the recorded run,
//! and a replay under a fault campaign subjects the *recorded* workload
//! to new faults.
//!
//! Scenario-level `configure`/`setup` hooks (e.g. hpa-autoscale's metric
//! publication and HPA object) are not captured in a trace; traces of
//! such scenarios replay the user writes only.

use crate::file::{read_trace, TraceError, TraceFileMsg, TRACE_EXT};
use k8s_cluster::UserOp;
use k8s_model::{Kind, Op};
use mutiny_scenarios::{registry, Scenario, ScenarioDef};
use std::path::Path;
use std::sync::Arc;

/// A scenario that re-submits the writes recorded in a trace file.
pub struct TraceScenario {
    name: &'static str,
    apps: &'static [u32],
    ops: Vec<(u64, UserOp)>,
}

fn parse_verb(s: &str) -> Option<Op> {
    [Op::Create, Op::Update, Op::Delete].into_iter().find(|op| op.to_string() == s)
}

impl TraceScenario {
    /// Builds a scenario named `trace-<stem>` from a trace file.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] / [`TraceError::Malformed`] when the file does
    /// not read back as a valid trace.
    pub fn from_file(path: &Path) -> Result<TraceScenario, TraceError> {
        let trace = read_trace(path)?;
        let stem = path
            .file_stem()
            .ok_or_else(|| TraceError::Malformed(format!("{}: no file stem", path.display())))?
            .to_string_lossy();
        TraceScenario::from_trace(&format!("trace-{stem}"), &trace)
    }

    /// Builds a scenario from an in-memory trace under an explicit name.
    ///
    /// # Errors
    ///
    /// [`TraceError::Malformed`] when an event names an unknown verb or
    /// kind, or the provenance lists a non-numeric app index.
    pub fn from_trace(name: &str, trace: &TraceFileMsg) -> Result<TraceScenario, TraceError> {
        let apps: Vec<u32> = trace
            .apps
            .iter()
            .map(|a| {
                a.parse().map_err(|_| TraceError::Malformed(format!("bad app index {a:?}")))
            })
            .collect::<Result<_, _>>()?;
        let t0 = u64::try_from(trace.t0).unwrap_or_default();
        let mut ops = Vec::with_capacity(trace.events.len());
        for ev in &trace.events {
            let verb = parse_verb(&ev.verb)
                .ok_or_else(|| TraceError::Malformed(format!("unknown verb {:?}", ev.verb)))?;
            let kind = Kind::parse(&ev.kind)
                .ok_or_else(|| TraceError::Malformed(format!("unknown kind {:?}", ev.kind)))?;
            let at = u64::try_from(ev.at).unwrap_or_default().saturating_sub(t0);
            let payload: Option<Arc<[u8]>> = match verb {
                Op::Delete => None,
                Op::Create | Op::Update => Some(Arc::from(ev.payload.as_slice())),
            };
            ops.push((
                at,
                UserOp::Replay {
                    verb,
                    kind,
                    namespace: ev.namespace.clone(),
                    name: ev.name.clone(),
                    payload,
                },
            ));
        }
        Ok(TraceScenario {
            name: Box::leak(name.to_owned().into_boxed_str()),
            apps: Box::leak(apps.into_boxed_slice()),
            ops,
        })
    }
}

impl ScenarioDef for TraceScenario {
    fn name(&self) -> &'static str {
        self.name
    }

    fn preinstalled_apps(&self) -> &'static [u32] {
        self.apps
    }

    fn ops(&self) -> Vec<(u64, UserOp)> {
        self.ops.clone()
    }
}

/// Registers every `*.trace` file in `dir` (sorted by file name, so
/// registry order is stable) and returns the scenario handles. A name
/// that is already registered — e.g. the same directory scanned twice in
/// one process — resolves to the existing registration.
///
/// # Errors
///
/// [`TraceError`] on an unreadable directory or malformed trace;
/// [`TraceError::Malformed`] when a registration fails for any reason
/// other than the name already existing.
pub fn register_traces(dir: &Path) -> Result<Vec<Scenario>, TraceError> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == TRACE_EXT))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let scenario = TraceScenario::from_file(&path)?;
        let name = scenario.name;
        match registry::register(Box::new(scenario)) {
            Ok(s) => out.push(s),
            Err(e) => match registry::find(name) {
                Some(s) => out.push(s),
                None => return Err(TraceError::Malformed(e)),
            },
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::TraceEventMsg;
    use crate::file::TRACE_VERSION;

    fn trace_with(events: Vec<TraceEventMsg>) -> TraceFileMsg {
        let mut t = TraceFileMsg::default();
        t.version = TRACE_VERSION;
        t.source = "deploy".into();
        t.apps = vec!["1".into(), "2".into()];
        t.t0 = 35_000;
        t.events = events;
        t
    }

    fn event(at: i64, verb: &str, kind: &str, name: &str, payload: Vec<u8>) -> TraceEventMsg {
        let mut ev = TraceEventMsg::default();
        ev.at = at;
        ev.channel = "user->apiserver".into();
        ev.verb = verb.into();
        ev.kind = kind.into();
        ev.namespace = "default".into();
        ev.name = name.into();
        ev.payload = payload;
        ev
    }

    #[test]
    fn ops_are_offsets_from_t0() {
        let t = trace_with(vec![
            event(37_000, "create", "Deployment", "web-3", vec![1, 2]),
            event(40_500, "delete", "Service", "web-3-svc", Vec::new()),
        ]);
        let sc = TraceScenario::from_trace("trace-unit", &t).unwrap();
        assert_eq!(sc.preinstalled_apps(), &[1, 2]);
        let ops = sc.ops();
        assert_eq!(ops.len(), 2);
        let (at0, UserOp::Replay { verb, payload, .. }) = &ops[0] else {
            panic!("expected replay op");
        };
        assert_eq!(*at0, 2_000);
        assert_eq!(*verb, Op::Create);
        assert_eq!(payload.as_deref(), Some(&[1u8, 2][..]));
        let (at1, UserOp::Replay { verb, payload, .. }) = &ops[1] else {
            panic!("expected replay op");
        };
        assert_eq!(*at1, 5_500);
        assert_eq!(*verb, Op::Delete);
        assert!(payload.is_none());
    }

    #[test]
    fn unknown_verbs_and_kinds_are_rejected() {
        let t = trace_with(vec![event(36_000, "patch", "Deployment", "x", Vec::new())]);
        assert!(matches!(
            TraceScenario::from_trace("trace-bad-verb", &t),
            Err(TraceError::Malformed(_))
        ));
        let t = trace_with(vec![event(36_000, "create", "Gizmo", "x", Vec::new())]);
        assert!(matches!(
            TraceScenario::from_trace("trace-bad-kind", &t),
            Err(TraceError::Malformed(_))
        ));
    }

    #[test]
    fn directory_registration_is_sorted_and_idempotent() {
        let dir = std::env::temp_dir().join("mutiny_trace_register_test");
        std::fs::remove_dir_all(&dir).ok();
        for name in ["b-second", "a-first"] {
            let t = trace_with(vec![event(36_000, "create", "Deployment", "web-3", vec![7])]);
            crate::file::write_trace(&dir.join(format!("{name}.{TRACE_EXT}")), &t).unwrap();
        }
        // A stray non-trace file is ignored.
        std::fs::write(dir.join("notes.txt"), b"not a trace").unwrap();

        let first = register_traces(&dir).unwrap();
        let names: Vec<&str> = first.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["trace-a-first", "trace-b-second"]);
        assert_eq!(registry::find("trace-a-first"), Some(first[0]));

        // Scanning again resolves to the existing registrations.
        let second = register_traces(&dir).unwrap();
        assert_eq!(second, first);
        std::fs::remove_dir_all(&dir).ok();
    }
}
