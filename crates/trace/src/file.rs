//! The versioned trace file format.
//!
//! A trace file is the magic prefix [`TRACE_MAGIC`] followed by one
//! `protowire`-encoded [`TraceFileMsg`]. Payloads are the exact bytes the
//! recorded client submitted (pre-wire, pre-admission), so replaying them
//! through the request pipeline reproduces the recorded run.

use protowire::{proto_message, Message};
use std::io::{Read, Write};
use std::path::Path;

/// Current trace file format version.
pub const TRACE_VERSION: i64 = 1;

/// File magic: identifies a mutiny trace and its container revision.
pub const TRACE_MAGIC: &[u8; 8] = b"MTRACE1\n";

/// File extension trace scenarios are discovered by.
pub const TRACE_EXT: &str = "trace";

proto_message! {
    /// One recorded user-originated write.
    pub struct TraceEventMsg {
        1 => at: int,
        2 => channel: str,
        3 => verb: str,
        4 => kind: str,
        5 => namespace: str,
        6 => name: str,
        7 => payload: bytes,
    }
}

proto_message! {
    /// A recorded run: provenance plus the event list.
    pub struct TraceFileMsg {
        1 => version: int,
        2 => source: str,
        3 => apps: repstr,
        4 => t0: int,
        5 => events: rep<TraceEventMsg>,
    }
}

/// Errors reading or writing trace files.
#[derive(Debug)]
pub enum TraceError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not a (readable) mutiny trace; the message names the
    /// problem.
    Malformed(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace io error: {e}"),
            TraceError::Malformed(m) => write!(f, "malformed trace: {m}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

/// Writes a trace file (magic + encoded message), creating parent
/// directories as needed.
///
/// # Errors
///
/// [`TraceError::Io`] on filesystem failure.
pub fn write_trace(path: &Path, trace: &TraceFileMsg) -> Result<(), TraceError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(TRACE_MAGIC)?;
    f.write_all(&trace.encode())?;
    Ok(())
}

/// Reads and validates a trace file.
///
/// # Errors
///
/// [`TraceError::Io`] on filesystem failure, [`TraceError::Malformed`]
/// when the magic, version, or encoding does not check out.
pub fn read_trace(path: &Path) -> Result<TraceFileMsg, TraceError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    let Some(body) = bytes.strip_prefix(TRACE_MAGIC) else {
        return Err(TraceError::Malformed(format!("{}: missing trace magic", path.display())));
    };
    let trace = TraceFileMsg::decode(body)
        .map_err(|e| TraceError::Malformed(format!("{}: {e:?}", path.display())))?;
    if trace.version != TRACE_VERSION {
        return Err(TraceError::Malformed(format!(
            "{}: unsupported trace version {} (expected {TRACE_VERSION})",
            path.display(),
            trace.version
        )));
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceFileMsg {
        let mut t = TraceFileMsg::default();
        t.version = TRACE_VERSION;
        t.source = "deploy".into();
        t.apps = vec!["1".into()];
        t.t0 = 35_000;
        let mut ev = TraceEventMsg::default();
        ev.at = 37_000;
        ev.channel = "user->apiserver".into();
        ev.verb = "create".into();
        ev.kind = "Deployment".into();
        ev.namespace = "default".into();
        ev.name = "web-2".into();
        ev.payload = vec![1, 2, 3];
        t.events.push(ev);
        t
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mutiny_trace_file_test");
        let path = dir.join("sample.trace");
        let t = sample();
        write_trace(&path, &t).unwrap();
        let back = read_trace(&path).unwrap();
        assert_eq!(back, t);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let dir = std::env::temp_dir().join("mutiny_trace_magic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("junk.trace");
        std::fs::write(&path, b"not a trace").unwrap();
        assert!(matches!(read_trace(&path), Err(TraceError::Malformed(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
