//! Byte-level corruption helpers for serialization-protocol injections.
//!
//! The campaign's third *where* variant targets "the serialization protocol
//! bytes of a message" (§IV-A): a corrupted buffer may become undecodable
//! (the apiserver then deletes the resource), may decode with a value moved
//! into a different field (tag corruption), or may decode into a
//! valid-but-wrong object. These helpers perform the byte edits; callers
//! choose positions (deterministically, from the campaign RNG).

/// Returns a copy of `bytes` with bit `bit` (0 = least significant) of byte
/// `index` flipped. Out-of-range positions return the input unchanged, so
/// campaign generation never panics on short buffers.
pub fn flip_bit(bytes: &[u8], index: usize, bit: u8) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if let Some(b) = out.get_mut(index) {
        *b ^= 1u8 << (bit % 8);
    }
    out
}

/// Returns a copy of `bytes` with byte `index` overwritten by `value`.
pub fn set_byte(bytes: &[u8], index: usize, value: u8) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if let Some(b) = out.get_mut(index) {
        *b = value;
    }
    out
}

/// Returns a copy of `bytes` truncated to `len` bytes (models a partially
/// written value).
pub fn truncate(bytes: &[u8], len: usize) -> Vec<u8> {
    bytes[..len.min(bytes.len())].to_vec()
}

/// Flips bit positions in an *integer value* the way the campaign does for
/// recorded integer fields: the paper flips the 1st and the 5th bit because
/// most Protobuf varints fit one byte whose 8th bit is the continuation bit.
pub fn flip_int_bit(value: i64, bit: u8) -> i64 {
    value ^ (1i64 << (bit % 63))
}

/// Flips the least-significant bit of character `index` of a string, the
/// campaign's string mutation (stays a valid one-byte character for ASCII
/// input). Returns `None` when the string is too short or the flip would not
/// change the string.
pub fn flip_char_lsb(s: &str, index: usize) -> Option<String> {
    let mut bytes = s.as_bytes().to_vec();
    let b = bytes.get_mut(index)?;
    *b ^= 1;
    let out = String::from_utf8(bytes).ok()?;
    if out == s {
        None
    } else {
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_bit_flips_and_restores() {
        let b = vec![0b0000_0000u8, 0b1111_1111];
        let once = flip_bit(&b, 0, 4);
        assert_eq!(once[0], 0b0001_0000);
        let twice = flip_bit(&once, 0, 4);
        assert_eq!(twice, b);
    }

    #[test]
    fn flip_bit_out_of_range_is_noop() {
        let b = vec![1u8, 2];
        assert_eq!(flip_bit(&b, 10, 0), b);
    }

    #[test]
    fn set_byte_works() {
        assert_eq!(set_byte(&[1, 2, 3], 1, 9), vec![1, 9, 3]);
        assert_eq!(set_byte(&[1], 5, 9), vec![1]);
    }

    #[test]
    fn truncate_clamps() {
        assert_eq!(truncate(&[1, 2, 3], 2), vec![1, 2]);
        assert_eq!(truncate(&[1, 2, 3], 9), vec![1, 2, 3]);
    }

    #[test]
    fn int_bit_positions_match_campaign() {
        // Paper §IV-C: flip the 1st (value 1) and 5th (value 16) bits.
        assert_eq!(flip_int_bit(2, 0), 3);
        assert_eq!(flip_int_bit(2, 4), 18);
        assert_eq!(flip_int_bit(18, 4), 2);
    }

    #[test]
    fn char_lsb_flip_produces_valid_ascii() {
        assert_eq!(flip_char_lsb("web", 0).as_deref(), Some("veb"));
        assert_eq!(flip_char_lsb("web", 1).as_deref(), Some("wdb"));
        assert_eq!(flip_char_lsb("", 0), None);
    }

    #[test]
    fn char_lsb_flip_rejects_invalid_utf8_results() {
        // Multi-byte character where the flip breaks UTF-8.
        let s = "é"; // 0xC3 0xA9
        // Flipping LSB of the continuation byte keeps it valid or not; just
        // ensure no panic and a Some/None answer.
        let _ = flip_char_lsb(s, 1);
        // Flipping the lead byte's LSB gives 0xC2, still a valid lead byte;
        // result must still be valid UTF-8 when Some.
        if let Some(out) = flip_char_lsb(s, 0) {
            assert!(std::str::from_utf8(out.as_bytes()).is_ok());
        }
    }
}
