//! Leaf-field reflection: enumerate, read and mutate message fields by path.
//!
//! The injection campaign (paper §IV-C) records the fields of every resource
//! instance written to the data store during a nominal workload, then
//! generates one experiment per (field × mutation × occurrence). That
//! requires a way to list the leaf fields of a decoded object and to apply a
//! mutation to one of them without hand-written per-field code. The
//! [`Reflect`] trait — implemented by [`proto_message!`](crate::proto_message)
//! — provides exactly that.
//!
//! Paths mirror Kubernetes JSON notation:
//!
//! * `metadata.name` — nested message field;
//! * `spec.replicas` — integer leaf;
//! * `metadata.labels['app']` — map entry;
//! * `spec.containers[0].image` — repeated-message element field.

use std::fmt;

/// A dynamically typed leaf value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer leaf.
    Int(i64),
    /// UTF-8 string leaf (also map entries and repeated strings).
    Str(String),
    /// Boolean leaf.
    Bool(bool),
}

impl Value {
    /// The corresponding [`FieldType`].
    pub fn field_type(&self) -> FieldType {
        match self {
            Value::Int(_) => FieldType::Int,
            Value::Str(_) => FieldType::Str,
            Value::Bool(_) => FieldType::Bool,
        }
    }

    /// Integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// String payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// The scalar type of a leaf field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// Integer leaf.
    Int,
    /// String leaf.
    Str,
    /// Boolean leaf.
    Bool,
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldType::Int => write!(f, "int"),
            FieldType::Str => write!(f, "string"),
            FieldType::Bool => write!(f, "bool"),
        }
    }
}

/// Message types whose leaf fields can be enumerated and mutated by path.
pub trait Reflect {
    /// Calls `visit(path, value)` for every leaf field, including leaves
    /// holding default values. `prefix` is prepended to every path.
    fn visit_fields(&self, prefix: &str, visit: &mut dyn FnMut(&str, Value));

    /// Reads the leaf at `path`, or `None` if the path does not resolve.
    fn get_field(&self, path: &str) -> Option<Value>;

    /// Writes the leaf at `path`. Returns `false` if the path does not
    /// resolve or the value type does not match the field type.
    fn set_field(&mut self, path: &str, value: Value) -> bool;

    /// Convenience: collects `(path, value)` pairs for all leaves.
    fn field_list(&self) -> Vec<(String, Value)> {
        let mut out = Vec::new();
        self.visit_fields("", &mut |p, v| out.push((p.to_owned(), v)));
        out
    }
}

/// One step of a parsed path component.
#[derive(Debug, Clone, PartialEq)]
pub enum Accessor {
    /// `name[3]` — repeated-field index.
    Index(usize),
    /// `name['key']` — map key.
    Key(String),
}

impl Accessor {
    /// The index, if this is an [`Accessor::Index`].
    pub fn as_index(&self) -> Option<usize> {
        match self {
            Accessor::Index(i) => Some(*i),
            _ => None,
        }
    }

    /// The key, if this is an [`Accessor::Key`].
    pub fn as_key(&self) -> Option<&str> {
        match self {
            Accessor::Key(k) => Some(k),
            _ => None,
        }
    }
}

/// Splits the head component off a path.
///
/// Returns `(name, accessor, rest)` where `rest` excludes the separating
/// dot. Returns `None` on malformed input.
///
/// ```
/// use protowire::reflect::{split_path, Accessor};
///
/// let (name, acc, rest) = split_path("labels['app'].x").unwrap();
/// assert_eq!(name, "labels");
/// assert_eq!(acc, Some(Accessor::Key("app".into())));
/// assert_eq!(rest, "x");
/// ```
pub fn split_path(path: &str) -> Option<(&str, Option<Accessor>, &str)> {
    if path.is_empty() {
        return None;
    }
    let bytes = path.as_bytes();
    let mut name_end = path.len();
    for (i, b) in bytes.iter().enumerate() {
        if *b == b'.' || *b == b'[' {
            name_end = i;
            break;
        }
    }
    let name = &path[..name_end];
    if name.is_empty() {
        return None;
    }
    let mut rest_start = name_end;
    let mut accessor = None;
    if bytes.get(name_end) == Some(&b'[') {
        let close = path[name_end..].find(']')? + name_end;
        let inner = &path[name_end + 1..close];
        accessor = Some(if let Some(stripped) = inner.strip_prefix('\'') {
            Accessor::Key(stripped.strip_suffix('\'')?.to_owned())
        } else {
            Accessor::Index(inner.parse().ok()?)
        });
        rest_start = close + 1;
    }
    let rest = match bytes.get(rest_start) {
        None => "",
        Some(b'.') => &path[rest_start + 1..],
        Some(_) => return None,
    };
    Some((name, accessor, rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_simple() {
        assert_eq!(split_path("name"), Some(("name", None, "")));
        assert_eq!(split_path("spec.replicas"), Some(("spec", None, "replicas")));
    }

    #[test]
    fn split_index() {
        let (n, a, r) = split_path("containers[2].image").unwrap();
        assert_eq!(n, "containers");
        assert_eq!(a, Some(Accessor::Index(2)));
        assert_eq!(r, "image");
    }

    #[test]
    fn split_key() {
        let (n, a, r) = split_path("labels['app.kubernetes.io/name']").unwrap();
        assert_eq!(n, "labels");
        assert_eq!(a, Some(Accessor::Key("app.kubernetes.io/name".into())));
        assert_eq!(r, "");
    }

    #[test]
    fn split_rejects_malformed() {
        assert_eq!(split_path(""), None);
        assert_eq!(split_path(".x"), None);
        assert_eq!(split_path("a[unclosed"), None);
        assert_eq!(split_path("a[1]x"), None);
        assert_eq!(split_path("a[not_a_number]"), None);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(3).as_str(), None);
        assert_eq!(Value::Int(3).field_type(), FieldType::Int);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Str("a".into()).to_string(), "\"a\"");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(FieldType::Str.to_string(), "string");
    }
}
