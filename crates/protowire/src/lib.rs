//! # protowire — Protobuf-compatible wire codec with field reflection
//!
//! Kubernetes serializes API objects with Protobuf before storing them in
//! etcd. The Mutiny paper exploits two properties of that encoding:
//!
//! 1. most encoded integers occupy a single byte whose 8th bit is a
//!    continuation bit — which is why the campaign flips the 1st and 5th bit
//!    of integer values (§IV-C);
//! 2. corrupting raw serialization bytes can *move* a value from one field to
//!    another or render the object undecodable, in which case the apiserver
//!    deletes it (§V-C1).
//!
//! This crate implements that wire format from scratch — base-128 varints,
//! `(field_number << 3) | wire_type` tags, length-delimited payloads — plus:
//!
//! * [`Message`] — encode/decode for generated message types;
//! * [`Reflect`](reflect::Reflect) — leaf-field enumeration and path-based
//!   get/set (`spec.template.metadata.labels['app']`), which the injection
//!   campaign uses to enumerate recorded fields and apply value mutations;
//! * [`proto_message!`] — the macro that generates both impls;
//! * [`corrupt`] — the byte-level corruption helpers used for
//!   serialization-protocol injections.
//!
//! ```
//! use protowire::{proto_message, Message};
//! use protowire::reflect::{Reflect, Value};
//!
//! proto_message! {
//!     /// A tiny example message.
//!     pub struct Sample {
//!         1 => name: str,
//!         2 => replicas: int,
//!         3 => paused: bool,
//!     }
//! }
//!
//! let mut s = Sample::default();
//! s.name = "web".into();
//! s.replicas = 2;
//! let bytes = s.encode();
//! let back = Sample::decode(&bytes).unwrap();
//! assert_eq!(back, s);
//! assert_eq!(back.get_field("replicas"), Some(Value::Int(2)));
//! ```

pub mod corrupt;
pub mod reflect;
#[macro_use]
mod macros;

use std::fmt;

/// Protobuf wire types supported by this codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireType {
    /// Wire type 0: base-128 varint.
    Varint,
    /// Wire type 2: length-delimited (strings, bytes, nested messages).
    Len,
}

impl WireType {
    /// Converts the low three tag bits into a wire type.
    pub fn from_bits(bits: u64) -> Result<WireType, WireError> {
        match bits {
            0 => Ok(WireType::Varint),
            2 => Ok(WireType::Len),
            other => Err(WireError::UnknownWireType(other as u8)),
        }
    }

    /// The low three tag bits for this wire type.
    pub fn bits(self) -> u64 {
        match self {
            WireType::Varint => 0,
            WireType::Len => 2,
        }
    }
}

/// Decoding failure. Any of these makes an object "undecryptable" in the
/// paper's terminology; the apiserver reacts by deleting the stored object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended in the middle of a varint or payload.
    Truncated,
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// A tag carried an unsupported wire type.
    UnknownWireType(u8),
    /// A tag carried field number zero, which Protobuf forbids.
    ZeroFieldNumber,
    /// A string payload was not valid UTF-8.
    InvalidUtf8,
    /// A length-delimited payload ran past the end of the buffer.
    LengthOverrun,
    /// Messages nested deeper than the decoder permits.
    TooDeep,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            WireError::UnknownWireType(w) => write!(f, "unknown wire type {w}"),
            WireError::ZeroFieldNumber => write!(f, "field number zero"),
            WireError::InvalidUtf8 => write!(f, "string payload is not valid utf-8"),
            WireError::LengthOverrun => write!(f, "length-delimited payload overruns buffer"),
            WireError::TooDeep => write!(f, "message nesting too deep"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum nesting depth accepted by the decoder; deeper input is rejected
/// rather than risking stack exhaustion on corrupted bytes.
pub const MAX_DEPTH: u32 = 32;

/// Appends `v` to `buf` as a base-128 varint (little-endian groups of seven
/// bits; the 8th bit of each byte is the continuation bit).
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Appends a field tag.
pub fn put_tag(buf: &mut Vec<u8>, field: u32, wt: WireType) {
    put_varint(buf, (u64::from(field) << 3) | wt.bits());
}

/// Appends a length-delimited byte payload with its tag.
pub fn put_bytes(buf: &mut Vec<u8>, field: u32, payload: &[u8]) {
    put_tag(buf, field, WireType::Len);
    put_varint(buf, payload.len() as u64);
    buf.extend_from_slice(payload);
}

/// Appends a string field with its tag.
pub fn put_str(buf: &mut Vec<u8>, field: u32, s: &str) {
    put_bytes(buf, field, s.as_bytes());
}

/// Appends an integer field (two's-complement varint, like Protobuf int64).
pub fn put_int(buf: &mut Vec<u8>, field: u32, v: i64) {
    put_tag(buf, field, WireType::Varint);
    put_varint(buf, v as u64);
}

/// Appends a bool field.
pub fn put_bool(buf: &mut Vec<u8>, field: u32, v: bool) {
    put_tag(buf, field, WireType::Varint);
    put_varint(buf, u64::from(v));
}

// --- reusable encode scratch -----------------------------------------------
//
// Nested messages are length-delimited, so the encoder needs a staging
// buffer per nesting level to learn the payload length before writing the
// tag. Allocating a fresh `Vec` per nested message made serialization the
// apiserver's hottest allocation site (every object encode touches it at
// least twice per request). The pool below keeps one warm buffer per
// nesting level per thread and hands them out LIFO, so steady-state
// encoding performs no allocations at all.

use std::cell::RefCell;

thread_local! {
    static ENCODE_SCRATCH: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Buffers kept warm per thread; deeper nesting still works, the excess
/// buffers are simply dropped instead of pooled.
const SCRATCH_POOL_LIMIT: usize = 64;

/// Runs `f` with a cleared scratch buffer borrowed from the thread-local
/// pool, returning the buffer for reuse afterwards.
pub fn with_encode_scratch<R>(f: impl FnOnce(&mut Vec<u8>) -> R) -> R {
    let mut buf = ENCODE_SCRATCH.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    buf.clear();
    let out = f(&mut buf);
    ENCODE_SCRATCH.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < SCRATCH_POOL_LIMIT {
            pool.push(buf);
        }
    });
    out
}

/// Appends a nested message field (tag + length + payload) staging the
/// payload in pooled scratch instead of a fresh allocation.
pub fn put_msg<M: Message>(buf: &mut Vec<u8>, field: u32, msg: &M) {
    with_encode_scratch(|tmp| {
        msg.encode_into(tmp);
        put_bytes(buf, field, tmp);
    });
}

/// A cursor over an encoded buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    depth: u32,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0, depth: 0 }
    }

    fn with_depth(buf: &'a [u8], depth: u32) -> Self {
        Reader { buf, pos: 0, depth }
    }

    /// True when the cursor has consumed the whole buffer.
    pub fn is_done(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Reads one varint.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
            self.pos += 1;
            if shift >= 64 {
                return Err(WireError::VarintOverflow);
            }
            // The 10th byte may only contribute one bit.
            if shift == 63 && byte > 1 {
                return Err(WireError::VarintOverflow);
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a field tag; returns `(field_number, wire_type)`.
    pub fn tag(&mut self) -> Result<(u32, WireType), WireError> {
        let raw = self.varint()?;
        let field = (raw >> 3) as u32;
        if field == 0 {
            return Err(WireError::ZeroFieldNumber);
        }
        Ok((field, WireType::from_bits(raw & 0x7)?))
    }

    /// Reads a length-delimited payload.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.varint()? as usize;
        let end = self.pos.checked_add(len).ok_or(WireError::LengthOverrun)?;
        if end > self.buf.len() {
            return Err(WireError::LengthOverrun);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads a string payload, validating UTF-8.
    pub fn string(&mut self) -> Result<String, WireError> {
        let b = self.bytes()?;
        std::str::from_utf8(b).map(str::to_owned).map_err(|_| WireError::InvalidUtf8)
    }

    /// Creates a nested reader over a length-delimited payload.
    pub fn nested(&mut self) -> Result<Reader<'a>, WireError> {
        if self.depth + 1 > MAX_DEPTH {
            return Err(WireError::TooDeep);
        }
        let depth = self.depth + 1;
        Ok(Reader::with_depth(self.bytes()?, depth))
    }

    /// Skips a payload of the given wire type (unknown fields).
    pub fn skip(&mut self, wt: WireType) -> Result<(), WireError> {
        match wt {
            WireType::Varint => {
                self.varint()?;
            }
            WireType::Len => {
                self.bytes()?;
            }
        }
        Ok(())
    }
}

/// A message type that can round-trip through the wire format.
pub trait Message: Default + Clone + fmt::Debug + PartialEq {
    /// Appends the encoded form of `self` to `buf`.
    fn encode_into(&self, buf: &mut Vec<u8>);

    /// Decodes a message from a reader positioned at its first tag.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when the input is truncated, carries an
    /// unsupported wire type, nests too deeply, or holds invalid UTF-8 —
    /// i.e. when the stored object is *undecryptable*.
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Encodes `self` into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        self.encode_into(&mut buf);
        buf
    }

    /// Encodes `self` into a shared, refcounted buffer (`Arc<[u8]>`).
    ///
    /// The encoding is staged in the pooled per-thread scratch, so the
    /// only allocation is the exactly-sized `Arc` itself — the buffer can
    /// then flow through stores, watch logs and deferred queues as
    /// refcount bumps instead of copies. This is the steady-state encode
    /// for values headed into `etcd_sim` (its store holds `Arc<[u8]>`).
    fn encode_shared(&self) -> std::sync::Arc<[u8]> {
        with_encode_scratch(|buf| {
            self.encode_into(buf);
            std::sync::Arc::from(&buf[..])
        })
    }

    /// Decodes a message from a byte slice, requiring full consumption.
    ///
    /// # Errors
    ///
    /// See [`Message::decode_from`].
    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let msg = Self::decode_from(&mut r)?;
        if r.is_done() {
            Ok(msg)
        } else {
            Err(WireError::Truncated)
        }
    }
}

/// Decodes map entries (`map<string,string>` is a repeated nested message
/// with key = field 1 and value = field 2).
pub fn decode_map_entry(r: &mut Reader<'_>) -> Result<(String, String), WireError> {
    let mut sub = r.nested()?;
    let mut key = String::new();
    let mut val = String::new();
    while !sub.is_done() {
        let (f, wt) = sub.tag()?;
        match (f, wt) {
            (1, WireType::Len) => key = sub.string()?,
            (2, WireType::Len) => val = sub.string()?,
            _ => sub.skip(wt)?,
        }
    }
    Ok((key, val))
}

/// Encodes one map entry (staged in pooled scratch, no allocation on the
/// steady-state path).
pub fn put_map_entry(buf: &mut Vec<u8>, field: u32, key: &str, val: &str) {
    with_encode_scratch(|entry| {
        put_str(entry, 1, key);
        put_str(entry, 2, val);
        put_bytes(buf, field, entry);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_pool_nests_and_returns_cleared_buffers() {
        with_encode_scratch(|a| {
            a.push(1);
            with_encode_scratch(|b| {
                b.push(2);
                assert_eq!(b.as_slice(), &[2]);
            });
            assert_eq!(a.as_slice(), &[1]);
        });
        with_encode_scratch(|a| assert!(a.is_empty(), "pooled buffer not cleared"));
    }

    #[test]
    fn pooled_encode_is_stable_across_reuse() {
        let mut first = Vec::new();
        put_map_entry(&mut first, 4, "app", "web");
        let mut second = Vec::new();
        put_map_entry(&mut second, 4, "app", "web");
        assert_eq!(first, second);
    }

    #[test]
    fn encode_shared_matches_encode() {
        // The shared encoding must be byte-for-byte the plain encoding —
        // it only changes who owns the buffer, never its contents — and
        // repeated calls must stay stable across scratch-pool reuse.
        let mut buf = Vec::new();
        put_map_entry(&mut buf, 4, "app", "web");
        put_str(&mut buf, 2, "hello");

        #[derive(Debug, Clone, Default, PartialEq)]
        struct Raw(Vec<u8>);
        impl Message for Raw {
            fn encode_into(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.0);
            }
            fn decode_from(_r: &mut Reader<'_>) -> Result<Self, WireError> {
                unreachable!("encode-only test type")
            }
        }
        let raw = Raw(buf);
        let shared = raw.encode_shared();
        assert_eq!(&shared[..], raw.encode().as_slice());
        assert_eq!(&raw.encode_shared()[..], &shared[..]);
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.is_done());
        }
    }

    #[test]
    fn small_ints_are_one_byte_with_continuation_bit_clear() {
        // The property the paper's bit-flip positions rely on (§IV-C).
        for v in 0u64..128 {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), 1);
            assert_eq!(buf[0] & 0x80, 0);
        }
        let mut buf = Vec::new();
        put_varint(&mut buf, 128);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf[0] & 0x80, 0x80);
    }

    #[test]
    fn truncated_varint_errors() {
        let buf = [0x80u8, 0x80];
        let mut r = Reader::new(&buf);
        assert_eq!(r.varint(), Err(WireError::Truncated));
    }

    #[test]
    fn varint_overflow_detected() {
        let buf = [0xffu8; 11];
        let mut r = Reader::new(&buf);
        assert_eq!(r.varint(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn tag_rejects_field_zero_and_bad_wiretype() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 0); // field 0, wiretype 0
        assert_eq!(Reader::new(&buf).tag(), Err(WireError::ZeroFieldNumber));

        let mut buf = Vec::new();
        put_varint(&mut buf, (1 << 3) | 5); // fixed32: unsupported
        assert_eq!(Reader::new(&buf).tag(), Err(WireError::UnknownWireType(5)));
    }

    #[test]
    fn bytes_overrun_detected() {
        let mut buf = Vec::new();
        put_tag(&mut buf, 1, WireType::Len);
        put_varint(&mut buf, 100); // claims 100 bytes, provides none
        let mut r = Reader::new(&buf);
        r.tag().unwrap();
        assert_eq!(r.bytes(), Err(WireError::LengthOverrun));
    }

    #[test]
    fn string_rejects_invalid_utf8() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, 1, &[0xff, 0xfe]);
        let mut r = Reader::new(&buf);
        r.tag().unwrap();
        assert_eq!(r.string(), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn map_entry_roundtrip() {
        let mut buf = Vec::new();
        put_map_entry(&mut buf, 4, "app", "web");
        let mut r = Reader::new(&buf);
        let (f, wt) = r.tag().unwrap();
        assert_eq!((f, wt), (4, WireType::Len));
        let (k, v) = decode_map_entry(&mut r).unwrap();
        assert_eq!((k.as_str(), v.as_str()), ("app", "web"));
    }

    #[test]
    fn negative_int_roundtrip() {
        let mut buf = Vec::new();
        put_int(&mut buf, 1, -5);
        let mut r = Reader::new(&buf);
        let _ = r.tag().unwrap();
        assert_eq!(r.varint().unwrap() as i64, -5);
    }

    #[test]
    fn skip_both_wire_types() {
        let mut buf = Vec::new();
        put_int(&mut buf, 1, 7);
        put_str(&mut buf, 2, "hello");
        put_int(&mut buf, 3, 9);
        let mut r = Reader::new(&buf);
        let (_, wt) = r.tag().unwrap();
        r.skip(wt).unwrap();
        let (_, wt) = r.tag().unwrap();
        r.skip(wt).unwrap();
        let (f, _) = r.tag().unwrap();
        assert_eq!(f, 3);
    }

    #[test]
    fn depth_limit_enforced() {
        // Build MAX_DEPTH+1 nested length-delimited layers.
        let mut inner = vec![];
        for _ in 0..=MAX_DEPTH {
            let mut outer = Vec::new();
            put_bytes(&mut outer, 1, &inner);
            inner = outer;
        }
        let mut r = Reader::new(&inner);
        let mut depth_hit = false;
        // Walk down until the limit trips.
        fn walk(r: &mut Reader<'_>, hit: &mut bool) {
            while !r.is_done() {
                match r.tag() {
                    Ok((_, WireType::Len)) => match r.nested() {
                        Ok(mut sub) => walk(&mut sub, hit),
                        Err(WireError::TooDeep) => {
                            *hit = true;
                            return;
                        }
                        Err(_) => return,
                    },
                    _ => return,
                }
            }
        }
        walk(&mut r, &mut depth_hit);
        assert!(depth_hit);
    }
}
