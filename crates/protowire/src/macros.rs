//! The [`proto_message!`] macro: declarative message definitions.
//!
//! One declaration generates the struct, its [`Message`](crate::Message)
//! encode/decode impl, and its [`Reflect`](crate::reflect::Reflect) impl, so
//! every resource kind in the Kubernetes model automatically supports both
//! wire round-tripping and campaign-style field enumeration/mutation.
//!
//! Field kinds:
//!
//! | kind          | Rust type                    | wire form                 |
//! |---------------|------------------------------|---------------------------|
//! | `int`         | `i64`                        | varint (skipped if 0)     |
//! | `str`         | `String`                     | len-delimited (if non-"") |
//! | `bool`        | `bool`                       | varint (skipped if false) |
//! | `map`         | `BTreeMap<String, String>`   | repeated `{1:k, 2:v}`     |
//! | `repstr`      | `Vec<String>`                | repeated len-delimited    |
//! | `bytes`       | `Vec<u8>`                    | len-delimited (if non-[]) |
//! | `msg<T>`      | `T`                          | len-delimited (always)    |
//! | `rep<T>`      | `Vec<T>`                     | repeated len-delimited    |
//!
//! An optional `@ "jsonName"` sets the reflection path segment (defaults to
//! the Rust field name), mirroring Kubernetes' camelCase JSON names.

/// Declares a Protobuf-style message with wire codec and reflection.
///
/// ```
/// use protowire::{proto_message, Message};
/// use protowire::reflect::{Reflect, Value};
///
/// proto_message! {
///     /// Reference to an owning object.
///     pub struct Owner {
///         1 => kind: str,
///         2 => uid: str,
///     }
/// }
///
/// proto_message! {
///     /// Example with every field kind.
///     pub struct Demo {
///         1 => name: str,
///         2 => replicas: int,
///         3 => paused: bool,
///         4 => labels: map,
///         5 => args: repstr,
///         6 => owner @ "ownerRef": msg<Owner>,
///         7 => extras: rep<Owner>,
///     }
/// }
///
/// let mut d = Demo::default();
/// d.labels.insert("app".into(), "web".into());
/// d.owner.uid = "u-1".into();
/// let bytes = d.encode();
/// assert_eq!(Demo::decode(&bytes).unwrap(), d);
/// assert_eq!(d.get_field("ownerRef.uid"), Some(Value::Str("u-1".into())));
/// assert!(d.clone().set_field("labels['app']", Value::Str("db".into())));
/// ```
#[macro_export]
macro_rules! proto_message {
    // ---- public entry -----------------------------------------------------
    (
        $(#[$meta:meta])*
        pub struct $name:ident {
            $(
                $(#[$fmeta:meta])*
                $num:literal => $fname:ident $(@ $json:literal)? : $kind:ident $(< $ty:ident >)?
            ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Default, PartialEq)]
        pub struct $name {
            $(
                $(#[$fmeta])*
                pub $fname: $crate::proto_message!(@fieldty $kind $(, $ty)?),
            )+
        }

        impl $crate::Message for $name {
            fn encode_into(&self, buf: &mut Vec<u8>) {
                $( $crate::proto_message!(@enc self, buf, $num, $fname, $kind $(, $ty)?); )+
            }

            fn decode_from(r: &mut $crate::Reader<'_>) -> Result<Self, $crate::WireError> {
                let mut out = <Self as Default>::default();
                while !r.is_done() {
                    let (field, wt) = r.tag()?;
                    match field {
                        $( $num => { $crate::proto_message!(@dec out, r, wt, $fname, $kind $(, $ty)?); } )+
                        _ => r.skip(wt)?,
                    }
                }
                Ok(out)
            }
        }

        impl $crate::reflect::Reflect for $name {
            fn visit_fields(
                &self,
                prefix: &str,
                visit: &mut dyn FnMut(&str, $crate::reflect::Value),
            ) {
                $(
                    $crate::proto_message!(
                        @vis self, prefix, visit, $fname,
                        $crate::proto_message!(@json $fname $($json)?),
                        $kind $(, $ty)?
                    );
                )+
            }

            fn get_field(&self, path: &str) -> Option<$crate::reflect::Value> {
                let (head, acc, rest) = $crate::reflect::split_path(path)?;
                match head {
                    $(
                        h if h == $crate::proto_message!(@json $fname $($json)?) => {
                            $crate::proto_message!(@get self, acc, rest, $fname, $kind $(, $ty)?)
                        }
                    )+
                    _ => None,
                }
            }

            fn set_field(&mut self, path: &str, value: $crate::reflect::Value) -> bool {
                let Some((head, acc, rest)) = $crate::reflect::split_path(path) else {
                    return false;
                };
                match head {
                    $(
                        h if h == $crate::proto_message!(@json $fname $($json)?) => {
                            $crate::proto_message!(@set self, acc, rest, value, $fname, $kind $(, $ty)?)
                        }
                    )+
                    _ => false,
                }
            }
        }
    };

    // ---- json path name ----------------------------------------------------
    (@json $f:ident $json:literal) => { $json };
    (@json $f:ident) => { stringify!($f) };

    // ---- field Rust types ---------------------------------------------------
    (@fieldty int) => { i64 };
    (@fieldty str) => { ::std::string::String };
    (@fieldty bool) => { bool };
    (@fieldty map) => { ::std::collections::BTreeMap<::std::string::String, ::std::string::String> };
    (@fieldty repstr) => { ::std::vec::Vec<::std::string::String> };
    (@fieldty bytes) => { ::std::vec::Vec<u8> };
    (@fieldty msg, $ty:ident) => { $ty };
    (@fieldty rep, $ty:ident) => { ::std::vec::Vec<$ty> };

    // ---- encode --------------------------------------------------------------
    (@enc $s:expr, $b:expr, $num:literal, $f:ident, int) => {
        if $s.$f != 0 { $crate::put_int($b, $num, $s.$f); }
    };
    (@enc $s:expr, $b:expr, $num:literal, $f:ident, str) => {
        if !$s.$f.is_empty() { $crate::put_str($b, $num, &$s.$f); }
    };
    (@enc $s:expr, $b:expr, $num:literal, $f:ident, bool) => {
        if $s.$f { $crate::put_bool($b, $num, true); }
    };
    (@enc $s:expr, $b:expr, $num:literal, $f:ident, map) => {
        for (k, v) in &$s.$f { $crate::put_map_entry($b, $num, k, v); }
    };
    (@enc $s:expr, $b:expr, $num:literal, $f:ident, repstr) => {
        for v in &$s.$f { $crate::put_str($b, $num, v); }
    };
    (@enc $s:expr, $b:expr, $num:literal, $f:ident, bytes) => {
        if !$s.$f.is_empty() { $crate::put_bytes($b, $num, &$s.$f); }
    };
    (@enc $s:expr, $b:expr, $num:literal, $f:ident, msg, $ty:ident) => {
        $crate::put_msg($b, $num, &$s.$f);
    };
    (@enc $s:expr, $b:expr, $num:literal, $f:ident, rep, $ty:ident) => {
        for m in &$s.$f {
            $crate::put_msg($b, $num, m);
        }
    };

    // ---- decode ----------------------------------------------------------------
    (@dec $o:ident, $r:ident, $wt:ident, $f:ident, int) => {
        if $wt == $crate::WireType::Varint { $o.$f = $r.varint()? as i64; } else { $r.skip($wt)?; }
    };
    (@dec $o:ident, $r:ident, $wt:ident, $f:ident, str) => {
        if $wt == $crate::WireType::Len { $o.$f = $r.string()?; } else { $r.skip($wt)?; }
    };
    (@dec $o:ident, $r:ident, $wt:ident, $f:ident, bool) => {
        if $wt == $crate::WireType::Varint { $o.$f = $r.varint()? != 0; } else { $r.skip($wt)?; }
    };
    (@dec $o:ident, $r:ident, $wt:ident, $f:ident, map) => {
        if $wt == $crate::WireType::Len {
            let (k, v) = $crate::decode_map_entry($r)?;
            $o.$f.insert(k, v);
        } else { $r.skip($wt)?; }
    };
    (@dec $o:ident, $r:ident, $wt:ident, $f:ident, repstr) => {
        if $wt == $crate::WireType::Len { $o.$f.push($r.string()?); } else { $r.skip($wt)?; }
    };
    (@dec $o:ident, $r:ident, $wt:ident, $f:ident, bytes) => {
        if $wt == $crate::WireType::Len { $o.$f = $r.bytes()?.to_vec(); } else { $r.skip($wt)?; }
    };
    (@dec $o:ident, $r:ident, $wt:ident, $f:ident, msg, $ty:ident) => {
        if $wt == $crate::WireType::Len {
            let mut sub = $r.nested()?;
            $o.$f = <$ty as $crate::Message>::decode_from(&mut sub)?;
        } else { $r.skip($wt)?; }
    };
    (@dec $o:ident, $r:ident, $wt:ident, $f:ident, rep, $ty:ident) => {
        if $wt == $crate::WireType::Len {
            let mut sub = $r.nested()?;
            $o.$f.push(<$ty as $crate::Message>::decode_from(&mut sub)?);
        } else { $r.skip($wt)?; }
    };

    // ---- visit -------------------------------------------------------------------
    (@vis $s:expr, $p:expr, $v:expr, $f:ident, $jn:expr, int) => {{
        let path = format!("{}{}", $p, $jn);
        $v(&path, $crate::reflect::Value::Int($s.$f));
    }};
    (@vis $s:expr, $p:expr, $v:expr, $f:ident, $jn:expr, str) => {{
        let path = format!("{}{}", $p, $jn);
        $v(&path, $crate::reflect::Value::Str($s.$f.clone()));
    }};
    (@vis $s:expr, $p:expr, $v:expr, $f:ident, $jn:expr, bool) => {{
        let path = format!("{}{}", $p, $jn);
        $v(&path, $crate::reflect::Value::Bool($s.$f));
    }};
    (@vis $s:expr, $p:expr, $v:expr, $f:ident, $jn:expr, map) => {
        for (k, val) in &$s.$f {
            let path = format!("{}{}['{}']", $p, $jn, k);
            $v(&path, $crate::reflect::Value::Str(val.clone()));
        }
    };
    (@vis $s:expr, $p:expr, $v:expr, $f:ident, $jn:expr, repstr) => {
        for (i, val) in $s.$f.iter().enumerate() {
            let path = format!("{}{}[{}]", $p, $jn, i);
            $v(&path, $crate::reflect::Value::Str(val.clone()));
        }
    };
    // Opaque payloads are not reflectable fields: campaign-style field
    // enumeration/mutation skips them by design.
    (@vis $s:expr, $p:expr, $v:expr, $f:ident, $jn:expr, bytes) => {};
    (@vis $s:expr, $p:expr, $v:expr, $f:ident, $jn:expr, msg, $ty:ident) => {{
        let prefix = format!("{}{}.", $p, $jn);
        $crate::reflect::Reflect::visit_fields(&$s.$f, &prefix, $v);
    }};
    (@vis $s:expr, $p:expr, $v:expr, $f:ident, $jn:expr, rep, $ty:ident) => {
        for (i, m) in $s.$f.iter().enumerate() {
            let prefix = format!("{}{}[{}].", $p, $jn, i);
            $crate::reflect::Reflect::visit_fields(m, &prefix, $v);
        }
    };

    // ---- get ------------------------------------------------------------------------
    (@get $s:expr, $acc:expr, $rest:expr, $f:ident, int) => {
        if $acc.is_none() && $rest.is_empty() {
            Some($crate::reflect::Value::Int($s.$f))
        } else { None }
    };
    (@get $s:expr, $acc:expr, $rest:expr, $f:ident, str) => {
        if $acc.is_none() && $rest.is_empty() {
            Some($crate::reflect::Value::Str($s.$f.clone()))
        } else { None }
    };
    (@get $s:expr, $acc:expr, $rest:expr, $f:ident, bool) => {
        if $acc.is_none() && $rest.is_empty() {
            Some($crate::reflect::Value::Bool($s.$f))
        } else { None }
    };
    (@get $s:expr, $acc:expr, $rest:expr, $f:ident, map) => {
        match (&$acc, $rest.is_empty()) {
            (Some($crate::reflect::Accessor::Key(k)), true) => {
                $s.$f.get(k.as_str()).map(|v| $crate::reflect::Value::Str(v.clone()))
            }
            _ => None,
        }
    };
    (@get $s:expr, $acc:expr, $rest:expr, $f:ident, repstr) => {
        match (&$acc, $rest.is_empty()) {
            (Some($crate::reflect::Accessor::Index(i)), true) => {
                $s.$f.get(*i).map(|v| $crate::reflect::Value::Str(v.clone()))
            }
            _ => None,
        }
    };
    (@get $s:expr, $acc:expr, $rest:expr, $f:ident, bytes) => {
        None::<$crate::reflect::Value>
    };
    (@get $s:expr, $acc:expr, $rest:expr, $f:ident, msg, $ty:ident) => {
        if $acc.is_none() {
            $crate::reflect::Reflect::get_field(&$s.$f, $rest)
        } else { None }
    };
    (@get $s:expr, $acc:expr, $rest:expr, $f:ident, rep, $ty:ident) => {
        match &$acc {
            Some($crate::reflect::Accessor::Index(i)) => {
                $s.$f.get(*i).and_then(|m| $crate::reflect::Reflect::get_field(m, $rest))
            }
            _ => None,
        }
    };

    // ---- set -------------------------------------------------------------------------
    (@set $s:expr, $acc:expr, $rest:expr, $val:expr, $f:ident, int) => {
        match ($acc, $rest.is_empty(), $val) {
            (None, true, $crate::reflect::Value::Int(v)) => { $s.$f = v; true }
            _ => false,
        }
    };
    (@set $s:expr, $acc:expr, $rest:expr, $val:expr, $f:ident, str) => {
        match ($acc, $rest.is_empty(), $val) {
            (None, true, $crate::reflect::Value::Str(v)) => { $s.$f = v; true }
            _ => false,
        }
    };
    (@set $s:expr, $acc:expr, $rest:expr, $val:expr, $f:ident, bool) => {
        match ($acc, $rest.is_empty(), $val) {
            (None, true, $crate::reflect::Value::Bool(v)) => { $s.$f = v; true }
            _ => false,
        }
    };
    (@set $s:expr, $acc:expr, $rest:expr, $val:expr, $f:ident, map) => {
        match ($acc, $rest.is_empty(), $val) {
            (Some($crate::reflect::Accessor::Key(k)), true, $crate::reflect::Value::Str(v)) => {
                $s.$f.insert(k, v);
                true
            }
            _ => false,
        }
    };
    (@set $s:expr, $acc:expr, $rest:expr, $val:expr, $f:ident, repstr) => {
        match ($acc, $rest.is_empty(), $val) {
            (Some($crate::reflect::Accessor::Index(i)), true, $crate::reflect::Value::Str(v)) => {
                if let Some(slot) = $s.$f.get_mut(i) { *slot = v; true } else { false }
            }
            _ => false,
        }
    };
    (@set $s:expr, $acc:expr, $rest:expr, $val:expr, $f:ident, bytes) => {
        false
    };
    (@set $s:expr, $acc:expr, $rest:expr, $val:expr, $f:ident, msg, $ty:ident) => {
        match $acc {
            None => $crate::reflect::Reflect::set_field(&mut $s.$f, $rest, $val),
            _ => false,
        }
    };
    (@set $s:expr, $acc:expr, $rest:expr, $val:expr, $f:ident, rep, $ty:ident) => {
        match $acc {
            Some($crate::reflect::Accessor::Index(i)) => {
                match $s.$f.get_mut(i) {
                    Some(m) => $crate::reflect::Reflect::set_field(m, $rest, $val),
                    None => false,
                }
            }
            _ => false,
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::reflect::{Reflect, Value};
    use crate::Message;

    proto_message! {
        /// Nested helper.
        pub struct Inner {
            1 => tag: str,
            2 => count: int,
        }
    }

    proto_message! {
        /// Exercises every field kind.
        pub struct Everything {
            1 => name: str,
            2 => replicas: int,
            3 => paused: bool,
            4 => labels: map,
            5 => args: repstr,
            6 => inner @ "innerMsg": msg<Inner>,
            7 => items: rep<Inner>,
        }
    }

    fn sample() -> Everything {
        let mut e = Everything::default();
        e.name = "web".into();
        e.replicas = 3;
        e.paused = true;
        e.labels.insert("app".into(), "web".into());
        e.labels.insert("tier".into(), "frontend".into());
        e.args = vec!["serve".into(), "--port=80".into()];
        e.inner.tag = "t0".into();
        e.inner.count = 9;
        e.items.push(Inner { tag: "a".into(), count: 1 });
        e.items.push(Inner { tag: "b".into(), count: 2 });
        e
    }

    #[test]
    fn roundtrip_all_kinds() {
        let e = sample();
        let bytes = e.encode();
        assert_eq!(Everything::decode(&bytes).unwrap(), e);
    }

    #[test]
    fn default_scalars_are_skipped_on_wire() {
        let e = Everything::default();
        let bytes = e.encode();
        // Only the always-present nested message remains (tag + len 0).
        assert_eq!(bytes.len(), 2);
    }

    #[test]
    fn visit_enumerates_leaves_with_paths() {
        let e = sample();
        let fields = e.field_list();
        let paths: Vec<&str> = fields.iter().map(|(p, _)| p.as_str()).collect();
        assert!(paths.contains(&"name"));
        assert!(paths.contains(&"replicas"));
        assert!(paths.contains(&"paused"));
        assert!(paths.contains(&"labels['app']"));
        assert!(paths.contains(&"args[1]"));
        assert!(paths.contains(&"innerMsg.tag"));
        assert!(paths.contains(&"items[1].count"));
    }

    #[test]
    fn get_by_path() {
        let e = sample();
        assert_eq!(e.get_field("replicas"), Some(Value::Int(3)));
        assert_eq!(e.get_field("labels['tier']"), Some(Value::Str("frontend".into())));
        assert_eq!(e.get_field("args[0]"), Some(Value::Str("serve".into())));
        assert_eq!(e.get_field("innerMsg.count"), Some(Value::Int(9)));
        assert_eq!(e.get_field("items[1].tag"), Some(Value::Str("b".into())));
        assert_eq!(e.get_field("nope"), None);
        assert_eq!(e.get_field("items[9].tag"), None);
        assert_eq!(e.get_field("labels['missing']"), None);
        // Wrong shapes resolve to None, not panics.
        assert_eq!(e.get_field("replicas[0]"), None);
        assert_eq!(e.get_field("innerMsg"), None);
    }

    #[test]
    fn set_by_path() {
        let mut e = sample();
        assert!(e.set_field("replicas", Value::Int(0)));
        assert_eq!(e.replicas, 0);
        assert!(e.set_field("labels['app']", Value::Str("db".into())));
        assert_eq!(e.labels["app"], "db");
        assert!(e.set_field("items[0].count", Value::Int(42)));
        assert_eq!(e.items[0].count, 42);
        assert!(e.set_field("innerMsg.tag", Value::Str("".into())));
        assert_eq!(e.inner.tag, "");
        // Type mismatches and bad paths are rejected.
        assert!(!e.set_field("replicas", Value::Str("x".into())));
        assert!(!e.set_field("items[7].count", Value::Int(1)));
        assert!(!e.set_field("", Value::Int(1)));
    }

    #[test]
    fn every_visited_path_is_gettable_and_settable() {
        let e = sample();
        for (path, value) in e.field_list() {
            assert_eq!(e.get_field(&path), Some(value.clone()), "path {path}");
            let mut copy = e.clone();
            assert!(copy.set_field(&path, value), "path {path}");
        }
    }

    proto_message! {
        /// Opaque-payload carrier (trace events store encoded objects).
        pub struct Blob {
            1 => label: str,
            2 => data: bytes,
        }
    }

    #[test]
    fn bytes_fields_roundtrip() {
        let b = Blob { label: "obj".into(), data: vec![0, 1, 2, 0xFF, 0] };
        let bytes = b.encode();
        assert_eq!(Blob::decode(&bytes).unwrap(), b);
        // Empty payloads are skipped on the wire like other defaults.
        assert!(Blob::default().encode().is_empty());
    }

    #[test]
    fn bytes_fields_are_opaque_to_reflection() {
        let mut b = Blob { label: "obj".into(), data: vec![1, 2, 3] };
        assert!(b.field_list().iter().all(|(p, _)| !p.starts_with("data")));
        assert_eq!(b.get_field("data"), None);
        assert!(!b.set_field("data", Value::Str("x".into())));
        assert_eq!(b.data, vec![1, 2, 3]);
    }

    #[test]
    fn unknown_fields_are_skipped() {
        let mut bytes = sample().encode();
        // Append an unknown field 99 (varint).
        crate::put_int(&mut bytes, 99, 1234);
        let decoded = Everything::decode(&bytes).unwrap();
        assert_eq!(decoded, sample());
    }

    #[test]
    fn wire_type_mismatch_on_known_field_is_skipped() {
        // Field 2 (replicas) encoded as a string instead of varint.
        let mut bytes = Vec::new();
        crate::put_str(&mut bytes, 2, "oops");
        let decoded = Everything::decode(&bytes).unwrap();
        assert_eq!(decoded.replicas, 0);
    }
}
