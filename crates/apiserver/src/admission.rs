//! The admission chain: identity assignment, generation tracking, and
//! channel-based field ownership (server-side apply).
//!
//! Server Side Apply "prevents unauthorized entities from modifying fields
//! of data structures not owned by them" (§II-D). The simulation enforces
//! ownership by channel: the kubelet may only write pod/node *status*, the
//! scheduler only the pod binding (`spec.nodeName`). Generation bumping
//! implements the versioning gate behind the paper's latent-corruption
//! observation: controllers skip instances whose generation they have
//! already observed.

use k8s_model::{Channel, Object, Op};

/// Admission failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// Identity or optimistic-concurrency conflict.
    Conflict(String),
    /// An update reached admission without the stored object it refers
    /// to — a request-pipeline invariant violation (e.g. the object was
    /// deleted mid-flight). Surfaced as a typed error instead of a
    /// panic so an injected campaign run can never abort the process.
    MissingExisting,
}

/// Runs admission over an incoming object, mutating it into its stored form.
///
/// # Errors
///
/// [`AdmitError::Conflict`] on uid or resourceVersion conflicts.
pub fn admit(
    new_obj: &mut Object,
    existing: Option<&Object>,
    channel: Channel,
    op: Op,
    now: u64,
    uid_counter: &mut u64,
) -> Result<(), AdmitError> {
    match op {
        Op::Create => {
            *uid_counter += 1;
            let meta = new_obj.meta_mut();
            meta.uid = format!("uid-{uid_counter:06}");
            meta.creation_timestamp = now as i64;
            meta.generation = 1;
        }
        Op::Update => {
            let Some(old) = existing else {
                return Err(AdmitError::MissingExisting);
            };

            // Optimistic concurrency: a stale resourceVersion is rejected.
            let new_rv = new_obj.meta().resource_version;
            if new_rv != 0 && new_rv != old.meta().resource_version {
                return Err(AdmitError::Conflict(format!(
                    "resourceVersion {} is stale (current {})",
                    new_rv,
                    old.meta().resource_version
                )));
            }
            // Identity continuity.
            if !new_obj.meta().uid.is_empty() && new_obj.meta().uid != old.meta().uid {
                return Err(AdmitError::Conflict("uid mismatch".into()));
            }

            apply_field_ownership(new_obj, old, channel);

            // Preserve immutable identity fields.
            let old_meta = old.meta().clone();
            let meta = new_obj.meta_mut();
            meta.uid = old_meta.uid;
            meta.creation_timestamp = old_meta.creation_timestamp;

            // Generation: bump only when the spec changed.
            meta.generation = old_meta.generation;
            if spec_changed(new_obj, old) {
                new_obj.meta_mut().generation = old.meta().generation + 1;
            }
        }
        Op::Delete => {}
    }
    Ok(())
}

/// Restricts which parts of the object each channel may modify.
fn apply_field_ownership(new_obj: &mut Object, old: &Object, channel: Channel) {
    match (new_obj, old, channel) {
        // The kubelet owns pod status; spec and labels stay as stored.
        (Object::Pod(new), Object::Pod(old), Channel::KubeletToApi) => {
            new.spec = old.spec.clone();
            new.metadata.labels = old.metadata.labels.clone();
            new.metadata.owner_references = old.metadata.owner_references.clone();
        }
        // The scheduler owns only the binding (spec.nodeName).
        (Object::Pod(new), Object::Pod(old), Channel::SchedulerToApi) => {
            let binding = new.spec.node_name.clone();
            new.spec = old.spec.clone();
            new.spec.node_name = binding;
            new.status = old.status.clone();
            new.metadata.labels = old.metadata.labels.clone();
            new.metadata.owner_references = old.metadata.owner_references.clone();
        }
        // The kubelet owns node status; taints/spec belong to controllers.
        (Object::Node(new), Object::Node(old), Channel::KubeletToApi) => {
            new.spec = old.spec.clone();
        }
        _ => {}
    }
}

/// True when the desired-state portion of the object differs.
pub fn spec_changed(a: &Object, b: &Object) -> bool {
    match (a, b) {
        (Object::Pod(x), Object::Pod(y)) => x.spec != y.spec,
        (Object::ReplicaSet(x), Object::ReplicaSet(y)) => x.spec != y.spec,
        (Object::Deployment(x), Object::Deployment(y)) => x.spec != y.spec,
        (Object::DaemonSet(x), Object::DaemonSet(y)) => x.spec != y.spec,
        (Object::Service(x), Object::Service(y)) => x.spec != y.spec,
        (Object::Endpoints(x), Object::Endpoints(y)) => {
            x.addresses != y.addresses || x.port != y.port
        }
        (Object::Node(x), Object::Node(y)) => x.spec != y.spec,
        (Object::Namespace(x), Object::Namespace(y)) => x.phase != y.phase,
        (Object::ConfigMap(x), Object::ConfigMap(y)) => x.data != y.data,
        (Object::Lease(x), Object::Lease(y)) => x.spec != y.spec,
        _ => true, // kind change: treat as spec change
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_model::{ObjectMeta, Pod};

    fn stored_pod() -> Object {
        let mut p = Pod::default();
        p.metadata = ObjectMeta::named("default", "p");
        p.metadata.uid = "uid-000001".into();
        p.metadata.generation = 1;
        p.metadata.resource_version = 5;
        p.spec.priority = 0;
        Object::Pod(p)
    }

    #[test]
    fn create_assigns_identity() {
        let mut obj = stored_pod();
        obj.meta_mut().uid.clear();
        let mut ctr = 7;
        admit(&mut obj, None, Channel::UserToApi, Op::Create, 123, &mut ctr).unwrap();
        assert_eq!(obj.meta().uid, "uid-000008");
        assert_eq!(obj.meta().creation_timestamp, 123);
        assert_eq!(obj.meta().generation, 1);
    }

    #[test]
    fn stale_resource_version_conflicts() {
        let old = stored_pod();
        let mut new = stored_pod();
        new.meta_mut().resource_version = 3; // stale
        let mut ctr = 0;
        let err = admit(&mut new, Some(&old), Channel::UserToApi, Op::Update, 0, &mut ctr);
        assert!(matches!(err, Err(AdmitError::Conflict(_))));
    }

    #[test]
    fn zero_resource_version_skips_conflict_check() {
        let old = stored_pod();
        let mut new = stored_pod();
        new.meta_mut().resource_version = 0;
        let mut ctr = 0;
        admit(&mut new, Some(&old), Channel::UserToApi, Op::Update, 0, &mut ctr).unwrap();
    }

    #[test]
    fn uid_mismatch_conflicts() {
        let old = stored_pod();
        let mut new = stored_pod();
        new.meta_mut().uid = "uid-999999".into();
        let mut ctr = 0;
        let err = admit(&mut new, Some(&old), Channel::UserToApi, Op::Update, 0, &mut ctr);
        assert!(matches!(err, Err(AdmitError::Conflict(_))));
    }

    #[test]
    fn update_without_existing_is_a_typed_error() {
        let mut new = stored_pod();
        let mut ctr = 0;
        let err = admit(&mut new, None, Channel::UserToApi, Op::Update, 0, &mut ctr);
        assert_eq!(err, Err(AdmitError::MissingExisting));
    }

    #[test]
    fn generation_bumps_only_on_spec_change() {
        let old = stored_pod();
        let mut status_only = stored_pod();
        if let Object::Pod(p) = &mut status_only {
            p.status.phase = "Running".into();
        }
        let mut ctr = 0;
        admit(&mut status_only, Some(&old), Channel::UserToApi, Op::Update, 0, &mut ctr).unwrap();
        assert_eq!(status_only.meta().generation, 1);

        let mut spec_change = stored_pod();
        if let Object::Pod(p) = &mut spec_change {
            p.spec.priority = 9;
        }
        admit(&mut spec_change, Some(&old), Channel::UserToApi, Op::Update, 0, &mut ctr).unwrap();
        assert_eq!(spec_change.meta().generation, 2);
    }

    #[test]
    fn scheduler_channel_only_binds() {
        let old = stored_pod();
        let mut update = stored_pod();
        if let Object::Pod(p) = &mut update {
            p.spec.node_name = "worker-1".into();
            p.spec.priority = 999; // not the scheduler's to set
            p.status.phase = "Hacked".into();
        }
        let mut ctr = 0;
        admit(&mut update, Some(&old), Channel::SchedulerToApi, Op::Update, 0, &mut ctr).unwrap();
        let p = update.as_pod().unwrap();
        assert_eq!(p.spec.node_name, "worker-1");
        assert_eq!(p.spec.priority, 0);
        assert_eq!(p.status.phase, "");
    }

    #[test]
    fn spec_changed_detects_kinds() {
        let a = stored_pod();
        let mut b = stored_pod();
        assert!(!spec_changed(&a, &b));
        if let Object::Pod(p) = &mut b {
            p.spec.node_name = "w".into();
        }
        assert!(spec_changed(&a, &b));
    }
}
