//! # k8s-apiserver — the simulated kube-apiserver
//!
//! The apiserver is the only component that talks to etcd; every other
//! component sends requests to it and observes state changes through its
//! watch stream (§II-C). This simulation reproduces the mechanisms the
//! paper's campaign exercises:
//!
//! * **request flow with two interception points** — component→apiserver
//!   messages cross the wire codec, then authentication-style decode +
//!   validation + admission, then the apiserver→etcd transaction crosses
//!   the codec again. Mutiny hooks both (§IV-A);
//! * **validation** — regex/border-case checks that reject malformed values
//!   but cannot catch valid-but-wrong ones (§V-C4, Table VI), including the
//!   namespace-vs-URL and selector-vs-template checks the paper credits
//!   with preventing infinite pod spawn on the user channel;
//! * **admission** — uid assignment, generation bumping, and channel-based
//!   field ownership (server-side-apply: the kubelet may only write pod
//!   status, the scheduler only the binding);
//! * **watch cache** — reads are served from the decoded cache fed by the
//!   watch stream, which is why at-rest etcd corruption propagates
//!   differently from in-flight corruption (§V-C1). The cache hands out
//!   shared `Rc<Object>` handles: `list`/`get`/watch delivery are
//!   refcount bumps, and consumers clone an object only when they
//!   actually mutate it — the decoded twin of the store's `Arc<[u8]>`
//!   zero-copy values;
//! * **undecryptable-resource deletion** — objects whose stored bytes no
//!   longer decode are deleted to protect list operations (§II-D);
//! * **audit log** — records per-request outcomes, the data behind the
//!   paper's user-unawareness finding (F4, Figure 7).

pub mod admission;
pub mod audit;
pub mod intern;
pub mod leader;
pub mod policy;
pub mod validation;
pub mod workqueue;

pub use audit::{AuditLog, AuditRecord, RequestResult};
pub use leader::LeaderElector;
pub use policy::{
    AdmissionPolicy, IntegrityAction, IntegrityChecker, IntegrityMetrics, PolicyCtx,
};

use etcd_sim::{Bytes, Etcd, EtcdError};
use k8s_model::{
    registry_key, registry_key_into, registry_prefix_into, AdmitCtx, Channel, ChannelId,
    Interceptor, Kind, MsgCtx, Object, Op, WireVerdict,
};
use simkit::{Trace, TraceLevel};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide decode-cache hit counter (every apiserver instance feeds
/// it, so campaign workers aggregate without plumbing).
static DECODE_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
/// Process-wide decode-cache miss counter (syncs that had to decode while
/// the cache was enabled).
static DECODE_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Cumulative decode-cache `(hits, misses)` across every apiserver in the
/// process — the campaign-throughput bench reports the hit rate from this.
pub fn decode_cache_stats() -> (u64, u64) {
    (DECODE_CACHE_HITS.load(Ordering::Relaxed), DECODE_CACHE_MISSES.load(Ordering::Relaxed))
}

/// Resets the process-wide decode-cache counters (bench setup).
pub fn reset_decode_cache_stats() {
    DECODE_CACHE_HITS.store(0, Ordering::Relaxed);
    DECODE_CACHE_MISSES.store(0, Ordering::Relaxed);
}

/// True unless `MUTINY_DECODE_CACHE=0` disables the revision-keyed decode
/// cache (the determinism tests diff both modes byte-for-byte).
fn decode_cache_enabled() -> bool {
    std::env::var("MUTINY_DECODE_CACHE").map(|v| v != "0").unwrap_or(true)
}

/// Static telemetry key tables: per-channel metric names resolved to
/// `&'static str` so the instrumented hot paths never format a string,
/// enabled or not.
mod tele {
    use k8s_model::{ChannelClass, WireVerdict};

    const CHANNELS: usize = 5;

    fn chan_idx(class: ChannelClass) -> usize {
        match class {
            ChannelClass::ApiToEtcd => 0,
            ChannelClass::KcmToApi => 1,
            ChannelClass::SchedulerToApi => 2,
            ChannelClass::KubeletToApi => 3,
            ChannelClass::UserToApi => 4,
        }
    }

    /// Admission-verdict counter key for a request on `class`.
    pub fn req_key(class: ChannelClass, ok: bool) -> &'static str {
        const T: [[&str; 2]; CHANNELS] = [
            ["apiserver.request.etcd.rejected", "apiserver.request.etcd.ok"],
            ["apiserver.request.kcm.rejected", "apiserver.request.kcm.ok"],
            ["apiserver.request.scheduler.rejected", "apiserver.request.scheduler.ok"],
            ["apiserver.request.kubelet.rejected", "apiserver.request.kubelet.ok"],
            ["apiserver.request.user.rejected", "apiserver.request.user.ok"],
        ];
        T[chan_idx(class)][usize::from(ok)]
    }

    /// Wire-verdict counter key for a message on `class`: what the fault
    /// interceptor decided (delivered / replaced / dropped / delayed /
    /// duplicated), per `ChannelClass`.
    pub fn wire_key(class: ChannelClass, verdict: &WireVerdict) -> &'static str {
        const T: [[&str; 5]; CHANNELS] = [
            [
                "wire.etcd.delivered",
                "wire.etcd.replaced",
                "wire.etcd.dropped",
                "wire.etcd.delayed",
                "wire.etcd.duplicated",
            ],
            [
                "wire.kcm.delivered",
                "wire.kcm.replaced",
                "wire.kcm.dropped",
                "wire.kcm.delayed",
                "wire.kcm.duplicated",
            ],
            [
                "wire.scheduler.delivered",
                "wire.scheduler.replaced",
                "wire.scheduler.dropped",
                "wire.scheduler.delayed",
                "wire.scheduler.duplicated",
            ],
            [
                "wire.kubelet.delivered",
                "wire.kubelet.replaced",
                "wire.kubelet.dropped",
                "wire.kubelet.delayed",
                "wire.kubelet.duplicated",
            ],
            [
                "wire.user.delivered",
                "wire.user.replaced",
                "wire.user.dropped",
                "wire.user.delayed",
                "wire.user.duplicated",
            ],
        ];
        let v = match verdict {
            WireVerdict::Pass => 0,
            WireVerdict::Replace(_) => 1,
            WireVerdict::Drop => 2,
            WireVerdict::Delay(_) => 3,
            WireVerdict::Duplicate(_) => 4,
        };
        T[chan_idx(class)][v]
    }
}

thread_local! {
    /// Per-thread scratch for registry-key probes: `get`/`list`/`count`
    /// look keys up far more often than they store them, so the key is
    /// formatted into this reusable buffer instead of a fresh `String`.
    static KEY_SCRATCH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Runs `f` with the thread's key-scratch buffer. The buffer is *moved*
/// out of the thread-local for the duration of `f` (and put back after),
/// so the `RefCell` borrow never spans caller code — re-entrant use
/// (e.g. a `for_each` callback reading a second apiserver on the same
/// thread) just pays one fresh allocation instead of panicking.
fn with_key_scratch<R>(f: impl FnOnce(&mut String) -> R) -> R {
    let mut buf = KEY_SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()));
    let out = f(&mut buf);
    KEY_SCRATCH.with(|s| *s.borrow_mut() = buf);
    out
}

/// Errors returned to API clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// No such object.
    NotFound,
    /// Create of an existing object.
    AlreadyExists,
    /// Validation rejected the request (message names the rule).
    Invalid(String),
    /// Optimistic-concurrency or identity conflict.
    Conflict(String),
    /// The request payload could not be decoded.
    Undecodable,
    /// The data store rejected the transaction (disk full).
    StoreUnavailable,
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::NotFound => write!(f, "not found"),
            ApiError::AlreadyExists => write!(f, "already exists"),
            ApiError::Invalid(m) => write!(f, "invalid: {m}"),
            ApiError::Conflict(m) => write!(f, "conflict: {m}"),
            ApiError::Undecodable => write!(f, "request payload undecodable"),
            ApiError::StoreUnavailable => write!(f, "data store unavailable"),
        }
    }
}

impl std::error::Error for ApiError {}

/// A decoded change notification served to watching components. The
/// object is shared (`Rc`): delivering an event to N watchers bumps a
/// refcount N times instead of deep-cloning the decoded object. The key
/// is interned the same way (`Rc<str>`): fan-out to N watchers bumps a
/// refcount instead of re-allocating the key string per delivery.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceEvent {
    /// Monotone index in the apiserver's decoded event log.
    pub index: u64,
    /// Kind of the changed object.
    pub kind: Kind,
    /// Registry key of the changed object (shared — cloning an event is a
    /// refcount bump, not a string copy).
    pub key: Rc<str>,
    /// New object state; `None` for deletions.
    pub object: Option<Rc<Object>>,
}

/// One write observed by a [`RequestTap`] as it enters the request
/// pipeline — before wire interception, validation, or admission, i.e.
/// exactly what the submitting client sent.
#[derive(Debug)]
pub struct SubmittedWrite<'a> {
    /// Simulated submission time.
    pub at: u64,
    /// The concrete wire the request arrived on.
    pub channel: ChannelId,
    /// Operation.
    pub op: Op,
    /// Resource kind.
    pub kind: Kind,
    /// URL namespace.
    pub namespace: &'a str,
    /// URL name.
    pub name: &'a str,
    /// The submitted object; `None` for deletes.
    pub object: Option<&'a Object>,
}

/// Observer of writes entering the request pipeline (a sibling of the
/// admission seam): the trace recorder uses it to export runs as
/// replayable traces. Taps see every non-deferred submission on every
/// channel — deferred replays of delayed/duplicated messages are skipped,
/// since their original submission was already observed.
pub trait RequestTap {
    /// Called once per submitted write, before the wire verdict.
    fn on_submit(&mut self, write: &SubmittedWrite<'_>);
}

/// Shared handle to a request tap.
pub type RequestTapHandle = Rc<RefCell<dyn RequestTap>>;

/// Shared handle to the injection interceptor.
pub type InterceptorHandle = Rc<RefCell<dyn Interceptor>>;

/// Shared handle to the cluster-wide trace buffer.
pub type TraceHandle = Rc<RefCell<Trace>>;

/// How many decoded events the apiserver retains for watchers.
const EVENT_LOG_RETENTION: usize = 200_000;

/// Default grace period a running pod keeps serving after a
/// user/controller delete before it is finalized (covers the
/// endpoints→proxy propagation lag, so voluntary disruptions are
/// hitless). Pods override it with `spec.terminationGracePeriodSeconds`.
pub const POD_TERMINATION_GRACE_MS: u64 = 2_000;

/// A message held by a [`WireVerdict::Delay`] or echoed by a
/// [`WireVerdict::Duplicate`], awaiting its simulated delivery time.
#[derive(Debug, Clone)]
enum Deferred {
    /// An apiserver→etcd transaction: lands as a raw store write (it
    /// already passed validation/admission when it crossed the wire).
    Put {
        /// Registry key.
        key: String,
        /// Encoded object bytes (shared — holding a delayed message is a
        /// refcount bump on the encode-time buffer, not a copy).
        bytes: Bytes,
    },
    /// A component→apiserver request: replays through the full request
    /// pipeline on delivery (without re-crossing the incoming wire).
    Request {
        /// The concrete wire the original message travelled on.
        channel: ChannelId,
        /// Operation.
        op: Op,
        /// Resource kind.
        kind: Kind,
        /// URL namespace.
        ns: String,
        /// URL name.
        name: String,
        /// Encoded payload (`None` for deletes), shared with the encode-
        /// time buffer.
        bytes: Option<Bytes>,
    },
}

/// One queued deferred delivery, ordered by (due, seq).
#[derive(Debug, Clone)]
struct DeferredEntry {
    due: u64,
    seq: u64,
    what: Deferred,
}

/// The simulated kube-apiserver.
pub struct ApiServer {
    etcd: Etcd,
    interceptor: InterceptorHandle,
    trace: TraceHandle,
    audit: AuditLog,
    /// Decoded watch cache. Objects are shared (`Rc`): list/get/watch
    /// readers receive refcount bumps, never deep clones.
    cache: HashMap<String, Rc<Object>>,
    /// Revision-keyed decode cache: the write path already *has* the
    /// decoded object it commits, so it remembers `(store bytes, object)`
    /// per committed revision, and the watch-cache drain reuses the
    /// object when the event's bytes are `Arc::ptr_eq` with the
    /// remembered buffer. A fault that replaces/corrupts the bytes
    /// allocates a fresh buffer, so pointer equality can never serve a
    /// stale decode of mutated bytes — corrupt deliveries always decode
    /// fresh. Entries are pruned as soon as their revision is drained.
    decode_cache: HashMap<u64, (Bytes, Rc<Object>)>,
    /// False when `MUTINY_DECODE_CACHE=0` forces every sync to decode.
    decode_cache_on: bool,
    /// Syncs served from the decode cache (this instance).
    pub decode_cache_hits: u64,
    /// Syncs that decoded while the cache was enabled (this instance).
    pub decode_cache_misses: u64,
    /// Decoded event log served to watchers.
    events: std::collections::VecDeque<ResourceEvent>,
    first_event_index: u64,
    /// Store revision up to which the raw watch log has been drained
    /// (revision-indexed replay, like a real etcd watch).
    etcd_seen_rev: u64,
    uid_counter: u64,
    now: u64,
    /// Validation toggle (ablation: what happens without the checks).
    pub validation_enabled: bool,
    /// Count of undecryptable objects deleted.
    pub undecodable_deleted: u64,
    /// Terminating pods awaiting the end of their grace period, kept
    /// sorted by (deadline, insertion order) — deadlines are *not*
    /// monotone, each pod brings its own `terminationGracePeriodSeconds`,
    /// so the due check peeks the front instead of scanning.
    reap_at: std::collections::VecDeque<(u64, u64, String)>,
    reap_seq: u64,
    /// Delayed/duplicated wire messages awaiting their simulated delivery
    /// time, kept sorted by (due, seq).
    delayed: Vec<DeferredEntry>,
    delayed_seq: u64,
    /// Reentrancy guard: a deferred request replaying through the
    /// pipeline must not re-trigger the flush it came from.
    flushing: bool,
    /// Superseded same-key revisions skipped (not decoded) by batched
    /// cache drains.
    pub sync_events_coalesced: u64,
    /// Installed admission policies (§VI-B stricter checks).
    policies: Vec<Box<dyn AdmissionPolicy>>,
    /// Requests denied by an admission policy.
    pub policy_denials: u64,
    /// Requests repaired in place by a mutating admission policy.
    pub policy_repairs: u64,
    /// Installed integrity checker (§VI-B redundancy codes).
    integrity: Option<Rc<dyn IntegrityChecker>>,
    /// Integrity subsystem counters.
    pub integrity_metrics: IntegrityMetrics,
    /// When armed, records every key served to a reader (activation
    /// analysis: an injection is *activated* when the injected instance is
    /// requested after the injection, §V-C1).
    read_tracking: Option<HashSet<String>>,
    /// Optional observer of submitted writes (trace export).
    tap: Option<RequestTapHandle>,
}

impl std::fmt::Debug for ApiServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApiServer")
            .field("objects", &self.cache.len())
            .field("etcd_revision", &self.etcd.revision())
            .field("now", &self.now)
            .finish()
    }
}

impl ApiServer {
    /// Creates an apiserver over `etcd`, wiring in the interceptor and the
    /// shared trace buffer.
    pub fn new(etcd: Etcd, interceptor: InterceptorHandle, trace: TraceHandle) -> ApiServer {
        let etcd_seen_rev = etcd.revision();
        ApiServer {
            etcd,
            interceptor,
            trace,
            audit: AuditLog::default(),
            cache: HashMap::new(),
            decode_cache: HashMap::new(),
            decode_cache_on: decode_cache_enabled(),
            decode_cache_hits: 0,
            decode_cache_misses: 0,
            events: std::collections::VecDeque::new(),
            first_event_index: 0,
            etcd_seen_rev,
            uid_counter: 0,
            now: 0,
            validation_enabled: true,
            undecodable_deleted: 0,
            reap_at: std::collections::VecDeque::new(),
            reap_seq: 0,
            delayed: Vec::new(),
            delayed_seq: 0,
            flushing: false,
            sync_events_coalesced: 0,
            policies: Vec::new(),
            policy_denials: 0,
            policy_repairs: 0,
            integrity: None,
            integrity_metrics: IntegrityMetrics::default(),
            read_tracking: None,
            tap: None,
        }
    }

    /// Forks this apiserver for fork-the-world execution: a structural
    /// clone of the whole request-path state (store, watch cache, decode
    /// cache, audit log, deferred deliveries, admission state) with a
    /// fresh interceptor and trace handle. The clone is cheap where it
    /// matters — the etcd store shares its `Arc<[u8]>` buffers, the watch
    /// and decode caches bump `Rc<Object>` refcounts — so a fork is
    /// mostly refcount traffic, not deep copies. The request tap is
    /// deliberately dropped: taps observe one specific run.
    pub fn fork(&self, interceptor: InterceptorHandle, trace: TraceHandle) -> ApiServer {
        ApiServer {
            etcd: self.etcd.clone(),
            interceptor,
            trace,
            audit: self.audit.clone(),
            cache: self.cache.clone(),
            decode_cache: self.decode_cache.clone(),
            decode_cache_on: self.decode_cache_on,
            decode_cache_hits: self.decode_cache_hits,
            decode_cache_misses: self.decode_cache_misses,
            events: self.events.clone(),
            first_event_index: self.first_event_index,
            etcd_seen_rev: self.etcd_seen_rev,
            uid_counter: self.uid_counter,
            now: self.now,
            validation_enabled: self.validation_enabled,
            undecodable_deleted: self.undecodable_deleted,
            reap_at: self.reap_at.clone(),
            reap_seq: self.reap_seq,
            delayed: self.delayed.clone(),
            delayed_seq: self.delayed_seq,
            flushing: self.flushing,
            sync_events_coalesced: self.sync_events_coalesced,
            policies: self.policies.iter().map(|p| p.clone_box()).collect(),
            policy_denials: self.policy_denials,
            policy_repairs: self.policy_repairs,
            // Integrity checkers are stateless (a sealing strategy), so
            // forks share the instance.
            integrity: self.integrity.clone(),
            integrity_metrics: self.integrity_metrics,
            read_tracking: self.read_tracking.clone(),
            tap: None,
        }
    }

    /// Installs a request tap observing every submitted write (trace
    /// export). At most one tap is active; installing replaces any
    /// previous one.
    pub fn set_request_tap(&mut self, tap: RequestTapHandle) {
        self.tap = Some(tap);
    }

    /// Installs a validating admission policy; policies run in install
    /// order after the built-in validation layer.
    pub fn install_policy(&mut self, policy: Box<dyn AdmissionPolicy>) {
        self.policies.push(policy);
    }

    /// Installs the stored-state integrity checker. Objects written from
    /// now on carry a redundancy code that is verified on every decode.
    pub fn install_integrity(&mut self, checker: Rc<dyn IntegrityChecker>) {
        self.integrity = Some(checker);
    }

    /// Runs the installed policies' repair pass over a create/update:
    /// each policy may replace the incoming object with a repaired one
    /// (mutating-webhook semantics) before the review pass sees it.
    fn repair_policies(
        &mut self,
        op: Op,
        channel: ChannelId,
        object: &mut Object,
        existing: Option<&Object>,
    ) {
        if self.policies.is_empty() {
            return;
        }
        let mut repairs = 0u64;
        for p in &mut self.policies {
            let ctx = PolicyCtx {
                op,
                channel: channel.class(),
                object,
                existing,
                now: self.now,
                view: &self.cache,
            };
            if let Some(fixed) = p.repair(&ctx) {
                *object = fixed;
                repairs += 1;
            }
        }
        self.policy_repairs += repairs;
    }

    /// Runs the installed policies over one request.
    fn review_policies(
        &mut self,
        op: Op,
        channel: ChannelId,
        object: &Object,
        existing: Option<&Object>,
    ) -> Result<(), ApiError> {
        if self.policies.is_empty() {
            return Ok(());
        }
        let ctx = PolicyCtx {
            op,
            channel: channel.class(),
            object,
            existing,
            now: self.now,
            view: &self.cache,
        };
        for p in &mut self.policies {
            if let Err(reason) = p.review(&ctx) {
                self.policy_denials += 1;
                return Err(ApiError::Invalid(format!("policy {}: {reason}", p.name())));
            }
        }
        Ok(())
    }

    /// Verifies a decoded object against the installed integrity checker
    /// and applies the configured action on failure. Returns the (shared)
    /// object to serve (`None` when it was discarded or withheld).
    fn check_integrity(&mut self, key: &str, obj: Rc<Object>) -> Option<Rc<Object>> {
        let Some(checker) = self.integrity.clone() else { return Some(obj) };
        if checker.verify(&obj) {
            return Some(obj);
        }
        self.integrity_metrics.violations += 1;
        match checker.action() {
            IntegrityAction::Observe => Some(obj),
            IntegrityAction::Discard => {
                self.integrity_metrics.discarded += 1;
                self.log(
                    TraceLevel::Error,
                    format!("integrity violation on {key}: discarding object"),
                );
                self.cache.remove(key);
                self.etcd.delete(key);
                None
            }
            IntegrityAction::Repair => match self.cache.get(key).cloned() {
                Some(last_good) if checker.verify(&last_good) => {
                    self.integrity_metrics.repaired += 1;
                    self.log(
                        TraceLevel::Error,
                        format!(
                            "integrity violation on {key}: rolling back to last good value"
                        ),
                    );
                    // Rewrite the last good bytes to the store; the repair
                    // transaction is internal and bypasses the interceptor.
                    let bytes = last_good.encode_shared();
                    if let Ok(rev) = self.etcd.put(key, bytes.clone()) {
                        self.remember_decoded(rev, bytes, last_good.clone());
                    }
                    Some(last_good)
                }
                _ => {
                    // Nothing to roll back to (the create itself was
                    // corrupted): fall back to discarding.
                    self.integrity_metrics.discarded += 1;
                    self.log(
                        TraceLevel::Error,
                        format!("integrity violation on {key}: no good value, discarding"),
                    );
                    self.cache.remove(key);
                    self.etcd.delete(key);
                    None
                }
            },
        }
    }

    /// Arms read tracking: subsequently served keys are recorded so the
    /// campaign can decide whether an injected instance was *activated*.
    pub fn start_read_tracking(&mut self) {
        self.read_tracking = Some(HashSet::new());
    }

    /// True when `key` was served to any reader since tracking was armed.
    pub fn was_read(&self, key: &str) -> bool {
        self.read_tracking.as_ref().map(|s| s.contains(key)).unwrap_or(false)
    }

    fn track_read(&mut self, key: &str) {
        if let Some(s) = self.read_tracking.as_mut() {
            if !s.contains(key) {
                s.insert(key.to_owned());
            }
        }
    }

    /// Advances the apiserver's notion of simulated time (and the
    /// ambient telemetry sim clock, so clock-less components stamp
    /// metrics correctly).
    pub fn set_now(&mut self, now: u64) {
        self.now = now;
        mutiny_telemetry::set_sim_now(now);
    }

    /// Current simulated time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The audit log (Figure 7 data source).
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Direct access to the underlying store (campaign instrumentation).
    pub fn etcd(&self) -> &Etcd {
        &self.etcd
    }

    /// Mutable store access (at-rest corruption experiments).
    pub fn etcd_mut(&mut self) -> &mut Etcd {
        &mut self.etcd
    }

    fn log(&self, level: TraceLevel, msg: String) {
        self.trace.borrow_mut().log(self.now, level, "apiserver", msg);
    }

    // --- the write path ----------------------------------------------------

    /// Creates an object. The request travels `channel` — a
    /// [`ChannelId`] or a bare [`Channel`] class — so Mutiny may tamper
    /// with or drop it before validation; the resulting etcd transaction
    /// may be tampered with again.
    ///
    /// The returned handle is shared with the decode cache: callers that
    /// only inspect the admitted object pay a refcount bump, not a deep
    /// clone.
    ///
    /// # Errors
    ///
    /// Any [`ApiError`]; every outcome is recorded in the audit log.
    pub fn create(
        &mut self,
        channel: impl Into<ChannelId>,
        obj: Object,
    ) -> Result<Rc<Object>, ApiError> {
        let (url_ns, url_name) = (obj.namespace().to_owned(), obj.name().to_owned());
        self.request(channel.into(), Op::Create, obj.kind(), &url_ns, &url_name, Some(obj), false)
    }

    /// Updates an object (same pipeline as [`ApiServer::create`]).
    ///
    /// # Errors
    ///
    /// Any [`ApiError`]; every outcome is recorded in the audit log.
    pub fn update(
        &mut self,
        channel: impl Into<ChannelId>,
        obj: Object,
    ) -> Result<Rc<Object>, ApiError> {
        let (url_ns, url_name) = (obj.namespace().to_owned(), obj.name().to_owned());
        self.request(channel.into(), Op::Update, obj.kind(), &url_ns, &url_name, Some(obj), false)
    }

    /// Deletes an object.
    ///
    /// # Errors
    ///
    /// Any [`ApiError`]; every outcome is recorded in the audit log.
    pub fn delete(
        &mut self,
        channel: impl Into<ChannelId>,
        kind: Kind,
        namespace: &str,
        name: &str,
    ) -> Result<(), ApiError> {
        self.request(channel.into(), Op::Delete, kind, namespace, name, None, false).map(|_| ())
    }

    #[allow(clippy::too_many_arguments)]
    fn request(
        &mut self,
        channel: ChannelId,
        op: Op,
        kind: Kind,
        url_ns: &str,
        url_name: &str,
        obj: Option<Object>,
        deferred: bool,
    ) -> Result<Rc<Object>, ApiError> {
        self.sync_cache();
        // The key is interned once per request: the audit record and the
        // error log below share the same allocation by refcount.
        let key: Rc<str> = registry_key(kind, url_ns, url_name).into();
        // The tap observes the submission exactly as the client sent it —
        // before the wire verdict, validation, or admission. Deferred
        // replays are invisible: their original submission was observed.
        if !deferred {
            if let Some(tap) = self.tap.clone() {
                tap.borrow_mut().on_submit(&SubmittedWrite {
                    at: self.now,
                    channel,
                    op,
                    kind,
                    namespace: url_ns,
                    name: url_name,
                    object: obj.as_ref(),
                });
            }
        }
        let result = self.request_inner(channel, op, kind, &key, url_ns, url_name, obj, deferred);
        mutiny_telemetry::counter_add(tele::req_key(channel.class(), result.is_ok()), 1);
        self.audit.record(AuditRecord {
            at: self.now,
            channel,
            op,
            kind,
            key: key.clone(),
            result: match &result {
                Ok(_) => RequestResult::Ok,
                Err(e) => RequestResult::Err(e.to_string()),
            },
        });
        if let Err(e) = &result {
            self.log(TraceLevel::Error, format!("{op} {key} via {channel} rejected: {e}"));
        }
        self.sync_cache();
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn request_inner(
        &mut self,
        channel: ChannelId,
        op: Op,
        kind: Kind,
        key: &str,
        url_ns: &str,
        url_name: &str,
        obj: Option<Object>,
        deferred: bool,
    ) -> Result<Rc<Object>, ApiError> {
        // 1. The request crosses the component→apiserver wire (a replay
        //    of a delayed/duplicated message already crossed it once).
        let mut incoming: Option<Object> = None;
        if let Some(o) = obj {
            let bytes = o.encode_shared();
            let verdict = if deferred {
                WireVerdict::Pass
            } else {
                self.intercept(channel, kind, key, op, Some(&bytes))
            };
            let effective: Bytes = match verdict {
                WireVerdict::Pass => bytes,
                WireVerdict::Replace(b) => b.into(),
                WireVerdict::Drop => {
                    // The sender's call returns without error; no request
                    // ever arrives (message-drop semantics, §IV-A).
                    self.log(
                        TraceLevel::Debug,
                        format!("{op} {key}: request dropped in flight on {channel}"),
                    );
                    return Ok(Rc::new(o));
                }
                WireVerdict::Delay(d) => {
                    // The sender sees success now; the request arrives
                    // `d` ms later through the deferred-delivery queue.
                    self.defer(
                        d,
                        Deferred::Request {
                            channel,
                            op,
                            kind,
                            ns: url_ns.to_owned(),
                            name: url_name.to_owned(),
                            bytes: Some(bytes),
                        },
                    );
                    self.log(
                        TraceLevel::Debug,
                        format!("{op} {key}: request held {d} ms in flight on {channel}"),
                    );
                    return Ok(Rc::new(o));
                }
                WireVerdict::Duplicate(d) => {
                    // Deliver now and echo an identical copy later (the
                    // echo shares the same buffer — a refcount bump).
                    self.defer(
                        d,
                        Deferred::Request {
                            channel,
                            op,
                            kind,
                            ns: url_ns.to_owned(),
                            name: url_name.to_owned(),
                            bytes: Some(bytes.clone()),
                        },
                    );
                    self.log(
                        TraceLevel::Debug,
                        format!("{op} {key}: request duplicated on {channel} (+{d} ms)"),
                    );
                    bytes
                }
            };
            // Authentication/decoding: garbage payloads are rejected here.
            incoming =
                Some(Object::decode(kind, &effective).map_err(|_| ApiError::Undecodable)?);
        } else if op == Op::Delete && !deferred {
            let verdict = self.intercept(channel, kind, key, op, None);
            let current = self
                .cache
                .get(key)
                .cloned()
                .unwrap_or_else(|| Rc::new(Object::Namespace(k8s_model::Namespace::default())));
            match verdict {
                WireVerdict::Drop => return Ok(current),
                WireVerdict::Delay(d) => {
                    self.defer(
                        d,
                        Deferred::Request {
                            channel,
                            op,
                            kind,
                            ns: url_ns.to_owned(),
                            name: url_name.to_owned(),
                            bytes: None,
                        },
                    );
                    return Ok(current);
                }
                WireVerdict::Duplicate(d) => {
                    self.defer(
                        d,
                        Deferred::Request {
                            channel,
                            op,
                            kind,
                            ns: url_ns.to_owned(),
                            name: url_name.to_owned(),
                            bytes: None,
                        },
                    );
                }
                _ => {}
            }
        }

        // 2. Validation + admission (skipped for the internal store path).
        match op {
            Op::Delete => {
                let existing = self.current_object(key);
                if existing.is_none() && self.etcd.get(key).is_none() {
                    return Err(ApiError::NotFound);
                }
                if channel != Channel::ApiToEtcd {
                    if let Some(old) = existing.clone() {
                        self.review_policies(op, channel, &old, existing.as_deref())?;
                    }
                }
                // Graceful termination: a *running* pod deleted by the
                // user or a controller keeps serving through its grace
                // period (the endpoints controller drops it immediately,
                // so rolling updates and drains are hitless). Kubelet
                // deletes are immediate — there the container is already
                // gone — and deleting an already-terminating pod forces
                // it out, like `kubectl delete --force`.
                if kind == Kind::Pod
                    && channel != Channel::ApiToEtcd
                    && channel != Channel::KubeletToApi
                {
                    if let Some(Object::Pod(p)) = existing.as_deref() {
                        if !p.metadata.is_terminating() && p.status.phase == "Running" {
                            // Per-pod grace: spec.terminationGracePeriodSeconds
                            // when set, the cluster default otherwise.
                            let grace_ms = p.termination_grace_ms(POD_TERMINATION_GRACE_MS);
                            let mut p = p.clone();
                            p.metadata.deletion_timestamp = self.now.max(1) as i64;
                            p.metadata.resource_version = self.etcd.revision() as i64 + 1;
                            let obj = Rc::new(Object::Pod(p));
                            // The terminating mark is an apiserver→etcd
                            // transaction like any other: it crosses the
                            // store wire and is injectable there (the
                            // campaign's primary injection point).
                            let bytes = obj.encode_shared();
                            let encoded = Bytes::clone(&bytes);
                            let verdict = self.intercept(
                                Channel::ApiToEtcd.into(),
                                kind,
                                key,
                                Op::Update,
                                Some(&bytes),
                            );
                            let store_bytes: Bytes = match verdict {
                                WireVerdict::Pass => bytes,
                                WireVerdict::Replace(b) => b.into(),
                                WireVerdict::Drop => {
                                    // The mark silently never lands: the
                                    // pod keeps running and the deleter
                                    // must reconcile and retry.
                                    self.log(
                                        TraceLevel::Debug,
                                        format!("delete {key}: terminating mark dropped"),
                                    );
                                    return Ok(obj);
                                }
                                WireVerdict::Delay(d) => {
                                    // The mark lands late; the grace clock
                                    // starts when it actually lands.
                                    self.defer(
                                        d,
                                        Deferred::Put { key: key.to_owned(), bytes },
                                    );
                                    self.schedule_reap(self.now + d + grace_ms, key);
                                    return Ok(obj);
                                }
                                WireVerdict::Duplicate(d) => {
                                    self.defer(
                                        d,
                                        Deferred::Put { key: key.to_owned(), bytes: bytes.clone() },
                                    );
                                    bytes
                                }
                            };
                            self.commit_and_remember(key, store_bytes, encoded, &obj)?;
                            self.schedule_reap(self.now + grace_ms, key);
                            self.log(
                                TraceLevel::Info,
                                format!(
                                    "pod {key} terminating via {channel} (graceful, {grace_ms} ms)"
                                ),
                            );
                            return Ok(obj);
                        }
                    }
                }
                self.etcd_delete(key)?;
                self.log(TraceLevel::Info, format!("deleted {key} via {channel}"));
                Ok(self
                    .cache
                    .get(key)
                    .cloned()
                    .unwrap_or_else(|| Rc::new(Object::Namespace(k8s_model::Namespace::default()))))
            }
            Op::Create | Op::Update => {
                // A create/update without a payload cannot be admitted;
                // reject it like any other undecodable request instead of
                // panicking (callers always supply one, but an injected
                // campaign must never be able to abort the process).
                let Some(mut new_obj) = incoming else {
                    return Err(ApiError::Undecodable);
                };
                let existing = self.current_object(key);

                if op == Op::Create && existing.is_some() {
                    return Err(ApiError::AlreadyExists);
                }
                if op == Op::Update && existing.is_none() {
                    return Err(ApiError::NotFound);
                }

                // Status-only updates from components go through the
                // status subresource, which does not re-validate the spec
                // (so a controller can still report status on an object
                // whose stored spec was corrupted post-validation).
                let status_only = op == Op::Update
                    && channel != Channel::ApiToEtcd
                    && existing
                        .as_ref()
                        .map(|old| !admission::spec_changed(&new_obj, old))
                        .unwrap_or(false);
                if channel != Channel::ApiToEtcd && self.validation_enabled && !status_only {
                    validation::validate(&new_obj, url_ns, url_name)
                        .map_err(ApiError::Invalid)?;
                    // Namespaced creates require the namespace to exist
                    // (only once the cluster has namespaces at all, so
                    // non-bootstrapped test fixtures stay usable).
                    let has_namespaces =
                        self.cache.keys().any(|k| k.starts_with("/registry/namespaces/"));
                    if op == Op::Create
                        && has_namespaces
                        && !kind.cluster_scoped()
                        && kind != Kind::Namespace
                    {
                        let ns_key = registry_key(Kind::Namespace, "", url_ns);
                        if self.current_object(&ns_key).is_none() {
                            return Err(ApiError::Invalid(format!(
                                "namespace {url_ns:?} not found"
                            )));
                        }
                    }
                }

                // Admission-time spec mutation: an armed config-defect
                // actuator may rewrite the decoded object *after* the
                // built-in validation above (defects are valid specs) and
                // *before* the policy layer — exactly where a bad-but-
                // well-formed manifest enters a real cluster. The traffic
                // recorder observes the same hook, so planned victim
                // occurrences line up with what an armed actuator sees.
                if channel != Channel::ApiToEtcd && !status_only {
                    let ctx = AdmitCtx { channel, kind, key, op, now: self.now };
                    if self.interceptor.clone().borrow_mut().on_admission(&ctx, &mut new_obj) {
                        mutiny_telemetry::counter_add("apiserver.admission.mutated", 1);
                        self.log(
                            TraceLevel::Info,
                            format!("{op} {key}: spec mutated at admission on {channel}"),
                        );
                    }
                }

                if channel != Channel::ApiToEtcd {
                    self.repair_policies(op, channel, &mut new_obj, existing.as_deref());
                    self.review_policies(op, channel, &new_obj, existing.as_deref())?;
                }

                admission::admit(
                    &mut new_obj,
                    existing.as_deref(),
                    channel.class(),
                    op,
                    self.now,
                    &mut self.uid_counter,
                )
                .map_err(|e| match e {
                    admission::AdmitError::Conflict(m) => ApiError::Conflict(m),
                    admission::AdmitError::MissingExisting => ApiError::NotFound,
                })?;

                // Stamp the resourceVersion the store will assign.
                new_obj.meta_mut().resource_version = self.etcd.revision() as i64 + 1;

                // Seal the redundancy code before the transaction crosses
                // the wire, so in-flight corruption is detectable later.
                if let Some(checker) = self.integrity.clone() {
                    checker.seal(&mut new_obj);
                }

                // 3. The apiserver→etcd transaction crosses the wire again:
                //    the campaign's primary injection point. The encoding
                //    is staged in pooled scratch and committed as one
                //    shared `Arc<[u8]>`: the store write, the watch-log
                //    entry and any deferred echo are refcount bumps on
                //    this single allocation.
                let new_obj = Rc::new(new_obj);
                let bytes = new_obj.encode_shared();
                let encoded = Bytes::clone(&bytes);
                let verdict =
                    self.intercept(Channel::ApiToEtcd.into(), kind, key, op, Some(&bytes));
                let store_bytes: Bytes = match verdict {
                    WireVerdict::Pass => bytes,
                    WireVerdict::Replace(b) => b.into(),
                    WireVerdict::Drop => {
                        // The state update silently never happens; the
                        // caller still sees success (level-triggered
                        // reconciliation must absorb this).
                        self.log(
                            TraceLevel::Debug,
                            format!("{op} {key}: etcd transaction dropped"),
                        );
                        return Ok(new_obj);
                    }
                    WireVerdict::Delay(d) => {
                        // The transaction lands `d` ms late as a raw store
                        // write (it already passed validation/admission);
                        // the caller sees success now.
                        self.defer(d, Deferred::Put { key: key.to_owned(), bytes });
                        self.log(
                            TraceLevel::Debug,
                            format!("{op} {key}: etcd transaction held {d} ms"),
                        );
                        return Ok(new_obj);
                    }
                    WireVerdict::Duplicate(d) => {
                        // Land now and echo an identical write later —
                        // the echo resurrects this revision over anything
                        // written in between.
                        self.defer(d, Deferred::Put { key: key.to_owned(), bytes: bytes.clone() });
                        self.log(
                            TraceLevel::Debug,
                            format!("{op} {key}: etcd transaction duplicated (+{d} ms)"),
                        );
                        bytes
                    }
                };
                self.commit_and_remember(key, store_bytes, encoded, &new_obj)?;
                Ok(new_obj)
            }
        }
    }

    fn intercept(
        &mut self,
        channel: ChannelId,
        kind: Kind,
        key: &str,
        op: Op,
        bytes: Option<&[u8]>,
    ) -> WireVerdict {
        let ctx = MsgCtx { channel, kind, key, op, bytes, now: self.now };
        let verdict = self.interceptor.borrow_mut().on_message(&ctx);
        mutiny_telemetry::counter_add(tele::wire_key(channel.class(), &verdict), 1);
        verdict
    }

    /// Commits bytes to the store and returns the committed revision. The
    /// value is already a shared `Arc<[u8]>` on the steady-state path, so
    /// the commit is refcount bumps for all replicas + the watch log.
    fn etcd_put(&mut self, key: &str, bytes: impl Into<etcd_sim::Bytes>) -> Result<u64, ApiError> {
        match self.etcd.put(key, bytes) {
            Ok(rev) => Ok(rev),
            Err(EtcdError::DiskFull) => {
                self.log(TraceLevel::Error, format!("etcd write for {key} failed: disk full"));
                Err(ApiError::StoreUnavailable)
            }
            Err(e) => {
                self.log(TraceLevel::Error, format!("etcd write for {key} failed: {e}"));
                Err(ApiError::StoreUnavailable)
            }
        }
    }

    /// Remembers the decoded object the write path just committed at
    /// `rev`, so the watch-cache drain can skip re-decoding when the
    /// event hands back the very same buffer (`Arc::ptr_eq`). No-op when
    /// `MUTINY_DECODE_CACHE=0`.
    fn remember_decoded(&mut self, rev: u64, bytes: Bytes, obj: Rc<Object>) {
        if self.decode_cache_on {
            self.decode_cache.insert(rev, (bytes, obj));
        }
    }

    /// Commits `store_bytes` for `key` and — iff they are still the
    /// object's own encoding (`encoded`, by `Arc::ptr_eq`) — remembers
    /// the decoded object for the watch-cache drain. A `Replace` verdict
    /// swapped in a fresh (tampered) buffer whose pointer can never
    /// match, so corrupt bytes always decode fresh when they come back
    /// through the watch.
    fn commit_and_remember(
        &mut self,
        key: &str,
        store_bytes: Bytes,
        encoded: Bytes,
        obj: &Rc<Object>,
    ) -> Result<(), ApiError> {
        let cacheable = std::sync::Arc::ptr_eq(&store_bytes, &encoded);
        let rev = self.etcd_put(key, store_bytes)?;
        if cacheable {
            self.remember_decoded(rev, encoded, obj.clone());
        }
        Ok(())
    }

    /// Overrides the `MUTINY_DECODE_CACHE` environment toggle for this
    /// instance (A/B tests and benches flip it without touching process
    /// environment).
    pub fn set_decode_cache(&mut self, on: bool) {
        self.decode_cache_on = on;
        if !on {
            self.decode_cache.clear();
        }
    }

    fn etcd_delete(&mut self, key: &str) -> Result<(), ApiError> {
        self.etcd.delete(key);
        Ok(())
    }

    /// The freshest decoded object for a key: the watch cache, falling back
    /// to a quorum read (cache-miss refresh). The result is a shared
    /// handle, not a deep clone.
    fn current_object(&mut self, key: &str) -> Option<Rc<Object>> {
        self.track_read(key);
        if let Some(o) = self.cache.get(key) {
            return Some(o.clone());
        }
        let (bytes, _) = self.etcd.get(key)?;
        let kind = kind_of_key(key)?;
        match Object::decode(kind, &bytes) {
            Ok(o) => self.check_integrity(key, Rc::new(o)),
            Err(_) => {
                self.drop_undecodable(key);
                None
            }
        }
    }

    fn drop_undecodable(&mut self, key: &str) {
        self.undecodable_deleted += 1;
        self.log(
            TraceLevel::Error,
            format!("stored object {key} is undecryptable; deleting it"),
        );
        self.etcd.delete(key);
    }

    // --- the read path -----------------------------------------------------

    /// Queues a pod for finalization at `deadline`, keeping the reap
    /// queue sorted by (deadline, insertion order) so the due check stays
    /// a front peek despite per-pod grace windows.
    fn schedule_reap(&mut self, deadline: u64, key: &str) {
        let seq = self.reap_seq;
        self.reap_seq += 1;
        let pos = self
            .reap_at
            .iter()
            .position(|(d, s, _)| (*d, *s) > (deadline, seq))
            .unwrap_or(self.reap_at.len());
        self.reap_at.insert(pos, (deadline, seq, key.to_owned()));
    }

    /// Finalizes terminating pods whose grace period has elapsed. Only
    /// pods whose stored state actually carries the terminating mark are
    /// finalized — a delayed or dropped mark must not turn the reaper
    /// into a force-delete.
    fn reap_terminated(&mut self) {
        while let Some((deadline, _, _)) = self.reap_at.front() {
            if *deadline > self.now {
                break;
            }
            let (_, _, key) = self.reap_at.pop_front().expect("front checked");
            let terminating = self
                .etcd
                .get(&key)
                .and_then(|(bytes, _)| Object::decode(Kind::Pod, &bytes).ok())
                .map(|obj| obj.meta().is_terminating())
                .unwrap_or(false);
            if terminating {
                self.etcd.delete(&key);
                self.log(TraceLevel::Info, format!("pod {key} finalized after grace period"));
            }
        }
    }

    /// Queues a deferred delivery `d` ms from now, keeping the queue
    /// sorted by (due, insertion order) so flushes are deterministic.
    fn defer(&mut self, d: u64, what: Deferred) {
        let entry = DeferredEntry { due: self.now + d, seq: self.delayed_seq, what };
        self.delayed_seq = self.delayed_seq.saturating_add(1);
        let pos = self
            .delayed
            .iter()
            .position(|e| (e.due, e.seq) > (entry.due, entry.seq))
            .unwrap_or(self.delayed.len());
        self.delayed.insert(pos, entry);
        mutiny_telemetry::gauge_max("apiserver.deferred.depth_hw", self.delayed.len() as u64);
    }

    /// Delivers every deferred message whose simulated time has come.
    /// Store writes land raw (they already passed validation); requests
    /// replay through the full pipeline without re-crossing the wire.
    fn flush_deferred(&mut self) {
        if self.delayed.is_empty() || self.delayed[0].due > self.now {
            return;
        }
        self.flushing = true;
        while !self.delayed.is_empty() && self.delayed[0].due <= self.now {
            let entry = self.delayed.remove(0);
            match entry.what {
                Deferred::Put { key, bytes } => {
                    self.log(
                        TraceLevel::Debug,
                        format!("delayed etcd transaction for {key} delivered"),
                    );
                    let _ = self.etcd_put(&key, bytes);
                }
                Deferred::Request { channel, op, kind, ns, name, bytes } => {
                    let obj = bytes.and_then(|b| Object::decode(kind, &b).ok());
                    if obj.is_none() && op != Op::Delete {
                        continue; // undecodable replay: nothing arrives
                    }
                    self.log(
                        TraceLevel::Debug,
                        format!("delayed {op} request for {ns}/{name} delivered on {channel}"),
                    );
                    let _ = self.request(channel, op, kind, &ns, &name, obj, true);
                }
            }
        }
        self.flushing = false;
    }

    /// Drains etcd's raw watch log into the decoded cache and event log,
    /// deleting undecryptable objects as they are discovered.
    pub fn sync_cache(&mut self) {
        // Deferred deliveries land before the reaper runs: a delayed
        // terminating mark whose flush time and reap deadline are due at
        // the same sync must be in the store when the reaper checks it,
        // or the reap entry would be consumed with the pod untouched.
        if !self.flushing {
            self.flush_deferred();
        }
        self.reap_terminated();
        loop {
            let (raw, next) = match self.etcd.events_after_revision(self.etcd_seen_rev) {
                Ok(pair) => pair,
                Err(_) => {
                    // Compacted: rebuild the cache from a full range scan.
                    self.etcd_seen_rev = self.etcd.revision();
                    self.rebuild_cache_from_store();
                    continue;
                }
            };
            if raw.is_empty() {
                return;
            }
            self.etcd_seen_rev = next;
            // Batch decode: when one drain carries several revisions of
            // the same key, only the newest is decoded and delivered —
            // the superseded ones could never be observed through the
            // level-triggered cache anyway. Most drains carry one event
            // (every request syncs), so the keep-mask is only built for
            // the multi-event catch-ups that can actually coalesce.
            let keep: Option<Vec<bool>> = (raw.len() > 1).then(|| {
                let mut last: std::collections::HashMap<&str, usize> =
                    std::collections::HashMap::with_capacity(raw.len());
                for (i, ev) in raw.iter().enumerate() {
                    last.insert(ev.key.as_str(), i);
                }
                raw.iter()
                    .enumerate()
                    .map(|(i, ev)| last.get(ev.key.as_str()) == Some(&i))
                    .collect()
            });
            let mut undecodable: Vec<String> = Vec::new();
            for (i, ev) in raw.into_iter().enumerate() {
                if keep.as_ref().is_some_and(|k| !k[i]) {
                    self.sync_events_coalesced = self.sync_events_coalesced.saturating_add(1);
                    mutiny_telemetry::counter_add("apiserver.watch.coalesced", 1);
                    continue;
                }
                mutiny_telemetry::counter_add("apiserver.watch.delivered", 1);
                let Some(kind) = kind_of_key(&ev.key) else { continue };
                match ev.value {
                    None => {
                        self.cache.remove(&ev.key);
                        self.push_event(ResourceEvent {
                            index: 0,
                            kind,
                            key: ev.key.into(),
                            object: None,
                        });
                    }
                    Some(bytes) => {
                        // Revision-keyed decode cache: the write path
                        // remembered the decoded object under this
                        // revision; reuse it iff the event carries the
                        // very same buffer. Fault-corrupted deliveries
                        // are fresh allocations, so `ptr_eq` fails and
                        // they decode from bytes like always.
                        let cached = if self.decode_cache_on {
                            match self.decode_cache.remove(&ev.revision) {
                                Some((cb, obj)) if std::sync::Arc::ptr_eq(&cb, &bytes) => {
                                    self.decode_cache_hits += 1;
                                    DECODE_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
                                    Some(obj)
                                }
                                _ => None,
                            }
                        } else {
                            None
                        };
                        let obj = match cached {
                            Some(obj) => obj,
                            None => {
                                if self.decode_cache_on {
                                    self.decode_cache_misses += 1;
                                    DECODE_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
                                }
                                match Object::decode(kind, &bytes) {
                                    Ok(o) => Rc::new(o),
                                    Err(_) => {
                                        undecodable.push(ev.key.clone());
                                        continue;
                                    }
                                }
                            }
                        };
                        let Some(obj) = self.check_integrity(&ev.key, obj) else {
                            continue;
                        };
                        // Intern the key once; the cache takes the
                        // original allocation and the event log shares
                        // the interned copy with every watcher delivery.
                        let key: Rc<str> = ev.key.as_str().into();
                        self.cache.insert(ev.key, obj.clone());
                        self.push_event(ResourceEvent {
                            index: 0,
                            kind,
                            key,
                            object: Some(obj),
                        });
                    }
                }
            }
            // Drained revisions can never be replayed (the cursor only
            // moves forward), so any entry at or below the cursor —
            // e.g. for an event the keep-mask coalesced away — is dead.
            if !self.decode_cache.is_empty() {
                let cursor = self.etcd_seen_rev;
                self.decode_cache.retain(|rev, _| *rev > cursor);
            }
            for key in undecodable {
                // Only delete if the *current* stored bytes are still bad
                // (a later write may have fixed the object).
                let still_bad = self
                    .etcd
                    .get(&key)
                    .map(|(b, _)| {
                        kind_of_key(&key)
                            .map(|k| Object::decode(k, &b).is_err())
                            .unwrap_or(false)
                    })
                    .unwrap_or(false);
                if still_bad {
                    self.cache.remove(&key);
                    self.drop_undecodable(&key);
                }
            }
        }
    }

    fn rebuild_cache_from_store(&mut self) {
        self.cache.clear();
        // A rebuild abandons the watch cursor, so every remembered
        // revision is unreachable from now on.
        self.decode_cache.clear();
        let all = self.etcd.range("/registry/");
        let mut bad = Vec::new();
        for (key, bytes, _) in all {
            let Some(kind) = kind_of_key(&key) else { continue };
            match Object::decode(kind, &bytes) {
                Ok(obj) => {
                    let Some(obj) = self.check_integrity(&key, Rc::new(obj)) else { continue };
                    let shared: Rc<str> = key.as_str().into();
                    self.cache.insert(key, obj.clone());
                    self.push_event(ResourceEvent { index: 0, kind, key: shared, object: Some(obj) });
                }
                Err(_) => bad.push(key),
            }
        }
        for key in bad {
            self.drop_undecodable(&key);
        }
    }

    fn push_event(&mut self, mut ev: ResourceEvent) {
        if self.events.len() == EVENT_LOG_RETENTION {
            self.events.pop_front();
            self.first_event_index += 1;
        }
        ev.index = self.first_event_index + self.events.len() as u64;
        self.events.push_back(ev);
    }

    /// Initial cursor for a new watcher (only future events are seen).
    pub fn watch_head(&self) -> u64 {
        self.first_event_index + self.events.len() as u64
    }

    /// Returns decoded events at indices ≥ `cursor` and the next cursor.
    /// Watchers that fell behind the retention window receive a fresh
    /// cursor and should re-list.
    pub fn poll_events(&mut self, cursor: u64) -> (Vec<ResourceEvent>, u64) {
        self.sync_cache();
        if cursor < self.first_event_index {
            return (Vec::new(), self.watch_head());
        }
        let start = ((cursor - self.first_event_index) as usize).min(self.events.len());
        // Indexed tail view; cloning an event is an Rc bump per object.
        let out: Vec<ResourceEvent> = self.events.range(start..).cloned().collect();
        if self.read_tracking.is_some() {
            for ev in &out {
                let key = ev.key.clone();
                self.track_read(&key);
            }
        }
        (out, self.watch_head())
    }

    /// Reads one object through the watch cache (a shared handle — no
    /// deep clone). The registry key is formatted into per-thread
    /// scratch, so a steady-state cache hit performs no allocation.
    pub fn get(&mut self, kind: Kind, namespace: &str, name: &str) -> Option<Rc<Object>> {
        self.sync_cache();
        with_key_scratch(|key| {
            registry_key_into(key, kind, namespace, name);
            self.current_object(key)
        })
    }

    /// Reads one object bypassing the cache (quorum read from etcd) — used
    /// by the at-rest-corruption ablation and by component restarts.
    pub fn get_fresh(&mut self, kind: Kind, namespace: &str, name: &str) -> Option<Rc<Object>> {
        let key = registry_key(kind, namespace, name);
        let (bytes, _) = self.etcd.get(&key)?;
        match Object::decode(kind, &bytes) {
            Ok(o) => {
                let o = Rc::new(o);
                self.cache.insert(key, o.clone());
                Some(o)
            }
            Err(_) => {
                self.drop_undecodable(&key);
                None
            }
        }
    }

    /// Lists objects of `kind`, optionally scoped to a namespace, in key
    /// order (served from the watch cache). Each element is a shared
    /// handle: listing N objects is N refcount bumps, not N deep clones.
    pub fn list(&mut self, kind: Kind, namespace: Option<&str>) -> Vec<Rc<Object>> {
        self.sync_cache();
        let mut keys: Vec<String> = with_key_scratch(|prefix| {
            registry_prefix_into(prefix, kind, namespace);
            self.cache.keys().filter(|k| k.starts_with(&**prefix)).cloned().collect()
        });
        keys.sort();
        if self.read_tracking.is_some() {
            for k in &keys {
                self.track_read(k);
            }
        }
        keys.into_iter().map(|k| self.cache[&k].clone()).collect()
    }

    /// Visits objects of `kind` (optionally namespace-scoped) without
    /// cloning them — the cheap path for metrics sampling and the network
    /// fabric, which run even while a pod storm floods the cache.
    pub fn for_each(&mut self, kind: Kind, namespace: Option<&str>, mut f: impl FnMut(&Object)) {
        self.sync_cache();
        with_key_scratch(|prefix| {
            registry_prefix_into(prefix, kind, namespace);
            for (k, obj) in &self.cache {
                if k.starts_with(&**prefix) {
                    f(obj);
                }
            }
        });
    }

    /// Counts objects of `kind` without cloning.
    pub fn count(&mut self, kind: Kind, namespace: Option<&str>) -> usize {
        self.sync_cache();
        with_key_scratch(|prefix| {
            registry_prefix_into(prefix, kind, namespace);
            self.cache.keys().filter(|k| k.starts_with(&**prefix)).count()
        })
    }

    /// Simulates an apiserver restart: the storage backend runs crash
    /// recovery (replaying its durable structures — a no-op for the
    /// in-memory engine, a segment-log replay for the log engine), then
    /// the watch cache is dropped and rebuilt from the recovered store
    /// with quorum reads, which is when at-rest corruption finally gets
    /// picked up (§V-C1).
    pub fn restart(&mut self) {
        self.log(
            TraceLevel::Warn,
            "apiserver restarting: recovering store, rebuilding watch cache".to_owned(),
        );
        self.etcd.recover();
        self.etcd_seen_rev = self.etcd.revision();
        self.rebuild_cache_from_store();
    }

    /// Number of objects currently in the watch cache.
    pub fn cached_objects(&self) -> usize {
        self.cache.len()
    }

}

/// Derives the kind from a registry key.
pub fn kind_of_key(key: &str) -> Option<Kind> {
    let rest = key.strip_prefix("/registry/")?;
    let plural = rest.split('/').next()?;
    Kind::ALL.iter().copied().find(|k| k.plural() == plural)
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_model::{NoopInterceptor, Pod};

    fn api() -> ApiServer {
        let etcd = Etcd::new(1, 10 * 1024 * 1024);
        let interceptor: InterceptorHandle = Rc::new(RefCell::new(NoopInterceptor));
        let trace: TraceHandle = Rc::new(RefCell::new(Trace::new(1024)));
        ApiServer::new(etcd, interceptor, trace)
    }

    fn pod(ns: &str, name: &str) -> Object {
        let mut p = Pod::default();
        p.metadata = k8s_model::ObjectMeta::named(ns, name);
        p.metadata.labels.insert("app".into(), "web".into());
        p.spec.containers.push(k8s_model::Container {
            name: "c".into(),
            image: "img:1".into(),
            cpu_milli: 100,
            memory_mb: 64,
            port: 8080,
            ..Default::default()
        });
        Object::Pod(p)
    }

    #[test]
    fn create_get_roundtrip_assigns_uid_and_rv() {
        let mut a = api();
        let created = a.create(Channel::UserToApi, pod("default", "p1")).unwrap();
        assert!(!created.meta().uid.is_empty());
        assert!(created.meta().resource_version > 0);
        let got = a.get(Kind::Pod, "default", "p1").unwrap();
        assert_eq!(got.meta().uid, created.meta().uid);
    }

    #[test]
    fn create_twice_conflicts() {
        let mut a = api();
        a.create(Channel::UserToApi, pod("default", "p1")).unwrap();
        assert_eq!(
            a.create(Channel::UserToApi, pod("default", "p1")),
            Err(ApiError::AlreadyExists)
        );
    }

    #[test]
    fn update_missing_is_not_found() {
        let mut a = api();
        assert_eq!(a.update(Channel::UserToApi, pod("default", "nope")), Err(ApiError::NotFound));
    }

    #[test]
    fn drain_coalesces_superseded_revisions() -> Result<(), EtcdError> {
        // Three revisions of one key land in the store between two
        // drains (a watcher catching up after idling): only the newest
        // is decoded, the superseded two are skipped.
        let mut a = api();
        let Object::Pod(mut p) = pod("default", "p1") else { unreachable!() };
        for i in 0..3 {
            p.status.restart_count = i;
            a.etcd_mut().put("/registry/pods/default/p1", Object::Pod(p.clone()).encode())?;
        }
        let got = a.get(Kind::Pod, "default", "p1").expect("pod visible");
        assert_eq!(got.as_pod().expect("pod").status.restart_count, 2, "newest revision wins");
        assert_eq!(a.sync_events_coalesced, 2, "two superseded revisions skipped");
        // A second drain with nothing new coalesces nothing.
        let _ = a.list(Kind::Pod, None);
        assert_eq!(a.sync_events_coalesced, 2);
        Ok(())
    }

    #[test]
    fn running_pod_delete_is_graceful_then_reaped() {
        let mut a = api();
        a.create(Channel::UserToApi, pod("default", "p1")).unwrap();
        // Mark it Running, as the kubelet would.
        let Object::Pod(mut p) = pod("default", "p1") else { unreachable!() };
        p.status.phase = "Running".into();
        p.status.ready = true;
        a.set_now(1_000);
        a.update(Channel::KubeletToApi, Object::Pod(p)).unwrap();
        // A controller delete leaves it serving, marked terminating.
        a.delete(Channel::KcmToApi, Kind::Pod, "default", "p1").unwrap();
        let still = a.get(Kind::Pod, "default", "p1").expect("graceful: pod still visible");
        assert!(still.meta().is_terminating());
        // After the grace period the reaper finalizes it.
        a.set_now(1_000 + POD_TERMINATION_GRACE_MS);
        assert!(a.get(Kind::Pod, "default", "p1").is_none(), "pod must be reaped after grace");
    }

    #[test]
    fn delete_then_get_none() {
        let mut a = api();
        a.create(Channel::UserToApi, pod("default", "p1")).unwrap();
        a.delete(Channel::UserToApi, Kind::Pod, "default", "p1").unwrap();
        assert!(a.get(Kind::Pod, "default", "p1").is_none());
        assert_eq!(
            a.delete(Channel::UserToApi, Kind::Pod, "default", "p1"),
            Err(ApiError::NotFound)
        );
    }

    #[test]
    fn list_scopes_by_namespace() {
        let mut a = api();
        a.create(Channel::UserToApi, pod("default", "p1")).unwrap();
        a.create(Channel::UserToApi, pod("default", "p2")).unwrap();
        a.create(Channel::UserToApi, pod("kube-system", "p3")).unwrap();
        assert_eq!(a.list(Kind::Pod, Some("default")).len(), 2);
        assert_eq!(a.list(Kind::Pod, None).len(), 3);
    }

    #[test]
    fn invalid_name_rejected_on_user_channel() {
        let mut a = api();
        let bad = pod("default", "Bad_Name");
        let res = a.create(Channel::UserToApi, bad);
        assert!(matches!(res, Err(ApiError::Invalid(_))));
        assert_eq!(a.audit().user_errors(), 1);
    }

    #[test]
    fn watch_stream_delivers_created_objects() {
        let mut a = api();
        let cursor = a.watch_head();
        a.create(Channel::UserToApi, pod("default", "p1")).unwrap();
        let (events, next) = a.poll_events(cursor);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, Kind::Pod);
        assert!(events[0].object.is_some());
        let (empty, _) = a.poll_events(next);
        assert!(empty.is_empty());
    }

    #[test]
    fn undecodable_store_bytes_delete_resource() -> Result<(), EtcdError> {
        let mut a = api();
        a.create(Channel::UserToApi, pod("default", "p1")).unwrap();
        // Corrupt the stored bytes into garbage via a raw etcd write,
        // emulating a serialization-byte injection that broke decoding.
        a.etcd_mut().put("/registry/pods/default/p1", vec![0xff, 0xff, 0xff])?;
        assert!(a.get(Kind::Pod, "default", "p1").is_none());
        assert_eq!(a.undecodable_deleted, 1);
        assert!(a.etcd().get("/registry/pods/default/p1").is_none());
        Ok(())
    }

    #[test]
    fn kind_of_key_parses() {
        assert_eq!(kind_of_key("/registry/pods/default/p"), Some(Kind::Pod));
        assert_eq!(kind_of_key("/registry/nodes/w1"), Some(Kind::Node));
        assert_eq!(kind_of_key("/registry/unknown/x"), None);
        assert_eq!(kind_of_key("/other/pods/x"), None);
    }

    #[test]
    fn generation_bumps_on_spec_change_only() {
        let mut a = api();
        let created = a.create(Channel::UserToApi, pod("default", "p1")).unwrap();
        assert_eq!(created.meta().generation, 1);

        // Status-only change: generation stays.
        let mut status_change = (*created).clone();
        if let Object::Pod(p) = &mut status_change {
            p.status.phase = "Running".into();
        }
        let updated = a.update(Channel::KubeletToApi, status_change).unwrap();
        assert_eq!(updated.meta().generation, 1);

        // Spec change: generation bumps.
        let mut spec_change = (*updated).clone();
        if let Object::Pod(p) = &mut spec_change {
            p.spec.priority = 10;
        }
        let updated2 = a.update(Channel::UserToApi, spec_change).unwrap();
        assert_eq!(updated2.meta().generation, 2);
    }

    #[test]
    fn kubelet_cannot_change_pod_spec() {
        // Server-side-apply field ownership: the kubelet owns status only.
        let mut a = api();
        let created = a.create(Channel::UserToApi, pod("default", "p1")).unwrap();
        let mut evil = (*created).clone();
        if let Object::Pod(p) = &mut evil {
            p.spec.priority = 999;
            p.status.phase = "Running".into();
        }
        let stored = a.update(Channel::KubeletToApi, evil).unwrap();
        if let Object::Pod(p) = &*stored {
            assert_eq!(p.spec.priority, 0, "kubelet-written spec must be discarded");
            assert_eq!(p.status.phase, "Running");
        } else {
            panic!("not a pod");
        }
    }

    /// Interceptor returning one canned verdict for the first message on
    /// a channel, passing everything else.
    struct OneShot {
        channel: Channel,
        verdict: Option<WireVerdict>,
    }

    impl Interceptor for OneShot {
        fn on_message(&mut self, ctx: &MsgCtx<'_>) -> WireVerdict {
            if ctx.channel == self.channel {
                self.verdict.take().unwrap_or(WireVerdict::Pass)
            } else {
                WireVerdict::Pass
            }
        }
    }

    fn api_with(channel: Channel, verdict: WireVerdict) -> ApiServer {
        let etcd = Etcd::new(1, 10 * 1024 * 1024);
        let interceptor: InterceptorHandle =
            Rc::new(RefCell::new(OneShot { channel, verdict: Some(verdict) }));
        let trace: TraceHandle = Rc::new(RefCell::new(Trace::new(1024)));
        ApiServer::new(etcd, interceptor, trace)
    }

    #[test]
    fn delayed_store_transaction_lands_late() {
        let mut a = api_with(Channel::ApiToEtcd, WireVerdict::Delay(1_000));
        let created = a.create(Channel::UserToApi, pod("default", "p1"));
        assert!(created.is_ok(), "the sender sees success immediately");
        // Nothing reached the store yet.
        assert!(a.get(Kind::Pod, "default", "p1").is_none());
        // After the hold the write lands through the deferred queue.
        a.set_now(1_000);
        assert!(a.get(Kind::Pod, "default", "p1").is_some());
    }

    #[test]
    fn delayed_incoming_request_arrives_late() {
        let mut a = api_with(Channel::UserToApi, WireVerdict::Delay(2_000));
        a.create(Channel::UserToApi, pod("default", "p1")).unwrap();
        assert!(a.get(Kind::Pod, "default", "p1").is_none(), "request still in flight");
        a.set_now(1_999);
        assert!(a.get(Kind::Pod, "default", "p1").is_none());
        a.set_now(2_000);
        let got = a.get(Kind::Pod, "default", "p1").expect("request delivered late");
        // The replay went through the full pipeline: admission ran.
        assert!(!got.meta().uid.is_empty());
        // The late arrival is audited as a real request.
        assert!(a.audit().records().iter().any(|r| r.at == 2_000));
    }

    #[test]
    fn duplicated_store_transaction_resurrects_old_state() {
        let mut a = api_with(Channel::ApiToEtcd, WireVerdict::Pass);
        let created = a.create(Channel::UserToApi, pod("default", "p1")).unwrap();
        // Arm a duplicate on the next store transaction.
        a.interceptor = Rc::new(RefCell::new(OneShot {
            channel: Channel::ApiToEtcd,
            verdict: Some(WireVerdict::Duplicate(500)),
        }));
        let Object::Pod(mut p) = (*created).clone() else { unreachable!() };
        p.metadata.resource_version = 0; // always write the latest
        p.status.restart_count = 1;
        a.set_now(100);
        a.update(Channel::KubeletToApi, Object::Pod(p.clone())).unwrap();
        // A newer revision supersedes it…
        p.status.restart_count = 2;
        a.set_now(200);
        a.update(Channel::KubeletToApi, Object::Pod(p)).unwrap();
        assert_eq!(
            a.get(Kind::Pod, "default", "p1").unwrap().as_pod().unwrap().status.restart_count,
            2
        );
        // …until the echo lands and resurrects the duplicated write.
        a.set_now(600);
        assert_eq!(
            a.get(Kind::Pod, "default", "p1").unwrap().as_pod().unwrap().status.restart_count,
            1,
            "the duplicated transaction must overwrite newer state"
        );
    }

    #[test]
    fn per_pod_grace_period_overrides_the_default() {
        let mut a = api();
        let Object::Pod(mut p) = pod("default", "p1") else { unreachable!() };
        p.spec.termination_grace_period_seconds = 5;
        a.create(Channel::UserToApi, Object::Pod(p.clone())).unwrap();
        p.status.phase = "Running".into();
        p.status.ready = true;
        a.set_now(1_000);
        a.update(Channel::KubeletToApi, Object::Pod(p)).unwrap();
        a.delete(Channel::KcmToApi, Kind::Pod, "default", "p1").unwrap();
        // Past the 2 s default, inside the pod's own 5 s window: serving.
        a.set_now(1_000 + POD_TERMINATION_GRACE_MS + 500);
        let still = a.get(Kind::Pod, "default", "p1").expect("pod keeps its own grace");
        assert!(still.meta().is_terminating());
        // After the pod's window: reaped.
        a.set_now(1_000 + 5_000);
        assert!(a.get(Kind::Pod, "default", "p1").is_none());
    }

    #[test]
    fn delayed_terminating_mark_still_reaps_on_a_late_sync() {
        // Flush-then-reap ordering: when the delayed mark's delivery time
        // and the reap deadline are both overdue at the same sync, the
        // mark must land first so the reaper still finalizes the pod.
        let mut a = api();
        let created = a.create(Channel::UserToApi, pod("default", "p1")).unwrap();
        let Object::Pod(mut p) = (*created).clone() else { unreachable!() };
        p.metadata.resource_version = 0;
        p.status.phase = "Running".into();
        a.set_now(1_000);
        a.update(Channel::KubeletToApi, Object::Pod(p)).unwrap();
        a.interceptor = Rc::new(RefCell::new(OneShot {
            channel: Channel::ApiToEtcd,
            verdict: Some(WireVerdict::Delay(500)),
        }));
        a.delete(Channel::KcmToApi, Kind::Pod, "default", "p1").unwrap();
        // No syncs happen until well past mark delivery (1 500) and the
        // reap deadline (1 500 + grace): one late sync must do both.
        a.set_now(1_000 + 500 + POD_TERMINATION_GRACE_MS + 2_500);
        assert!(
            a.get(Kind::Pod, "default", "p1").is_none(),
            "pod must be finalized once the late mark lands and grace passes"
        );
    }

    #[test]
    fn reaper_skips_pods_whose_terminating_mark_never_landed() {
        // A dropped terminating mark must not become a force-delete at
        // the (never-started) grace deadline.
        let mut a = api_with(Channel::ApiToEtcd, WireVerdict::Pass);
        a.create(Channel::UserToApi, pod("default", "p1")).unwrap();
        let Object::Pod(mut p) = pod("default", "p1") else { unreachable!() };
        p.status.phase = "Running".into();
        a.set_now(1_000);
        a.update(Channel::KubeletToApi, Object::Pod(p)).unwrap();
        a.interceptor = Rc::new(RefCell::new(OneShot {
            channel: Channel::ApiToEtcd,
            verdict: Some(WireVerdict::Drop),
        }));
        a.delete(Channel::KcmToApi, Kind::Pod, "default", "p1").unwrap();
        a.set_now(1_000 + POD_TERMINATION_GRACE_MS + 1);
        let survivor = a.get(Kind::Pod, "default", "p1").expect("pod must survive");
        assert!(!survivor.meta().is_terminating());
    }

    #[test]
    fn key_scratch_survives_reentrant_reads() {
        // The scratch buffer is thread-shared across apiserver instances:
        // a `for_each` callback that reads a *second* apiserver on the
        // same thread must not panic (the buffer is moved out for the
        // duration of the call, never borrow-locked).
        let mut a = api();
        let mut b = api();
        a.create(Channel::UserToApi, pod("default", "p1")).unwrap();
        b.create(Channel::UserToApi, pod("default", "q1")).unwrap();
        b.create(Channel::UserToApi, pod("default", "q2")).unwrap();
        let mut seen = 0usize;
        a.for_each(Kind::Pod, None, |_| {
            seen += b.count(Kind::Pod, Some("default"));
            assert!(b.get(Kind::Pod, "default", "q1").is_some());
        });
        assert_eq!(seen, 2);
    }

    #[test]
    fn decode_cache_serves_writes_without_redecoding() {
        let mut a = api();
        let created = a.create(Channel::UserToApi, pod("default", "p1")).unwrap();
        // The trailing sync of the create drained exactly one event, and
        // its bytes were the very Arc the write path committed.
        assert_eq!(a.decode_cache_hits, 1, "steady-state write must hit the decode cache");
        assert_eq!(a.decode_cache_misses, 0);
        // The watch cache holds the *same* object the caller got back —
        // no decode ever ran, the whole pipeline shared one allocation.
        let got = a.get(Kind::Pod, "default", "p1").unwrap();
        assert!(Rc::ptr_eq(&created, &got), "cache must share the write-path decode");
        // An update flows the same way.
        let mut running = (*created).clone();
        if let Object::Pod(p) = &mut running {
            p.status.phase = "Running".into();
        }
        let updated = a.update(Channel::KubeletToApi, running).unwrap();
        assert_eq!(a.decode_cache_hits, 2);
        assert!(Rc::ptr_eq(&updated, &a.get(Kind::Pod, "default", "p1").unwrap()));
    }

    #[test]
    fn corrupted_transaction_bypasses_decode_cache() {
        // A fault Replaces the store transaction with tampered bytes: the
        // drain must decode those bytes fresh — never serve the pristine
        // admitted object from the decode cache.
        let mut evil = pod("default", "p1");
        if let Object::Pod(p) = &mut evil {
            p.spec.node_name = "ghost-node".into();
        }
        let mut a = api_with(Channel::ApiToEtcd, WireVerdict::Replace(evil.encode()));
        let created = a.create(Channel::UserToApi, pod("default", "p1")).unwrap();
        assert_eq!(a.decode_cache_hits, 0, "tampered bytes must never hit the cache");
        assert!(a.decode_cache_misses >= 1, "tampered bytes must decode fresh");
        let got = a.get(Kind::Pod, "default", "p1").unwrap();
        assert_eq!(
            got.as_pod().unwrap().spec.node_name,
            "ghost-node",
            "served state must reflect the corrupted store bytes"
        );
        assert!(!Rc::ptr_eq(&created, &got));
        assert_eq!(created.as_pod().unwrap().spec.node_name, "");
    }

    #[test]
    fn disabled_decode_cache_decodes_but_serves_equal_state() {
        let mut a = api();
        a.set_decode_cache(false);
        let created = a.create(Channel::UserToApi, pod("default", "p1")).unwrap();
        assert_eq!((a.decode_cache_hits, a.decode_cache_misses), (0, 0));
        let got = a.get(Kind::Pod, "default", "p1").unwrap();
        assert!(!Rc::ptr_eq(&created, &got), "disabled cache must decode a fresh object");
        assert_eq!(*got, *created, "decoded state must equal the admitted object exactly");
    }

    #[test]
    fn restart_rebuilds_cache_and_sees_at_rest_corruption() {
        let mut a = api();
        let created = a.create(Channel::UserToApi, pod("default", "p1")).unwrap();
        // At-rest corruption of a decodable-but-wrong flavour.
        let mut tampered = (*created).clone();
        if let Object::Pod(p) = &mut tampered {
            p.spec.node_name = "ghost-node".into();
        }
        a.etcd_mut().corrupt_at_rest(0, "/registry/pods/default/p1", tampered.encode());
        // Cache still serves the old (correct) value.
        let via_cache = a.get(Kind::Pod, "default", "p1").unwrap();
        assert_eq!(via_cache.as_pod().unwrap().spec.node_name, "");
        // After a restart, the corrupted value is picked up.
        a.restart();
        let fresh = a.get(Kind::Pod, "default", "p1").unwrap();
        assert_eq!(fresh.as_pod().unwrap().spec.node_name, "ghost-node");
    }

    #[test]
    fn at_rest_corruption_invisible_to_watch_pipeline_until_restart() {
        // Corruption families tamper below the wire: no revision bump, no
        // watch event. Watchers and the cache keep serving the clean
        // object until a restart's recover-and-relist surfaces the
        // damage. Both storage engines must agree — on `log` the tamper
        // has to survive the backend's crash-recovery replay.
        for kind in [etcd_sim::StorageKind::Mem, etcd_sim::StorageKind::Log] {
            let etcd = Etcd::with_backend(kind, 1, 10 * 1024 * 1024);
            let interceptor: InterceptorHandle = Rc::new(RefCell::new(NoopInterceptor));
            let trace: TraceHandle = Rc::new(RefCell::new(Trace::new(1024)));
            let mut a = ApiServer::new(etcd, interceptor, trace);
            let created = a.create(Channel::UserToApi, pod("default", "p1")).unwrap();
            let cursor = a.watch_head();
            let mut tampered = (*created).clone();
            if let Object::Pod(p) = &mut tampered {
                p.spec.node_name = "ghost-node".into();
            }
            assert!(a
                .etcd_mut()
                .corrupt_at_rest(0, "/registry/pods/default/p1", tampered.encode()));
            let (events, _) = a.poll_events(cursor);
            assert!(events.is_empty(), "{kind:?}: at-rest corruption must not emit watch events");
            assert_eq!(
                a.get(Kind::Pod, "default", "p1").unwrap().as_pod().unwrap().spec.node_name,
                "",
                "{kind:?}: the watch cache keeps serving the clean object"
            );
            a.restart();
            assert_eq!(
                a.get(Kind::Pod, "default", "p1").unwrap().as_pod().unwrap().spec.node_name,
                "ghost-node",
                "{kind:?}: restart recovery must surface the corruption"
            );
        }
    }
}
