//! Client-side leader election over [`Lease`] objects.
//!
//! The Kcm and the Scheduler "use leader election so that there is only one
//! active replica at a time" (§II-D). The paper's Timing-failure example
//! hinges on this mechanism: after a scheduler restart, a new leader is
//! elected only after the old lease expires (~20 s in the standard
//! configuration), during which no pod is scheduled. Lease corruption can
//! also lock a controller out permanently — one of the observed Stall
//! causes ("Scheduler or Kcm unable to obtain a leadership role").

use crate::ApiServer;
use k8s_model::{Channel, Kind, Lease, Object, ObjectMeta};

/// Default lease duration (kube-controller-manager default: 15 s).
pub const DEFAULT_LEASE_DURATION_MS: u64 = 15_000;

/// Default renewal cadence (kube default renewDeadline ≈ 10 s).
pub const DEFAULT_RENEW_EVERY_MS: u64 = 10_000;

/// A leader-election participant.
#[derive(Debug, Clone)]
pub struct LeaderElector {
    /// Namespace of the lease object.
    pub lease_namespace: String,
    /// Name of the lease object.
    pub lease_name: String,
    /// This participant's identity string.
    pub identity: String,
    /// Channel its API requests travel on.
    pub channel: Channel,
    /// Lease validity duration.
    pub duration_ms: u64,
    /// How often the holder renews.
    pub renew_every_ms: u64,
    last_renew_attempt: u64,
    is_leader: bool,
}

impl LeaderElector {
    /// Creates an elector for `lease_name` in `kube-system`.
    pub fn new(lease_name: &str, identity: &str, channel: Channel) -> LeaderElector {
        LeaderElector {
            lease_namespace: "kube-system".to_owned(),
            lease_name: lease_name.to_owned(),
            identity: identity.to_owned(),
            channel,
            duration_ms: DEFAULT_LEASE_DURATION_MS,
            renew_every_ms: DEFAULT_RENEW_EVERY_MS,
            last_renew_attempt: 0,
            is_leader: false,
        }
    }

    /// True while this participant holds the lease.
    pub fn is_leader(&self) -> bool {
        self.is_leader
    }

    /// Steps down voluntarily (component restart). The lease is left in
    /// place, so a successor waits out the remaining validity — the
    /// mechanism behind the ~20 s re-election gap.
    pub fn resign(&mut self) {
        self.is_leader = false;
    }

    /// Runs one election round; returns leadership status.
    pub fn step(&mut self, api: &mut ApiServer, now: u64) -> bool {
        let current = api.get(Kind::Lease, &self.lease_namespace, &self.lease_name);
        match current.as_deref() {
            None => {
                // No lease: try to create it and take leadership.
                let mut lease = Lease::default();
                lease.metadata = ObjectMeta::named(&self.lease_namespace, &self.lease_name);
                lease.spec.holder = self.identity.clone();
                lease.spec.lease_duration_ms = self.duration_ms as i64;
                lease.spec.renew_time = now as i64;
                self.is_leader = api.create(self.channel, Object::Lease(lease)).is_ok();
                self.last_renew_attempt = now;
            }
            Some(Object::Lease(lease)) => {
                if lease.spec.holder == self.identity && self.is_leader {
                    // Holder: renew on cadence.
                    if now.saturating_sub(self.last_renew_attempt) >= self.renew_every_ms {
                        self.last_renew_attempt = now;
                        let mut renewed = lease.clone();
                        renewed.spec.renew_time = now as i64;
                        if api.update(self.channel, Object::Lease(renewed)).is_err()
                            && lease.expired(now)
                        {
                            self.is_leader = false;
                        }
                    }
                } else if lease.expired(now) {
                    // Expired: attempt takeover.
                    let mut taken = lease.clone();
                    taken.spec.holder = self.identity.clone();
                    taken.spec.lease_duration_ms = self.duration_ms as i64;
                    taken.spec.renew_time = now as i64;
                    self.is_leader = api.update(self.channel, Object::Lease(taken)).is_ok();
                    self.last_renew_attempt = now;
                } else {
                    // Someone else (possibly a corrupted holder string)
                    // holds an unexpired lease: we are locked out.
                    self.is_leader = false;
                }
            }
            Some(_) => {
                // The lease key decoded as a different kind (severe
                // corruption): treat as lock-out.
                self.is_leader = false;
            }
        }
        self.is_leader
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InterceptorHandle, TraceHandle};
    use etcd_sim::Etcd;
    use k8s_model::NoopInterceptor;
    use simkit::Trace;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn api() -> ApiServer {
        let interceptor: InterceptorHandle = Rc::new(RefCell::new(NoopInterceptor));
        let trace: TraceHandle = Rc::new(RefCell::new(Trace::new(64)));
        ApiServer::new(Etcd::new(1, 1 << 20), interceptor, trace)
    }

    #[test]
    fn first_candidate_acquires() {
        let mut api = api();
        let mut el = LeaderElector::new("kcm-leader", "kcm-0", Channel::KcmToApi);
        assert!(el.step(&mut api, 1000));
        assert!(el.is_leader());
    }

    #[test]
    fn second_candidate_waits_for_expiry() {
        let mut api = api();
        let mut a = LeaderElector::new("kcm-leader", "kcm-0", Channel::KcmToApi);
        let mut b = LeaderElector::new("kcm-leader", "kcm-1", Channel::KcmToApi);
        assert!(a.step(&mut api, 1000));
        assert!(!b.step(&mut api, 2000));
        // After the lease expires without renewal, b takes over.
        assert!(b.step(&mut api, 1000 + DEFAULT_LEASE_DURATION_MS + 1));
    }

    #[test]
    fn holder_renews_and_keeps_leadership() {
        let mut api = api();
        let mut a = LeaderElector::new("kcm-leader", "kcm-0", Channel::KcmToApi);
        assert!(a.step(&mut api, 0));
        // Renew at 10 s, then the 15 s expiry from t=0 passes harmlessly.
        assert!(a.step(&mut api, 10_000));
        assert!(a.step(&mut api, 16_000));
        let mut b = LeaderElector::new("kcm-leader", "kcm-1", Channel::KcmToApi);
        assert!(!b.step(&mut api, 16_001));
    }

    #[test]
    fn resign_then_reelect_costs_the_lease_window() {
        let mut api = api();
        let mut a = LeaderElector::new("sched-leader", "sched-0", Channel::SchedulerToApi);
        assert!(a.step(&mut api, 0));
        a.resign();
        // Immediately after resigning, even the same identity must wait
        // out the lease (it no longer considers itself leader).
        assert!(!a.is_leader());
        let mut b = LeaderElector::new("sched-leader", "sched-1", Channel::SchedulerToApi);
        assert!(!b.step(&mut api, 5_000));
        assert!(b.step(&mut api, DEFAULT_LEASE_DURATION_MS + 1));
    }

    #[test]
    fn corrupted_far_future_renew_time_locks_everyone_out() {
        // The Stall pattern: a corrupted lease no controller can reclaim.
        let mut api = api();
        let mut a = LeaderElector::new("kcm-leader", "kcm-0", Channel::KcmToApi);
        assert!(a.step(&mut api, 0));
        // Corrupt renewTime to the far future and the holder to a ghost.
        let obj = api.get(Kind::Lease, "kube-system", "kcm-leader").unwrap();
        if let Object::Lease(l) = &*obj {
            let mut l = l.clone();
            l.spec.holder = "ghost".into();
            l.spec.renew_time = i64::MAX / 2;
            api.update(Channel::ApiToEtcd, Object::Lease(l)).unwrap();
        }
        assert!(!a.step(&mut api, 20_000));
        assert!(!a.step(&mut api, 10_000_000));
    }
}
