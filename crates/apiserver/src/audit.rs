//! Audit log: per-request outcomes.
//!
//! The paper's F4 finding — "errors can escape monitoring and propagate
//! inside the system with the user being unaware" — is measured by counting
//! how many injection experiments surfaced *any* error to the cluster user
//! (Figure 7). The audit log records every API request's outcome per
//! channel, so classifiers can ask exactly that question.

use k8s_model::{Channel, ChannelId, Kind, Op};
use std::rc::Rc;

/// Outcome of an API request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestResult {
    /// The apiserver acknowledged the request (which, per §V-C3, does NOT
    /// imply the cluster reached the requested state).
    Ok,
    /// The apiserver returned an error (message retained).
    Err(String),
}

impl RequestResult {
    /// True for error outcomes.
    pub fn is_err(&self) -> bool {
        matches!(self, RequestResult::Err(_))
    }
}

/// One audited request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Simulated time of the request.
    pub at: u64,
    /// The concrete wire the request arrived on (node-scoped for kubelet
    /// traffic, so per-node error analyses stay possible).
    pub channel: ChannelId,
    /// Operation.
    pub op: Op,
    /// Resource kind.
    pub kind: Kind,
    /// Registry key (interned — the request path shares one allocation
    /// between the audit record and its log lines).
    pub key: Rc<str>,
    /// Outcome.
    pub result: RequestResult,
}

/// The apiserver's request audit log.
#[derive(Debug, Clone, Default)]
pub struct AuditLog {
    records: Vec<AuditRecord>,
}

impl AuditLog {
    /// Appends a record.
    pub fn record(&mut self, rec: AuditRecord) {
        self.records.push(rec);
    }

    /// All records, oldest first.
    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// Number of requests on a channel (a class-wide id — or a bare
    /// class — counts every node's wire; a node-scoped id counts one).
    pub fn count_by_channel(&self, channel: impl Into<ChannelId>) -> usize {
        let channel = channel.into();
        self.records.iter().filter(|r| channel.matches(r.channel)).count()
    }

    /// Number of error outcomes on a channel (same matching rules as
    /// [`AuditLog::count_by_channel`]).
    pub fn errors_by_channel(&self, channel: impl Into<ChannelId>) -> usize {
        let channel = channel.into();
        self.records.iter().filter(|r| channel.matches(r.channel) && r.result.is_err()).count()
    }

    /// Number of errors returned to the cluster user — the Figure 7 metric.
    pub fn user_errors(&self) -> usize {
        self.errors_by_channel(Channel::UserToApi)
    }

    /// True when the user saw at least one error.
    pub fn user_saw_error(&self) -> bool {
        self.user_errors() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(channel: impl Into<ChannelId>, err: bool) -> AuditRecord {
        AuditRecord {
            at: 0,
            channel: channel.into(),
            op: Op::Create,
            kind: Kind::Pod,
            key: "/registry/pods/default/p".into(),
            result: if err { RequestResult::Err("boom".into()) } else { RequestResult::Ok },
        }
    }

    #[test]
    fn counts_by_channel() {
        let mut log = AuditLog::default();
        log.record(rec(Channel::UserToApi, false));
        log.record(rec(Channel::UserToApi, true));
        log.record(rec(Channel::KcmToApi, true));
        assert_eq!(log.count_by_channel(Channel::UserToApi), 2);
        assert_eq!(log.errors_by_channel(Channel::UserToApi), 1);
        assert_eq!(log.errors_by_channel(Channel::KcmToApi), 1);
        assert_eq!(log.user_errors(), 1);
        assert!(log.user_saw_error());
    }

    #[test]
    fn empty_log_reports_no_errors() {
        let log = AuditLog::default();
        assert!(!log.user_saw_error());
        assert_eq!(log.records().len(), 0);
    }
}
