//! The apiserver's validation layer.
//!
//! Implements the "general validations, e.g., regex matching or border-case
//! testing" of §V-C4, including the two checks the paper explicitly credits
//! with blocking severe error patterns on the user channel:
//!
//! * a namespace (or name) that does not match the request URL;
//! * label selectors that do not match the template labels of the same
//!   resource instance — the condition that triggers infinite pod spawn.
//!
//! Everything here rejects *malformed* values; *valid-but-wrong* values
//! sail through, which is exactly the gap Table VI quantifies.

use k8s_model::validate::*;
use k8s_model::workloads::selector_matches_template;
use k8s_model::{LabelSelector, Object, PodTemplateSpec};

/// Validates an incoming object against the URL it was submitted under.
///
/// # Errors
///
/// Returns a human-readable description of the violated rule.
pub fn validate(obj: &Object, url_ns: &str, url_name: &str) -> Result<(), String> {
    let meta = obj.meta();

    // Identity checks: URL ↔ body agreement.
    if meta.name != url_name {
        return Err(format!("name {:?} does not match request URL {:?}", meta.name, url_name));
    }
    if !obj.kind().cluster_scoped() && meta.namespace != url_ns {
        return Err(format!(
            "namespace {:?} does not match request URL {:?}",
            meta.namespace, url_ns
        ));
    }
    if !is_dns1123_subdomain(&meta.name) {
        return Err(format!("name {:?} is not a valid DNS-1123 subdomain", meta.name));
    }
    if !obj.kind().cluster_scoped() && !is_dns1123_label(&meta.namespace) {
        return Err(format!("namespace {:?} is not a valid DNS-1123 label", meta.namespace));
    }

    // Label syntax.
    for (k, v) in &meta.labels {
        if !is_label_key(k) {
            return Err(format!("invalid label key {k:?}"));
        }
        if !is_label_value(v) {
            return Err(format!("invalid label value {v:?} for key {k:?}"));
        }
    }

    match obj {
        Object::Pod(p) => {
            if p.spec.containers.is_empty() {
                return Err("pod must declare at least one container".into());
            }
            for c in &p.spec.containers {
                if c.image.is_empty() {
                    return Err(format!("container {:?} has an empty image", c.name));
                }
                if c.port != 0 && !is_valid_port(c.port) {
                    return Err(format!("container port {} out of range", c.port));
                }
                if c.cpu_milli < 0 || c.memory_mb < 0 {
                    return Err("negative resource request".into());
                }
            }
            if !is_restart_policy(&p.spec.restart_policy) {
                return Err(format!("unknown restartPolicy {:?}", p.spec.restart_policy));
            }
            if p.spec.priority < 0 {
                return Err("negative pod priority".into());
            }
        }
        Object::ReplicaSet(rs) => {
            validate_workload(rs.spec.replicas, &rs.spec.selector, &rs.spec.template)?;
        }
        Object::Deployment(d) => {
            validate_workload(d.spec.replicas, &d.spec.selector, &d.spec.template)?;
            if d.spec.max_unavailable < 0 || d.spec.max_surge < 0 {
                return Err("negative rolling-update bound".into());
            }
        }
        Object::DaemonSet(ds) => {
            validate_workload(0, &ds.spec.selector, &ds.spec.template)?;
        }
        Object::Service(s) => {
            if !is_valid_port(s.spec.port) {
                return Err(format!("service port {} out of range", s.spec.port));
            }
            if s.spec.target_port != 0 && !is_valid_port(s.spec.target_port) {
                return Err(format!("service targetPort {} out of range", s.spec.target_port));
            }
            if !s.spec.cluster_ip.is_empty() && !is_ipv4(&s.spec.cluster_ip) {
                return Err(format!("clusterIP {:?} is not a valid IPv4 address", s.spec.cluster_ip));
            }
            if !matches!(s.spec.protocol.as_str(), "" | "TCP" | "UDP") {
                return Err(format!("unknown protocol {:?}", s.spec.protocol));
            }
        }
        Object::Endpoints(e) => {
            if e.port != 0 && !is_valid_port(e.port) {
                return Err(format!("endpoints port {} out of range", e.port));
            }
            for a in &e.addresses {
                if !a.ip.is_empty() && !is_ipv4(&a.ip) {
                    return Err(format!("endpoint address {:?} is not a valid IPv4", a.ip));
                }
            }
        }
        Object::Node(n) => {
            if !n.spec.pod_cidr.is_empty() && !is_cidr(&n.spec.pod_cidr) {
                return Err(format!("podCIDR {:?} is not a valid CIDR", n.spec.pod_cidr));
            }
            for t in &n.spec.taints {
                if !is_taint_effect(&t.effect) {
                    return Err(format!("unknown taint effect {:?}", t.effect));
                }
            }
            if n.status.cpu_milli < 0 || n.status.memory_mb < 0 {
                return Err("negative node capacity".into());
            }
        }
        Object::Namespace(_) | Object::ConfigMap(_) => {}
        Object::Lease(l) => {
            if l.spec.lease_duration_ms < 0 {
                return Err("negative lease duration".into());
            }
        }
        Object::HorizontalPodAutoscaler(h) => {
            if !is_dns1123_subdomain(&h.spec.scale_target) {
                return Err(format!(
                    "scaleTargetRef {:?} is not a valid object name",
                    h.spec.scale_target
                ));
            }
            if h.spec.min_replicas < 1 {
                return Err(format!("minReplicas {} must be at least 1", h.spec.min_replicas));
            }
            if h.spec.max_replicas < h.spec.min_replicas {
                return Err(format!(
                    "maxReplicas {} below minReplicas {}",
                    h.spec.max_replicas, h.spec.min_replicas
                ));
            }
            if h.spec.target_load < 1 {
                return Err(format!(
                    "targetLoadPerReplica {} must be positive",
                    h.spec.target_load
                ));
            }
        }
    }
    Ok(())
}

fn validate_workload(
    replicas: i64,
    selector: &LabelSelector,
    template: &PodTemplateSpec,
) -> Result<(), String> {
    if !is_valid_replicas(replicas) {
        return Err(format!("negative replicas {replicas}"));
    }
    if selector.is_empty() {
        return Err("selector must not be empty".into());
    }
    // The infinite-spawn guard: template labels must satisfy the selector.
    if !selector_matches_template(selector, template) {
        return Err("selector does not match template labels".into());
    }
    if template.spec.containers.is_empty() {
        return Err("template must declare at least one container".into());
    }
    for c in &template.spec.containers {
        if c.image.is_empty() {
            return Err(format!("template container {:?} has an empty image", c.name));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_model::{Container, ObjectMeta, Pod, ReplicaSet, Service};

    fn valid_pod() -> Object {
        let mut p = Pod::default();
        p.metadata = ObjectMeta::named("default", "web-1");
        p.spec.containers.push(Container {
            name: "c".into(),
            image: "img:1".into(),
            ..Default::default()
        });
        Object::Pod(p)
    }

    #[test]
    fn accepts_valid_pod() {
        assert!(validate(&valid_pod(), "default", "web-1").is_ok());
    }

    #[test]
    fn url_mismatch_detected() {
        // The check the paper credits with stopping namespace corruption on
        // the user channel.
        let p = valid_pod();
        assert!(validate(&p, "other", "web-1").is_err());
        assert!(validate(&p, "default", "other-name").is_err());
    }

    #[test]
    fn malformed_names_rejected() {
        let mut p = valid_pod();
        p.meta_mut().name = "Web_1".into();
        assert!(validate(&p, "default", "Web_1").is_err());
    }

    #[test]
    fn empty_image_rejected() {
        let mut p = valid_pod();
        if let Object::Pod(pod) = &mut p {
            pod.spec.containers[0].image.clear();
        }
        assert!(validate(&p, "default", "web-1").is_err());
    }

    #[test]
    fn selector_template_mismatch_rejected() {
        let mut rs = ReplicaSet::default();
        rs.metadata = ObjectMeta::named("default", "rs");
        rs.spec.replicas = 2;
        rs.spec.selector = LabelSelector::eq("app", "web");
        rs.spec.template.metadata.labels.insert("app".into(), "web".into());
        rs.spec.template.spec.containers.push(Container {
            name: "c".into(),
            image: "img:1".into(),
            ..Default::default()
        });
        assert!(validate(&Object::ReplicaSet(rs.clone()), "default", "rs").is_ok());

        rs.spec.template.metadata.labels.insert("app".into(), "wea".into());
        let err = validate(&Object::ReplicaSet(rs), "default", "rs").unwrap_err();
        assert!(err.contains("selector"), "{err}");
    }

    #[test]
    fn valid_but_wrong_values_pass() {
        // Bit-4 flip of port 80 → 64: in range, validation cannot catch it.
        let mut s = Service::default();
        s.metadata = ObjectMeta::named("default", "svc");
        s.spec.port = 80 ^ 16;
        s.spec.cluster_ip = "10.96.0.10".into();
        assert!(validate(&Object::Service(s), "default", "svc").is_ok());
    }

    #[test]
    fn out_of_range_port_rejected() {
        let mut s = Service::default();
        s.metadata = ObjectMeta::named("default", "svc");
        s.spec.port = 0;
        assert!(validate(&Object::Service(s), "default", "svc").is_err());
    }

    #[test]
    fn negative_replicas_rejected() {
        let mut rs = ReplicaSet::default();
        rs.metadata = ObjectMeta::named("default", "rs");
        rs.spec.replicas = -1;
        rs.spec.selector = LabelSelector::eq("a", "b");
        rs.spec.template.metadata.labels.insert("a".into(), "b".into());
        assert!(validate(&Object::ReplicaSet(rs), "default", "rs").is_err());
    }
}
