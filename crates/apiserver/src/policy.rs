//! Pluggable admission policies and stored-state integrity checking.
//!
//! The paper's discussion (§VI-B) argues that one-shot validation at the
//! API boundary is not enough: "it is not enough to validate the data only
//! once. If for some reason an incorrect value gets to Etcd […] no circuit
//! breaker, or other resiliency strategies mitigate the impact". These two
//! extension points let deployments add exactly the defenses the paper
//! proposes:
//!
//! * [`AdmissionPolicy`] — validating-webhook-style checks over incoming
//!   requests with a read-only view of the cluster (stricter checks such as
//!   "scaling of coreDNS to 0 should be denied" or "reject the spawning of
//!   a large number of Pods without resource limits");
//! * [`IntegrityChecker`] — a redundancy code sealed into each object
//!   *before* the apiserver→etcd transaction and verified on every decode,
//!   so in-flight corruption of protected fields is detected *after* the
//!   fact, not just at the API boundary.
//!
//! Both hooks are empty by default; installing them changes nothing about
//! request semantics other than the added rejections/repairs. The
//! `mutiny-mitigations` crate ships the implementations evaluated in the
//! ablation benches.

use k8s_model::{Channel, Object, Op};
use std::collections::HashMap;

/// A read-only request context handed to admission policies.
#[derive(Debug)]
pub struct PolicyCtx<'a> {
    /// The operation under review.
    pub op: Op,
    /// Channel the request arrived on.
    pub channel: Channel,
    /// The incoming object (for deletes: the stored object being deleted).
    pub object: &'a Object,
    /// The stored object an update/delete refers to, if any.
    pub existing: Option<&'a Object>,
    /// Simulated time.
    pub now: u64,
    /// Read-only view of the apiserver's watch cache (registry key →
    /// object), for policies that need cluster-wide context such as
    /// namespace pod counts.
    pub view: &'a HashMap<String, std::rc::Rc<Object>>,
}

/// A validating admission policy: reviews requests after the built-in
/// validation layer and may reject them.
///
/// Policies run only for requests arriving from components or users — the
/// internal apiserver→etcd path is not re-reviewed, exactly like admission
/// webhooks in Kubernetes (which is why store-channel injections bypass
/// them; the [`IntegrityChecker`] exists to cover that gap).
pub trait AdmissionPolicy {
    /// Short identifier used in audit messages.
    fn name(&self) -> &str;

    /// Reviews one request.
    ///
    /// # Errors
    ///
    /// A human-readable denial reason; the request is rejected with it.
    fn review(&mut self, ctx: &PolicyCtx<'_>) -> Result<(), String>;

    /// Optional mutating pass run *before* [`AdmissionPolicy::review`]:
    /// a policy may return a repaired replacement for the incoming
    /// object (a mutating webhook). `None` leaves the object untouched.
    /// Repairs count in `ApiServer::policy_repairs`, not as denials.
    fn repair(&mut self, _ctx: &PolicyCtx<'_>) -> Option<Object> {
        None
    }

    /// Clones the policy behind its trait object, preserving any
    /// accumulated review state (fork-the-world snapshots carry installed
    /// policies into every forked run).
    fn clone_box(&self) -> Box<dyn AdmissionPolicy>;
}

/// What the apiserver does when a stored object fails integrity
/// verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrityAction {
    /// Restore the last known-good cached value (and rewrite it to the
    /// store) — the paper's "roll back to the old values when needed".
    #[default]
    Repair,
    /// Delete the object, like an undecryptable resource (§II-D).
    Discard,
    /// Count the violation but keep the corrupted value (detection-only
    /// mode, for measuring how often the code would have fired).
    Observe,
}

/// A redundancy code over an object's protected fields.
///
/// `seal` runs after admission, immediately before the object is encoded
/// for the apiserver→etcd transaction; `verify` runs on every object the
/// apiserver decodes out of the store.
pub trait IntegrityChecker {
    /// Computes and embeds the integrity code.
    fn seal(&self, obj: &mut Object);

    /// True when the embedded code matches the object's protected fields.
    /// Objects without a code (written before the checker was installed)
    /// must verify as true.
    fn verify(&self, obj: &Object) -> bool;

    /// The response to a verification failure.
    fn action(&self) -> IntegrityAction {
        IntegrityAction::Repair
    }
}

/// Counters for the integrity subsystem, exposed to classifiers and
/// ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityMetrics {
    /// Verification failures observed.
    pub violations: u64,
    /// Objects restored from the last known-good value.
    pub repaired: u64,
    /// Objects discarded because no good value was available.
    pub discarded: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_model::{Namespace, ObjectMeta};

    struct DenyAll;
    impl AdmissionPolicy for DenyAll {
        fn name(&self) -> &str {
            "deny-all"
        }
        fn review(&mut self, _ctx: &PolicyCtx<'_>) -> Result<(), String> {
            Err("denied".into())
        }
        fn clone_box(&self) -> Box<dyn AdmissionPolicy> {
            Box::new(DenyAll)
        }
    }

    #[test]
    fn policy_trait_is_object_safe() {
        let mut p: Box<dyn AdmissionPolicy> = Box::new(DenyAll);
        let mut ns = Namespace::default();
        ns.metadata = ObjectMeta::named("", "default");
        let obj = Object::Namespace(ns);
        let view = HashMap::new();
        let ctx = PolicyCtx {
            op: Op::Create,
            channel: Channel::UserToApi,
            object: &obj,
            existing: None,
            now: 0,
            view: &view,
        };
        assert_eq!(p.name(), "deny-all");
        assert!(p.review(&ctx).is_err());
    }

    #[test]
    fn default_integrity_action_is_repair() {
        struct Nop;
        impl IntegrityChecker for Nop {
            fn seal(&self, _obj: &mut Object) {}
            fn verify(&self, _obj: &Object) -> bool {
                true
            }
        }
        assert_eq!(Nop.action(), IntegrityAction::Repair);
    }
}
