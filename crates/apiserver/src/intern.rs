//! A tiny `Rc<str>` interner for hot-path name strings.
//!
//! The controller and scheduler queues key work items by
//! `(namespace, name)` pairs extracted from registry keys; every watch
//! event used to allocate fresh `String`s for both. Interning turns the
//! steady-state enqueue into two refcount bumps — the distinct-name set
//! of a simulation is small and stable (a few hundred entries), so the
//! pool stays tiny and is dropped with its owner (no global state, no
//! leaks, unlike [`k8s_model::intern_node`]'s program-lifetime pool).

use std::collections::HashSet;
use std::rc::Rc;

/// An owned pool of interned strings.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    pool: HashSet<Rc<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Returns the pooled copy of `s`, inserting it on first sight.
    pub fn intern(&mut self, s: &str) -> Rc<str> {
        if let Some(hit) = self.pool.get(s) {
            return hit.clone();
        }
        let fresh: Rc<str> = Rc::from(s);
        self.pool.insert(fresh.clone());
        fresh
    }

    /// Number of distinct strings pooled so far.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_pointer_stable_and_deduplicated() {
        let mut pool = Interner::new();
        let a = pool.intern("default");
        let b = pool.intern(&String::from("default"));
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(pool.len(), 1);
        let c = pool.intern("kube-system");
        assert!(!Rc::ptr_eq(&a, &c));
        assert_eq!(pool.len(), 2);
        assert!(!pool.is_empty());
    }
}
