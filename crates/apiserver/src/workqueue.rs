//! Rate-limited work queue with exponential backoff.
//!
//! Controllers enqueue reconcile keys from watch events; failures requeue
//! with exponentially increasing delays. This is one of the circuit-breaker
//! resiliency strategies the paper lists (§II-D): it prevents a repeatedly
//! failing reconcile from overloading the control plane.

use std::collections::{HashMap, HashSet, VecDeque};

/// Base requeue delay after the first failure.
pub const BASE_BACKOFF_MS: u64 = 200;

/// Backoff ceiling.
pub const MAX_BACKOFF_MS: u64 = 30_000;

/// A deduplicating FIFO queue with per-key failure backoff.
///
/// ```
/// use k8s_apiserver::workqueue::WorkQueue;
///
/// let mut q: WorkQueue<&'static str> = WorkQueue::new();
/// q.enqueue("a", 0);
/// q.enqueue("a", 0); // deduplicated
/// assert_eq!(q.len(), 1);
/// assert_eq!(q.pop_ready(10), Some("a"));
/// ```
#[derive(Debug, Clone)]
pub struct WorkQueue<K> {
    ready: VecDeque<K>,
    queued: HashSet<K>,
    /// Items waiting out a backoff: (not_before, key).
    delayed: Vec<(u64, K)>,
    failures: HashMap<K, u32>,
    enqueued_total: u64,
    /// Telemetry labels: (depth high-water gauge, queue-wait histogram).
    /// `None` leaves the queue un-instrumented.
    tele: Option<(&'static str, &'static str)>,
    /// Sim-time each pending key entered the queue — populated only when
    /// telemetry is both labelled and enabled, so the steady-state queue
    /// pays nothing.
    entered_at: HashMap<K, u64>,
}

impl<K: Clone + Eq + std::hash::Hash + Ord> Default for WorkQueue<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Clone + Eq + std::hash::Hash + Ord> WorkQueue<K> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        WorkQueue {
            ready: VecDeque::new(),
            queued: HashSet::new(),
            delayed: Vec::new(),
            failures: HashMap::new(),
            enqueued_total: 0,
            tele: None,
            entered_at: HashMap::new(),
        }
    }

    /// Labels this queue for telemetry: `depth_key` receives the depth
    /// high-water gauge, `wait_key` the queue-wait histogram (sim-ms from
    /// enqueue to pop). Static labels keep the hot path format-free.
    pub fn with_telemetry(mut self, depth_key: &'static str, wait_key: &'static str) -> Self {
        self.tele = Some((depth_key, wait_key));
        self
    }

    /// Records the depth high-water and remembers when `key` entered, iff
    /// this queue is labelled and collection is on.
    fn note_enqueued(&mut self, key: &K, now: u64) {
        if let Some((depth_key, _)) = self.tele {
            if mutiny_telemetry::metrics_enabled() {
                mutiny_telemetry::gauge_max(depth_key, self.queued.len() as u64);
                self.entered_at.entry(key.clone()).or_insert(now);
            }
        }
    }

    /// Records the queue wait for a popped key, iff labelled and on.
    fn note_popped(&mut self, key: &K, now: u64) {
        if let Some((_, wait_key)) = self.tele {
            if let Some(entered) = self.entered_at.remove(key) {
                if mutiny_telemetry::metrics_enabled() {
                    mutiny_telemetry::hist_record(wait_key, now.saturating_sub(entered));
                }
            }
        }
    }

    /// Adds `key` for immediate processing (deduplicated against pending
    /// entries). `now` promotes any expired delayed entries first.
    pub fn enqueue(&mut self, key: K, now: u64) {
        self.promote(now);
        if self.queued.insert(key.clone()) {
            self.enqueued_total = self.enqueued_total.saturating_add(1);
            self.note_enqueued(&key, now);
            self.ready.push_back(key);
        }
    }

    /// Requeues `key` after a failure, with exponential backoff.
    pub fn requeue_failed(&mut self, key: K, now: u64) {
        let f = self.failures.entry(key.clone()).or_insert(0);
        *f = f.saturating_add(1);
        let delay = (BASE_BACKOFF_MS << (*f - 1).min(16)).min(MAX_BACKOFF_MS);
        self.enqueue_after(key, now, delay);
    }

    /// Requeues `key` to run no earlier than `now + delay`.
    pub fn enqueue_after(&mut self, key: K, now: u64, delay: u64) {
        self.promote(now);
        if self.queued.insert(key.clone()) {
            self.enqueued_total = self.enqueued_total.saturating_add(1);
            self.note_enqueued(&key, now);
            self.delayed.push((now + delay, key));
        }
    }

    /// Clears the failure counter after a success.
    pub fn forget_failures(&mut self, key: &K) {
        self.failures.remove(key);
    }

    /// Pops the next ready item at time `now`.
    pub fn pop_ready(&mut self, now: u64) -> Option<K> {
        self.promote(now);
        let key = self.ready.pop_front()?;
        self.queued.remove(&key);
        self.note_popped(&key, now);
        Some(key)
    }

    fn promote(&mut self, now: u64) {
        if self.delayed.is_empty() {
            return;
        }
        // Stable promotion in deadline order keeps the queue deterministic.
        self.delayed
            .sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let mut rest = Vec::new();
        for (at, key) in self.delayed.drain(..) {
            if at <= now {
                self.ready.push_back(key);
            } else {
                rest.push((at, key));
            }
        }
        self.delayed = rest;
    }

    /// Items pending (ready + delayed).
    pub fn len(&self) -> usize {
        self.queued.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.queued.is_empty()
    }

    /// Total enqueues over the queue's lifetime (control-plane load proxy).
    pub fn enqueued_total(&self) -> u64 {
        self.enqueued_total
    }

    /// Current failure streak for `key`.
    pub fn failure_count(&self, key: &K) -> u32 {
        self.failures.get(key).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_fifo() {
        let mut q = WorkQueue::new();
        q.enqueue("a", 0);
        q.enqueue("b", 0);
        q.enqueue("a", 0);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_ready(0), Some("a"));
        assert_eq!(q.pop_ready(0), Some("b"));
        assert_eq!(q.pop_ready(0), None);
    }

    #[test]
    fn backoff_grows_exponentially() {
        let mut q = WorkQueue::new();
        q.requeue_failed("a", 0);
        assert_eq!(q.pop_ready(BASE_BACKOFF_MS - 1), None);
        assert_eq!(q.pop_ready(BASE_BACKOFF_MS), Some("a"));
        q.requeue_failed("a", 1000);
        assert_eq!(q.pop_ready(1000 + 2 * BASE_BACKOFF_MS - 1), None);
        assert_eq!(q.pop_ready(1000 + 2 * BASE_BACKOFF_MS), Some("a"));
        assert_eq!(q.failure_count(&"a"), 2);
        q.forget_failures(&"a");
        assert_eq!(q.failure_count(&"a"), 0);
    }

    #[test]
    fn backoff_is_capped() {
        let mut q = WorkQueue::new();
        for _ in 0..40 {
            q.requeue_failed("a", 0);
            q.pop_ready(u64::MAX / 2);
        }
        q.requeue_failed("a", 0);
        assert_eq!(q.pop_ready(MAX_BACKOFF_MS), Some("a"));
    }

    #[test]
    fn delayed_items_promote_in_deadline_order() {
        let mut q = WorkQueue::new();
        q.enqueue_after("late", 0, 100);
        q.enqueue_after("early", 0, 50);
        assert_eq!(q.pop_ready(200), Some("early"));
        assert_eq!(q.pop_ready(200), Some("late"));
    }

    #[test]
    fn enqueue_while_delayed_is_deduped() {
        let mut q = WorkQueue::new();
        q.enqueue_after("a", 0, 1000);
        q.enqueue("a", 0);
        assert_eq!(q.len(), 1);
        // Still waiting out its delay.
        assert_eq!(q.pop_ready(10), None);
        assert_eq!(q.pop_ready(1000), Some("a"));
    }

    #[test]
    fn total_counts_lifetime_enqueues() {
        let mut q = WorkQueue::new();
        q.enqueue("a", 0);
        q.pop_ready(0);
        q.enqueue("a", 0);
        assert_eq!(q.enqueued_total(), 2);
    }
}
