//! Node auto-repair: the managed-cloud behaviour behind Figure 2.
//!
//! GKE-style platforms watch node health and *replace* nodes that stay
//! NotReady — normally a resiliency feature. The paper's Figure 2 incident
//! shows its failure mode: an intermittent apiserver kept kubelets from
//! reporting health, so the autoscaler deleted and recreated node after
//! node "even if the Nodes were correctly running the applications",
//! turning a reporting problem into a cluster outage.
//!
//! [`NodeRepairer`] reproduces that control loop: a node NotReady beyond
//! the grace period is deleted; the node's kubelet re-registers it on its
//! next healthy step (real clouds provision a replacement machine). While
//! heartbeats stay blocked cluster-wide, the loop deletes every node over
//! and over — and the ghost-pod garbage collector then reaps the
//! application pods that were bound to them. Kubernetes' *full disruption
//! mode* does not help: it suspends evictions, not the cloud's repair
//! loop.

use k8s_apiserver::ApiServer;
use k8s_model::{Channel, Kind, Object};
use std::collections::HashMap;

/// Auto-repair tunables.
#[derive(Debug, Clone)]
pub struct NodeRepairConfig {
    /// How long a node may stay NotReady before it is replaced.
    pub unready_grace_ms: u64,
    /// Minimum time between two repairs of the same node name.
    pub cooldown_ms: u64,
    /// Leave control-plane nodes alone (clouds manage them separately).
    pub skip_control_plane: bool,
}

impl Default for NodeRepairConfig {
    fn default() -> Self {
        NodeRepairConfig {
            unready_grace_ms: 30_000,
            cooldown_ms: 20_000,
            skip_control_plane: true,
        }
    }
}

/// Repair counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairMetrics {
    /// Nodes deleted for replacement.
    pub nodes_deleted: u64,
    /// Pods torn down with their machines.
    pub pods_torn_down: u64,
}

/// The cloud-provider node-repair loop.
#[derive(Debug, Clone)]
pub struct NodeRepairer {
    cfg: NodeRepairConfig,
    /// First time each node was observed NotReady.
    unready_since: HashMap<String, u64>,
    /// Last repair per node name (cooldown).
    last_repair: HashMap<String, u64>,
    /// Counters.
    pub metrics: RepairMetrics,
}

impl NodeRepairer {
    /// Creates the repair loop.
    pub fn new(cfg: NodeRepairConfig) -> NodeRepairer {
        NodeRepairer {
            cfg,
            unready_since: HashMap::new(),
            last_repair: HashMap::new(),
            metrics: RepairMetrics::default(),
        }
    }

    /// Runs one repair round at simulated time `now`.
    pub fn step(&mut self, api: &mut ApiServer, now: u64) {
        let mut unready: Vec<String> = Vec::new();
        let mut ready: Vec<String> = Vec::new();
        api.for_each(Kind::Node, None, |obj| {
            if let Object::Node(n) = obj {
                if self.cfg.skip_control_plane
                    && n.spec.taints.iter().any(|t| t.key.contains("control-plane"))
                {
                    return;
                }
                if n.status.ready {
                    ready.push(n.metadata.name.clone());
                } else {
                    unready.push(n.metadata.name.clone());
                }
            }
        });
        for name in ready {
            self.unready_since.remove(&name);
        }
        for name in unready {
            let since = *self.unready_since.entry(name.clone()).or_insert(now);
            if now.saturating_sub(since) < self.cfg.unready_grace_ms {
                continue;
            }
            let cooled = self
                .last_repair
                .get(&name)
                .map(|t| now.saturating_sub(*t) >= self.cfg.cooldown_ms)
                .unwrap_or(true);
            if !cooled {
                continue;
            }
            // Replace the machine: delete the Node object; the replacement
            // registers itself (the kubelet re-creates the Node when its
            // next healthy step finds it missing). The old machine is
            // wiped, so every pod bound to it goes down with it — which is
            // what made the Figure 2 incident an Outage: the pods were
            // healthy, the *reporting* was not.
            if api.delete(Channel::UserToApi, Kind::Node, "", &name).is_ok() {
                self.metrics.nodes_deleted += 1;
                self.last_repair.insert(name.clone(), now);
                self.unready_since.remove(&name);
                self.teardown_pods(api, &name);
            }
        }
    }

    fn teardown_pods(&mut self, api: &mut ApiServer, node: &str) {
        let mut doomed: Vec<(String, String)> = Vec::new();
        api.for_each(Kind::Pod, None, |obj| {
            if let Object::Pod(p) = obj {
                if p.spec.node_name == node && !p.metadata.is_terminating() {
                    doomed.push((p.metadata.namespace.clone(), p.metadata.name.clone()));
                }
            }
        });
        for (ns, name) in doomed {
            if api.delete(Channel::UserToApi, Kind::Pod, &ns, &name).is_ok() {
                self.metrics.pods_torn_down += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_apiserver::{InterceptorHandle, TraceHandle};
    use k8s_model::node::TAINT_NO_SCHEDULE;
    use k8s_model::{NoopInterceptor, Node};
    use simkit::Trace;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn api() -> ApiServer {
        let interceptor: InterceptorHandle = Rc::new(RefCell::new(NoopInterceptor));
        let trace: TraceHandle = Rc::new(RefCell::new(Trace::new(64)));
        ApiServer::new(etcd_sim::Etcd::new(1, 8 << 20), interceptor, trace)
    }

    fn install_node(api: &mut ApiServer, name: &str, ready: bool) {
        let mut n = Node::worker(name, 8000, 4096);
        n.status.ready = ready;
        api.create(Channel::KubeletToApi, Object::Node(n)).unwrap();
    }

    #[test]
    fn ready_nodes_are_left_alone() {
        let mut a = api();
        install_node(&mut a, "w1", true);
        let mut r = NodeRepairer::new(NodeRepairConfig::default());
        r.step(&mut a, 0);
        r.step(&mut a, 120_000);
        assert_eq!(r.metrics.nodes_deleted, 0);
        assert!(a.get(Kind::Node, "", "w1").is_some());
    }

    #[test]
    fn unready_node_is_replaced_after_grace() {
        let mut a = api();
        install_node(&mut a, "w1", false);
        let mut r = NodeRepairer::new(NodeRepairConfig::default());
        r.step(&mut a, 0); // starts the grace clock
        r.step(&mut a, 10_000); // inside the grace period
        assert_eq!(r.metrics.nodes_deleted, 0);
        r.step(&mut a, 31_000);
        assert_eq!(r.metrics.nodes_deleted, 1);
        assert!(a.get(Kind::Node, "", "w1").is_none());
    }

    #[test]
    fn replacement_wipes_the_machine_pods() {
        let mut a = api();
        install_node(&mut a, "w1", false);
        install_node(&mut a, "w2", true);
        for (name, node) in [("p1", "w1"), ("p2", "w1"), ("p3", "w2")] {
            let mut p = k8s_model::Pod::default();
            p.metadata = k8s_model::ObjectMeta::named("default", name);
            p.spec.node_name = node.into();
            p.spec.containers.push(k8s_model::Container {
                name: "c".into(),
                image: "img:1".into(),
                ..Default::default()
            });
            a.create(Channel::KcmToApi, Object::Pod(p)).unwrap();
        }
        let mut r = NodeRepairer::new(NodeRepairConfig::default());
        r.step(&mut a, 0);
        r.step(&mut a, 31_000);
        assert_eq!(r.metrics.nodes_deleted, 1);
        assert_eq!(r.metrics.pods_torn_down, 2, "both w1 pods go down with the machine");
        assert!(a.get(Kind::Pod, "default", "p1").is_none());
        assert!(a.get(Kind::Pod, "default", "p3").is_some(), "w2's pod survives");
    }

    #[test]
    fn recovery_resets_the_grace_clock() {
        let mut a = api();
        install_node(&mut a, "w1", false);
        let mut r = NodeRepairer::new(NodeRepairConfig::default());
        r.step(&mut a, 0);
        // The node recovers before the grace period elapses …
        if let Some(Object::Node(n)) = a.get(Kind::Node, "", "w1").as_deref() {
            let mut n = n.clone();
            n.status.ready = true;
            a.update(Channel::KubeletToApi, Object::Node(n)).unwrap();
        }
        r.step(&mut a, 20_000);
        // … then fails again: the clock must restart from here.
        if let Some(Object::Node(n)) = a.get(Kind::Node, "", "w1").as_deref() {
            let mut n = n.clone();
            n.status.ready = false;
            a.update(Channel::KubeletToApi, Object::Node(n)).unwrap();
        }
        r.step(&mut a, 25_000);
        r.step(&mut a, 40_000); // only 15 s unready
        assert_eq!(r.metrics.nodes_deleted, 0);
        r.step(&mut a, 56_000);
        assert_eq!(r.metrics.nodes_deleted, 1);
    }

    #[test]
    fn cooldown_bounds_the_deletion_loop() {
        let mut a = api();
        let cfg = NodeRepairConfig {
            unready_grace_ms: 1_000,
            cooldown_ms: 60_000,
            ..Default::default()
        };
        let mut r = NodeRepairer::new(cfg);
        install_node(&mut a, "w1", false);
        r.step(&mut a, 0);
        r.step(&mut a, 2_000);
        assert_eq!(r.metrics.nodes_deleted, 1);
        // The kubelet re-registers the (still blacked-out) node.
        install_node(&mut a, "w1", false);
        r.step(&mut a, 3_000);
        r.step(&mut a, 5_000);
        assert_eq!(r.metrics.nodes_deleted, 1, "cooldown violated");
        r.step(&mut a, 63_000);
        r.step(&mut a, 65_000);
        assert_eq!(r.metrics.nodes_deleted, 2);
    }

    #[test]
    fn control_plane_nodes_are_exempt() {
        let mut a = api();
        let mut cp = Node::worker("cp-1", 8000, 4096);
        cp.add_taint("node-role.kubernetes.io/control-plane", TAINT_NO_SCHEDULE);
        cp.status.ready = false;
        a.create(Channel::KubeletToApi, Object::Node(cp)).unwrap();
        let mut r = NodeRepairer::new(NodeRepairConfig::default());
        r.step(&mut a, 0);
        r.step(&mut a, 120_000);
        assert_eq!(r.metrics.nodes_deleted, 0);
        assert!(a.get(Kind::Node, "", "cp-1").is_some());
    }
}
