//! Cluster bootstrap: the system objects a kubeadm-style install creates.
//!
//! Namespaces, the network-manager ConfigMap, the net-agent and kube-proxy
//! DaemonSets, the coreDNS Deployment + kube-dns Service, and the
//! monitoring (prometheus) Deployment the paper's Outage definition checks.

use k8s_apiserver::ApiServer;
use k8s_model::node::{TAINT_NO_EXECUTE, TAINT_NO_SCHEDULE};
use k8s_model::{
    Channel, ConfigMap, Container, DaemonSet, Deployment, LabelSelector, Namespace, Object,
    ObjectMeta, Service, Toleration, SYSTEM_CLUSTER_CRITICAL, SYSTEM_NODE_CRITICAL,
};

/// Creates every system object. Called once before the kubelets join.
pub(crate) fn install_system_objects(api: &mut ApiServer) {
    for ns in ["default", "kube-system"] {
        let mut n = Namespace::default();
        n.metadata = ObjectMeta::named("", ns);
        n.phase = "Active".into();
        api.create(Channel::UserToApi, Object::Namespace(n)).expect("create namespace");
    }

    // Network-manager configuration (flannel-style backend selection).
    let mut cm = ConfigMap::default();
    cm.metadata = ObjectMeta::named("kube-system", "net-conf");
    cm.data.insert("backend".into(), "vxlan".into());
    cm.data.insert("network".into(), "10.244.0.0/16".into());
    api.create(Channel::UserToApi, Object::ConfigMap(cm)).expect("create net-conf");

    // The network manager and kube-proxy DaemonSets.
    for (name, command, image) in [
        ("net-agent", "netagent", "registry.local/netagent:1.0"),
        ("kube-proxy", "kubeproxy", "registry.local/kube-proxy:1.0"),
    ] {
        let ds = system_daemonset(name, command, image);
        api.create(Channel::UserToApi, Object::DaemonSet(ds)).expect("create system ds");
    }

    // coreDNS.
    let mut dns = app_deployment_base("coredns", "kube-system", 2);
    dns.spec.template.metadata.labels.insert("k8s-app".into(), "kube-dns".into());
    dns.metadata.labels.insert("k8s-app".into(), "kube-dns".into());
    dns.spec.selector = LabelSelector::eq("app", "coredns");
    dns.spec.template.spec.priority = SYSTEM_CLUSTER_CRITICAL;
    dns.spec.template.spec.containers[0].image = "registry.local/coredns:1.10".into();
    dns.spec.template.spec.containers[0].command = vec!["coredns".into()];
    dns.spec.template.spec.containers[0].port = 53;
    dns.spec.template.spec.containers[0].cpu_milli = 100;
    dns.spec.template.spec.containers[0].memory_mb = 70;
    api.create(Channel::UserToApi, Object::Deployment(dns)).expect("create coredns");

    let mut dns_svc = Service::default();
    dns_svc.metadata = ObjectMeta::named("kube-system", "kube-dns");
    dns_svc.spec.selector.insert("k8s-app".into(), "kube-dns".into());
    dns_svc.spec.cluster_ip = "10.96.0.10".into();
    dns_svc.spec.port = 53;
    dns_svc.spec.target_port = 53;
    dns_svc.spec.protocol = "UDP".into();
    api.create(Channel::UserToApi, Object::Service(dns_svc)).expect("create kube-dns svc");

    // Monitoring.
    let mut prom = app_deployment_base("prometheus", "kube-system", 1);
    prom.spec.template.spec.containers[0].image = "registry.local/prometheus:2.45".into();
    prom.spec.template.spec.containers[0].command = vec!["prom".into()];
    prom.spec.template.spec.containers[0].port = 9090;
    prom.spec.template.spec.containers[0].cpu_milli = 200;
    prom.spec.template.spec.containers[0].memory_mb = 256;
    api.create(Channel::UserToApi, Object::Deployment(prom)).expect("create prometheus");
}

fn system_daemonset(name: &str, command: &str, image: &str) -> DaemonSet {
    let mut ds = DaemonSet::default();
    ds.metadata = ObjectMeta::named("kube-system", name);
    ds.metadata.labels.insert("app".into(), name.to_owned());
    ds.spec.selector = LabelSelector::eq("app", name);
    ds.spec.template.metadata.labels.insert("app".into(), name.to_owned());
    ds.spec.template.spec.priority = SYSTEM_NODE_CRITICAL;
    ds.spec.template.spec.restart_policy = "Always".into();
    ds.spec.template.spec.tolerations = vec![
        Toleration { key: String::new(), effect: TAINT_NO_EXECUTE.into() },
        Toleration { key: String::new(), effect: TAINT_NO_SCHEDULE.into() },
    ];
    ds.spec.template.spec.containers.push(Container {
        name: name.to_owned(),
        image: image.to_owned(),
        command: vec![command.to_owned()],
        cpu_milli: 100,
        memory_mb: 64,
        port: 0,
        ..Default::default()
    });
    ds
}

/// Base skeleton for an application-style Deployment.
pub(crate) fn app_deployment_base(name: &str, ns: &str, replicas: i64) -> Deployment {
    let mut d = Deployment::default();
    d.metadata = ObjectMeta::named(ns, name);
    d.metadata.labels.insert("app".into(), name.to_owned());
    d.spec.replicas = replicas;
    d.spec.max_unavailable = 1;
    d.spec.max_surge = 1;
    d.spec.selector = LabelSelector::eq("app", name);
    d.spec.template.metadata.labels.insert("app".into(), name.to_owned());
    d.spec.template.spec.restart_policy = "Always".into();
    d.spec.template.spec.containers.push(Container {
        name: name.to_owned(),
        image: "registry.local/placeholder:1.0".into(),
        command: Vec::new(),
        cpu_milli: 100,
        memory_mb: 64,
        port: 8080,
        ..Default::default()
    });
    d
}
