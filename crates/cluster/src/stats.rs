//! Run statistics: what the paper's data-collection layer gathers.
//!
//! Mirrors §IV-C/§V-B: Prometheus-style gauges sampled every 3 seconds
//! (ready replicas per ReplicaSet, Service endpoints), kbench statistics
//! (pod creation/startup times), the client's response-time series, and
//! component health snapshots used by the orchestrator-failure classifier.

use k8s_netsim::RequestOutcome;
use std::collections::{BTreeMap, HashMap};

/// One client request observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientSample {
    /// Send time (simulated ms).
    pub at: u64,
    /// Outcome.
    pub outcome: RequestOutcome,
}

/// One 3-second metrics snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSample {
    /// Sample time.
    pub at: u64,
    /// Ready replicas per application Deployment (`web-*`).
    pub app_ready: BTreeMap<String, i64>,
    /// Endpoint-address count per application Service.
    pub app_endpoints: BTreeMap<String, usize>,
    /// Total pods in the cluster.
    pub pods_total: usize,
    /// Cumulative pods created by controllers.
    pub pods_created_cum: u64,
    /// Objects in the store.
    pub etcd_objects: usize,
    /// True when the store is rejecting writes.
    pub etcd_stalled: bool,
    /// Kcm leadership.
    pub kcm_leader: bool,
    /// Kcm reconcile backlog.
    pub kcm_queue: usize,
    /// Scheduler leadership.
    pub sched_leader: bool,
    /// Unscheduled pods.
    pub sched_pending: usize,
    /// Cumulative scheduler self-restarts.
    pub sched_restarts: u64,
    /// Ready coreDNS pods.
    pub dns_ready: i64,
    /// Nodes whose network agent is down.
    pub netagents_down: usize,
    /// Total nodes known to the network fabric.
    pub net_nodes: usize,
    /// Any network-infrastructure pod (net-agent / kube-proxy) unhealthy.
    pub netpods_failed: bool,
    /// Monitoring pod (prometheus) ready.
    pub prometheus_ready: bool,
    /// Nodes reporting NotReady.
    pub nodes_not_ready: usize,
}

/// Everything one experiment run produces.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Workload start time (client start).
    pub t0: u64,
    /// Client request observations, in send order.
    pub client: Vec<ClientSample>,
    /// Periodic snapshots, oldest first.
    pub samples: Vec<MetricsSample>,
    /// Pod key → creation time (application namespace only).
    pub pod_created: HashMap<String, u64>,
    /// Pod key → first Running time.
    pub pod_running: HashMap<String, u64>,
    /// Maximum restart count observed on an application pod.
    pub app_pod_restarts: i64,
    /// Application pods deleted after the workload started.
    pub app_pods_deleted: u64,
}

impl RunStats {
    /// The client's response-time series ordered by send time; failed
    /// requests are padded with 0 as in the paper (§V-B).
    pub fn response_series(&self) -> Vec<f64> {
        self.client
            .iter()
            .map(|s| match s.outcome {
                RequestOutcome::Ok { latency_ms } => latency_ms,
                _ => 0.0,
            })
            .collect()
    }

    /// Pod startup durations (running − created) for pods created at or
    /// after `from`, in ms.
    pub fn startup_times(&self, from: u64) -> Vec<f64> {
        self.pod_created
            .iter()
            .filter(|(_, t)| **t >= from)
            .filter_map(|(k, created)| {
                // A fault can corrupt a stored timestamp (bit-flipped
                // start_time, a Running update lost on a dark wire) —
                // skip samples that would go backwards in time.
                self.pod_running.get(k).and_then(|run| run.checked_sub(*created)).map(|d| d as f64)
            })
            .collect()
    }

    /// Latest creation time among pods created at or after `from`.
    pub fn last_pod_creation(&self, from: u64) -> Option<u64> {
        self.pod_created.values().filter(|t| **t >= from).max().copied()
    }

    /// Count of failed client requests.
    pub fn client_failures(&self) -> usize {
        self.client.iter().filter(|s| s.outcome.is_failure()).count()
    }

    /// Index ranges of consecutive trailing failures (for Service
    /// Unreachable detection: "from a certain instant, no response").
    pub fn trailing_failures(&self) -> usize {
        self.client.iter().rev().take_while(|s| s.outcome.is_failure()).count()
    }

    /// Failures that were errors rather than timeouts (for Intermittent
    /// Availability: "errors not due to request timeouts").
    pub fn non_timeout_failures(&self) -> usize {
        self.client
            .iter()
            .filter(|s| {
                matches!(s.outcome, RequestOutcome::Refused | RequestOutcome::DnsFailure)
            })
            .count()
    }

    /// The final metrics snapshot, if any.
    pub fn last_sample(&self) -> Option<&MetricsSample> {
        self.samples.last()
    }

    /// Snapshots taken in the last `window_ms` before the end of the run
    /// (the "steady state" the OF classifier inspects).
    pub fn tail_samples(&self, window_ms: u64) -> &[MetricsSample] {
        let Some(last) = self.samples.last() else { return &[] };
        let cutoff = last.at.saturating_sub(window_ms);
        let start = self.samples.iter().position(|s| s.at >= cutoff).unwrap_or(0);
        &self.samples[start..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(at: u64, ms: f64) -> ClientSample {
        ClientSample { at, outcome: RequestOutcome::Ok { latency_ms: ms } }
    }

    fn fail(at: u64, timeout: bool) -> ClientSample {
        ClientSample {
            at,
            outcome: if timeout { RequestOutcome::Timeout } else { RequestOutcome::Refused },
        }
    }

    #[test]
    fn response_series_pads_failures_with_zero() {
        let mut s = RunStats::default();
        s.client = vec![ok(0, 20.0), fail(50, true), ok(100, 25.0)];
        assert_eq!(s.response_series(), vec![20.0, 0.0, 25.0]);
    }

    #[test]
    fn startup_and_last_creation() {
        let mut s = RunStats::default();
        s.pod_created.insert("a".into(), 1000);
        s.pod_running.insert("a".into(), 3500);
        s.pod_created.insert("b".into(), 500); // before the window
        s.pod_running.insert("b".into(), 600);
        assert_eq!(s.startup_times(800), vec![2500.0]);
        assert_eq!(s.last_pod_creation(800), Some(1000));
        assert_eq!(s.last_pod_creation(2000), None);
    }

    #[test]
    fn failure_counters() {
        let mut s = RunStats::default();
        s.client = vec![ok(0, 1.0), fail(1, false), fail(2, true), fail(3, true)];
        assert_eq!(s.client_failures(), 3);
        assert_eq!(s.trailing_failures(), 3);
        assert_eq!(s.non_timeout_failures(), 1);
    }

    #[test]
    fn tail_samples_window() {
        let mut s = RunStats::default();
        for at in [0u64, 3000, 6000, 9000] {
            s.samples.push(MetricsSample { at, ..Default::default() });
        }
        let tail = s.tail_samples(3000);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].at, 6000);
    }
}
