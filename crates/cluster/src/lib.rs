//! # k8s-cluster — the full simulated cluster (the paper's testbed)
//!
//! Wires etcd, the apiserver, the controller manager, the scheduler, one
//! kubelet per node and the network fabric into a deterministic
//! discrete-event [`World`], then drives the paper's experimental setup
//! (§V-A): one control-plane node plus N template-bootstrapped workers
//! (the paper uses four at 8 CPU / 4 GB each; see [`Topology`]),
//! flannel-style networking, coreDNS, a monitoring pod, and an
//! application client sending 20 requests/second for 30 seconds against
//! the service application.
//!
//! The *scenarios* themselves — which applications are preinstalled,
//! which timed [`UserOp`]s run, what topology the cluster has — live in
//! the `mutiny_scenarios` crate's registry; this crate only executes the
//! plans they produce.
//!
//! ```no_run
//! use k8s_cluster::{ClusterConfig, UserOp, World};
//! use k8s_model::NoopInterceptor;
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let cfg = ClusterConfig::default();
//! let mut world = World::new(cfg, Rc::new(RefCell::new(NoopInterceptor)));
//! world.prepare(&[1]); // preinstall web-1
//! world.schedule_ops(vec![(2_000, UserOp::CreateApp { index: 2, replicas: 2 })]);
//! world.run_to_horizon();
//! assert!(world.stats.client_failures() == 0);
//! ```

pub mod autorepair;
pub mod bootstrap;
pub mod stats;
pub mod workload;

pub use autorepair::{NodeRepairConfig, NodeRepairer, RepairMetrics};
pub use mutiny_mitigations::MitigationsConfig;
pub use stats::{ClientSample, MetricsSample, RunStats};
pub use workload::{app_deployment, app_service, UserOp};

use k8s_apiserver::{ApiServer, InterceptorHandle, TraceHandle};
use k8s_kcm::{Kcm, KcmConfig};
use k8s_kubelet::{Kubelet, KubeletConfig};
use k8s_model::node::TAINT_NO_SCHEDULE;
use k8s_model::{Channel, Kind, Object};
use k8s_netsim::{NetConfig, NetSim};
use k8s_scheduler::{Scheduler, SchedulerConfig};
use mutiny_mitigations::checksum::CriticalFieldSealer;
use mutiny_mitigations::{BreakerConfig, CriticalFieldGuard, GuardConfig, ReplicationBreaker};
use simkit::{Rng, Sim, Trace};
use std::cell::RefCell;
use std::rc::Rc;

/// Cluster topology requested by a scenario: how many workers join and
/// what hardware the worker template grants each of them.
///
/// Every worker is bootstrapped from the same template (SimKube-style
/// virtual nodes) — a 20-node cluster costs one struct, not twenty
/// hand-written fixtures. The control-plane node is always added on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Worker node count.
    pub workers: usize,
    /// Per-worker allocatable CPU (millicores).
    pub worker_cpu_milli: i64,
    /// Per-worker allocatable memory (MiB).
    pub worker_memory_mb: i64,
}

impl Topology {
    /// The paper's §V-A testbed: four workers at 8 CPU / 4 GB.
    pub const fn paper() -> Topology {
        Topology { workers: 4, worker_cpu_milli: 8_000, worker_memory_mb: 4_096 }
    }

    /// `n` virtual workers bootstrapped from the paper's worker template.
    pub const fn virtual_workers(n: usize) -> Topology {
        Topology { workers: n, ..Topology::paper() }
    }

    /// Applies this topology to a cluster configuration, leaving every
    /// non-topology knob (seed, mitigations, client settings, …) intact.
    pub fn apply(self, mut cfg: ClusterConfig) -> ClusterConfig {
        cfg.workers = self.workers;
        cfg.worker_cpu_milli = self.worker_cpu_milli;
        cfg.worker_memory_mb = self.worker_memory_mb;
        cfg
    }
}

impl Default for Topology {
    fn default() -> Topology {
        Topology::paper()
    }
}

/// Cluster-wide configuration (defaults mirror the paper's setup).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Deterministic seed for the whole experiment.
    pub seed: u64,
    /// Worker node count (the paper uses 4, one hosting client+monitoring).
    pub workers: usize,
    /// etcd replica count (1 by default; 3 for the replicated-CP study).
    pub etcd_replicas: usize,
    /// etcd disk budget — fills up under uncontrolled replication.
    pub etcd_capacity_bytes: u64,
    /// Storage engine backing etcd (defaults from `MUTINY_STORAGE`; part
    /// of the config — and of the fork-snapshot cache key via `Debug` —
    /// so one process can run both engines deterministically).
    pub storage: etcd_sim::StorageKind,
    /// Per-node allocatable CPU (millicores).
    pub worker_cpu_milli: i64,
    /// Per-node allocatable memory (MiB).
    pub worker_memory_mb: i64,
    /// Controller-manager tunables.
    pub kcm: KcmConfig,
    /// Scheduler tunables.
    pub scheduler: SchedulerConfig,
    /// Kubelet tunables.
    pub kubelet: KubeletConfig,
    /// Network/traffic tunables.
    pub net: NetConfig,
    /// Whether the service application resolves names through cluster DNS.
    pub app_needs_dns: bool,
    /// Which of the paper's §VI-B mitigations are active (all off by
    /// default — the paper's campaign measures the unmitigated system).
    pub mitigations: MitigationsConfig,
    /// Cloud-provider node auto-repair (the Figure 2 amplifier); off by
    /// default, matching the paper's on-premises kubeadm testbed.
    pub node_repair: Option<NodeRepairConfig>,
    /// Client request rate.
    pub client_rps: u64,
    /// Client send duration.
    pub client_duration_ms: u64,
    /// Observation window after the client stops (steady-state check).
    pub post_client_ms: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            seed: 1,
            workers: 4,
            etcd_replicas: 1,
            etcd_capacity_bytes: 2 * 1024 * 1024,
            storage: etcd_sim::StorageKind::from_env(),
            worker_cpu_milli: 8_000,
            worker_memory_mb: 4_096,
            kcm: KcmConfig::default(),
            scheduler: SchedulerConfig::default(),
            kubelet: KubeletConfig::default(),
            net: NetConfig::default(),
            app_needs_dns: false,
            mitigations: MitigationsConfig::default(),
            node_repair: None,
            client_rps: 20,
            client_duration_ms: 30_000,
            post_client_ms: 45_000,
        }
    }
}

/// Simulation events driving the world.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    KcmTick,
    SchedTick,
    KubeletTick(usize),
    NetTick,
    MetricsTick,
    StatsTick,
    ClientRequest(u32),
    UserOp(usize),
    MitigationTick,
    RepairTick,
}

/// End of the bootstrap settling phase.
const BOOTSTRAP_MS: u64 = 20_000;
/// End of the scenario-setup settling phase.
const SETUP_SETTLE_MS: u64 = 32_000;
/// Workload (and client) start — campaign recorders arm at this time.
pub const WORKLOAD_START_MS: u64 = 35_000;
const T0_MS: u64 = WORKLOAD_START_MS;

/// The fully wired simulated cluster.
pub struct World {
    /// Configuration this world was built with.
    pub cfg: ClusterConfig,
    sim: Sim<Ev>,
    /// The apiserver (and, through it, etcd).
    pub api: ApiServer,
    /// The controller manager.
    pub kcm: Kcm,
    /// The scheduler.
    pub scheduler: Scheduler,
    /// One kubelet per node; index 0 is the control-plane node.
    pub kubelets: Vec<Kubelet>,
    /// The network fabric and traffic engine.
    pub net: NetSim,
    /// Shared component trace buffer.
    pub trace: TraceHandle,
    /// Everything the data-collection layer gathered.
    pub stats: RunStats,
    /// The replication circuit breaker, when enabled.
    pub breaker: Option<ReplicationBreaker>,
    /// The critical-field change guard, when enabled.
    pub guard: Option<CriticalFieldGuard>,
    /// The cloud node auto-repair loop, when enabled.
    pub repairer: Option<NodeRepairer>,
    user_ops: Vec<UserOp>,
    client_node: String,
    client_target: String,
    horizon: u64,
    t0: u64,
    stats_cursor: u64,
    metrics_scheduled: bool,
    cp_tainted: bool,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.sim.now())
            .field("horizon", &self.horizon)
            .field("pods", &self.stats.pod_created.len())
            .finish()
    }
}

impl World {
    /// Builds the cluster: system objects installed, components wired,
    /// ticks scheduled. Run [`World::prepare`] next.
    pub fn new(cfg: ClusterConfig, interceptor: InterceptorHandle) -> World {
        // Refresh the telemetry enable flag from the environment once per
        // world, mirroring the MUTINY_DECODE_CACHE pattern: the
        // simulation itself never reads the environment mid-run, and the
        // determinism tests can flip MUTINY_METRICS between campaigns.
        mutiny_telemetry::run_begin();
        let trace: TraceHandle = Rc::new(RefCell::new(Trace::new(4_096)));
        trace.borrow_mut().store_debug = false;
        let root_rng = Rng::new(cfg.seed);

        let etcd =
            etcd_sim::Etcd::with_backend(cfg.storage, cfg.etcd_replicas, cfg.etcd_capacity_bytes);
        let mut api = ApiServer::new(etcd, interceptor, Rc::clone(&trace));
        if cfg.mitigations.integrity {
            api.install_integrity(Rc::new(CriticalFieldSealer::default()));
        }
        bootstrap::install_system_objects(&mut api);
        if cfg.mitigations.policies {
            api.install_policy(Box::new(mutiny_mitigations::DenyCriticalScaleToZero));
            api.install_policy(Box::new(mutiny_mitigations::RequireResourceLimits));
            api.install_policy(Box::new(mutiny_mitigations::ReplicaCeiling::default()));
            api.install_policy(Box::new(mutiny_mitigations::NamespacePodQuota::default()));
        }
        if cfg.mitigations.validating {
            api.install_policy(Box::new(mutiny_mitigations::ValidatingAdmission::default()));
        }
        let breaker = cfg
            .mitigations
            .breaker
            .then(|| ReplicationBreaker::new(BreakerConfig::default(), &api));
        let guard = cfg
            .mitigations
            .guard
            .then(|| CriticalFieldGuard::new(GuardConfig::default(), &mut api));

        let kcm = Kcm::new("kcm-0", cfg.kcm.clone(), &api, Rc::clone(&trace), root_rng.fork("kcm"));
        let scheduler =
            Scheduler::new("sched-0", cfg.scheduler.clone(), &api, Rc::clone(&trace));

        let mut kubelets = Vec::new();
        let mut node_names = vec!["cp-1".to_owned()];
        for i in 1..=cfg.workers {
            node_names.push(format!("w{i}"));
        }
        for (i, name) in node_names.iter().enumerate() {
            kubelets.push(Kubelet::new(
                name,
                i as u32,
                cfg.worker_cpu_milli,
                cfg.worker_memory_mb,
                cfg.kubelet.clone(),
                &api,
                Rc::clone(&trace),
                root_rng.fork(&format!("kubelet-{name}")),
            ));
        }

        let net = NetSim::new(cfg.net.clone(), root_rng.fork("net"));
        let client_node = node_names.last().expect("at least one node").clone();

        let mut sim = Sim::new();
        sim.schedule(10, Ev::KcmTick);
        sim.schedule(20, Ev::SchedTick);
        for i in 0..kubelets.len() {
            sim.schedule(30 + 40 * i as u64, Ev::KubeletTick(i));
        }
        sim.schedule(500, Ev::NetTick);
        sim.schedule(200, Ev::StatsTick);
        if breaker.is_some() || guard.is_some() {
            sim.schedule(750, Ev::MitigationTick);
        }
        let repairer = cfg.node_repair.clone().map(NodeRepairer::new);
        if repairer.is_some() {
            sim.schedule(1_250, Ev::RepairTick);
        }

        let stats_cursor = api.watch_head();
        World {
            cfg,
            sim,
            api,
            kcm,
            scheduler,
            kubelets,
            net,
            trace,
            stats: RunStats::default(),
            breaker,
            guard,
            repairer,
            user_ops: Vec::new(),
            client_node,
            client_target: "web-1-svc".to_owned(),
            horizon: T0_MS,
            t0: T0_MS,
            stats_cursor,
            metrics_scheduled: false,
            cp_tainted: false,
        }
    }

    /// Forks this world at its current simulated time: a structurally
    /// independent copy sharing immutable payloads (`Arc<[u8]>` store
    /// buffers, `Rc<Object>` cache entries) with the original, wired to a
    /// fresh `interceptor`. Fork-the-world campaign execution snapshots a
    /// scenario once at `t0` and forks per experiment instead of
    /// replaying the fault-free prefix; every fault family is inert
    /// before its arm time, so a forked run is byte-identical to a
    /// replay-from-zero with the same interceptor.
    pub fn fork(&self, interceptor: InterceptorHandle) -> World {
        // Mirror `World::new`: refresh the telemetry enable flag once per
        // (forked) run so determinism tests can flip MUTINY_METRICS
        // between campaigns in fork mode too.
        mutiny_telemetry::run_begin();
        let trace: TraceHandle = Rc::new(RefCell::new(self.trace.borrow().clone()));
        let api = self.api.fork(interceptor, Rc::clone(&trace));
        let mut kcm = self.kcm.clone();
        kcm.set_trace(Rc::clone(&trace));
        let mut scheduler = self.scheduler.clone();
        scheduler.set_trace(Rc::clone(&trace));
        let mut kubelets = self.kubelets.clone();
        for kl in &mut kubelets {
            kl.set_trace(Rc::clone(&trace));
        }
        World {
            cfg: self.cfg.clone(),
            sim: self.sim.clone(),
            api,
            kcm,
            scheduler,
            kubelets,
            net: self.net.clone(),
            trace,
            stats: self.stats.clone(),
            breaker: self.breaker.clone(),
            guard: self.guard.clone(),
            repairer: self.repairer.clone(),
            user_ops: self.user_ops.clone(),
            client_node: self.client_node.clone(),
            client_target: self.client_target.clone(),
            horizon: self.horizon,
            t0: self.t0,
            stats_cursor: self.stats_cursor,
            metrics_scheduled: self.metrics_scheduled,
            cp_tainted: self.cp_tainted,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> u64 {
        self.sim.now()
    }

    /// Workload start time.
    pub fn t0(&self) -> u64 {
        self.t0
    }

    /// End of the observation window.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Runs the event loop up to simulated time `t`.
    pub fn run_until(&mut self, t: u64) {
        while let Some((at, ev)) = self.sim.next_until(t) {
            self.handle(at, ev);
        }
    }

    /// Bootstraps the cluster and pre-creates the scenario's application
    /// objects (§IV-C's "fault/error injection scenario set-up"): each
    /// entry in `apps` becomes a two-replica `web-<index>` Deployment plus
    /// its Service. Returns the workload start time `t0`.
    pub fn prepare(&mut self, apps: &[u32]) -> u64 {
        self.run_until(2_000);
        self.taint_control_plane();
        self.run_until(BOOTSTRAP_MS);
        for index in apps {
            let d = workload::app_deployment(*index, 2, self.cfg.app_needs_dns);
            let _ = self.api.create(Channel::UserToApi, Object::Deployment(d));
            let _ =
                self.api.create(Channel::UserToApi, Object::Service(workload::app_service(*index)));
        }
        self.run_until(SETUP_SETTLE_MS);
        self.t0 = T0_MS;
        self.t0
    }

    fn taint_control_plane(&mut self) {
        if self.cp_tainted {
            return;
        }
        if let Some(Object::Node(n)) = self.api.get(Kind::Node, "", "cp-1").as_deref() {
            let mut n = n.clone();
            n.add_taint("node-role.kubernetes.io/control-plane", TAINT_NO_SCHEDULE);
            if self.api.update(Channel::UserToApi, Object::Node(n)).is_ok() {
                self.cp_tainted = true;
            }
        }
    }

    /// Schedules the scenario's timed user operations (offsets from
    /// `t0`), the application client, and metrics sampling. Call after
    /// [`World::prepare`]; then either [`World::run_to_horizon`] or step
    /// manually with [`World::run_until`].
    pub fn schedule_ops(&mut self, ops: Vec<(u64, UserOp)>) {
        let t0 = self.t0;
        self.stats.t0 = t0;
        for (off, op) in ops {
            let idx = self.user_ops.len();
            self.user_ops.push(op);
            self.sim.schedule(t0 + off, Ev::UserOp(idx));
        }
        let interval = 1_000 / self.cfg.client_rps.max(1);
        let total = self.cfg.client_duration_ms / interval;
        for i in 0..total {
            self.sim.schedule(t0 + i * interval, Ev::ClientRequest(i as u32));
        }
        if !self.metrics_scheduled {
            self.sim.schedule(t0, Ev::MetricsTick);
            self.metrics_scheduled = true;
        }
        self.horizon = t0 + self.cfg.client_duration_ms + self.cfg.post_client_ms;
    }

    /// Runs the world to the end of the observation window.
    pub fn run_to_horizon(&mut self) {
        self.run_until(self.horizon);
    }

    fn handle(&mut self, at: u64, ev: Ev) {
        self.api.set_now(at);
        match ev {
            Ev::KcmTick => {
                self.kcm.step(&mut self.api, at);
                self.sim.schedule_after(100, Ev::KcmTick);
            }
            Ev::SchedTick => {
                self.scheduler.step(&mut self.api, at);
                self.sim.schedule_after(100, Ev::SchedTick);
            }
            Ev::KubeletTick(i) => {
                self.kubelets[i].step(&mut self.api, at);
                self.sim.schedule_after(200, Ev::KubeletTick(i));
            }
            Ev::NetTick => {
                self.net.refresh(&mut self.api);
                self.sim.schedule_after(500, Ev::NetTick);
            }
            Ev::MetricsTick => {
                self.sample_metrics(at);
                self.sim.schedule_after(3_000, Ev::MetricsTick);
            }
            Ev::StatsTick => {
                self.collect_pod_timings(at);
                self.sim.schedule_after(200, Ev::StatsTick);
            }
            Ev::ClientRequest(_) => {
                let outcome = self.net.request(
                    &mut self.api,
                    at,
                    &self.client_node.clone(),
                    "default",
                    &self.client_target.clone(),
                    80,
                    self.cfg.app_needs_dns,
                );
                self.stats.client.push(ClientSample { at, outcome });
            }
            Ev::UserOp(idx) => {
                let op = self.user_ops[idx].clone();
                workload::execute_op(&mut self.api, &op, self.cfg.app_needs_dns);
            }
            Ev::MitigationTick => {
                if let Some(b) = self.breaker.as_mut() {
                    b.step(&mut self.api, at);
                }
                if let Some(g) = self.guard.as_mut() {
                    g.step(&mut self.api, at);
                }
                self.sim.schedule_after(1_000, Ev::MitigationTick);
            }
            Ev::RepairTick => {
                if let Some(r) = self.repairer.as_mut() {
                    r.step(&mut self.api, at);
                }
                self.sim.schedule_after(5_000, Ev::RepairTick);
            }
        }
    }

    fn collect_pod_timings(&mut self, _at: u64) {
        let (events, next) = self.api.poll_events(self.stats_cursor);
        self.stats_cursor = next;
        for ev in events {
            if ev.kind != Kind::Pod || !ev.key.starts_with("/registry/pods/default/web-") {
                continue;
            }
            match ev.object.as_deref() {
                Some(Object::Pod(pod)) => {
                    let created_at = *self
                        .stats
                        .pod_created
                        .entry(String::from(&*ev.key))
                        .or_insert(pod.metadata.creation_timestamp.max(0) as u64);
                    let _ = created_at;
                    if pod.status.phase == "Running" {
                        let start = pod.status.start_time.max(0) as u64;
                        self.stats.pod_running.entry(String::from(&*ev.key)).or_insert(start);
                    }
                    if pod.status.restart_count > self.stats.app_pod_restarts {
                        self.stats.app_pod_restarts = pod.status.restart_count;
                    }
                }
                None if self.stats.t0 > 0
                    && self.api.now() >= self.stats.t0
                    && self.stats.pod_created.contains_key(&*ev.key) =>
                {
                    self.stats.app_pods_deleted += 1;
                }
                _ => {}
            }
        }
    }

    fn sample_metrics(&mut self, at: u64) {
        let mut sample = MetricsSample { at, ..Default::default() };

        self.api.for_each(Kind::Deployment, Some("default"), |obj| {
            if let Object::Deployment(d) = obj {
                if d.metadata.name.starts_with("web-") {
                    sample
                        .app_ready
                        .insert(d.metadata.name.clone(), d.status.ready_replicas);
                }
            }
        });
        self.api.for_each(Kind::Endpoints, Some("default"), |obj| {
            if let Object::Endpoints(ep) = obj {
                if ep.metadata.name.starts_with("web-") {
                    sample
                        .app_endpoints
                        .insert(ep.metadata.name.clone(), ep.ready_addresses().count());
                }
            }
        });

        sample.pods_total = self.api.count(Kind::Pod, None);
        sample.pods_created_cum = self.kcm.metrics.pods_created;
        sample.etcd_objects = self.api.etcd().object_count();
        sample.etcd_stalled = self.api.etcd().is_degraded();
        sample.kcm_leader = self.kcm.is_leader();
        sample.kcm_queue = self.kcm.queue_len();
        sample.sched_leader = self.scheduler.is_leader();
        sample.sched_pending = self.scheduler.pending_len();
        sample.sched_restarts = self.scheduler.metrics.restarts;

        let mut dns_ready = 0i64;
        let mut netpods_failed = false;
        let mut prometheus_ready = false;
        self.api.for_each(Kind::Pod, Some("kube-system"), |obj| {
            if let Object::Pod(p) = obj {
                match p.metadata.labels.get("k8s-app").map(String::as_str) {
                    Some("kube-dns") if p.is_ready() => dns_ready += 1,
                    _ => {}
                }
                match p.metadata.labels.get("app").map(String::as_str) {
                    Some("net-agent") | Some("kube-proxy") if !p.is_ready() => {
                        netpods_failed = true;
                    }
                    Some("prometheus") if p.is_ready() => prometheus_ready = true,
                    _ => {}
                }
            }
        });
        sample.dns_ready = dns_ready;
        sample.netpods_failed = netpods_failed;
        sample.prometheus_ready = prometheus_ready;
        sample.netagents_down = self.net.agents_down();
        sample.net_nodes = self.net.node_count();

        let mut not_ready = 0usize;
        self.api.for_each(Kind::Node, None, |obj| {
            if let Object::Node(n) = obj {
                if !n.status.ready {
                    not_ready += 1;
                }
            }
        });
        sample.nodes_not_ready = not_ready;

        self.stats.samples.push(sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_model::NoopInterceptor;

    fn golden_world(seed: u64) -> World {
        let cfg = ClusterConfig { seed, ..Default::default() };
        World::new(cfg, Rc::new(RefCell::new(NoopInterceptor)))
    }

    /// The paper's deploy workload, spelled out as a raw op plan (the
    /// registry entry lives in `mutiny_scenarios`; golden-run expectations
    /// for every registered scenario are tested there).
    fn deploy_ops() -> Vec<(u64, UserOp)> {
        vec![
            (2_000, UserOp::CreateApp { index: 2, replicas: 2 }),
            (2_200, UserOp::CreateApp { index: 3, replicas: 2 }),
            (2_400, UserOp::CreateApp { index: 4, replicas: 2 }),
        ]
    }

    #[test]
    fn bootstrap_brings_up_system_pods() {
        let mut w = golden_world(1);
        w.prepare(&[1]);
        // 5 nodes × 2 DaemonSets + 2 coredns + 1 prometheus.
        let sys_pods = w.api.count(Kind::Pod, Some("kube-system"));
        assert!(sys_pods >= 13, "only {sys_pods} system pods came up");
        assert!(w.net.dns_up(), "DNS should be up after bootstrap");
        assert_eq!(w.net.agents_down(), 0);
    }

    #[test]
    fn topology_scales_worker_count_from_template() {
        let cfg = Topology::virtual_workers(20)
            .apply(ClusterConfig { seed: 9, ..Default::default() });
        let mut w = World::new(cfg, Rc::new(RefCell::new(NoopInterceptor)));
        w.prepare(&[1]);
        // 20 workers + the control plane, all from the one template.
        assert_eq!(w.api.count(Kind::Node, None), 21);
        assert_eq!(w.kubelets.len(), 21);
        // DaemonSets cover every node.
        let sys_pods = w.api.count(Kind::Pod, Some("kube-system"));
        assert!(sys_pods >= 2 * 21, "only {sys_pods} system pods on 21 nodes");
    }

    #[test]
    fn golden_deploy_plan_serves_every_request() {
        let mut w = golden_world(2);
        w.prepare(&[1]);
        w.schedule_ops(deploy_ops());
        w.run_to_horizon();
        assert_eq!(w.stats.client.len(), 600);
        assert_eq!(
            w.stats.client_failures(),
            0,
            "golden run had failures: refused={} timeouts={} dns={}",
            w.net.metrics.refused,
            w.net.metrics.timeouts,
            w.net.metrics.dns_failures
        );
        // The three new deployments converged.
        let last = w.stats.last_sample().unwrap();
        for name in ["web-1", "web-2", "web-3", "web-4"] {
            assert_eq!(last.app_ready.get(name), Some(&2), "{name} not converged: {last:?}");
        }
        assert!(w.api.audit().user_errors() == 0);
    }

    #[test]
    fn golden_run_with_all_mitigations_is_clean() {
        // The §VI-B defenses must not disturb a healthy cluster: no policy
        // denials, no integrity repairs, no breaker trips, no rollbacks.
        let cfg = ClusterConfig {
            seed: 5,
            mitigations: MitigationsConfig::all(),
            ..Default::default()
        };
        let mut w = World::new(cfg, Rc::new(RefCell::new(k8s_model::NoopInterceptor)));
        w.prepare(&[1]);
        w.schedule_ops(deploy_ops());
        w.run_to_horizon();
        assert_eq!(w.stats.client_failures(), 0);
        let last = w.stats.last_sample().unwrap();
        for name in ["web-1", "web-2", "web-3", "web-4"] {
            assert_eq!(last.app_ready.get(name), Some(&2), "{name} not converged");
        }
        assert_eq!(w.api.policy_denials, 0, "policies denied a legitimate request");
        assert_eq!(w.api.policy_repairs, 0, "validating admission repaired a clean spec");
        assert_eq!(w.api.integrity_metrics.violations, 0, "spurious integrity violation");
        assert_eq!(w.breaker.as_ref().unwrap().metrics.trips, 0, "spurious breaker trip");
        assert_eq!(w.guard.as_ref().unwrap().metrics.rollbacks, 0, "spurious rollback");
    }

    #[test]
    fn deterministic_across_identical_seeds() {
        let run = |seed| {
            let mut w = golden_world(seed);
            w.prepare(&[1]);
            w.schedule_ops(deploy_ops());
            w.run_to_horizon();
            w.stats.response_series()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
