//! User operations and the service application (kbench role).
//!
//! The paper's three orchestration workloads (deploy, scale-up, failover,
//! §V-A) used to live here as a closed enum; they are now registry entries
//! in the `mutiny_scenarios` crate, alongside rolling-update and
//! node-drain. This module keeps the scenario-agnostic building blocks:
//! the timed [`UserOp`] vocabulary every scenario schedules, and the
//! service-application object builders.
//!
//! The service application is a stateless web server that reads a random
//! seed from a volume at startup and answers CPU-bound requests; by
//! default it does not require DNS (so cluster-wide DNS outages need not
//! hurt it — a propagation subtlety the paper calls out).

use crate::bootstrap::app_deployment_base;
use k8s_model::{Channel, Deployment, Kind, Object, Op, Service};
use std::sync::Arc;

/// One kbench-style user operation, scheduled by a scenario at an offset
/// from the workload start (`t0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UserOp {
    /// Create Deployment `web-<index>` plus its Service.
    CreateApp {
        /// Application index (names `web-<index>`).
        index: u32,
        /// Desired replicas.
        replicas: i64,
    },
    /// Set `web-<index>`'s replica count.
    Scale {
        /// Application index.
        index: u32,
        /// New replica count.
        replicas: i64,
    },
    /// Apply a NoExecute taint to a node (simulated node failure).
    TaintNode {
        /// Node name.
        node: String,
    },
    /// Change `web-<index>`'s container image, triggering a rolling
    /// update under the Deployment's maxSurge/maxUnavailable budget.
    SetImage {
        /// Application index.
        index: u32,
        /// New container image.
        image: String,
    },
    /// Cordon a node: apply a NoSchedule taint so no new pods land on it
    /// (planned maintenance, the first half of `kubectl drain`).
    CordonNode {
        /// Node name.
        node: String,
    },
    /// Evict one application pod from a node (the sequential second half
    /// of `kubectl drain`). Picks the name-smallest remaining `web-*` pod
    /// on the node, so the eviction sequence is deterministic; a no-op
    /// once the node is empty.
    EvictPodOn {
        /// Node name.
        node: String,
    },
    /// Re-submit a recorded write verbatim (trace replay): the payload
    /// bytes captured by the trace recorder go back through the full
    /// admission pipeline on the user channel. The worlds on both sides
    /// are deterministic, so recorded metadata (resourceVersions, uids)
    /// lines up with the replaying world's state.
    Replay {
        /// Recorded operation.
        verb: Op,
        /// Resource kind.
        kind: Kind,
        /// URL namespace.
        namespace: String,
        /// URL name.
        name: String,
        /// Encoded object as submitted (`None` for deletes). Shared so
        /// scheduling N replay runs from one loaded trace is refcount
        /// bumps, and `Arc` keeps [`UserOp`] send-safe for the campaign
        /// executor.
        payload: Option<Arc<[u8]>>,
    },
}

/// Builds the application Deployment `web-<index>`.
pub fn app_deployment(index: u32, replicas: i64, needs_dns: bool) -> Deployment {
    let name = format!("web-{index}");
    let mut d = app_deployment_base(&name, "default", replicas);
    let c = &mut d.spec.template.spec.containers[0];
    c.image = "registry.local/web:1.0".into();
    c.command = vec!["serve".into()];
    c.cpu_milli = 500;
    c.memory_mb = 256;
    c.port = 8080;
    d.spec.template.spec.volume = "seed-vol".into();
    d.spec.template.spec.needs_dns = needs_dns;
    d
}

/// Builds the Service for `web-<index>`.
pub fn app_service(index: u32) -> Service {
    let mut s = Service::default();
    s.metadata = k8s_model::ObjectMeta::named("default", &format!("web-{index}-svc"));
    s.spec.selector.insert("app".into(), format!("web-{index}"));
    s.spec.cluster_ip = format!("10.96.1.{index}");
    s.spec.port = 80;
    s.spec.target_port = 8080;
    s.spec.protocol = "TCP".into();
    s
}

/// Executes one user operation through the user channel. API errors are
/// recorded in the audit log (Figure 7's data); kbench keeps going.
pub(crate) fn execute_op(
    api: &mut k8s_apiserver::ApiServer,
    op: &UserOp,
    needs_dns: bool,
) {
    match op {
        UserOp::CreateApp { index, replicas } => {
            let d = app_deployment(*index, *replicas, needs_dns);
            let _ = api.create(Channel::UserToApi, Object::Deployment(d));
            let _ = api.create(Channel::UserToApi, Object::Service(app_service(*index)));
        }
        UserOp::Scale { index, replicas } => {
            let name = format!("web-{index}");
            if let Some(Object::Deployment(d)) = api.get(Kind::Deployment, "default", &name).as_deref() {
                let mut d = d.clone();
                d.spec.replicas = *replicas;
                let _ = api.update(Channel::UserToApi, Object::Deployment(d));
            } else {
                // kbench notices the object is gone; that surfaces as an
                // audit error via a doomed update.
                let d = app_deployment(*index, *replicas, needs_dns);
                let _ = api.update(Channel::UserToApi, Object::Deployment(d));
            }
        }
        UserOp::TaintNode { node } => {
            if let Some(Object::Node(n)) = api.get(Kind::Node, "", node).as_deref() {
                let mut n = n.clone();
                n.add_taint("simulated-failure", k8s_model::node::TAINT_NO_EXECUTE);
                let _ = api.update(Channel::UserToApi, Object::Node(n));
            }
        }
        UserOp::SetImage { index, image } => {
            let name = format!("web-{index}");
            if let Some(Object::Deployment(d)) = api.get(Kind::Deployment, "default", &name).as_deref() {
                let mut d = d.clone();
                d.spec.template.spec.containers[0].image = image.clone();
                let _ = api.update(Channel::UserToApi, Object::Deployment(d));
            }
        }
        UserOp::CordonNode { node } => {
            if let Some(Object::Node(n)) = api.get(Kind::Node, "", node).as_deref() {
                let mut n = n.clone();
                n.add_taint("maintenance", k8s_model::node::TAINT_NO_SCHEDULE);
                let _ = api.update(Channel::UserToApi, Object::Node(n));
            }
        }
        UserOp::EvictPodOn { node } => {
            // Smallest name wins so the eviction sequence is deterministic
            // (the cache iterates in hash order).
            let mut victim: Option<String> = None;
            api.for_each(Kind::Pod, Some("default"), |obj| {
                if let Object::Pod(p) = obj {
                    if p.spec.node_name == *node
                        && p.metadata.name.starts_with("web-")
                        && !p.metadata.is_terminating()
                        && victim.as_deref().is_none_or(|v| p.metadata.name.as_str() < v)
                    {
                        victim = Some(p.metadata.name.clone());
                    }
                }
            });
            if let Some(name) = victim {
                let _ = api.delete(Channel::UserToApi, Kind::Pod, "default", &name);
            }
        }
        UserOp::Replay { verb, kind, namespace, name, payload } => match verb {
            Op::Delete => {
                let _ = api.delete(Channel::UserToApi, *kind, namespace, name);
            }
            Op::Create | Op::Update => {
                // An unreadable payload means the trace file was damaged
                // after export; skip the event like kbench skips a failed
                // request (the audit log still shows the gap).
                let Some(obj) =
                    payload.as_ref().and_then(|b| Object::decode(*kind, b).ok())
                else {
                    return;
                };
                let _ = match verb {
                    Op::Create => api.create(Channel::UserToApi, obj),
                    _ => api.update(Channel::UserToApi, obj),
                };
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_objects_are_consistent() {
        let d = app_deployment(1, 2, false);
        let s = app_service(1);
        assert_eq!(d.metadata.name, "web-1");
        assert!(d.spec.selector.matches(&d.spec.template.metadata.labels));
        assert_eq!(s.spec.selector.get("app").map(String::as_str), Some("web-1"));
        assert_eq!(s.spec.target_port, d.spec.template.spec.containers[0].port);
    }
}
