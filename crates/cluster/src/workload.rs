//! The orchestration workloads and the service application (kbench role).
//!
//! Parametrized exactly like the paper's setup (§V-A):
//!
//! * **deploy** — creates three new Deployments (two replicas each) with
//!   their Services;
//! * **scale-up** — scales two existing Deployments 2 → 3 → 4 → 5, with
//!   10 s between steps;
//! * **failover** — applies a NoExecute taint to one worker, forcing its
//!   pods to respawn elsewhere.
//!
//! The service application is a stateless web server that reads a random
//! seed from a volume at startup and answers CPU-bound requests; by
//! default it does not require DNS (so cluster-wide DNS outages need not
//! hurt it — a propagation subtlety the paper calls out).

use crate::bootstrap::app_deployment_base;
use k8s_model::{Channel, Deployment, Kind, Object, Service};

/// The three orchestration workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Create three new Deployments plus Services.
    Deploy,
    /// Scale two Deployments 2 → 3 → 4 → 5 in 10-second steps.
    ScaleUp,
    /// Simulate a node failure with a NoExecute taint.
    Failover,
}

impl Workload {
    /// All workloads in paper order.
    pub const ALL: [Workload; 3] = [Workload::Deploy, Workload::ScaleUp, Workload::Failover];

    /// Short name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Deploy => "deploy",
            Workload::ScaleUp => "scale",
            Workload::Failover => "failover",
        }
    }

    /// Application Deployments created during scenario setup (before the
    /// fault window). The client always targets `web-1`.
    pub fn preinstalled_apps(self) -> &'static [u32] {
        match self {
            Workload::Deploy => &[1],
            Workload::ScaleUp | Workload::Failover => &[1, 2, 3],
        }
    }

    /// User operations of the workload, as offsets from the workload
    /// start (`t0`).
    pub fn ops(self) -> Vec<(u64, UserOp)> {
        match self {
            Workload::Deploy => vec![
                (2_000, UserOp::CreateApp { index: 2, replicas: 2 }),
                (2_200, UserOp::CreateApp { index: 3, replicas: 2 }),
                (2_400, UserOp::CreateApp { index: 4, replicas: 2 }),
            ],
            Workload::ScaleUp => vec![
                (2_000, UserOp::Scale { index: 1, replicas: 3 }),
                (2_100, UserOp::Scale { index: 2, replicas: 3 }),
                (12_000, UserOp::Scale { index: 1, replicas: 4 }),
                (12_100, UserOp::Scale { index: 2, replicas: 4 }),
                (22_000, UserOp::Scale { index: 1, replicas: 5 }),
                (22_100, UserOp::Scale { index: 2, replicas: 5 }),
            ],
            Workload::Failover => vec![(2_000, UserOp::TaintNode { node: "w1".into() })],
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One kbench-style user operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UserOp {
    /// Create Deployment `web-<index>` plus its Service.
    CreateApp {
        /// Application index (names `web-<index>`).
        index: u32,
        /// Desired replicas.
        replicas: i64,
    },
    /// Set `web-<index>`'s replica count.
    Scale {
        /// Application index.
        index: u32,
        /// New replica count.
        replicas: i64,
    },
    /// Apply a NoExecute taint to a node (simulated node failure).
    TaintNode {
        /// Node name.
        node: String,
    },
}

/// Builds the application Deployment `web-<index>`.
pub fn app_deployment(index: u32, replicas: i64, needs_dns: bool) -> Deployment {
    let name = format!("web-{index}");
    let mut d = app_deployment_base(&name, "default", replicas);
    let c = &mut d.spec.template.spec.containers[0];
    c.image = "registry.local/web:1.0".into();
    c.command = vec!["serve".into()];
    c.cpu_milli = 500;
    c.memory_mb = 256;
    c.port = 8080;
    d.spec.template.spec.volume = "seed-vol".into();
    d.spec.template.spec.needs_dns = needs_dns;
    d
}

/// Builds the Service for `web-<index>`.
pub fn app_service(index: u32) -> Service {
    let mut s = Service::default();
    s.metadata = k8s_model::ObjectMeta::named("default", &format!("web-{index}-svc"));
    s.spec.selector.insert("app".into(), format!("web-{index}"));
    s.spec.cluster_ip = format!("10.96.1.{index}");
    s.spec.port = 80;
    s.spec.target_port = 8080;
    s.spec.protocol = "TCP".into();
    s
}

/// Executes one user operation through the user channel. API errors are
/// recorded in the audit log (Figure 7's data); kbench keeps going.
pub(crate) fn execute_op(
    api: &mut k8s_apiserver::ApiServer,
    op: &UserOp,
    needs_dns: bool,
) {
    match op {
        UserOp::CreateApp { index, replicas } => {
            let d = app_deployment(*index, *replicas, needs_dns);
            let _ = api.create(Channel::UserToApi, Object::Deployment(d));
            let _ = api.create(Channel::UserToApi, Object::Service(app_service(*index)));
        }
        UserOp::Scale { index, replicas } => {
            let name = format!("web-{index}");
            if let Some(Object::Deployment(d)) = api.get(Kind::Deployment, "default", &name).as_deref() {
                let mut d = d.clone();
                d.spec.replicas = *replicas;
                let _ = api.update(Channel::UserToApi, Object::Deployment(d));
            } else {
                // kbench notices the object is gone; that surfaces as an
                // audit error via a doomed update.
                let d = app_deployment(*index, *replicas, needs_dns);
                let _ = api.update(Channel::UserToApi, Object::Deployment(d));
            }
        }
        UserOp::TaintNode { node } => {
            if let Some(Object::Node(n)) = api.get(Kind::Node, "", node).as_deref() {
                let mut n = n.clone();
                n.add_taint("simulated-failure", k8s_model::node::TAINT_NO_EXECUTE);
                let _ = api.update(Channel::UserToApi, Object::Node(n));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_parameters_match_paper() {
        // deploy: three Deployments, two replicas each.
        let ops = Workload::Deploy.ops();
        assert_eq!(ops.len(), 3);
        assert!(ops.iter().all(|(_, op)| matches!(op, UserOp::CreateApp { replicas: 2, .. })));

        // scale-up: two Deployments, 2→3→4→5 with 10 s steps.
        let ops = Workload::ScaleUp.ops();
        assert_eq!(ops.len(), 6);
        let times: Vec<u64> = ops.iter().map(|(t, _)| *t).collect();
        assert!(times[2] - times[0] == 10_000 && times[4] - times[2] == 10_000);

        // failover: one taint.
        assert_eq!(Workload::Failover.ops().len(), 1);
    }

    #[test]
    fn app_objects_are_consistent() {
        let d = app_deployment(1, 2, false);
        let s = app_service(1);
        assert_eq!(d.metadata.name, "web-1");
        assert!(d.spec.selector.matches(&d.spec.template.metadata.labels));
        assert_eq!(s.spec.selector.get("app").map(String::as_str), Some("web-1"));
        assert_eq!(s.spec.target_port, d.spec.template.spec.containers[0].port);
    }

    #[test]
    fn names_are_stable() {
        for wl in Workload::ALL {
            assert!(!wl.name().is_empty());
        }
        assert_eq!(Workload::ScaleUp.to_string(), "scale");
    }
}
