//! Plain-text table rendering for the evaluation harnesses.
//!
//! Every table/figure bench prints through this module so the regenerated
//! artifacts have one consistent, diff-friendly format.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn push_row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let cols = self.headers.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(line, "{cell:<w$}  ", w = w);
            }
            line.trim_end().to_string()
        };
        if !self.headers.is_empty() {
            let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
            let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
            let _ = writeln!(out, "{}", "-".repeat(total.min(120)));
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// Formats `n/d` as the paper does: count plus percentage.
pub fn count_pct(n: usize, d: usize) -> String {
    if d == 0 {
        return "0".into();
    }
    let pct = 100.0 * n as f64 / d as f64;
    if pct >= 1.0 {
        format!("{n} ({pct:.1}%)")
    } else {
        format!("{n}")
    }
}

/// Formats a percentage.
pub fn pct(n: usize, d: usize) -> String {
    if d == 0 {
        "0.0%".into()
    } else {
        format!("{:.1}%", 100.0 * n as f64 / d as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "count"]);
        t.push_row(["alpha", "1"]);
        t.push_row(["b", "22222"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("alpha"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator, two rows (plus title).
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn count_pct_formats() {
        assert_eq!(count_pct(5, 100), "5 (5.0%)");
        assert_eq!(count_pct(1, 1000), "1");
        assert_eq!(count_pct(0, 0), "0");
        assert_eq!(pct(1, 4), "25.0%");
        assert_eq!(pct(0, 0), "0.0%");
    }
}
