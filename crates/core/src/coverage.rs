//! Table VII: what Mutiny can and cannot replicate.
//!
//! The paper compares the error/failure subcategories observed in the
//! real-world dataset with those Mutiny triggers. **Replicable** entries
//! are coverable by store-level injections (the paper's bold); entries
//! marked **mutiny-only** are triggered by the injector but were not seen
//! in the wild (the paper's italics). Entries that are neither are the
//! injector's blind spots — mostly worker-node-local and transient
//! network conditions (§VI-A). The bold/italic assignment below is
//! reconstructed from the §VI-A prose since the table formatting is not
//! machine-readable in the source.

use crate::report::Table;

/// One subcategory row of Table VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subcategory {
    /// Parent category label (Table I names).
    pub category: &'static str,
    /// Subcategory name.
    pub name: &'static str,
    /// Mutiny can replicate it (bold in the paper).
    pub replicable: bool,
    /// Triggered by Mutiny but absent from the real-world data (italics).
    pub mutiny_only: bool,
}

const fn sub(category: &'static str, name: &'static str, replicable: bool, mutiny_only: bool) -> Subcategory {
    Subcategory { category, name, replicable, mutiny_only }
}

/// Error subcategories (upper half of Table VII).
pub const ERROR_SUBCATEGORIES: &[Subcategory] = &[
    sub("State Retrieval", "State corrupted", true, false),
    sub("State Retrieval", "State erased", true, false),
    sub("State Retrieval", "State stale", true, false),
    sub("State Retrieval", "State unretrievable", true, false),
    sub("Misbehaving Logic", "Wrong label", true, false),
    sub("Misbehaving Logic", "Wrong replica value", true, false),
    sub("Misbehaving Logic", "Request rejected", true, false),
    sub("Misbehaving Logic", "Lost update", true, false),
    sub("Misbehaving Logic", "Controller loop not executed", true, false),
    sub("Misbehaving Logic", "Relationship broken", true, false),
    sub("Communication", "Connection delay", false, false),
    sub("Communication", "Wrong IP address", true, false),
    sub("Communication", "DNS resolution delay", false, false),
    sub("Communication", "DNS not resolving", true, false),
    sub("Communication", "Uneven load balancing", true, false),
    sub("Communication", "Endpoint delete after Pod kill", true, true),
    sub("Communication", "Routes dropped", true, false),
    sub("Communication", "New Nodes' routes not configured", true, false),
    sub("Communication", "Routes not updated", true, false),
    sub("Capacity Exceeded", "Overcrowding", true, false),
    sub("Capacity Exceeded", "Cluster out of resources", true, false),
    sub("Capacity Exceeded", "Worker nodes cannot join", true, false),
    sub("Capacity Exceeded", "Worker nodes unhealthy", true, false),
    sub("CP Availability", "CP Pods crash loop", true, false),
    sub("CP Availability", "CP Pods hang", false, false),
    sub("CP Availability", "CP Pods deleted", true, false),
    sub("CP Availability", "CP overload", true, false),
    sub("Local to Nodes", "Kubelet delayed", false, false),
    sub("Local to Nodes", "Container runtime failure", false, false),
    sub("Local to Nodes", "Pods not ready", true, false),
    sub("Local to Nodes", "Image Pull Error", true, false),
    sub("Local to Nodes", "Slow/throttling", false, false),
];

/// Failure subcategories (lower half of Table VII).
pub const FAILURE_SUBCATEGORIES: &[Subcategory] = &[
    sub("Cluster Outage", "Cluster-wide networking drop", true, false),
    sub("Cluster Outage", "Cluster-wide networking intermittent", false, false),
    sub("Cluster Outage", "Massive Service Deletion", true, true),
    sub("Cluster Outage", "DNS resolution failure", true, false),
    sub("Stall", "Control Plane stuck", true, false),
    sub("Stall", "Control Plane slow", true, false),
    sub("Stall", "Control Plane quorum unreachable", false, false),
    sub("Stall", "New Services network not configurable", true, true),
    sub("Stall", "New Nodes network not reconfigurable", true, false),
    sub("Service Networking", "Service Networking Drop Permanent", true, false),
    sub("Service Networking", "Service Networking Drop Intermittent", false, false),
    sub("Service Networking", "Service Networking Delay", false, false),
    sub("More Resources", "Pods not deleted", true, false),
    sub("More Resources", "Too many Pods created", true, false),
    sub("More Resources", "More Pods Transient", true, true),
    sub("More Resources", "More Resources Per Pod", false, false),
    sub("Less Resources", "Pods deleted", true, false),
    sub("Less Resources", "Pods not created", true, false),
    sub("Less Resources", "Pods crashloop", true, false),
    sub("Less Resources", "Less Resources Per Pod", false, false),
    sub("Timing", "Pods' Creation Delayed", true, false),
    sub("Timing", "Pods Restart", true, false),
];

/// Renders Table VII.
pub fn table7() -> Table {
    let mut t = Table::new(
        "Table VII — Injections vs. real world ([M] = Mutiny-replicable, [M-only] = triggered only by Mutiny)",
        &["Kind", "Category", "Subcategory", "Coverage"],
    );
    for (kind, list) in [("Error", ERROR_SUBCATEGORIES), ("Failure", FAILURE_SUBCATEGORIES)] {
        for s in list {
            let mark = match (s.replicable, s.mutiny_only) {
                (true, true) => "[M-only]",
                (true, false) => "[M]",
                (false, _) => "not covered",
            };
            t.push_row([kind, s.category, s.name, mark]);
        }
    }
    t
}

/// Coverage summary: `(replicable, total)` per subcategory list.
pub fn coverage_summary() -> ((usize, usize), (usize, usize)) {
    let count = |list: &[Subcategory]| {
        (list.iter().filter(|s| s.replicable).count(), list.len())
    };
    (count(ERROR_SUBCATEGORIES), count(FAILURE_SUBCATEGORIES))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_subcategories_are_replicable() {
        // §VI-A: "almost all failure subcategories can be covered".
        let ((err_r, err_t), (fail_r, fail_t)) = coverage_summary();
        assert!(err_r * 3 > err_t * 2, "errors: {err_r}/{err_t}");
        assert!(fail_r * 3 > fail_t * 2, "failures: {fail_r}/{fail_t}");
    }

    #[test]
    fn blind_spots_are_node_local_or_transient() {
        for s in ERROR_SUBCATEGORIES.iter().chain(FAILURE_SUBCATEGORIES) {
            if !s.replicable {
                let lower = s.name.to_lowercase();
                assert!(
                    lower.contains("delay")
                        || lower.contains("intermittent")
                        || lower.contains("hang")
                        || lower.contains("quorum")
                        || lower.contains("kubelet")
                        || lower.contains("runtime")
                        || lower.contains("throttling")
                        || lower.contains("per pod"),
                    "unexpected blind spot: {}",
                    s.name
                );
            }
        }
    }

    #[test]
    fn mutiny_only_entries_are_replicable() {
        for s in ERROR_SUBCATEGORIES.iter().chain(FAILURE_SUBCATEGORIES) {
            if s.mutiny_only {
                assert!(s.replicable, "{} marked mutiny-only but not replicable", s.name);
            }
        }
    }

    #[test]
    fn table_renders_every_subcategory() {
        let t = table7();
        assert_eq!(t.len(), ERROR_SUBCATEGORIES.len() + FAILURE_SUBCATEGORIES.len());
    }
}
