//! Builders regenerating the paper's evaluation tables and figures from
//! campaign results.
//!
//! Every artifact of §V has a function here: Table II (category
//! definitions), Table III (OF → CF propagation), Table IV (OF statistics
//! per workload × injection type), Table V (CF statistics), Table VI
//! (propagation study), Figure 6 (client z-scores per OF), and Figure 7
//! (user-visible errors per OF). The bench targets in `mutiny-bench` call
//! these and print the rendered tables.

use crate::campaign::{CampaignResults, CampaignRow};
use crate::classify::{ClientFailure, OrchestratorFailure};
use crate::propagation::PropagationCell;
use crate::report::{count_pct, pct, Table};
use k8s_model::ChannelId;
use mutiny_faults::Fault;
use mutiny_scenarios::Scenario;

/// Table II: the client failure categories and their definitions.
pub fn table2() -> Table {
    let mut t = Table::new("Table II — Client failure categories", &["Category", "Definition"]);
    t.push_row(["NSI", "service available; response times not significantly different from golden runs"]);
    t.push_row(["HRT", "service available; response times significantly higher than golden runs"]);
    t.push_row(["IA", "intermittent error responses not due to request timeouts"]);
    t.push_row(["SU", "from a certain instant, the service is unreachable to the client"]);
    t
}

/// Table III: mapping between orchestrator failures and client failures,
/// one column group per scenario present in the results.
pub fn table3(results: &CampaignResults) -> Table {
    let scenarios = results.scenarios();
    let mut headers: Vec<String> = vec!["OF".into()];
    for sc in &scenarios {
        for cf in ClientFailure::ALL {
            headers.push(format!("{}:{}", sc.name(), cf.label()));
        }
    }
    let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Table III — Orchestrator failures (OF) vs client failures (CF)",
        &hdr_refs,
    );
    for of in OrchestratorFailure::ALL {
        let mut row: Vec<String> = vec![of.label().into()];
        for sc in &scenarios {
            let sc_total = results.count(|r| r.scenario == *sc).max(1);
            for cf in ClientFailure::ALL {
                let n = results.count(|r| r.scenario == *sc && r.of == of && r.cf == cf);
                row.push(if n == 0 {
                    "0".into()
                } else {
                    format!("{n} ({:.1}%)", 100.0 * n as f64 / sc_total as f64)
                });
            }
        }
        t.push_row(row);
    }
    t
}

/// Table IV: orchestrator-level failure statistics per scenario and
/// injection type.
pub fn table4(results: &CampaignResults) -> Table {
    let mut t = Table::new(
        "Table IV — Orchestrator-level failures (OF) per scenario × injection type",
        &["WL", "Injection", "Perf.", "No", "Tim", "LeR", "MoR", "Net", "Sta", "Out"],
    );
    let mut totals = [0usize; 8];
    for sc in results.scenarios() {
        // One row per fault family present in the results, in registry
        // order — a registered third-party family extends the table
        // automatically, exactly like scenarios do.
        for fault in results.faults() {
            let rows: Vec<&CampaignRow> = results
                .rows
                .iter()
                .filter(|r| r.scenario == sc && r.fault == fault)
                .collect();
            if rows.is_empty() {
                continue;
            }
            let mut cells: Vec<String> =
                vec![sc.name().into(), fault.label().into(), rows.len().to_string()];
            totals[0] += rows.len();
            for (i, of) in OrchestratorFailure::ALL.iter().enumerate() {
                let n = rows.iter().filter(|r| r.of == *of).count();
                totals[i + 1] += n;
                cells.push(n.to_string());
            }
            t.push_row(cells);
        }
    }
    let total = totals[0].max(1);
    let mut sum_row: Vec<String> = vec!["Σ".into(), String::new(), totals[0].to_string()];
    sum_row.extend(totals[1..].iter().map(|n| n.to_string()));
    t.push_row(sum_row);
    let mut pct_row: Vec<String> = vec!["%".into(), String::new(), "100%".into()];
    pct_row.extend(totals[1..].iter().map(|n| pct(*n, total)));
    t.push_row(pct_row);
    t
}

/// Table V: client-level failure statistics per scenario and injection
/// type.
pub fn table5(results: &CampaignResults) -> Table {
    let mut t = Table::new(
        "Table V — Client-level failures (CF) per scenario × injection type",
        &["WL", "Injection", "Perf.", "NSI", "HRT", "IA", "SU"],
    );
    let mut totals = [0usize; 5];
    for sc in results.scenarios() {
        for fault in results.faults() {
            let rows: Vec<&CampaignRow> = results
                .rows
                .iter()
                .filter(|r| r.scenario == sc && r.fault == fault)
                .collect();
            if rows.is_empty() {
                continue;
            }
            let mut cells: Vec<String> =
                vec![sc.name().into(), fault.label().into(), rows.len().to_string()];
            totals[0] += rows.len();
            for (i, cf) in ClientFailure::ALL.iter().enumerate() {
                let n = rows.iter().filter(|r| r.cf == *cf).count();
                totals[i + 1] += n;
                cells.push(n.to_string());
            }
            t.push_row(cells);
        }
    }
    let total = totals[0].max(1);
    let mut sum_row: Vec<String> = vec!["Σ".into(), String::new(), totals[0].to_string()];
    sum_row.extend(totals[1..].iter().map(|n| n.to_string()));
    t.push_row(sum_row);
    let mut pct_row: Vec<String> = vec!["%".into(), String::new(), "100%".into()];
    pct_row.extend(totals[1..].iter().map(|n| pct(*n, total)));
    t.push_row(pct_row);
    t
}

/// Table VI: the propagation study. One row per (fault family, wire,
/// scenario) cell — the family key rides along so non-bit-flip
/// propagation studies extend the table instead of replacing it, and
/// the wire key is a [`ChannelId`], so node-lifecycle scenarios grow a
/// per-node Kubelet→Api row per node.
pub fn table6(
    cells: &[(Fault, ChannelId, Scenario, PropagationCell)],
) -> Table {
    let mut t = Table::new(
        "Table VI — Propagation of injections on component→apiserver channels",
        &["WL", "Fault", "Channel", "Inj.", "Prop", "Err."],
    );
    for (fault, channel, sc, cell) in cells {
        t.push_row([
            sc.name().to_string(),
            fault.label().to_string(),
            channel.to_string(),
            cell.injections.to_string(),
            cell.propagated.to_string(),
            cell.errors.to_string(),
        ]);
    }
    t
}

/// Config-defect expectation table: each config-defect family's
/// predicted failure signature (`FaultDef::expectation`) next to the
/// observed OF/CF distribution — the expected-classification hint for
/// the admission-time defect families. Families that planned nothing
/// in these results are omitted.
pub fn config_defect_table(results: &CampaignResults) -> Table {
    let mut t = Table::new(
        "Config defects — expected vs observed classification",
        &["Injection", "n", "Fired", "Top OF", "Top CF", "Expected"],
    );
    for fault in results.faults() {
        let rows: Vec<&CampaignRow> = results
            .rows
            .iter()
            .filter(|r| {
                r.fault == fault
                    && matches!(r.spec.point, crate::injector::InjectionPoint::Config { .. })
            })
            .collect();
        if rows.is_empty() {
            continue;
        }
        let fired = rows.iter().filter(|r| r.fired).count();
        let top_of = OrchestratorFailure::ALL
            .into_iter()
            .max_by_key(|of| rows.iter().filter(|r| r.of == *of).count())
            .unwrap_or(OrchestratorFailure::No);
        let top_cf = ClientFailure::ALL
            .into_iter()
            .max_by_key(|cf| rows.iter().filter(|r| r.cf == *cf).count())
            .unwrap_or(ClientFailure::Nsi);
        t.push_row([
            fault.label().to_string(),
            rows.len().to_string(),
            fired.to_string(),
            top_of.label().to_string(),
            top_cf.label().to_string(),
            fault.expectation().to_string(),
        ]);
    }
    t
}

/// Figure 6 data: client z-score statistics per scenario × OF category.
pub fn fig6(results: &CampaignResults) -> Table {
    let mut t = Table::new(
        "Figure 6 — Client impact (MAE z-scores) per orchestrator failure",
        &["WL", "OF", "n", "z median", "z p95", "z max"],
    );
    for sc in results.scenarios() {
        for of in OrchestratorFailure::ALL {
            let zs: Vec<f64> = results
                .rows
                .iter()
                .filter(|r| r.scenario == sc && r.of == of)
                .map(|r| r.z)
                .collect();
            if zs.is_empty() {
                continue;
            }
            t.push_row([
                sc.name().to_string(),
                of.label().to_string(),
                zs.len().to_string(),
                format!("{:.1}", simkit::stats::percentile(&zs, 50.0)),
                format!("{:.1}", simkit::stats::percentile(&zs, 95.0)),
                format!("{:.1}", simkit::stats::max(&zs)),
            ]);
        }
    }
    t
}

/// Figure 7 data: experiments vs experiments with a user-visible error,
/// per scenario × OF category (finding F4).
pub fn fig7(results: &CampaignResults) -> Table {
    let mut t = Table::new(
        "Figure 7 — Experiments in which the user received an API error",
        &["WL", "OF", "Total", "Error", "Error share"],
    );
    for sc in results.scenarios() {
        for of in OrchestratorFailure::ALL {
            let total = results.count(|r| r.scenario == sc && r.of == of);
            if total == 0 {
                continue;
            }
            let err = results.count(|r| r.scenario == sc && r.of == of && r.user_error);
            t.push_row([
                sc.name().to_string(),
                of.label().to_string(),
                total.to_string(),
                err.to_string(),
                pct(err, total),
            ]);
        }
    }
    t
}

/// Critical-field table (§V-C2): the fields whose injections caused
/// Sta/Out/SU, grouped by category.
pub fn critical_field_table(results: &CampaignResults) -> Table {
    let fields = crate::critical::critical_fields(results);
    let mut t = Table::new(
        "Critical fields — injections causing Sta, Out, or SU",
        &["Field", "Category", "Critical injections"],
    );
    for f in &fields {
        t.push_row([f.path.clone(), f.category.to_string(), f.critical_injections.to_string()]);
    }
    let dep = crate::critical::dependency_share(results);
    t.push_row([
        "— dependency-field share of critical experiments".to_string(),
        String::new(),
        format!("{:.0}%", dep * 100.0),
    ]);
    t
}

/// One-paragraph summary in the style of the paper's finding boxes.
pub fn summary_counts(results: &CampaignResults) -> String {
    let total = results.len().max(1);
    let sta_out = results.count(|r| r.of.is_system_wide());
    let provision = results.count(|r| {
        matches!(r.of, OrchestratorFailure::LeR | OrchestratorFailure::MoR)
    });
    let net = results.count(|r| r.of == OrchestratorFailure::Net);
    let none = results.count(|r| r.of == OrchestratorFailure::No);
    format!(
        "{} injections: system-wide failures {} | under/over-provisioning {} | \
         service networking {} | no effect {} | activation rate {:.0}%",
        total,
        count_pct(sta_out, total),
        count_pct(provision, total),
        count_pct(net, total),
        count_pct(none, total),
        results.activation_rate() * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injector::{FieldMutation, InjectionPoint, InjectionSpec};
    use k8s_model::{Channel, Kind};
    use mutiny_faults::{BIT_FLIP, DROP, PARTITION, VALUE_SET};
    use protowire::reflect::Value;

    use mutiny_scenarios::{DEPLOY, FAILOVER, NODE_DRAIN, ROLLING_UPDATE, SCALE_UP};

    fn row(sc: Scenario, fault: Fault, of: OrchestratorFailure, cf: ClientFailure) -> CampaignRow {
        CampaignRow {
            scenario: sc,
            spec: InjectionSpec {
                channel: Channel::ApiToEtcd.into(),
                kind: Kind::Pod,
                point: InjectionPoint::Field {
                    path: "spec.nodeName".into(),
                    mutation: FieldMutation::Set(Value::Str(String::new())),
                },
                occurrence: 1,
            },
            fault,
            of,
            cf,
            z: 1.0,
            fired: true,
            activated: true,
            user_error: of == OrchestratorFailure::Out,
            path: Some("spec.nodeName".into()),
        }
    }

    fn sample_results() -> CampaignResults {
        CampaignResults {
            rows: vec![
                row(DEPLOY, BIT_FLIP, OrchestratorFailure::No, ClientFailure::Nsi),
                row(DEPLOY, BIT_FLIP, OrchestratorFailure::MoR, ClientFailure::Hrt),
                row(DEPLOY, VALUE_SET, OrchestratorFailure::Sta, ClientFailure::Nsi),
                row(SCALE_UP, DROP, OrchestratorFailure::No, ClientFailure::Nsi),
                row(FAILOVER, BIT_FLIP, OrchestratorFailure::Out, ClientFailure::Su),
                row(ROLLING_UPDATE, DROP, OrchestratorFailure::LeR, ClientFailure::Hrt),
                row(NODE_DRAIN, VALUE_SET, OrchestratorFailure::No, ClientFailure::Nsi),
                row(DEPLOY, PARTITION, OrchestratorFailure::Tim, ClientFailure::Hrt),
            ],
        }
    }

    #[test]
    fn config_defect_table_pairs_expectation_with_observation() {
        let mut r = sample_results();
        // Three cfg-selector rows, Sta dominating, on top of the wire
        // fixture rows (which must not leak into the defect table).
        for of in [OrchestratorFailure::Sta, OrchestratorFailure::Sta, OrchestratorFailure::MoR] {
            let mut cfg_row = row(DEPLOY, mutiny_faults::CFG_SELECTOR, of, ClientFailure::Nsi);
            cfg_row.spec.point = InjectionPoint::Config { defect: "selector".into(), param: 0 };
            r.rows.push(cfg_row);
        }
        let t = config_defect_table(&r);
        let s = t.render();
        assert!(s.contains("Sta"), "dominant OF missing: {s}");
        assert!(
            s.contains(mutiny_faults::CFG_SELECTOR.expectation()),
            "expectation hint missing: {s}"
        );
        // Wire-only families contribute no rows — the table is scoped to
        // config-defect injections.
        assert!(!s.contains(BIT_FLIP.label()), "wire family leaked into the defect table: {s}");
    }

    #[test]
    fn tables_render_with_totals() {
        let r = sample_results();
        let t4 = table4(&r);
        let s4 = t4.render();
        assert!(s4.contains("deploy"));
        assert!(s4.contains("Σ"));
        assert!(s4.contains("100%"));
        let t5 = table5(&r);
        assert!(t5.render().contains("NSI"));
        let t3 = table3(&r);
        assert!(t3.render().contains("deploy:NSI"));
        assert!(!table2().is_empty());
    }

    #[test]
    fn fig_tables_cover_categories_present() {
        let r = sample_results();
        assert!(fig6(&r).render().contains("Out"));
        let f7 = fig7(&r).render();
        assert!(f7.contains("100.0%"), "{f7}"); // the Out row had a user error
    }

    #[test]
    fn summary_mentions_all_buckets() {
        let s = summary_counts(&sample_results());
        assert!(s.contains("system-wide"));
        assert!(s.contains("activation rate"));
    }

    #[test]
    fn critical_table_includes_share() {
        let r = sample_results();
        let t = critical_field_table(&r);
        assert!(t.render().contains("dependency-field share"));
    }

    #[test]
    fn table6_renders_cells() {
        let cells = vec![
            (
                BIT_FLIP,
                Channel::KcmToApi.into(),
                DEPLOY,
                PropagationCell { injections: 10, propagated: 4, errors: 2 },
            ),
            (
                BIT_FLIP,
                ChannelId::node_scoped(Channel::KubeletToApi, "w2"),
                NODE_DRAIN,
                PropagationCell { injections: 6, propagated: 1, errors: 0 },
            ),
        ];
        let t = table6(&cells);
        assert!(t.render().contains("kcm->apiserver"));
        assert!(t.render().contains("kubelet->apiserver@w2"));
        assert!(t.render().contains("Bit-flip"));
    }
}
