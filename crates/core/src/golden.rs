//! Golden runs and baselines (§V-B).
//!
//! "For each workload, we collected data from 100 golden runs without any
//! faults/errors injected." The baseline holds the averaged response-time
//! series, the distribution of golden MAEs against it (for client
//! z-scores), the golden pod-startup statistics (for Tim), and the
//! expected steady-state gauge values (for LeR/MoR/Net).

use k8s_cluster::{ClusterConfig, RunStats};
use k8s_model::NoopInterceptor;
use mutiny_scenarios::Scenario;
use simkit::stats::{average_series, mae};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Golden-run baselines for one scenario.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Element-wise average of golden response-time series.
    pub avg_response: Vec<f64>,
    /// MAE of each golden run against the average series.
    pub golden_maes: Vec<f64>,
    /// Worst pod startup time per golden run (ms).
    pub golden_worst_startup: Vec<f64>,
    /// Last pod creation time per golden run, relative to t0 (ms).
    pub golden_last_creation: Vec<f64>,
    /// Steady-state ready replicas per application Deployment.
    pub expected_ready: BTreeMap<String, i64>,
    /// Steady-state endpoint counts per application Service.
    pub expected_endpoints: BTreeMap<String, usize>,
    /// Median pods created by controllers during a golden run.
    pub expected_pods_created: u64,
    /// Maximum pods created across golden runs (MoR transient threshold:
    /// the paper counts even 1–2 extra spawned pods as More Resources).
    pub golden_pods_created_max: u64,
    /// Steady-state ready coreDNS pods.
    pub expected_dns_ready: i64,
    /// Latest sim-time (ms) at which any golden run still had a tracked
    /// gauge (per-deployment ready count, per-service endpoint count)
    /// below its steady-state expectation — the settle deadline. After
    /// it, a healthy run keeps every gauge at or above expectation, so a
    /// below-expectation sample past the deadline is monitoring-alert
    /// material (the propagation-timeline detection predicate). A golden
    /// run that *ends* below expectation (possible: expectations are
    /// medians) pushes the deadline to the horizon, disabling the signal
    /// for that scenario rather than risking false alerts.
    pub golden_settle_ms: u64,
}

/// Runs one golden (fault-free) experiment and returns its statistics.
pub fn run_golden(cluster: &ClusterConfig, scenario: Scenario, seed: u64) -> RunStats {
    let cfg = ClusterConfig { seed, ..cluster.clone() };
    let mut world = scenario.build_world(&cfg, Rc::new(RefCell::new(NoopInterceptor)));
    scenario.schedule(&mut world);
    world.run_to_horizon();
    world.stats
}

/// Builds the baseline for a scenario from `runs` golden runs.
///
/// Runs execute on the work-stealing executor; results are deterministic
/// for a given `(cluster, scenario, runs, base_seed)` regardless of
/// worker count.
pub fn build_baseline(
    cluster: &ClusterConfig,
    scenario: Scenario,
    runs: usize,
    base_seed: u64,
) -> Baseline {
    build_baseline_with_threads(
        cluster,
        scenario,
        runs,
        base_seed,
        crate::exec::default_threads(runs),
    )
}

/// [`build_baseline`] with an explicit worker count (pinned by the
/// determinism tests and the throughput bench).
pub fn build_baseline_with_threads(
    cluster: &ClusterConfig,
    scenario: Scenario,
    runs: usize,
    base_seed: u64,
    threads: usize,
) -> Baseline {
    let runs = runs.max(3);
    let stats = parallel_golden(cluster, scenario, runs, base_seed, threads);

    let series: Vec<Vec<f64>> = stats.iter().map(RunStats::response_series).collect();
    let avg_response = average_series(&series);
    let golden_maes: Vec<f64> = series.iter().map(|s| mae(s, &avg_response)).collect();

    let mut golden_worst_startup = Vec::new();
    let mut golden_last_creation = Vec::new();
    let mut created_counts = Vec::new();
    for st in &stats {
        let startups = st.startup_times(st.t0);
        if !startups.is_empty() {
            golden_worst_startup.push(simkit::stats::max(&startups));
        }
        if let Some(last) = st.last_pod_creation(st.t0) {
            golden_last_creation.push((last - st.t0) as f64);
        }
        created_counts.push(st.samples.last().map(|s| s.pods_created_cum).unwrap_or(0));
    }
    created_counts.sort_unstable();
    let expected_pods_created = created_counts.get(created_counts.len() / 2).copied().unwrap_or(0);
    let golden_pods_created_max = created_counts.last().copied().unwrap_or(0);

    // Steady-state gauges: majority vote over the golden final samples.
    let mut expected_ready: BTreeMap<String, i64> = BTreeMap::new();
    let mut expected_endpoints: BTreeMap<String, usize> = BTreeMap::new();
    let mut dns_votes: Vec<i64> = Vec::new();
    {
        let mut ready_votes: BTreeMap<String, Vec<i64>> = BTreeMap::new();
        let mut ep_votes: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for st in &stats {
            if let Some(last) = st.samples.last() {
                for (k, v) in &last.app_ready {
                    ready_votes.entry(k.clone()).or_default().push(*v);
                }
                for (k, v) in &last.app_endpoints {
                    ep_votes.entry(k.clone()).or_default().push(*v);
                }
                dns_votes.push(last.dns_ready);
            }
        }
        for (k, mut vs) in ready_votes {
            vs.sort_unstable();
            expected_ready.insert(k, vs[vs.len() / 2]);
        }
        for (k, mut vs) in ep_votes {
            vs.sort_unstable();
            expected_endpoints.insert(k, vs[vs.len() / 2]);
        }
    }
    dns_votes.sort_unstable();
    let expected_dns_ready = dns_votes.get(dns_votes.len() / 2).copied().unwrap_or(0);

    // Settle deadline: see the field docs. Computed against the voted
    // expectations, so a run below the median at some instant counts as
    // "not yet settled" there.
    let mut golden_settle_ms = 0u64;
    for st in &stats {
        for s in &st.samples {
            let ready_below = expected_ready
                .iter()
                .any(|(k, &want)| s.app_ready.get(k).copied().unwrap_or(0) < want);
            let ep_below = expected_endpoints
                .iter()
                .any(|(k, &want)| s.app_endpoints.get(k).copied().unwrap_or(0) < want);
            if ready_below || ep_below {
                golden_settle_ms = golden_settle_ms.max(s.at);
            }
        }
    }

    Baseline {
        avg_response,
        golden_maes,
        golden_worst_startup,
        golden_last_creation,
        expected_ready,
        expected_endpoints,
        expected_pods_created,
        golden_pods_created_max,
        expected_dns_ready,
        golden_settle_ms,
    }
}

fn parallel_golden(
    cluster: &ClusterConfig,
    scenario: Scenario,
    runs: usize,
    base_seed: u64,
    threads: usize,
) -> Vec<RunStats> {
    // Golden runs ride the same work-stealing executor as the campaign:
    // per-run seeds derive from the run index, so the baseline is
    // identical for any worker count.
    crate::exec::run_indexed(runs, threads, |i| {
        run_golden(cluster, scenario, base_seed + i as u64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster() -> ClusterConfig {
        ClusterConfig::default()
    }

    #[test]
    fn baseline_captures_steady_state() {
        let b = build_baseline(&small_cluster(), mutiny_scenarios::DEPLOY, 4, 100);
        assert_eq!(b.avg_response.len(), 600);
        assert_eq!(b.golden_maes.len(), 4);
        assert!(b.expected_dns_ready >= 1);
        assert_eq!(b.expected_ready.get("web-1"), Some(&2));
        assert_eq!(b.expected_ready.get("web-4"), Some(&2));
        assert_eq!(b.expected_endpoints.get("web-1-svc"), Some(&2));
        // Deploy creates 3 new apps × 2 replicas = at least 6 pods.
        assert!(b.expected_pods_created >= 6);
        assert!(!b.golden_worst_startup.is_empty());
        assert!(!b.golden_last_creation.is_empty());
    }

    #[test]
    fn golden_maes_are_small() {
        let b = build_baseline(&small_cluster(), mutiny_scenarios::SCALE_UP, 4, 7);
        let spread = simkit::stats::max(&b.golden_maes);
        assert!(spread < 50.0, "golden runs disagree too much: {spread}");
    }
}
