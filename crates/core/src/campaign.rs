//! The campaign manager: experiment generation, execution and bookkeeping.
//!
//! Implements the workflow of §IV-C / Figure 4: record the fields flowing
//! to the store during a nominal workload, generate the injection plan
//! (the cross-product of the scenario set and the fault-family registry —
//! each [`Fault`] plans its own specs from the recorded traffic), then
//! drive one fresh cluster per experiment, injecting exactly one fault
//! and classifying the outcome.
//!
//! The paper's §IV-C plan (per-field bit-flips and data-type sets at
//! occurrences 1–3, per-kind serialization-byte corruptions, per-kind
//! message drops at occurrences 1–10) is exactly what the three wire
//! built-ins of `mutiny_faults` produce; [`generate_plan`] keeps that
//! paper-faithful subset, [`plan_campaign`] takes an explicit family set.

use crate::classify::{
    classify_client, classify_orchestrator, ClientFailure, OrchestratorFailure, TIM_Z_THRESHOLD,
};
use crate::golden::{build_baseline, Baseline};
use crate::injector::{InjectionRecord, InjectionSpec, Mutiny};
use crate::recorder::{FieldRecorder, RecordedTraffic};
use k8s_apiserver::InterceptorHandle;
use k8s_cluster::{ClusterConfig, World};
use k8s_model::Channel;
use mutiny_faults::{ArmedFault, Fault, FaultActuator, SharedActuator, WorldAction, WIRE_BUILTIN};
use mutiny_scenarios::Scenario;
use simkit::Rng;
use std::cell::RefCell;
use std::rc::Rc;

pub use mutiny_faults::builtin::{
    DROP_OCCURRENCES, FIELD_OCCURRENCES, PROTO_INJECTIONS_PER_KIND,
};

/// Configuration of one injection experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Cluster parameters (including the deterministic seed). The
    /// scenario's topology is applied on top when the world is built.
    pub cluster: ClusterConfig,
    /// Scenario to run (a registry handle).
    pub scenario: Scenario,
    /// The fault to inject; `None` runs a golden experiment.
    pub injection: Option<ArmedFault>,
}

impl ExperimentConfig {
    /// A golden (fault-free) experiment.
    pub fn golden(scenario: Scenario, seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            cluster: ClusterConfig { seed, ..ClusterConfig::default() },
            scenario,
            injection: None,
        }
    }

    /// An injection experiment; the fault family is implied by the spec's
    /// point shape (the compatibility path for hand-built specs).
    pub fn injected(scenario: Scenario, seed: u64, spec: InjectionSpec) -> ExperimentConfig {
        ExperimentConfig::injected_fault(scenario, seed, ArmedFault::implied(spec))
    }

    /// An injection experiment with an explicit (family, spec) pair.
    pub fn injected_fault(scenario: Scenario, seed: u64, fault: ArmedFault) -> ExperimentConfig {
        ExperimentConfig {
            cluster: ClusterConfig { seed, ..ClusterConfig::default() },
            scenario,
            injection: Some(fault),
        }
    }
}

/// Everything one experiment produced.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// Orchestrator-level failure category.
    pub orchestrator_failure: OrchestratorFailure,
    /// Client-level failure category.
    pub client_failure: ClientFailure,
    /// MAE z-score of the client series against the golden baseline.
    pub z_latency: f64,
    /// The injection record, if the trigger fired.
    pub injected: Option<InjectionRecord>,
    /// True when the injected instance was requested after the injection.
    pub activated: bool,
    /// True when the cluster user received any API error after t0 (F4).
    pub user_saw_error: bool,
    /// Pods created by controllers over the run.
    pub pods_created: u64,
    /// Worst application-pod startup time (ms).
    pub worst_startup_ms: f64,
}

/// Environment variable controlling fork-the-world execution. Any value
/// but `0` (the default is on) makes [`run_world`] snapshot each
/// (scenario, cluster-config) world at `t0` and fork per experiment
/// instead of replaying the fault-free prefix from `t=0`. `MUTINY_FORK=0`
/// is the replay escape hatch `verify.sh` diffs against.
pub const FORK_ENV: &str = "MUTINY_FORK";

/// True when fork-the-world execution is enabled (default: on).
pub fn fork_enabled() -> bool {
    std::env::var(FORK_ENV).map(|v| v != "0").unwrap_or(true)
}

/// Snapshots built (fork-cache misses) since the last reset.
static FORK_SNAPSHOTS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
/// Experiments served by forking an existing snapshot (fork-cache hits).
static FORK_HITS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// `(snapshots_built, forks_served)` counters of fork-the-world
/// execution, accumulated across every worker thread since the last
/// [`reset_fork_stats`]. The hit rate is
/// `forks_served / (snapshots_built + forks_served)`.
pub fn fork_stats() -> (u64, u64) {
    (
        FORK_SNAPSHOTS.load(std::sync::atomic::Ordering::Relaxed),
        FORK_HITS.load(std::sync::atomic::Ordering::Relaxed),
    )
}

/// Zeroes the fork counters (bench scoping).
pub fn reset_fork_stats() {
    FORK_SNAPSHOTS.store(0, std::sync::atomic::Ordering::Relaxed);
    FORK_HITS.store(0, std::sync::atomic::Ordering::Relaxed);
}

/// Snapshot-cache entries kept per worker thread before the cache is
/// cleared wholesale (campaigns touch one entry per scenario; only
/// config-sweeping tests ever approach the cap).
const SNAPSHOT_CACHE_CAP: usize = 32;

thread_local! {
    /// Per-thread fork-the-world snapshot cache: one `World`, parked at
    /// `t0`, per (scenario, cluster-config) pair. Thread-local because a
    /// `World` is single-threaded by construction (`Rc` throughout); each
    /// campaign worker builds its own prefix once and forks it for every
    /// experiment it steals.
    static SNAPSHOTS: RefCell<std::collections::HashMap<String, World>> =
        RefCell::new(std::collections::HashMap::new());
}

/// Returns a world ready to run the injection window: the cached
/// (scenario, config) prefix — built on first use by running a fault-free
/// world to `t0` — forked onto the experiment's interceptor.
///
/// Soundness: every fault family is inert before its arm time (wire
/// faults pass messages through without counting occurrences, config
/// defects admit unchanged, node faults schedule no actions), so the
/// prefix simulated under a no-op interceptor is byte-identical to the
/// prefix an armed experiment would have simulated itself.
fn forked_prefix(cfg: &ExperimentConfig, handle: InterceptorHandle, profiling: bool) -> World {
    use mutiny_telemetry::profile::{self, Phase};
    SNAPSHOTS.with(|cell| {
        let mut cache = cell.borrow_mut();
        let key = format!("{}\n{:?}", cfg.scenario.name(), cfg.cluster);
        if !cache.contains_key(&key) {
            if cache.len() >= SNAPSHOT_CACHE_CAP {
                cache.clear();
            }
            let timer = profiling.then(std::time::Instant::now);
            let noop: InterceptorHandle = Rc::new(RefCell::new(k8s_model::NoopInterceptor));
            let mut world = cfg.scenario.build_world(&cfg.cluster, noop);
            cfg.scenario.schedule(&mut world);
            let t0 = world.t0();
            world.run_until(t0);
            if let Some(t) = timer {
                profile::add(Phase::GoldenPrefix, t.elapsed());
            }
            FORK_SNAPSHOTS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            cache.insert(key.clone(), world);
        } else {
            FORK_HITS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        // The fork itself replaces the prefix replay, so its (small) cost
        // is attributed to the same phase.
        let timer = profiling.then(std::time::Instant::now);
        let world = cache.get(&key).expect("snapshot just ensured").fork(handle);
        if let Some(t) = timer {
            profile::add(Phase::GoldenPrefix, t.elapsed());
        }
        world
    })
}

/// Runs the full experiment timeline and returns the finished world plus
/// the injection record. Shared by the campaign and the propagation study
/// (§V-C4), which needs post-run access to the store. Honors
/// [`FORK_ENV`]; use [`run_world_with_fork`] to pin the mode explicitly
/// (environment reads are racy across parallel tests).
pub fn run_world(cfg: &ExperimentConfig) -> (World, Option<InjectionRecord>) {
    run_world_with_fork(cfg, fork_enabled())
}

/// [`run_world`] with the execution mode pinned: `fork` snapshots and
/// forks the golden prefix, `!fork` replays it from `t=0`. Both modes
/// produce byte-identical results (see `tests/fork_determinism.rs`).
pub fn run_world_with_fork(
    cfg: &ExperimentConfig,
    fork: bool,
) -> (World, Option<InjectionRecord>) {
    use mutiny_telemetry::profile::{self, Phase};
    // Hoisted once per run: the slice loop below is hot, and profiling
    // is pure wall-clock (`Instant`) — it never touches the sim clock,
    // RNG, or event order, so results are identical with it on or off.
    let profiling = profile::enabled();

    let actuator: Rc<RefCell<Box<dyn FaultActuator>>> =
        Rc::new(RefCell::new(match &cfg.injection {
            Some(armed) => armed.arm(k8s_cluster::WORKLOAD_START_MS),
            None => Box::new(Mutiny::disarmed()),
        }));
    let handle: InterceptorHandle =
        Rc::new(RefCell::new(SharedActuator(Rc::clone(&actuator))));
    let mut world = if fork {
        forked_prefix(cfg, handle, profiling)
    } else {
        let build_timer = profiling.then(std::time::Instant::now);
        let mut world = cfg.scenario.build_world(&cfg.cluster, handle);
        cfg.scenario.schedule(&mut world);
        // Building and scheduling is pre-injection work: part of the
        // golden prefix a fork-the-world snapshot skips.
        if let Some(t) = build_timer {
            profile::add(Phase::GoldenPrefix, t.elapsed());
        }
        world
    };

    // Step the horizon in slices so read-tracking can be armed right
    // after the injection fires (activation analysis, §V-C1), and so
    // infrastructure faults can apply their out-of-band world actions
    // (e.g. the apiserver re-list after a crash window heals).
    let mut tracking_armed = false;
    let horizon = world.horizon();
    let t0 = world.t0();
    while world.now() < horizon {
        // Attribute the slice by where it *starts*: t0 is a multiple of
        // the slice size, so every slice is entirely pre- or post-t0.
        let pre_t0 = world.now() < t0;
        let slice_timer = profiling.then(std::time::Instant::now);
        let next = (world.now() + 250).min(horizon);
        world.run_until(next);
        let now = world.now();
        let actions = actuator.borrow_mut().poll_actions(now);
        for action in actions {
            match action {
                WorldAction::RestartApiserver => world.api.restart(),
                WorldAction::SilenceKubelet(node) => {
                    if let Some(kl) =
                        world.kubelets.iter_mut().find(|k| k.node_name == node)
                    {
                        kl.healthy = false;
                    }
                }
                WorldAction::RestartKubelet(node) => {
                    if let Some(idx) =
                        world.kubelets.iter().position(|k| k.node_name == node)
                    {
                        world.api.set_now(now);
                        let (kubelets, api) = (&mut world.kubelets, &mut world.api);
                        kubelets[idx].restart(api, now);
                    }
                }
                WorldAction::EtcdClampDiskBudget => {
                    world.api.etcd_mut().clamp_disk_budget();
                }
                WorldAction::EtcdRestoreDiskBudget => {
                    world.api.etcd_mut().restore_disk_budget();
                }
                WorldAction::EtcdForceCompaction => world.api.etcd_mut().compact(),
                WorldAction::EtcdCorruptReplica { replica, nth } => {
                    world.api.etcd_mut().corrupt_nth_at_rest(replica as usize, nth as usize);
                }
                WorldAction::EtcdBeginInconsistentView { replica } => {
                    world.api.etcd_mut().begin_inconsistent_view(replica as usize);
                }
                WorldAction::EtcdEndInconsistentView => {
                    world.api.etcd_mut().end_inconsistent_view();
                }
            }
        }
        if !tracking_armed && actuator.borrow().record().is_some() {
            world.api.start_read_tracking();
            tracking_armed = true;
        }
        if let Some(t) = slice_timer {
            let phase = if pre_t0 { Phase::GoldenPrefix } else { Phase::FaultWindow };
            profile::add(phase, t.elapsed());
        }
    }
    let record = actuator.borrow().record().cloned();
    (world, record)
}

/// Runs one experiment against a prebuilt baseline (the campaign path).
pub fn run_experiment_with_baseline(
    cfg: &ExperimentConfig,
    baseline: &Baseline,
) -> ExperimentOutcome {
    run_experiment_with_baseline_fork(cfg, baseline, fork_enabled())
}

/// [`run_experiment_with_baseline`] with the fork-the-world mode pinned.
pub fn run_experiment_with_baseline_fork(
    cfg: &ExperimentConfig,
    baseline: &Baseline,
    fork: bool,
) -> ExperimentOutcome {
    use mutiny_telemetry::profile::{self, Phase};
    let (world, injected) = run_world_with_fork(cfg, fork);
    let classify_timer = profile::enabled().then(std::time::Instant::now);
    let activated = injected
        .as_ref()
        .map(|r| world.api.was_read(&r.key))
        .unwrap_or(false);
    let t0 = world.t0();
    let user_saw_error = world
        .api
        .audit()
        .records()
        .iter()
        .any(|r| r.channel == Channel::UserToApi && r.at >= t0 && r.result.is_err());

    let stats = &world.stats;
    let (client_failure, z_latency) = classify_client(stats, baseline);
    let orchestrator_failure = classify_orchestrator(stats, baseline);
    let startups = stats.startup_times(t0);

    if mutiny_telemetry::metrics_enabled() {
        mutiny_telemetry::timeline::record(mutiny_telemetry::timeline::TimelineRecord {
            scenario: cfg.scenario.name().to_string(),
            fault: cfg
                .injection
                .as_ref()
                .map(|a| a.fault.name())
                .unwrap_or("golden")
                .to_string(),
            timeline: propagation_timeline(&world, injected.as_ref(), Some(baseline)),
        });
    }
    if let Some(t) = classify_timer {
        profile::add(Phase::Classify, t.elapsed());
    }

    ExperimentOutcome {
        orchestrator_failure,
        client_failure,
        z_latency,
        injected,
        activated,
        user_saw_error,
        pods_created: stats.samples.last().map(|s| s.pods_created_cum).unwrap_or(0),
        worst_startup_ms: simkit::stats::max(&startups),
    }
}

/// True when a gauge sample shows none of the robust failure signals.
/// Only signals that stay quiet during the golden workload ramp qualify
/// (a half-ready deployment mid-rollout is *normal* before the tail), so
/// divergence timestamps never fire on healthy startup transients.
fn sample_clean(s: &k8s_cluster::MetricsSample) -> bool {
    !s.etcd_stalled && s.nodes_not_ready == 0 && !s.netpods_failed
}

/// One gauge-sample period (ms): absorbs seed-to-seed settling jitter
/// when comparing an experiment run against the golden settle deadline.
const SETTLE_SLACK_MS: u64 = 3_000;

/// Sim-times (at/after `inj`) where a per-deployment readiness gauge or
/// per-service endpoint count sat below the baseline's steady-state
/// expectation *after* the golden settle deadline — the "deployment
/// degraded / underreplicated" alert a real monitoring stack fires. The
/// deadline gate keeps the signal quiet on every healthy trajectory by
/// construction (no golden run is below expectation past it), including
/// scenarios whose healthy runs churn replicas mid-flight
/// (rolling-update, failover, node-drain), while still catching victims
/// that never converge at all — the signature wire-fault damage.
fn readiness_shortfalls(
    stats: &k8s_cluster::RunStats,
    baseline: &Baseline,
    inj: u64,
    mut note: impl FnMut(u64),
) {
    let deadline = baseline.golden_settle_ms.saturating_add(SETTLE_SLACK_MS);
    for s in &stats.samples {
        if s.at < inj || s.at <= deadline {
            continue;
        }
        let ready_below = baseline
            .expected_ready
            .iter()
            .any(|(k, &want)| s.app_ready.get(k).copied().unwrap_or(0) < want);
        let ep_below = baseline
            .expected_endpoints
            .iter()
            .any(|(k, &want)| s.app_endpoints.get(k).copied().unwrap_or(0) < want);
        if ready_below || ep_below {
            note(s.at);
        }
    }
}

/// Notes pods whose creation→Running span exceeds the golden
/// worst-startup bound — the monitoring-view analog of the classifier's
/// Tim rule. A pod-age panel can alert the instant a pod outlives the
/// bound, so the milestone is `created + bound`, not the (later) moment
/// the pod finally came up. The bound is the golden maximum padded by
/// the same z-margin the classifier uses, so no baseline golden run can
/// trip it; only completed startups count — a pod still Pending at the
/// horizon is the shortfall signal's business, and flagging it here
/// would false-fire on end-of-run churn a longer horizon would absorb.
fn slow_startups(
    stats: &k8s_cluster::RunStats,
    baseline: &Baseline,
    inj: u64,
    mut note: impl FnMut(u64),
) {
    let gw = &baseline.golden_worst_startup;
    if gw.is_empty() {
        return;
    }
    let bound = simkit::stats::max(gw)
        .max(simkit::stats::mean(gw) + TIM_Z_THRESHOLD * simkit::stats::std_dev(gw))
        as u64;
    // Pods created from `t0` qualify, not just post-injection ones: a
    // delayed Running update slows down a pod the scenario created
    // *before* the fault actuated. Its age can only cross the bound
    // after the injection (the prefix is fault-free), but clamp the
    // milestone to `inj` so the timeline invariant holds regardless.
    for (pod, &created) in &stats.pod_created {
        if created < stats.t0 {
            continue;
        }
        if let Some(&running) = stats.pod_running.get(pod) {
            if running.saturating_sub(created) > bound {
                note(inj.max(created + bound));
            }
        }
    }
}

/// Computes the propagation timeline of one finished experiment from
/// artifacts the run already produced — the injection record, the gauge
/// samples, the audit log, and the client series — so collecting it
/// cannot perturb the run. The *detection* milestone is what a
/// Prometheus-style monitoring view would alert on: deviating gauges,
/// readiness regressions against the baseline's steady state, API audit
/// errors, and failed synthetic probes (the client series doubles as the
/// monitoring stack's blackbox probe). Wire families like
/// drop/delay/partition never dirty the hard gauges — their damage is
/// lost or untimely messages, which surface as deployments stuck below
/// their expected replica/endpoint counts (the post-settle shortfall
/// signal, [`readiness_shortfalls`]) or as controllers re-doing work
/// and spawning more pods than any golden run did (the excess-creation
/// signal).
/// This is a monitoring-centric heuristic, deliberately decoupled from
/// the statistical classifiers (`classify_*`), which compare whole-run
/// aggregates against the golden baseline.
pub fn propagation_timeline(
    world: &World,
    injected: Option<&InjectionRecord>,
    baseline: Option<&Baseline>,
) -> mutiny_telemetry::timeline::Timeline {
    let mut tl = mutiny_telemetry::timeline::Timeline::default();
    let stats = &world.stats;
    let end_clean = stats.samples.last().map(sample_clean).unwrap_or(true)
        && stats.trailing_failures() == 0;
    tl.steady_at_end = end_clean;
    let Some(rec) = injected else {
        return tl; // trigger never matched: nothing to measure against
    };
    let inj = rec.at;
    tl.injected_at = Some(inj);

    // Monitoring-visible deviations at/after the injection: gauges,
    // audit errors, and failed blackbox probes (client requests). Golden
    // runs keep all these channels clean, so detection never fires on a
    // healthy rollout.
    let mut detect: Option<u64> = None;
    let mut last_dev: Option<u64> = None;
    let mut note = |at: u64| {
        detect = Some(detect.map_or(at, |d| d.min(at)));
        last_dev = Some(last_dev.map_or(at, |d| d.max(at)));
    };
    for s in &stats.samples {
        if s.at >= inj && !sample_clean(s) {
            note(s.at);
        }
    }
    for r in world.api.audit().records() {
        if r.at >= inj && r.result.is_err() {
            note(r.at);
        }
    }
    for c in &stats.client {
        if c.at >= inj && c.outcome.is_failure() {
            note(c.at);
        }
    }
    if let Some(b) = baseline {
        readiness_shortfalls(stats, b, inj, &mut note);
        // Excess pod creation: controllers spawning more pods than any
        // golden run ever did (the paper's More-Resources transient — a
        // delayed or duplicated control message resurrects work the
        // controller then re-does). The cumulative-pod-count panel is
        // the cheapest alert a kube-state-metrics stack fires.
        for s in &stats.samples {
            if s.at >= inj && s.pods_created_cum > b.golden_pods_created_max {
                note(s.at);
            }
        }
        slow_startups(stats, b, inj, &mut note);
    }
    tl.detection = detect;
    // With probes and regressions feeding detection, every observable
    // channel is part of the monitoring view; first divergence coincides
    // with detection.
    tl.first_divergence = detect;

    // Recovery: the first clean gauge sample after the last observed
    // deviation, provided the run actually ended clean.
    if end_clean {
        if let Some(last) = last_dev {
            tl.recovery =
                stats.samples.iter().find(|s| s.at > last && sample_clean(s)).map(|s| s.at);
        }
    }
    tl
}

/// Golden runs used by the lazily cached default baselines.
pub const DEFAULT_BASELINE_RUNS: usize = 12;

/// Runs one experiment, building (and caching) a default baseline for the
/// workload on first use. Campaigns should prebuild baselines and call
/// [`run_experiment_with_baseline`] instead.
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentOutcome {
    let baseline = cached_default_baseline(cfg.scenario);
    run_experiment_with_baseline(cfg, &baseline)
}

/// A lazily computed baseline for the default [`ClusterConfig`].
pub fn cached_default_baseline(scenario: Scenario) -> std::sync::Arc<Baseline> {
    use std::sync::{Arc, Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<std::collections::HashMap<&'static str, Arc<Baseline>>>> =
        OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(std::collections::HashMap::new()));
    let mut guard = cache.lock().expect("baseline cache poisoned");
    if let Some(b) = guard.get(scenario.name()) {
        return Arc::clone(b);
    }
    let b = Arc::new(build_baseline(
        &ClusterConfig::default(),
        scenario,
        DEFAULT_BASELINE_RUNS,
        0xBA5E,
    ));
    guard.insert(scenario.name(), Arc::clone(&b));
    b
}

// ---------------------------------------------------------------------------
// Campaign generation
// ---------------------------------------------------------------------------

/// One planned experiment.
#[derive(Debug, Clone)]
pub struct PlannedExperiment {
    /// Scenario to run.
    pub scenario: Scenario,
    /// Fault family that planned (and will actuate) the spec.
    pub fault: Fault,
    /// The concrete injection spec.
    pub spec: InjectionSpec,
}

/// Records the traffic flowing during a golden run of the scenario
/// (campaign phase 1): the field catalogue and class-aggregated kind
/// counts for the `channels` classes, plus the per-node wire catalogue
/// (always recorded — node-level families pick victims from it even
/// when the field catalogue targets the store wire).
pub fn record_fields(
    cluster: &ClusterConfig,
    scenario: Scenario,
    channels: Vec<Channel>,
    seed: u64,
) -> RecordedTraffic {
    let recorder = Rc::new(RefCell::new(FieldRecorder::new(
        channels,
        k8s_cluster::WORKLOAD_START_MS,
    )));
    let handle: InterceptorHandle = recorder.clone();
    let cfg = ClusterConfig { seed, ..cluster.clone() };
    let mut world = scenario.build_world(&cfg, handle);
    scenario.schedule(&mut world);
    world.run_to_horizon();
    let traffic = recorder.borrow().traffic();
    traffic
}

/// Generates the injection plan for one scenario as the cross-product of
/// the given fault families (campaign phase 2). Each family plans from a
/// per-(scenario, family) labelled RNG fork (node-level families fork
/// again per victim node), so:
///
/// * filtering the family set (`MUTINY_FAULTS`) never changes the specs
///   of the families that remain,
/// * victim-set changes never shift another node's specs, and
/// * the plan is byte-identical for any worker count (planning is
///   single-threaded and seeded).
pub fn plan_campaign(
    traffic: &RecordedTraffic,
    scenario: Scenario,
    faults: &[Fault],
    rng: &mut Rng,
) -> Vec<PlannedExperiment> {
    let mut plan = Vec::new();
    for fault in faults {
        let mut frng = rng.fork(&format!("{}/{}", scenario.name(), fault.name()));
        for spec in fault.plan(traffic, &mut frng) {
            plan.push(PlannedExperiment { scenario, fault: *fault, spec });
        }
    }
    plan
}

/// Generates the paper-faithful §IV-C plan: the three wire built-ins
/// (bit-flip, value-set, drop) over the recorded traffic.
pub fn generate_plan(
    traffic: &RecordedTraffic,
    scenario: Scenario,
    rng: &mut Rng,
) -> Vec<PlannedExperiment> {
    plan_campaign(traffic, scenario, &WIRE_BUILTIN, rng)
}

// ---------------------------------------------------------------------------
// Campaign execution
// ---------------------------------------------------------------------------

/// One finished campaign experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// Scenario of the experiment.
    pub scenario: Scenario,
    /// Injected fault.
    pub spec: InjectionSpec,
    /// Fault family (Table IV/V rows key on it, like scenarios).
    pub fault: Fault,
    /// Orchestrator-level failure.
    pub of: OrchestratorFailure,
    /// Client-level failure.
    pub cf: ClientFailure,
    /// Client MAE z-score.
    pub z: f64,
    /// The trigger fired during the run.
    pub fired: bool,
    /// The injected instance was requested after the injection.
    pub activated: bool,
    /// The user saw an API error (F4 / Figure 7).
    pub user_error: bool,
    /// Injected field path, when the target was a field.
    pub path: Option<String>,
}

/// Results of a campaign (plus golden-run bookkeeping).
#[derive(Debug, Clone, Default)]
pub struct CampaignResults {
    /// One row per injection experiment.
    pub rows: Vec<CampaignRow>,
}

impl CampaignResults {
    /// Total experiments.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no experiments ran.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Fraction of fired injections whose instance was later requested.
    pub fn activation_rate(&self) -> f64 {
        let fired: Vec<&CampaignRow> = self.rows.iter().filter(|r| r.fired).collect();
        if fired.is_empty() {
            return 0.0;
        }
        fired.iter().filter(|r| r.activated).count() as f64 / fired.len() as f64
    }

    /// Rows of a given scenario.
    pub fn by_scenario(&self, sc: Scenario) -> impl Iterator<Item = &CampaignRow> {
        self.rows.iter().filter(move |r| r.scenario == sc)
    }

    /// The distinct fault families present in the rows, in registry
    /// order (the tables iterate this so new families extend them
    /// automatically).
    pub fn faults(&self) -> Vec<Fault> {
        let mut out: Vec<Fault> = Vec::new();
        for r in &self.rows {
            if !out.contains(&r.fault) {
                out.push(r.fault);
            }
        }
        out.sort();
        out
    }

    /// The distinct scenarios present in the rows, in registry order
    /// (the tables iterate this so new scenarios extend them
    /// automatically).
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out: Vec<Scenario> = Vec::new();
        for r in &self.rows {
            if !out.contains(&r.scenario) {
                out.push(r.scenario);
            }
        }
        out.sort();
        out
    }

    /// Count matching a predicate.
    pub fn count(&self, pred: impl Fn(&CampaignRow) -> bool) -> usize {
        self.rows.iter().filter(|r| pred(r)).count()
    }

    /// Merges another result set into this one.
    pub fn merge(&mut self, other: CampaignResults) {
        self.rows.extend(other.rows);
    }
}

/// A per-experiment campaign failure. Campaign executors skip the
/// affected rows with a warning instead of aborting the whole run —
/// a missing or corrupt per-scenario baseline disk cache
/// (`target/mutiny_baseline_*`) costs that scenario's rows, not the
/// campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// No baseline was supplied for a planned scenario.
    MissingBaseline {
        /// Name of the scenario whose baseline is absent.
        scenario: String,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::MissingBaseline { scenario } => write!(
                f,
                "no baseline for scenario `{scenario}` (missing or corrupt \
                 target/mutiny_baseline_* cache?); skipping its rows"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

/// Stable per-(campaign, scenario) world seed. Every experiment of a
/// scenario shares one seed — and therefore one fault-free prefix — so
/// fork-the-world can snapshot that prefix once and fork it per
/// experiment, and so a row depends only on its (scenario, spec), never
/// on its plan index. That index-independence is what makes residue-class
/// sharding (`MUTINY_SHARD`) and checkpoint resume trivially exact.
pub fn scenario_world_seed(base_seed: u64, scenario: Scenario) -> u64 {
    // FNV-1a over the scenario name, mixed with the campaign seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in scenario.name().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ base_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Runs one planned experiment with the campaign's per-scenario seed and
/// produces the finished row.
///
/// # Errors
///
/// [`CampaignError::MissingBaseline`] when `baselines` has no entry for
/// the planned scenario.
fn run_planned(
    cluster: &ClusterConfig,
    planned: &PlannedExperiment,
    baselines: &std::collections::HashMap<Scenario, Baseline>,
    base_seed: u64,
) -> Result<CampaignRow, CampaignError> {
    run_planned_with_fork(cluster, planned, baselines, base_seed, fork_enabled())
}

/// Folds per-experiment results into rows, warning once per distinct
/// error instead of once per affected row (a missing baseline hits every
/// row of its scenario).
fn collect_rows(results: Vec<Result<CampaignRow, CampaignError>>) -> CampaignResults {
    let mut rows = Vec::with_capacity(results.len());
    let mut warned: Vec<CampaignError> = Vec::new();
    for res in results {
        match res {
            Ok(row) => rows.push(row),
            Err(e) => {
                if !warned.contains(&e) {
                    eprintln!("[campaign] warning: {e}");
                    warned.push(e);
                }
            }
        }
    }
    CampaignResults { rows }
}

/// Executes a plan on the work-stealing executor; `baselines` must match
/// the plan's scenario distribution (one baseline per scenario).
///
/// Per-experiment seeds derive from the (campaign, scenario) pair alone,
/// so the result rows are byte-identical to a serial run for any worker
/// count (see [`run_campaign_with_threads`] and the determinism tests).
pub fn run_campaign(
    cluster: &ClusterConfig,
    plan: &[PlannedExperiment],
    baselines: &std::collections::HashMap<Scenario, Baseline>,
    base_seed: u64,
) -> CampaignResults {
    run_campaign_with_threads(
        cluster,
        plan,
        baselines,
        base_seed,
        crate::exec::default_threads(plan.len()),
    )
}

/// [`run_campaign`] with an explicit worker count (the determinism tests
/// and the throughput bench pin it).
pub fn run_campaign_with_threads(
    cluster: &ClusterConfig,
    plan: &[PlannedExperiment],
    baselines: &std::collections::HashMap<Scenario, Baseline>,
    base_seed: u64,
    threads: usize,
) -> CampaignResults {
    run_campaign_range(cluster, plan, baselines, base_seed, 0..plan.len(), threads)
}

/// [`run_campaign_with_threads`] with the fork-the-world mode pinned
/// explicitly (for tests that compare both modes in one process).
pub fn run_campaign_with_threads_fork(
    cluster: &ClusterConfig,
    plan: &[PlannedExperiment],
    baselines: &std::collections::HashMap<Scenario, Baseline>,
    base_seed: u64,
    threads: usize,
    fork: bool,
) -> CampaignResults {
    run_campaign_range_with_fork(cluster, plan, baselines, base_seed, 0..plan.len(), threads, fork)
}

/// Runs the plan slice `range`. A row depends only on its planned
/// (scenario, spec) — seeds are per-scenario, never per-index — so
/// executing `0..n` in any partition (consecutive ranges for checkpoint
/// resume, residue classes for `MUTINY_SHARD` sharding) yields exactly
/// the rows of one full run.
pub fn run_campaign_range(
    cluster: &ClusterConfig,
    plan: &[PlannedExperiment],
    baselines: &std::collections::HashMap<Scenario, Baseline>,
    base_seed: u64,
    range: std::ops::Range<usize>,
    threads: usize,
) -> CampaignResults {
    run_campaign_range_with_fork(cluster, plan, baselines, base_seed, range, threads, fork_enabled())
}

/// [`run_campaign_range`] with the fork-the-world mode pinned explicitly
/// (the determinism tests compare both modes without racing on the
/// environment).
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_range_with_fork(
    cluster: &ClusterConfig,
    plan: &[PlannedExperiment],
    baselines: &std::collections::HashMap<Scenario, Baseline>,
    base_seed: u64,
    range: std::ops::Range<usize>,
    threads: usize,
    fork: bool,
) -> CampaignResults {
    let start = range.start.min(plan.len());
    let end = range.end.min(plan.len()).max(start);
    let results = crate::exec::run_indexed(end - start, threads, |i| {
        run_planned_with_fork(cluster, &plan[start + i], baselines, base_seed, fork)
    });
    collect_rows(results)
}

/// [`run_planned`] with the execution mode pinned.
fn run_planned_with_fork(
    cluster: &ClusterConfig,
    planned: &PlannedExperiment,
    baselines: &std::collections::HashMap<Scenario, Baseline>,
    base_seed: u64,
    fork: bool,
) -> Result<CampaignRow, CampaignError> {
    let seed = scenario_world_seed(base_seed, planned.scenario);
    let cfg = ExperimentConfig {
        cluster: ClusterConfig { seed, ..cluster.clone() },
        scenario: planned.scenario,
        injection: Some(ArmedFault::new(planned.fault, planned.spec.clone())),
    };
    let baseline = baselines.get(&planned.scenario).ok_or_else(|| {
        CampaignError::MissingBaseline { scenario: planned.scenario.name().to_string() }
    })?;
    let outcome = run_experiment_with_baseline_fork(&cfg, baseline, fork);
    Ok(CampaignRow {
        scenario: planned.scenario,
        fault: planned.fault,
        path: match &planned.spec.point {
            crate::injector::InjectionPoint::Field { path, .. } => Some(path.clone()),
            _ => None,
        },
        spec: planned.spec.clone(),
        of: outcome.orchestrator_failure,
        cf: outcome.client_failure,
        z: outcome.z_latency,
        fired: outcome.injected.is_some(),
        activated: outcome.activated,
        user_error: outcome.user_saw_error,
    })
}

/// The seed's static-chunk executor over the same per-index experiment
/// function. Kept so the throughput bench can quantify the work-stealing
/// gain; produces identical rows, only slower under load imbalance.
pub fn run_campaign_static_chunks(
    cluster: &ClusterConfig,
    plan: &[PlannedExperiment],
    baselines: &std::collections::HashMap<Scenario, Baseline>,
    base_seed: u64,
    threads: usize,
) -> CampaignResults {
    let results = crate::exec::run_chunked(plan.len(), threads, |i| {
        run_planned(cluster, &plan[i], baselines, base_seed)
    });
    collect_rows(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::RecordedField;
    use k8s_model::Kind;

    use mutiny_scenarios::DEPLOY;

    #[test]
    fn golden_experiment_classifies_clean() {
        let baseline = build_baseline(&ClusterConfig::default(), DEPLOY, 8, 10);
        let cfg = ExperimentConfig::golden(DEPLOY, 999);
        let out = run_experiment_with_baseline(&cfg, &baseline);
        assert_eq!(out.orchestrator_failure, OrchestratorFailure::No);
        assert_eq!(out.client_failure, ClientFailure::Nsi);
        assert!(!out.user_saw_error);
        assert!(out.injected.is_none());
    }

    #[test]
    fn recording_covers_workload_kinds() {
        let traffic = record_fields(
            &ClusterConfig::default(),
            DEPLOY,
            vec![Channel::ApiToEtcd],
            42,
        );
        assert!(!traffic.fields.is_empty());
        let kinds_seen: Vec<Kind> = traffic.kinds.iter().map(|(_, k, _)| *k).collect();
        for expect in [Kind::Pod, Kind::ReplicaSet, Kind::Deployment, Kind::Service, Kind::Node, Kind::Endpoints, Kind::Lease] {
            assert!(kinds_seen.contains(&expect), "kind {expect} not recorded: {kinds_seen:?}");
        }
        // The dependency-tracking fields the paper's F2 centres on.
        let fields = &traffic.fields;
        assert!(fields.iter().any(|f| f.path.contains("matchLabels")), "selector fields missing");
        assert!(fields.iter().any(|f| f.path.contains("labels[")), "label fields missing");
        assert!(fields.iter().any(|f| f.path.contains("ownerReferences")), "ownerRefs missing");
        assert!(fields.iter().any(|f| f.path == "spec.replicas"), "replicas missing");
        // The per-node wire catalogue always rides along: every node's
        // kubelet heartbeats during the workload window.
        let nodes = traffic.nodes();
        assert!(nodes.len() >= 5, "expected one wire per node, got {nodes:?}");
        assert!(nodes.contains(&"w1"), "{nodes:?}");
    }

    #[test]
    fn plan_follows_campaign_rules() {
        use crate::injector::FaultKind;
        use protowire::reflect::{FieldType, Value};
        let fields = vec![
            RecordedField {
                channel: Channel::ApiToEtcd.into(),
                kind: Kind::ReplicaSet,
                path: "spec.replicas".into(),
                field_type: FieldType::Int,
                sample: Value::Int(2),
                message_count: 5,
                max_occurrence: 3,
            },
            RecordedField {
                channel: Channel::ApiToEtcd.into(),
                kind: Kind::Pod,
                path: "spec.nodeName".into(),
                field_type: FieldType::Str,
                sample: Value::Str("w1".into()),
                message_count: 5,
                max_occurrence: 2,
            },
        ];
        let traffic = RecordedTraffic {
            fields,
            kinds: vec![(Channel::ApiToEtcd.into(), Kind::ReplicaSet, 5u64)],
            node_kinds: Vec::new(),
            user_kinds: Vec::new(),
        };
        let mut rng = Rng::new(1);
        let plan = generate_plan(&traffic, DEPLOY, &mut rng);
        // Int: 3 mutations × 3 occurrences; Str (len 2): 3 × 3;
        // proto: 8; drops: 10 — the same §IV-C counts as before the
        // fault engine, now grouped by family.
        assert_eq!(plan.len(), 9 + 9 + 8 + 10);
        let drops = plan.iter().filter(|p| p.spec.fault_kind() == FaultKind::Drop).count();
        assert_eq!(drops, 10);
        let bitflips = plan.iter().filter(|p| p.spec.fault_kind() == FaultKind::BitFlip).count();
        // 2 int flips ×3 + 2 char flips ×3 + 8 proto = 20.
        assert_eq!(bitflips, 20);
        // Every planned experiment carries the family that planned it.
        assert!(plan.iter().all(|p| p.fault == Fault::implied_by(&p.spec)));
    }

    #[test]
    fn cross_product_plans_every_family() {
        use protowire::reflect::Value;
        let fields = vec![RecordedField {
            channel: Channel::ApiToEtcd.into(),
            kind: Kind::ReplicaSet,
            path: "spec.replicas".into(),
            field_type: protowire::reflect::FieldType::Int,
            sample: Value::Int(2),
            message_count: 5,
            max_occurrence: 3,
        }];
        let traffic = RecordedTraffic {
            fields,
            kinds: vec![(Channel::ApiToEtcd.into(), Kind::ReplicaSet, 5u64)],
            node_kinds: vec![
                (
                    k8s_model::ChannelId::node_scoped(Channel::KubeletToApi, "w1"),
                    Kind::Node,
                    4,
                ),
                (
                    k8s_model::ChannelId::node_scoped(Channel::KubeletToApi, "w2"),
                    Kind::Node,
                    4,
                ),
            ],
            user_kinds: vec![
                (Channel::UserToApi, Kind::Deployment, 3),
                (Channel::KcmToApi, Kind::Pod, 8),
                (Channel::KcmToApi, Kind::ReplicaSet, 2),
            ],
        };
        let faults = mutiny_faults::registry::all();
        let mut rng = Rng::new(1);
        let plan = plan_campaign(&traffic, DEPLOY, &faults, &mut rng);
        let planned_families: Vec<&str> =
            plan.iter().map(|p| p.fault.name()).collect();
        for f in [
            "bit-flip",
            "value-set",
            "drop",
            "delay",
            "duplicate",
            "partition",
            "crash-restart",
            "kubelet-crash-restart",
            "node-partition",
            "cfg-resources",
            "cfg-selector",
            "cfg-probe",
            "cfg-grace",
            "cfg-replicas",
            "etcd-disk-full",
            "etcd-compaction-pressure",
            "etcd-corrupt-at-rest",
            "etcd-inconsistent-view",
        ] {
            assert!(planned_families.contains(&f), "{f} missing from the cross-product");
        }
        // Filtering the family set leaves the surviving specs untouched
        // (per-family labelled RNG forks).
        let mut rng2 = Rng::new(1);
        let only_bitflip =
            plan_campaign(&traffic, DEPLOY, &[mutiny_faults::BIT_FLIP], &mut rng2);
        let from_full: Vec<&InjectionSpec> = plan
            .iter()
            .filter(|p| p.fault == mutiny_faults::BIT_FLIP)
            .map(|p| &p.spec)
            .collect();
        assert_eq!(
            from_full,
            only_bitflip.iter().map(|p| &p.spec).collect::<Vec<_>>(),
            "family filtering changed the planned specs"
        );
    }
}
