//! Field Failure Data Analysis: the 81 real-world Kubernetes incidents.
//!
//! The paper analyzes 81 failure reports collected from public sources
//! (k8s.af, engineering blogs, conference talks) but does not publish the
//! incident list. This module reconstructs a dataset whose *aggregate
//! statistics match every figure the paper reports* (§III): 15 Outages;
//! 33 misconfigurations (19 of Kubernetes, 3 of plugins, 11 of external
//! software; 10 bad resource sizing); 13 bug-caused incidents (5 K8s,
//! 4 external, 1 plugin, 3 custom); 21 capacity incidents (11 from
//! control-plane overload); 19 communication incidents; 54 of 81
//! replicable by Mutiny. Individual rows are composites inspired by the
//! cited public reports (Reddit Pi-Day, GKE webhook outage, Zalando and
//! Airbnb talks), not verbatim reproductions.

use crate::report::Table;

/// Fault categories (Table I a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Fault {
    /// Autoscaling driven by misleading information.
    WrongAutoscaleTrigger,
    /// Timing-dependent concurrent actions.
    RaceCondition,
    /// Certificates that cannot be verified or recognized.
    UnverifiableCertificate,
    /// Bug in K8s, third-party, plugins, or underlying code.
    Bug,
    /// Incorrect command or configuration.
    HumanMistake,
    /// Specification/implementation changes failing regression.
    UnmanagedUpgrade,
    /// Too many pods, or pods too large for the cluster.
    Overload,
    /// Faulty hardware or related drivers.
    LowLevelIssues,
    /// Misbehaving application flooding the control plane.
    FailingApplication,
}

impl Fault {
    /// All fault categories.
    pub const ALL: [Fault; 9] = [
        Fault::WrongAutoscaleTrigger,
        Fault::RaceCondition,
        Fault::UnverifiableCertificate,
        Fault::Bug,
        Fault::HumanMistake,
        Fault::UnmanagedUpgrade,
        Fault::Overload,
        Fault::LowLevelIssues,
        Fault::FailingApplication,
    ];

    /// Table I label.
    pub fn label(self) -> &'static str {
        match self {
            Fault::WrongAutoscaleTrigger => "Wrong Autoscale Trigger",
            Fault::RaceCondition => "Race Condition",
            Fault::UnverifiableCertificate => "Unverifiable Certificate",
            Fault::Bug => "Bug",
            Fault::HumanMistake => "Human Mistake",
            Fault::UnmanagedUpgrade => "Unmanaged Upgrade",
            Fault::Overload => "Overload",
            Fault::LowLevelIssues => "Low-Level Issues",
            Fault::FailingApplication => "Failing Application",
        }
    }
}

/// Finer fault attribution used by the paper's breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultDetail {
    /// Misconfiguration of Kubernetes itself.
    MisconfigK8s {
        /// Bad resource sizing of nodes/components/apps.
        bad_sizing: bool,
    },
    /// Misconfiguration of a plugin.
    MisconfigPlugin {
        /// Bad resource sizing.
        bad_sizing: bool,
    },
    /// Misconfiguration of external software.
    MisconfigExternal {
        /// Bad resource sizing.
        bad_sizing: bool,
    },
    /// Bug in Kubernetes code.
    BugK8s,
    /// Bug in external software (OS, runtime).
    BugExternal,
    /// Bug in a plugin.
    BugPlugin,
    /// Bug in custom code.
    BugCustom,
    /// No finer attribution.
    Other,
}

/// Error categories (Table I b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ErrorCat {
    /// Irretrievable, stale, or corrupted state.
    StateRetrieval,
    /// Components behaving differently from expected.
    MisbehavingLogic,
    /// Networking delays or failures.
    Communication,
    /// Reduced computational resources.
    ResourceExhaustion,
    /// Unhealthy/slow control-plane components.
    ControlPlaneAvailability,
    /// Errors in node-local software.
    LocalToNodes,
}

impl ErrorCat {
    /// All error categories.
    pub const ALL: [ErrorCat; 6] = [
        ErrorCat::StateRetrieval,
        ErrorCat::MisbehavingLogic,
        ErrorCat::Communication,
        ErrorCat::ResourceExhaustion,
        ErrorCat::ControlPlaneAvailability,
        ErrorCat::LocalToNodes,
    ];

    /// Table I label.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCat::StateRetrieval => "State Retrieval",
            ErrorCat::MisbehavingLogic => "Misbehaving Logic",
            ErrorCat::Communication => "Communication",
            ErrorCat::ResourceExhaustion => "Resource Exhaustion",
            ErrorCat::ControlPlaneAvailability => "Control Plane Availability",
            ErrorCat::LocalToNodes => "Local to worker Nodes",
        }
    }
}

/// Real-world failure categories (Table I c) — same taxonomy as
/// [`OrchestratorFailure`](crate::classify::OrchestratorFailure) plus an
/// explicit `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FailureCat {
    /// Recovered without consequences.
    None,
    /// Timing failure.
    Timing,
    /// Less resources than planned.
    LessResources,
    /// More resources than needed.
    MoreResources,
    /// Service networking failure.
    ServiceNetwork,
    /// Stall.
    Stall,
    /// Cluster outage.
    Outage,
}

impl FailureCat {
    /// All failure categories in increasing severity.
    pub const ALL: [FailureCat; 7] = [
        FailureCat::None,
        FailureCat::Timing,
        FailureCat::LessResources,
        FailureCat::MoreResources,
        FailureCat::ServiceNetwork,
        FailureCat::Stall,
        FailureCat::Outage,
    ];

    /// Table I label.
    pub fn label(self) -> &'static str {
        match self {
            FailureCat::None => "None (No)",
            FailureCat::Timing => "Timing Failure (Tim)",
            FailureCat::LessResources => "Less Resources (LeR)",
            FailureCat::MoreResources => "More Resources (MoR)",
            FailureCat::ServiceNetwork => "Service Network (Net)",
            FailureCat::Stall => "Stall (Sta)",
            FailureCat::Outage => "Cluster Outage (Out)",
        }
    }
}

/// One real-world incident.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Sequential id.
    pub id: u32,
    /// Root-cause fault category.
    pub fault: Fault,
    /// Finer attribution.
    pub detail: FaultDetail,
    /// Errors observed along the propagation chain.
    pub errors: Vec<ErrorCat>,
    /// Final failure category.
    pub failure: FailureCat,
    /// Whether Mutiny's store-level injections can recreate the pattern.
    pub mutiny_replicable: bool,
    /// One-line composite description.
    pub summary: &'static str,
}

macro_rules! incidents {
    ($( $fault:ident / $detail:expr ; [$($err:ident),*] ; $fail:ident ; $repl:literal ; $sum:literal )*) => {{
        let mut v: Vec<Incident> = Vec::new();
        let mut id = 0u32;
        $(
            id += 1;
            v.push(Incident {
                id,
                fault: Fault::$fault,
                detail: $detail,
                errors: vec![$(ErrorCat::$err),*],
                failure: FailureCat::$fail,
                mutiny_replicable: $repl,
                summary: $sum,
            });
        )*
        v
    }};
}

use FaultDetail::{BugCustom, BugExternal, BugK8s, BugPlugin, Other};

const fn mk8(s: bool) -> FaultDetail {
    FaultDetail::MisconfigK8s { bad_sizing: s }
}
const fn mpl(s: bool) -> FaultDetail {
    FaultDetail::MisconfigPlugin { bad_sizing: s }
}
const fn mex(s: bool) -> FaultDetail {
    FaultDetail::MisconfigExternal { bad_sizing: s }
}

/// The reconstructed 81-incident dataset.
pub fn incidents() -> Vec<Incident> {
    incidents! {
        // ---- Human Mistake / misconfiguration of K8s (19; 6 sizing) ----
        HumanMistake / mk8(false); [StateRetrieval]; Outage; true; "kubectl deleted a production namespace with all its services"
        HumanMistake / mk8(false); [StateRetrieval]; Outage; true; "etcd data directory wiped during maintenance"
        HumanMistake / mk8(false); [Communication]; Outage; true; "node relabeling broke network-manager selectors cluster-wide (Reddit Pi-Day)"
        HumanMistake / mk8(true);  [ResourceExhaustion, ControlPlaneAvailability]; Outage; true; "apiserver memory limits undersized; OOM loop under load"
        HumanMistake / mk8(false); [MisbehavingLogic, ResourceExhaustion]; Stall; true; "wrong label selector made controller ignore its pods"
        HumanMistake / mk8(true);  [ResourceExhaustion, ControlPlaneAvailability]; Stall; true; "etcd disk quota exhausted by oversized resource limits"
        HumanMistake / mk8(false); [MisbehavingLogic]; Stall; true; "leader-election lease misconfigured; controllers idle"
        HumanMistake / mk8(true);  [ResourceExhaustion]; Stall; true; "requests without limits filled every node"
        HumanMistake / mk8(false); [Communication]; ServiceNetwork; true; "service selector typo published zero endpoints"
        HumanMistake / mk8(false); [Communication]; ServiceNetwork; true; "wrong targetPort forwarded traffic to a closed port"
        HumanMistake / mk8(false); [Communication]; ServiceNetwork; true; "overlapping pod CIDRs blackholed a subnet"
        HumanMistake / mk8(true);  [ResourceExhaustion]; LessResources; true; "CPU requests too high: pods unschedulable"
        HumanMistake / mk8(true);  [ResourceExhaustion]; LessResources; true; "quota misconfigured; replicas silently capped"
        HumanMistake / mk8(false); [MisbehavingLogic]; LessResources; true; "PodDisruptionBudget blocked a required rollout"
        HumanMistake / mk8(false); [MisbehavingLogic, ResourceExhaustion]; MoreResources; true; "HPA max replicas set orders of magnitude too high"
        HumanMistake / mk8(true);  [ResourceExhaustion]; MoreResources; true; "replica count fat-fingered 10x during scale-up"
        HumanMistake / mk8(false); [MisbehavingLogic]; Timing; true; "bad rolling-update bounds serialized the rollout"
        HumanMistake / mk8(false); [MisbehavingLogic]; Timing; true; "priority class removed; pods waited behind batch jobs"
        HumanMistake / mk8(false); [MisbehavingLogic]; None; false; "harmless deprecated flag triggered alert storm only"
        // ---- Human Mistake / misconfiguration of plugins (3) ----
        HumanMistake / mpl(false); [Communication]; ServiceNetwork; true; "CNI plugin MTU mismatch dropped large packets"
        HumanMistake / mpl(false); [Communication]; ServiceNetwork; true; "ingress controller class mismatch left routes stale"
        HumanMistake / mpl(false); [MisbehavingLogic, ResourceExhaustion]; Stall; true; "admission webhook plugin misconfigured fail-closed (GKE webhook outage)"
        // ---- Human Mistake / misconfiguration of external software (11; 4 sizing) ----
        HumanMistake / mex(false); [StateRetrieval]; Outage; true; "external backup job truncated the etcd keyspace"
        HumanMistake / mex(true);  [ResourceExhaustion, ControlPlaneAvailability]; Outage; true; "VM host oversubscription starved the control plane"
        HumanMistake / mex(false); [Communication]; Stall; true; "firewall rule blocked apiserver-to-kubelet traffic"
        HumanMistake / mex(false); [Communication]; ServiceNetwork; true; "external LB health-check path wrong; flapping backends"
        HumanMistake / mex(false); [Communication]; ServiceNetwork; true; "upstream DNS forwarder misconfigured; names unresolvable"
        HumanMistake / mex(true);  [ResourceExhaustion]; LessResources; true; "container runtime PID limit too low; pods failed to start"
        HumanMistake / mex(true);  [ResourceExhaustion]; LessResources; true; "disk pressure threshold evicted healthy pods"
        HumanMistake / mex(true);  [ResourceExhaustion]; Timing; true; "registry rate limits throttled image pulls"
        HumanMistake / mex(false); [LocalToNodes]; Timing; false; "kernel sysctl change slowed container startup"
        HumanMistake / mex(false); [LocalToNodes]; None; false; "log rotation misconfigured; disk alerts only"
        HumanMistake / mex(false); [MisbehavingLogic]; None; false; "monitoring scrape misconfigured; false alarms only"
        // ---- Bugs (13: 5 K8s, 4 external, 1 plugin, 3 custom) ----
        Bug / BugK8s; [MisbehavingLogic, StateRetrieval]; Outage; true; "kube-apiserver bug dropped node heartbeats; mass eviction"
        Bug / BugK8s; [MisbehavingLogic]; Stall; true; "controller-manager deadlock stopped reconciliation"
        Bug / BugK8s; [StateRetrieval]; Stall; true; "watch cache served stale state after compaction bug"
        Bug / BugK8s; [Communication]; ServiceNetwork; true; "kube-proxy rule ordering bug blackholed a service"
        Bug / BugK8s; [MisbehavingLogic]; Timing; true; "scheduler cache corruption forced repeated restarts"
        Bug / BugExternal; [LocalToNodes]; Outage; false; "kernel conntrack race dropped connections cluster-wide"
        Bug / BugExternal; [Communication]; ServiceNetwork; false; "OS DNS resolver bug delayed every lookup"
        Bug / BugExternal; [LocalToNodes]; LessResources; false; "containerd leak prevented new pod sandboxes"
        Bug / BugExternal; [LocalToNodes]; None; false; "filesystem driver warning; no service impact"
        Bug / BugPlugin; [Communication]; ServiceNetwork; true; "CNI IPAM bug double-allocated pod IPs"
        Bug / BugCustom; [MisbehavingLogic]; MoreResources; true; "custom operator retry loop spawned duplicate pods"
        Bug / BugCustom; [MisbehavingLogic]; LessResources; true; "custom controller raced deletes against scale-ups"
        Bug / BugCustom; [MisbehavingLogic]; None; true; "custom webhook rejected no-op updates only"
        // ---- Overload (8) ----
        Overload / Other; [ResourceExhaustion, ControlPlaneAvailability]; Outage; true; "event storm overwhelmed apiserver and etcd"
        Overload / Other; [ResourceExhaustion, ControlPlaneAvailability]; Outage; true; "preemptive pods evicted every lower-priority service"
        Overload / Other; [ResourceExhaustion, ControlPlaneAvailability]; Stall; true; "uncontrolled pod replication filled cluster capacity"
        Overload / Other; [ResourceExhaustion]; Stall; true; "etcd disk filled by runaway object creation"
        Overload / Other; [ResourceExhaustion]; LessResources; true; "node pressure evicted application pods"
        Overload / Other; [ResourceExhaustion]; LessResources; true; "cluster out of allocatable CPU for replacements"
        Overload / Other; [ResourceExhaustion, ControlPlaneAvailability]; Timing; true; "reconcile queues backed up for tens of minutes"
        Overload / Other; [ResourceExhaustion]; None; true; "short burst absorbed by autoscaling headroom"
        // ---- Wrong Autoscale Trigger (4) ----
        WrongAutoscaleTrigger / Other; [MisbehavingLogic]; MoreResources; true; "stale metrics made HPA scale to maximum"
        WrongAutoscaleTrigger / Other; [MisbehavingLogic]; MoreResources; true; "custom metric unit mismatch doubled the fleet"
        WrongAutoscaleTrigger / Other; [MisbehavingLogic]; LessResources; true; "autoscaler scaled to zero on a gap in metrics"
        WrongAutoscaleTrigger / Other; [MisbehavingLogic]; Outage; true; "node autoscaler deleted healthy nodes on false heartbeats (GKE)"
        // ---- Race Condition (5) ----
        RaceCondition / Other; [Communication]; ServiceNetwork; false; "route programming raced node bootstrap; transient blackhole"
        RaceCondition / Other; [Communication]; ServiceNetwork; false; "endpoint update raced pod kill; brief misrouting"
        RaceCondition / Other; [StateRetrieval]; Stall; true; "two controllers fought over one field in a tight loop"
        RaceCondition / Other; [MisbehavingLogic]; Timing; false; "init-container ordering raced volume attach"
        RaceCondition / Other; [MisbehavingLogic]; None; false; "idempotent retry hid a double-create race"
        // ---- Unverifiable Certificate (4) ----
        UnverifiableCertificate / Other; [Communication]; Outage; false; "expired apiserver certificate locked every kubelet out"
        UnverifiableCertificate / Other; [Communication]; Stall; false; "webhook certificate rotation broke admission"
        UnverifiableCertificate / Other; [Communication]; ServiceNetwork; false; "mTLS mesh certificates mismatched after rotation"
        UnverifiableCertificate / Other; [MisbehavingLogic]; None; false; "metrics TLS failure; observability only"
        // ---- Unmanaged Upgrade (6) ----
        UnmanagedUpgrade / Other; [MisbehavingLogic]; Outage; false; "API removal in upgrade broke the network operator"
        UnmanagedUpgrade / Other; [Communication]; Outage; false; "CNI upgrade changed encapsulation; nodes partitioned"
        UnmanagedUpgrade / Other; [MisbehavingLogic]; LessResources; false; "default seccomp change crashed legacy containers"
        UnmanagedUpgrade / Other; [LocalToNodes]; Timing; false; "runtime upgrade doubled pod start latency"
        UnmanagedUpgrade / Other; [MisbehavingLogic]; Timing; false; "scheduler default profile changed spreading behavior"
        UnmanagedUpgrade / Other; [MisbehavingLogic]; None; false; "deprecation warnings only after control-plane upgrade"
        // ---- Low-Level Issues (4) ----
        LowLevelIssues / Other; [LocalToNodes, Communication]; Outage; false; "NIC firmware dropped VXLAN packets under load"
        LowLevelIssues / Other; [LocalToNodes]; LessResources; false; "flaky DIMM crashed pods on one node"
        LowLevelIssues / Other; [LocalToNodes]; Timing; false; "failing disk slowed image extraction"
        LowLevelIssues / Other; [LocalToNodes]; None; false; "single-bit ECC errors corrected silently"
        // ---- Failing Application (4) ----
        FailingApplication / Other; [ControlPlaneAvailability]; MoreResources; true; "crash-looping app caused restart storm and overscaling"
        FailingApplication / Other; [ControlPlaneAvailability]; MoreResources; true; "app event flood ballooned etcd and duplicated pods"
        FailingApplication / Other; [ControlPlaneAvailability]; LessResources; true; "failing readiness probes drained every endpoint"
        FailingApplication / Other; [ControlPlaneAvailability]; Timing; false; "log flood throttled kubelets; slow starts"
    }
}

/// Count incidents matching a predicate.
pub fn count(incidents: &[Incident], pred: impl Fn(&Incident) -> bool) -> usize {
    incidents.iter().filter(|i| pred(i)).count()
}

/// Renders Table I: the fault / error / failure taxonomy with the
/// real-world counts.
pub fn table1() -> (Table, Table, Table) {
    let data = incidents();
    let mut faults = Table::new("Table I(a) — Faults (81 real-world incidents)", &["Fault", "Count"]);
    for f in Fault::ALL {
        faults.push_row([f.label().to_string(), count(&data, |i| i.fault == f).to_string()]);
    }
    let mut errors = Table::new("Table I(b) — Errors (multi-label)", &["Error", "Count"]);
    for e in ErrorCat::ALL {
        errors.push_row([
            e.label().to_string(),
            count(&data, |i| i.errors.contains(&e)).to_string(),
        ]);
    }
    let mut failures = Table::new("Table I(c) — Failures", &["Failure", "Count"]);
    for f in FailureCat::ALL {
        failures.push_row([f.label().to_string(), count(&data, |i| i.failure == f).to_string()]);
    }
    (faults, errors, failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_81_incidents_with_unique_ids() {
        let data = incidents();
        assert_eq!(data.len(), 81);
        let ids: std::collections::BTreeSet<u32> = data.iter().map(|i| i.id).collect();
        assert_eq!(ids.len(), 81);
    }

    #[test]
    fn outage_count_matches_paper() {
        let data = incidents();
        assert_eq!(count(&data, |i| i.failure == FailureCat::Outage), 15);
    }

    #[test]
    fn misconfiguration_breakdown_matches_paper() {
        let data = incidents();
        let mis = |i: &Incident| {
            matches!(
                i.detail,
                FaultDetail::MisconfigK8s { .. }
                    | FaultDetail::MisconfigPlugin { .. }
                    | FaultDetail::MisconfigExternal { .. }
            )
        };
        assert_eq!(count(&data, |i| i.fault == Fault::HumanMistake), 33);
        assert_eq!(count(&data, |i| mis(i)), 33);
        assert_eq!(count(&data, |i| matches!(i.detail, FaultDetail::MisconfigK8s { .. })), 19);
        assert_eq!(count(&data, |i| matches!(i.detail, FaultDetail::MisconfigPlugin { .. })), 3);
        assert_eq!(count(&data, |i| matches!(i.detail, FaultDetail::MisconfigExternal { .. })), 11);
        let sizing = |i: &Incident| {
            matches!(
                i.detail,
                FaultDetail::MisconfigK8s { bad_sizing: true }
                    | FaultDetail::MisconfigPlugin { bad_sizing: true }
                    | FaultDetail::MisconfigExternal { bad_sizing: true }
            )
        };
        assert_eq!(count(&data, sizing), 10);
    }

    #[test]
    fn bug_breakdown_matches_paper() {
        let data = incidents();
        assert_eq!(count(&data, |i| i.fault == Fault::Bug), 13);
        assert_eq!(count(&data, |i| i.detail == FaultDetail::BugK8s), 5);
        assert_eq!(count(&data, |i| i.detail == FaultDetail::BugExternal), 4);
        assert_eq!(count(&data, |i| i.detail == FaultDetail::BugPlugin), 1);
        assert_eq!(count(&data, |i| i.detail == FaultDetail::BugCustom), 3);
    }

    #[test]
    fn capacity_and_communication_match_paper() {
        let data = incidents();
        assert_eq!(count(&data, |i| i.errors.contains(&ErrorCat::ResourceExhaustion)), 21);
        assert_eq!(
            count(&data, |i| i.errors.contains(&ErrorCat::ControlPlaneAvailability)),
            11
        );
        assert_eq!(count(&data, |i| i.errors.contains(&ErrorCat::Communication)), 19);
    }

    #[test]
    fn mutiny_replicable_matches_paper() {
        let data = incidents();
        assert_eq!(count(&data, |i| i.mutiny_replicable), 54);
    }

    #[test]
    fn misconfigurations_that_overload_match_f3() {
        // F3: misconfigurations overloaded the system in 13 of 81 failures.
        let data = incidents();
        let n = count(&data, |i| {
            i.fault == Fault::HumanMistake && i.errors.contains(&ErrorCat::ResourceExhaustion)
        });
        assert_eq!(n, 13, "misconfig→overload incidents");
    }

    #[test]
    fn table1_renders_all_categories() {
        let (f, e, fail) = table1();
        assert_eq!(f.len(), 9);
        assert_eq!(e.len(), 6);
        assert_eq!(fail.len(), 7);
        assert!(f.render().contains("Human Mistake"));
    }
}
