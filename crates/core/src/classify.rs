//! Failure classification: the paper's two-level failure model (§V-B).
//!
//! **Orchestrator-level failures (OF)** are judged from the 3-second gauge
//! samples and kbench statistics, against golden baselines; **client-level
//! failures (CF)** from the response-time series via MAE z-scores. When a
//! run matches several categories it is reported as the most severe one
//! (ordering per Table I: No < Tim < LeR < MoR < Net < Sta < Out; Table
//! II: NSI < HRT < IA < SU).

use crate::golden::Baseline;
use k8s_cluster::RunStats;
use simkit::stats::{mae, mean, std_dev, z_score};

/// Orchestrator-level failure categories (Table I c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OrchestratorFailure {
    /// System recovered without consequences.
    No,
    /// Creation/update took significantly longer than expected.
    Tim,
    /// A service stably holds fewer resources than desired.
    LeR,
    /// A service temporarily or permanently holds more resources.
    MoR,
    /// Resources correct but incorrectly networked.
    Net,
    /// The cluster can no longer react to changes.
    Sta,
    /// A significant number of running services are compromised.
    Out,
}

impl OrchestratorFailure {
    /// All categories, in increasing severity.
    pub const ALL: [OrchestratorFailure; 7] = [
        OrchestratorFailure::No,
        OrchestratorFailure::Tim,
        OrchestratorFailure::LeR,
        OrchestratorFailure::MoR,
        OrchestratorFailure::Net,
        OrchestratorFailure::Sta,
        OrchestratorFailure::Out,
    ];

    /// Paper-style short label.
    pub fn label(self) -> &'static str {
        match self {
            OrchestratorFailure::No => "No",
            OrchestratorFailure::Tim => "Tim",
            OrchestratorFailure::LeR => "LeR",
            OrchestratorFailure::MoR => "MoR",
            OrchestratorFailure::Net => "Net",
            OrchestratorFailure::Sta => "Sta",
            OrchestratorFailure::Out => "Out",
        }
    }

    /// True for the categories the paper calls critical (Sta, Out).
    pub fn is_system_wide(self) -> bool {
        matches!(self, OrchestratorFailure::Sta | OrchestratorFailure::Out)
    }
}

impl std::fmt::Display for OrchestratorFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Client-level failure categories (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ClientFailure {
    /// No significant impact.
    Nsi,
    /// Higher response times (MAE z-score > 2).
    Hrt,
    /// Intermittent error responses not due to request timeouts.
    Ia,
    /// Service unreachable from a certain instant.
    Su,
}

impl ClientFailure {
    /// All categories, in increasing severity.
    pub const ALL: [ClientFailure; 4] =
        [ClientFailure::Nsi, ClientFailure::Hrt, ClientFailure::Ia, ClientFailure::Su];

    /// Paper-style short label.
    pub fn label(self) -> &'static str {
        match self {
            ClientFailure::Nsi => "NSI",
            ClientFailure::Hrt => "HRT",
            ClientFailure::Ia => "IA",
            ClientFailure::Su => "SU",
        }
    }
}

impl std::fmt::Display for ClientFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// z-score threshold for HRT (paper: 2).
pub const HRT_Z_THRESHOLD: f64 = 2.0;
/// z-score threshold for Tim startup statistics (paper: 3).
pub const TIM_Z_THRESHOLD: f64 = 3.0;
/// Consecutive trailing failures that read as Service Unreachable (1 s of
/// requests at 20 req/s).
pub const SU_TRAILING: usize = 20;
/// Non-timeout errors that read as Intermittent Availability.
pub const IA_ERRORS: usize = 3;
/// Steady-state window inspected at the end of the run.
pub const TAIL_WINDOW_MS: u64 = 12_000;
/// Extra created pods beyond the golden *maximum* that read as More
/// Resources. The paper counts small transient surpluses as MoR; our
/// deterministic golden runs have zero variance, so a ±1 tolerance keeps
/// single-replacement recoveries (ghost-node GC, adoption churn) from
/// reading as over-provisioning.
pub const MOR_EXTRA_PODS: u64 = 1;
/// Multiple of golden pod creations that reads as uncontrolled spawn.
pub const SPAWN_STORM_FACTOR: u64 = 4;

/// Classifies the client-level failure and returns `(category, z_score)`.
pub fn classify_client(stats: &RunStats, baseline: &Baseline) -> (ClientFailure, f64) {
    let series = stats.response_series();
    let mae_x = mae(&series, &baseline.avg_response);
    let z = z_floored(mae_x, &baseline.golden_maes);

    let total = stats.client.len();
    let trailing = stats.trailing_failures();
    if total > 0 && trailing >= SU_TRAILING.min(total) {
        return (ClientFailure::Su, z);
    }
    if stats.non_timeout_failures() >= IA_ERRORS {
        return (ClientFailure::Ia, z);
    }
    if z > HRT_Z_THRESHOLD {
        return (ClientFailure::Hrt, z);
    }
    (ClientFailure::Nsi, z)
}

/// Classifies the orchestrator-level failure per the §V-B rules.
pub fn classify_orchestrator(stats: &RunStats, baseline: &Baseline) -> OrchestratorFailure {
    let tail = stats.tail_samples(TAIL_WINDOW_MS);
    let Some(last) = stats.samples.last() else { return OrchestratorFailure::No };

    // --- Out: running services compromised cluster-wide -----------------
    let dns_dead = baseline.expected_dns_ready > 0 && tail_all(tail, |s| s.dns_ready == 0);
    let net_dead = tail_all(tail, |s| s.net_nodes > 0 && s.netagents_down >= s.net_nodes);
    let all_services_dead = !baseline.expected_endpoints.is_empty()
        && tail_all(tail, |s| {
            baseline
                .expected_endpoints
                .keys()
                .all(|svc| s.app_endpoints.get(svc).copied().unwrap_or(0) == 0)
        })
        && tail_all(tail, |s| !s.prometheus_ready);
    if dns_dead || net_dead || all_services_dead {
        return OrchestratorFailure::Out;
    }

    // --- Sta: the cluster can no longer react ---------------------------
    let spawn_storm = last.pods_created_cum
        > baseline.expected_pods_created * SPAWN_STORM_FACTOR + 20
        && growing(stats);
    let etcd_stalled = tail_all(tail, |s| s.etcd_stalled) && !tail.is_empty();
    let kcm_stuck = !tail.is_empty() && tail_all(tail, |s| !s.kcm_leader);
    let sched_stuck = !tail.is_empty() && tail_all(tail, |s| !s.sched_leader);
    let netpods_failing = !tail.is_empty() && tail_all(tail, |s| s.netpods_failed);
    if spawn_storm || etcd_stalled || kcm_stuck || sched_stuck || netpods_failing {
        return OrchestratorFailure::Sta;
    }

    // --- Net: resources correct but incorrectly networked ---------------
    let replicas_correct = tail_all(tail, |s| {
        baseline
            .expected_ready
            .iter()
            .all(|(app, want)| s.app_ready.get(app).copied().unwrap_or(0) == *want)
    });
    let endpoints_wrong = tail_all(tail, |s| {
        baseline
            .expected_endpoints
            .iter()
            .any(|(svc, want)| s.app_endpoints.get(svc).copied().unwrap_or(0) != *want)
    });
    let client_blocked = stats.client_failures() > stats.client.len() / 10;
    if replicas_correct && (endpoints_wrong || client_blocked) && !tail.is_empty() {
        return OrchestratorFailure::Net;
    }

    // --- MoR: more resources than desired --------------------------------
    let ready_above = tail_all(tail, |s| {
        baseline
            .expected_ready
            .iter()
            .any(|(app, want)| s.app_ready.get(app).copied().unwrap_or(0) > *want)
    }) && !tail.is_empty();
    let extra_created =
        last.pods_created_cum > baseline.golden_pods_created_max + MOR_EXTRA_PODS;
    if ready_above || extra_created {
        return OrchestratorFailure::MoR;
    }

    // --- LeR: fewer resources than desired --------------------------------
    let ready_below = !tail.is_empty()
        && tail_all(tail, |s| {
            baseline
                .expected_ready
                .iter()
                .any(|(app, want)| s.app_ready.get(app).copied().unwrap_or(0) < *want)
        });
    let endpoints_below = !tail.is_empty()
        && tail_all(tail, |s| {
            baseline
                .expected_endpoints
                .iter()
                .any(|(svc, want)| s.app_endpoints.get(svc).copied().unwrap_or(0) < *want)
        });
    if ready_below || endpoints_below {
        return OrchestratorFailure::LeR;
    }

    // --- Tim: significantly delayed creations / restarts ------------------
    if stats.app_pod_restarts > 0 {
        return OrchestratorFailure::Tim;
    }
    let startups = stats.startup_times(stats.t0);
    if !startups.is_empty() && !baseline.golden_worst_startup.is_empty() {
        let worst = simkit::stats::max(&startups);
        if z_score(worst, &baseline.golden_worst_startup) > TIM_Z_THRESHOLD {
            return OrchestratorFailure::Tim;
        }
    }
    if let Some(last_creation) = stats.last_pod_creation(stats.t0) {
        if !baseline.golden_last_creation.is_empty() {
            let rel = (last_creation - stats.t0) as f64;
            if z_score(rel, &baseline.golden_last_creation) > TIM_Z_THRESHOLD {
                return OrchestratorFailure::Tim;
            }
        }
    }

    OrchestratorFailure::No
}

/// z-score with a relative floor on σ: deterministic simulation makes the
/// golden MAE distribution very tight, so a bare z-score would flag even
/// microscopic deviations. The floor (10% of the golden mean) keeps the
/// paper's z > 2 rule meaningful: flagged runs deviate by at least ~20%.
pub fn z_floored(x: f64, samples: &[f64]) -> f64 {
    let m = mean(samples);
    let s = std_dev(samples).max(0.1 * m.abs()).max(1e-9);
    (x - m) / s
}

fn tail_all(tail: &[k8s_cluster::MetricsSample], pred: impl Fn(&k8s_cluster::MetricsSample) -> bool) -> bool {
    !tail.is_empty() && tail.iter().all(pred)
}

/// True when pod creation is still climbing at the end of the run (or the
/// store already stalled, which freezes the counter).
fn growing(stats: &RunStats) -> bool {
    let n = stats.samples.len();
    if n < 3 {
        return false;
    }
    let a = stats.samples[n - 3].pods_created_cum;
    let b = stats.samples[n - 1].pods_created_cum;
    b > a || stats.samples[n - 1].etcd_stalled
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_cluster::{ClientSample, MetricsSample};
    use k8s_netsim::RequestOutcome;

    fn baseline() -> Baseline {
        let mut b = Baseline::default();
        b.avg_response = vec![20.0; 100];
        b.golden_maes = vec![0.5, 0.6, 0.7, 0.5, 0.6];
        b.golden_worst_startup = vec![3000.0, 3200.0, 3100.0, 2900.0];
        b.golden_last_creation = vec![5000.0, 5100.0, 4900.0];
        b.expected_ready.insert("web-1".into(), 2);
        b.expected_endpoints.insert("web-1-svc".into(), 2);
        b.expected_pods_created = 6;
        b.golden_pods_created_max = 6;
        b.expected_dns_ready = 2;
        b
    }

    fn healthy_sample(at: u64) -> MetricsSample {
        let mut s = MetricsSample { at, ..Default::default() };
        s.app_ready.insert("web-1".into(), 2);
        s.app_endpoints.insert("web-1-svc".into(), 2);
        s.pods_created_cum = 6;
        s.kcm_leader = true;
        s.sched_leader = true;
        s.dns_ready = 2;
        s.prometheus_ready = true;
        s.net_nodes = 5;
        s
    }

    fn healthy_stats() -> RunStats {
        let mut st = RunStats { t0: 0, ..Default::default() };
        for i in 0..20u64 {
            st.samples.push(healthy_sample(i * 3000));
        }
        for i in 0..100u64 {
            st.client.push(ClientSample {
                at: i * 50,
                outcome: RequestOutcome::Ok { latency_ms: 20.0 },
            });
        }
        st
    }

    #[test]
    fn healthy_run_is_no_nsi() {
        let st = healthy_stats();
        let b = baseline();
        assert_eq!(classify_orchestrator(&st, &b), OrchestratorFailure::No);
        assert_eq!(classify_client(&st, &b).0, ClientFailure::Nsi);
    }

    #[test]
    fn stable_fewer_replicas_is_ler() {
        let mut st = healthy_stats();
        for s in st.samples.iter_mut() {
            s.app_ready.insert("web-1".into(), 1);
            s.app_endpoints.insert("web-1-svc".into(), 1);
        }
        assert_eq!(classify_orchestrator(&st, &baseline()), OrchestratorFailure::LeR);
    }

    #[test]
    fn stable_more_replicas_is_mor() {
        let mut st = healthy_stats();
        for s in st.samples.iter_mut() {
            s.app_ready.insert("web-1".into(), 3);
        }
        assert_eq!(classify_orchestrator(&st, &baseline()), OrchestratorFailure::MoR);
    }

    #[test]
    fn transient_extra_pods_is_mor() {
        let mut st = healthy_stats();
        for s in st.samples.iter_mut() {
            s.pods_created_cum = 9; // 3 extra over golden max, stable
        }
        assert_eq!(classify_orchestrator(&st, &baseline()), OrchestratorFailure::MoR);
    }

    #[test]
    fn correct_replicas_wrong_endpoints_is_net() {
        let mut st = healthy_stats();
        for s in st.samples.iter_mut() {
            s.app_endpoints.insert("web-1-svc".into(), 0);
        }
        assert_eq!(classify_orchestrator(&st, &baseline()), OrchestratorFailure::Net);
    }

    #[test]
    fn spawn_storm_is_sta() {
        let mut st = healthy_stats();
        let n = st.samples.len();
        for (i, s) in st.samples.iter_mut().enumerate() {
            s.pods_created_cum = (i as u64 + 1) * 40;
            let _ = n;
        }
        assert_eq!(classify_orchestrator(&st, &baseline()), OrchestratorFailure::Sta);
    }

    #[test]
    fn lost_leadership_is_sta() {
        let mut st = healthy_stats();
        for s in st.samples.iter_mut() {
            s.kcm_leader = false;
        }
        assert_eq!(classify_orchestrator(&st, &baseline()), OrchestratorFailure::Sta);
    }

    #[test]
    fn dead_dns_is_out() {
        let mut st = healthy_stats();
        for s in st.samples.iter_mut() {
            s.dns_ready = 0;
        }
        assert_eq!(classify_orchestrator(&st, &baseline()), OrchestratorFailure::Out);
    }

    #[test]
    fn dead_network_is_out() {
        let mut st = healthy_stats();
        for s in st.samples.iter_mut() {
            s.netagents_down = 5;
        }
        assert_eq!(classify_orchestrator(&st, &baseline()), OrchestratorFailure::Out);
    }

    #[test]
    fn pod_restart_is_tim() {
        let mut st = healthy_stats();
        st.app_pod_restarts = 1;
        assert_eq!(classify_orchestrator(&st, &baseline()), OrchestratorFailure::Tim);
    }

    #[test]
    fn slow_startup_is_tim() {
        let mut st = healthy_stats();
        st.pod_created.insert("/registry/pods/default/web-x".into(), 1000);
        st.pod_running.insert("/registry/pods/default/web-x".into(), 50_000);
        assert_eq!(classify_orchestrator(&st, &baseline()), OrchestratorFailure::Tim);
    }

    #[test]
    fn trailing_failures_are_su() {
        let mut st = healthy_stats();
        for s in st.client.iter_mut().skip(60) {
            s.outcome = RequestOutcome::Timeout;
        }
        let (cf, _) = classify_client(&st, &baseline());
        assert_eq!(cf, ClientFailure::Su);
    }

    #[test]
    fn sparse_errors_are_ia() {
        let mut st = healthy_stats();
        st.client[10].outcome = RequestOutcome::Refused;
        st.client[40].outcome = RequestOutcome::Refused;
        st.client[70].outcome = RequestOutcome::Refused;
        let (cf, _) = classify_client(&st, &baseline());
        assert_eq!(cf, ClientFailure::Ia);
    }

    #[test]
    fn elevated_latency_is_hrt() {
        let mut st = healthy_stats();
        for s in st.client.iter_mut() {
            s.outcome = RequestOutcome::Ok { latency_ms: 80.0 };
        }
        let (cf, z) = classify_client(&st, &baseline());
        assert_eq!(cf, ClientFailure::Hrt);
        assert!(z > HRT_Z_THRESHOLD);
    }

    #[test]
    fn severity_orderings() {
        assert!(OrchestratorFailure::Out > OrchestratorFailure::Sta);
        assert!(OrchestratorFailure::MoR > OrchestratorFailure::LeR);
        assert!(ClientFailure::Su > ClientFailure::Ia);
        for of in OrchestratorFailure::ALL {
            assert!(!of.label().is_empty());
        }
        assert!(OrchestratorFailure::Sta.is_system_wide());
        assert!(!OrchestratorFailure::Net.is_system_wide());
    }
}
