//! Mutiny: the fault/error injector.
//!
//! Each injection is characterized by the triplet of §IV-A:
//!
//! * **where** — a communication [`Channel`], a resource [`Kind`], and
//!   either a field path, a serialization-protocol byte, or the whole
//!   message;
//! * **what** — a bit-flip, a data-type set, or a message drop;
//! * **when** — the occurrence index of messages *related to the same
//!   resource instance* in which the target appears.
//!
//! Mutiny implements [`Interceptor`], sits on the wire paths of the
//! simulated apiserver, and fires exactly once per experiment.

use k8s_model::{Channel, Interceptor, Kind, MsgCtx, Object, Op, WireVerdict};
use protowire::corrupt;
use protowire::reflect::{Reflect, Value};
use std::collections::HashMap;

/// What part of the message the injection targets.
#[derive(Debug, Clone, PartialEq)]
pub enum InjectionPoint {
    /// A named leaf field (reflection path, e.g. `spec.replicas`).
    Field {
        /// Reflection path of the field.
        path: String,
        /// The mutation to apply.
        mutation: FieldMutation,
    },
    /// A raw serialization-protocol byte (position as a fraction of the
    /// encoded length, so one spec applies to variable-size messages).
    ProtoByte {
        /// Byte position as a fraction in `[0, 1)`.
        byte_frac: f64,
        /// Bit to flip within that byte.
        bit: u8,
    },
    /// Drop the whole message (the sender still sees success).
    Drop,
}

/// The value mutation applied to a field (§IV-C rules).
#[derive(Debug, Clone, PartialEq)]
pub enum FieldMutation {
    /// Flip bit `n` of an integer value (the campaign uses 0 and 4 —
    /// the paper's "1st and 5th" bits).
    FlipIntBit(u8),
    /// Flip the least-significant bit of character `n` of a string
    /// (stays a valid character for ASCII input).
    FlipStringChar(usize),
    /// Invert a boolean.
    FlipBool,
    /// Set an explicit value (data-type set: `0`, empty string, or a
    /// semantics-specific value for critical fields).
    Set(Value),
}

impl FieldMutation {
    /// The paper's fault-model bucket this mutation reports under.
    pub fn fault_kind(&self) -> FaultKind {
        match self {
            FieldMutation::FlipIntBit(_)
            | FieldMutation::FlipStringChar(_)
            | FieldMutation::FlipBool => FaultKind::BitFlip,
            FieldMutation::Set(_) => FaultKind::ValueSet,
        }
    }
}

/// The three fault/error models of the campaign (Table IV rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultKind {
    /// Bit-flips (including serialization-byte flips and bool inversion).
    BitFlip,
    /// Data-type sets (extreme/invalid/wrong values).
    ValueSet,
    /// Message drops.
    Drop,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::BitFlip => "Bit-flip",
            FaultKind::ValueSet => "Value set",
            FaultKind::Drop => "Drop",
        };
        f.write_str(s)
    }
}

/// A complete injection specification (one experiment injects one fault).
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionSpec {
    /// Channel to tamper with.
    pub channel: Channel,
    /// Resource kind to target.
    pub kind: Kind,
    /// Where in the message.
    pub point: InjectionPoint,
    /// 1-based occurrence index (per resource instance).
    pub occurrence: u32,
}

impl InjectionSpec {
    /// The fault-model bucket of this spec.
    pub fn fault_kind(&self) -> FaultKind {
        match &self.point {
            InjectionPoint::Field { mutation, .. } => mutation.fault_kind(),
            InjectionPoint::ProtoByte { .. } => FaultKind::BitFlip,
            InjectionPoint::Drop => FaultKind::Drop,
        }
    }

    /// Short human-readable target description (for reports).
    pub fn target_description(&self) -> String {
        match &self.point {
            InjectionPoint::Field { path, mutation } => format!("{}:{path} {mutation:?}", self.kind),
            InjectionPoint::ProtoByte { byte_frac, bit } => {
                format!("{}:proto-byte@{byte_frac:.2} bit {bit}", self.kind)
            }
            InjectionPoint::Drop => format!("{}:drop", self.kind),
        }
    }
}

/// What Mutiny actually did, recorded when the trigger fires.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionRecord {
    /// Simulated time of the injection.
    pub at: u64,
    /// Registry key of the tampered instance.
    pub key: String,
    /// Operation of the tampered message.
    pub op: Op,
    /// Pre-injection field value, when applicable.
    pub before: Option<Value>,
    /// Post-injection field value, when applicable.
    pub after: Option<Value>,
}

/// The Mutiny injector: arms one [`InjectionSpec`] and fires it once.
///
/// ```
/// use k8s_model::{Channel, Kind};
/// use mutiny_core::injector::{FieldMutation, InjectionPoint, InjectionSpec, Mutiny};
///
/// let spec = InjectionSpec {
///     channel: Channel::ApiToEtcd,
///     kind: Kind::ReplicaSet,
///     point: InjectionPoint::Field {
///         path: "spec.replicas".into(),
///         mutation: FieldMutation::FlipIntBit(4),
///     },
///     occurrence: 1,
/// };
/// let mutiny = Mutiny::armed(spec);
/// assert!(mutiny.record().is_none()); // fires only when the message flows
/// ```
#[derive(Debug)]
pub struct Mutiny {
    spec: Option<InjectionSpec>,
    counters: HashMap<String, u32>,
    record: Option<InjectionRecord>,
    /// Messages before this time are ignored: the campaign manager
    /// programs the trigger only after scenario setup, right before the
    /// orchestration workload executes (§IV-C's experiment phases).
    armed_from: u64,
}

impl Default for Mutiny {
    fn default() -> Self {
        Mutiny::disarmed()
    }
}

impl Mutiny {
    /// An injector with no armed fault (golden runs).
    pub fn disarmed() -> Mutiny {
        Mutiny { spec: None, counters: HashMap::new(), record: None, armed_from: 0 }
    }

    /// An injector armed with one spec, counting occurrences immediately.
    pub fn armed(spec: InjectionSpec) -> Mutiny {
        Mutiny::armed_from(spec, 0)
    }

    /// An injector armed with one spec, counting occurrences only at or
    /// after time `from` (the workload window).
    pub fn armed_from(spec: InjectionSpec, from: u64) -> Mutiny {
        Mutiny { spec: Some(spec), counters: HashMap::new(), record: None, armed_from: from }
    }

    /// The injection record, once the trigger has fired.
    pub fn record(&self) -> Option<&InjectionRecord> {
        self.record.as_ref()
    }

    /// True once the injection fired.
    pub fn fired(&self) -> bool {
        self.record.is_some()
    }
}

impl Interceptor for Mutiny {
    fn on_message(&mut self, ctx: &MsgCtx<'_>) -> WireVerdict {
        let Some(spec) = &self.spec else { return WireVerdict::Pass };
        if self.record.is_some() || ctx.now < self.armed_from {
            return WireVerdict::Pass; // one fault, workload window only
        }
        if ctx.channel != spec.channel || ctx.kind != spec.kind {
            return WireVerdict::Pass;
        }

        match &spec.point {
            InjectionPoint::Drop => {
                let count = bump(&mut self.counters, ctx.key);
                if count == spec.occurrence {
                    self.record = Some(InjectionRecord {
                        at: ctx.now,
                        key: ctx.key.to_owned(),
                        op: ctx.op,
                        before: None,
                        after: None,
                    });
                    return WireVerdict::Drop;
                }
            }
            InjectionPoint::ProtoByte { byte_frac, bit } => {
                let Some(bytes) = ctx.bytes else { return WireVerdict::Pass };
                if bytes.is_empty() {
                    return WireVerdict::Pass;
                }
                let count = bump(&mut self.counters, ctx.key);
                if count == spec.occurrence {
                    let idx = ((bytes.len() as f64) * byte_frac.clamp(0.0, 0.999)) as usize;
                    let tampered = corrupt::flip_bit(bytes, idx, *bit);
                    self.record = Some(InjectionRecord {
                        at: ctx.now,
                        key: ctx.key.to_owned(),
                        op: ctx.op,
                        before: None,
                        after: None,
                    });
                    return WireVerdict::Replace(tampered);
                }
            }
            InjectionPoint::Field { path, mutation } => {
                let Some(bytes) = ctx.bytes else { return WireVerdict::Pass };
                // Only messages in which the injection target appears count
                // towards the occurrence index (§IV-A, "when").
                let Ok(mut obj) = Object::decode(ctx.kind, bytes) else {
                    return WireVerdict::Pass;
                };
                let Some(before) = obj.get_field(path) else { return WireVerdict::Pass };
                let count = bump(&mut self.counters, ctx.key);
                if count == spec.occurrence {
                    let after = mutate(&before, mutation);
                    let applied = obj.set_field(path, after.clone());
                    self.record = Some(InjectionRecord {
                        at: ctx.now,
                        key: ctx.key.to_owned(),
                        op: ctx.op,
                        before: Some(before),
                        after: applied.then_some(after),
                    });
                    if applied {
                        return WireVerdict::Replace(obj.encode());
                    }
                }
            }
        }
        WireVerdict::Pass
    }
}

fn bump(counters: &mut HashMap<String, u32>, key: &str) -> u32 {
    let c = counters.entry(key.to_owned()).or_insert(0);
    *c += 1;
    *c
}

/// Applies a mutation to a value (§IV-C rules).
pub fn mutate(before: &Value, mutation: &FieldMutation) -> Value {
    match (before, mutation) {
        (Value::Int(v), FieldMutation::FlipIntBit(bit)) => {
            Value::Int(corrupt::flip_int_bit(*v, *bit))
        }
        (Value::Str(s), FieldMutation::FlipStringChar(i)) => {
            Value::Str(corrupt::flip_char_lsb(s, *i).unwrap_or_else(|| s.clone()))
        }
        (Value::Bool(b), FieldMutation::FlipBool) => Value::Bool(!b),
        (_, FieldMutation::Set(v)) => v.clone(),
        // Type-mismatched mutations leave the value unchanged (the
        // campaign generator never produces them, but corrupted specs
        // must not panic).
        (v, _) => v.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_model::{ObjectMeta, ReplicaSet};

    fn rs_bytes(replicas: i64) -> Vec<u8> {
        let mut rs = ReplicaSet::default();
        rs.metadata = ObjectMeta::named("default", "web-rs");
        rs.spec.replicas = replicas;
        Object::ReplicaSet(rs).encode()
    }

    fn ctx<'a>(bytes: &'a [u8], key: &'a str, now: u64) -> MsgCtx<'a> {
        MsgCtx {
            channel: Channel::ApiToEtcd,
            kind: Kind::ReplicaSet,
            key,
            op: Op::Update,
            bytes: Some(bytes),
            now,
        }
    }

    fn field_spec(occurrence: u32, mutation: FieldMutation) -> InjectionSpec {
        InjectionSpec {
            channel: Channel::ApiToEtcd,
            kind: Kind::ReplicaSet,
            point: InjectionPoint::Field { path: "spec.replicas".into(), mutation },
            occurrence,
        }
    }

    #[test]
    fn fires_on_requested_occurrence_only() {
        let mut m = Mutiny::armed(field_spec(2, FieldMutation::FlipIntBit(0)));
        let bytes = rs_bytes(2);
        assert_eq!(m.on_message(&ctx(&bytes, "/registry/replicasets/default/web-rs", 1)), WireVerdict::Pass);
        let v = m.on_message(&ctx(&bytes, "/registry/replicasets/default/web-rs", 2));
        match v {
            WireVerdict::Replace(new_bytes) => {
                let obj = Object::decode(Kind::ReplicaSet, &new_bytes).unwrap();
                assert_eq!(obj.get_field("spec.replicas"), Some(Value::Int(3)));
            }
            other => panic!("expected Replace, got {other:?}"),
        }
        let rec = m.record().unwrap();
        assert_eq!(rec.before, Some(Value::Int(2)));
        assert_eq!(rec.after, Some(Value::Int(3)));
        // Fires exactly once.
        assert_eq!(m.on_message(&ctx(&bytes, "/registry/replicasets/default/web-rs", 3)), WireVerdict::Pass);
    }

    #[test]
    fn occurrences_are_counted_per_instance() {
        let mut m = Mutiny::armed(field_spec(2, FieldMutation::FlipIntBit(0)));
        let bytes = rs_bytes(2);
        // Two different instances at occurrence 1 each: no fire.
        assert_eq!(m.on_message(&ctx(&bytes, "/registry/replicasets/default/a", 1)), WireVerdict::Pass);
        assert_eq!(m.on_message(&ctx(&bytes, "/registry/replicasets/default/b", 2)), WireVerdict::Pass);
        // Second message of instance a: fire.
        assert!(matches!(
            m.on_message(&ctx(&bytes, "/registry/replicasets/default/a", 3)),
            WireVerdict::Replace(_)
        ));
    }

    #[test]
    fn wrong_channel_or_kind_ignored() {
        let mut m = Mutiny::armed(field_spec(1, FieldMutation::FlipIntBit(0)));
        let bytes = rs_bytes(2);
        let mut c = ctx(&bytes, "/k", 0);
        c.channel = Channel::KcmToApi;
        assert_eq!(m.on_message(&c), WireVerdict::Pass);
        let mut c = ctx(&bytes, "/k", 0);
        c.kind = Kind::Pod;
        assert_eq!(m.on_message(&c), WireVerdict::Pass);
        assert!(!m.fired());
    }

    #[test]
    fn drop_returns_drop_verdict() {
        let mut m = Mutiny::armed(InjectionSpec {
            channel: Channel::ApiToEtcd,
            kind: Kind::ReplicaSet,
            point: InjectionPoint::Drop,
            occurrence: 1,
        });
        let bytes = rs_bytes(2);
        assert_eq!(m.on_message(&ctx(&bytes, "/k", 5)), WireVerdict::Drop);
        assert_eq!(m.record().unwrap().at, 5);
    }

    #[test]
    fn proto_byte_flip_changes_bytes() {
        let mut m = Mutiny::armed(InjectionSpec {
            channel: Channel::ApiToEtcd,
            kind: Kind::ReplicaSet,
            point: InjectionPoint::ProtoByte { byte_frac: 0.5, bit: 3 },
            occurrence: 1,
        });
        let bytes = rs_bytes(2);
        match m.on_message(&ctx(&bytes, "/k", 0)) {
            WireVerdict::Replace(tampered) => {
                assert_eq!(tampered.len(), bytes.len());
                assert_ne!(tampered, bytes);
            }
            other => panic!("expected Replace, got {other:?}"),
        }
    }

    #[test]
    fn value_mutations() {
        assert_eq!(mutate(&Value::Int(2), &FieldMutation::FlipIntBit(4)), Value::Int(18));
        assert_eq!(
            mutate(&Value::Str("web".into()), &FieldMutation::FlipStringChar(0)),
            Value::Str("veb".into())
        );
        assert_eq!(mutate(&Value::Bool(true), &FieldMutation::FlipBool), Value::Bool(false));
        assert_eq!(
            mutate(&Value::Int(7), &FieldMutation::Set(Value::Int(0))),
            Value::Int(0)
        );
        // Mismatched types degrade to no-op instead of panicking.
        assert_eq!(mutate(&Value::Int(7), &FieldMutation::FlipBool), Value::Int(7));
    }

    #[test]
    fn field_absent_does_not_count_occurrence() {
        let mut m = Mutiny::armed(InjectionSpec {
            channel: Channel::ApiToEtcd,
            kind: Kind::ReplicaSet,
            point: InjectionPoint::Field {
                path: "spec.template.metadata.labels['missing']".into(),
                mutation: FieldMutation::Set(Value::Str(String::new())),
            },
            occurrence: 1,
        });
        let bytes = rs_bytes(2);
        for i in 0..5 {
            assert_eq!(m.on_message(&ctx(&bytes, "/k", i)), WireVerdict::Pass);
        }
        assert!(!m.fired());
    }
}
