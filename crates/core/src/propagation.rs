//! Injection-propagation analysis (§V-C4, Table VI).
//!
//! Bit-flips are injected into messages sent *towards* the apiserver by
//! the Kcm, the Scheduler, and the Kubelet, and two questions are asked
//! per experiment: did the corrupted value reach etcd (**Prop**), and did
//! the apiserver log an error for the wrong value (**Err**)? The paper
//! finds the validation layer catches malformed values but not
//! valid-but-wrong ones, and that Kcm corruption has the largest surface
//! because it manipulates more resource kinds and fields.

use crate::campaign::{run_world, ExperimentConfig};
use crate::injector::{FieldMutation, InjectionPoint, InjectionSpec};
use crate::recorder::RecordedField;
use k8s_cluster::ClusterConfig;
use k8s_model::{Channel, ChannelId};
use mutiny_faults::ArmedFault;
use mutiny_scenarios::Scenario;
use protowire::reflect::{FieldType, Reflect};

/// The component→apiserver channel classes the propagation study injects
/// on for one scenario — the scenario's own declaration
/// ([`ScenarioDef::propagation_channels`](mutiny_scenarios::ScenarioDef::propagation_channels)),
/// so registered third-party scenarios pick their channel set without
/// touching `mutiny_core`. The paper's three workloads use the full
/// set; rolling-update and hpa-autoscale narrow to controller traffic,
/// while node-drain (like failover) opens the Kubelet→Api channel
/// through the eviction-window status churn and earns a dedicated cell.
pub fn channels_for(scenario: Scenario) -> Vec<Channel> {
    scenario.propagation_channels()
}

/// Expands a scenario's channel-class set into the concrete wires the
/// recorded traffic actually flowed on: classes whose recorded fields
/// carry node identity (the kubelet wires) fan out into one
/// [`ChannelId`] per node, in stable order, so Table VI grows a per-node
/// Kubelet→Api cell for node-lifecycle scenarios; everything else stays
/// one class-wide cell.
pub fn expand_per_node(fields: &[RecordedField], channels: &[Channel]) -> Vec<ChannelId> {
    let mut out: Vec<ChannelId> = Vec::new();
    for class in channels {
        let mut node_wires: Vec<ChannelId> = fields
            .iter()
            .filter(|f| f.channel.class() == *class && f.channel.node().is_some())
            .map(|f| f.channel)
            .collect();
        node_wires.sort();
        node_wires.dedup();
        if node_wires.is_empty() {
            out.push(ChannelId::class_wide(*class));
        } else {
            out.extend(node_wires);
        }
    }
    out
}

/// Table VI cell values for one channel × workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PropagationCell {
    /// Injections performed.
    pub injections: usize,
    /// Corrupted values that reached etcd.
    pub propagated: usize,
    /// Experiments where the apiserver logged an error on that channel.
    pub errors: usize,
}

/// Generates the propagation plan for one wire: one bit-flip per
/// recorded field (occurrence 1), as in the paper. A class-wide id plans
/// over every node's fields; a node-scoped id pins one node's wire. The
/// spec always carries the recorded field's own (possibly node-scoped)
/// wire, so the injection targets exactly the traffic that was observed.
pub fn propagation_plan(
    fields: &[RecordedField],
    channel: impl Into<ChannelId>,
) -> Vec<InjectionSpec> {
    let channel = channel.into();
    fields
        .iter()
        .filter(|f| channel.matches(f.channel))
        .filter_map(|f| {
            let mutation = match f.field_type {
                FieldType::Int => FieldMutation::FlipIntBit(0),
                FieldType::Str => {
                    if f.sample.as_str().map(str::is_empty).unwrap_or(true) {
                        return None;
                    }
                    FieldMutation::FlipStringChar(0)
                }
                FieldType::Bool => FieldMutation::FlipBool,
            };
            Some(InjectionSpec {
                channel: f.channel,
                kind: f.kind,
                point: InjectionPoint::Field { path: f.path.clone(), mutation },
                occurrence: 1,
            })
        })
        .collect()
}

/// Runs the propagation experiments for one channel × scenario on the
/// work-stealing executor (per-spec seeds derive from the spec index, so
/// the cell totals are identical for any worker count).
pub fn run_propagation(
    cluster: &ClusterConfig,
    scenario: Scenario,
    specs: &[InjectionSpec],
    base_seed: u64,
) -> PropagationCell {
    let threads = crate::exec::default_threads(specs.len());
    let cells = crate::exec::run_indexed(specs.len(), threads, |i| {
        let spec = &specs[i];
        let mut cell = PropagationCell { injections: 1, ..Default::default() };
        let seed = base_seed.wrapping_add(i as u64).wrapping_mul(0x9e37);
        let cfg = ExperimentConfig {
            cluster: ClusterConfig { seed, ..cluster.clone() },
            scenario,
            injection: Some(ArmedFault::implied(spec.clone())),
        };
        let (mut world, record) = run_world(&cfg);
        let Some(record) = record else { return cell };

        // Err: the apiserver rejected something on this channel at or
        // after the injection.
        let errored = world.api.audit().records().iter().any(|r| {
            spec.channel.matches(r.channel) && r.at >= record.at && r.result.is_err()
        });
        if errored {
            cell.errors += 1;
        }

        // Prop: the corrupted value reached the store. Checked against the
        // store's write history, because recovery paths (e.g. the
        // Deployment controller resetting a corrupted replica count) may
        // overwrite it before the run ends.
        if let (InjectionPoint::Field { path, .. }, Some(after)) =
            (&spec.point, &record.after)
        {
            let kind = k8s_apiserver::kind_of_key(&record.key);
            let in_history = world
                .api
                .etcd()
                .events_since(0)
                .ok()
                .map(|(events, _)| {
                    events.iter().any(|ev| {
                        ev.key == record.key
                            && ev.value.as_ref().is_some_and(|bytes| {
                                kind.and_then(|k| {
                                    k8s_model::Object::decode(k, bytes).ok()
                                })
                                .and_then(|o| o.get_field(path))
                                .as_ref()
                                    == Some(after)
                            })
                    })
                })
                .unwrap_or(false);
            let stored_now = kind
                .and_then(|k| {
                    let (ns, name) = split_key(&record.key)?;
                    world.api.get_fresh(k, &ns, &name)
                })
                .and_then(|obj| obj.get_field(path));
            if in_history || stored_now.as_ref() == Some(after) {
                cell.propagated += 1;
            }
        }
        cell
    });

    let mut total = PropagationCell::default();
    for c in cells {
        total.injections += c.injections;
        total.propagated += c.propagated;
        total.errors += c.errors;
    }
    total
}

fn split_key(key: &str) -> Option<(String, String)> {
    let mut parts = key.strip_prefix("/registry/")?.split('/');
    let _plural = parts.next()?;
    let a = parts.next()?;
    match parts.next() {
        Some(b) => Some((a.to_owned(), b.to_owned())),
        None => Some((String::new(), a.to_owned())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_model::Kind;
    use protowire::reflect::Value;

    fn field(channel: impl Into<ChannelId>, kind: Kind, path: &str, sample: Value) -> RecordedField {
        RecordedField {
            channel: channel.into(),
            kind,
            path: path.into(),
            field_type: sample.field_type(),
            sample,
            message_count: 1,
            max_occurrence: 1,
        }
    }

    #[test]
    fn plan_selects_channel_and_skips_empty_strings() {
        let fields = vec![
            field(Channel::KcmToApi, Kind::Pod, "status.podIP", Value::Str("10.0.0.1".into())),
            field(Channel::KcmToApi, Kind::Pod, "spec.nodeName", Value::Str(String::new())),
            field(Channel::SchedulerToApi, Kind::Pod, "spec.nodeName", Value::Str("w1".into())),
            field(Channel::KcmToApi, Kind::ReplicaSet, "spec.replicas", Value::Int(2)),
        ];
        let plan = propagation_plan(&fields, Channel::KcmToApi);
        assert_eq!(plan.len(), 2);
        assert!(plan.iter().all(|s| s.channel == Channel::KcmToApi));
    }

    #[test]
    fn channel_sets_are_scenario_aware() {
        use mutiny_scenarios::{DEPLOY, NODE_DRAIN, ROLLING_UPDATE};
        // Node-drain opens the Kubelet→Api channel during evictions and
        // gets the dedicated cell; rolling-update does not.
        assert!(channels_for(NODE_DRAIN).contains(&Channel::KubeletToApi));
        assert!(!channels_for(ROLLING_UPDATE).contains(&Channel::KubeletToApi));
        // The paper's workloads keep the full set.
        assert_eq!(channels_for(DEPLOY).len(), 3);
        // Every set carries the controller channels.
        for sc in mutiny_scenarios::registry::all() {
            let chs = channels_for(sc);
            assert!(chs.contains(&Channel::KcmToApi), "{sc}");
            assert!(chs.contains(&Channel::SchedulerToApi), "{sc}");
        }
    }

    #[test]
    fn node_drain_records_kubelet_traffic_for_its_cell() {
        // The satellite claim behind the dedicated Table VI cells: a
        // node-drain run produces injectable Kubelet→Api fields (the
        // eviction-window status churn), so the cells are non-degenerate
        // — and, with per-node channel identity, they split per node.
        let traffic = crate::campaign::record_fields(
            &ClusterConfig::default(),
            mutiny_scenarios::NODE_DRAIN,
            channels_for(mutiny_scenarios::NODE_DRAIN),
            42,
        );
        let plan = propagation_plan(&traffic.fields, Channel::KubeletToApi);
        assert!(
            !plan.is_empty(),
            "node-drain must record injectable kubelet->api fields"
        );
        assert!(
            plan.iter().any(|s| s.kind == Kind::Pod),
            "expected pod status traffic on the kubelet channel: {plan:?}"
        );
        // Kubelet fields carry node identity, so the class expands into
        // per-node Table VI cells; the controller channels stay single.
        let wires = expand_per_node(&traffic.fields, &channels_for(mutiny_scenarios::NODE_DRAIN));
        let kubelet_wires: Vec<ChannelId> = wires
            .iter()
            .copied()
            .filter(|w| w.class() == Channel::KubeletToApi)
            .collect();
        assert!(
            kubelet_wires.len() >= 2 && kubelet_wires.iter().all(|w| w.node().is_some()),
            "expected per-node kubelet cells, got {kubelet_wires:?}"
        );
        assert!(wires.contains(&ChannelId::class_wide(Channel::KcmToApi)));
        // A node-scoped plan only targets its own wire.
        let one = propagation_plan(&traffic.fields, kubelet_wires[0]);
        assert!(!one.is_empty());
        assert!(one.iter().all(|s| s.channel == kubelet_wires[0]));
    }

    #[test]
    fn propagation_detects_stored_corruption() {
        // One real end-to-end experiment: flip a bit of the ReplicaSet
        // replica count carried on the Kcm channel and verify it lands in
        // the store without a user-visible error (the F4/Table VI gap).
        let fields = vec![field(
            Channel::KcmToApi,
            Kind::ReplicaSet,
            "spec.replicas",
            Value::Int(2),
        )];
        let plan = propagation_plan(&fields, Channel::KcmToApi);
        let cell = run_propagation(&ClusterConfig::default(), mutiny_scenarios::DEPLOY, &plan, 42);
        assert_eq!(cell.injections, 1);
        // A replica-count flip is valid-but-wrong: it must propagate.
        assert_eq!(cell.propagated, 1, "{cell:?}");
    }
}
