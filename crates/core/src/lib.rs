//! # mutiny-core — the paper's contribution
//!
//! *"Mutiny! How does Kubernetes fail, and what can we do about it?"*
//! (Barletta, Cinque, Di Martino, Kalbarczyk, Iyer — DSN 2024) introduces
//! a fault/error injector for the data store that preserves a Kubernetes
//! cluster's state, runs a ~9,000-experiment campaign, and classifies the
//! resulting failures. This crate implements all of it against the
//! simulated cluster of [`k8s_cluster`]:
//!
//! * [`injector`] — Mutiny itself: bit-flips, data-type sets, and message
//!   drops at (channel, kind, field/byte/message, occurrence);
//! * [`recorder`] — campaign phase 1: field recording during a nominal
//!   workload;
//! * [`campaign`] — plan generation (§IV-C rules), experiment execution,
//!   activation analysis;
//! * [`classify`] — the two-level failure model (OF: No/Tim/LeR/MoR/Net/
//!   Sta/Out; CF: NSI/HRT/IA/SU) with golden-run z-score machinery;
//! * [`exec`] — the deterministic work-stealing executor the campaign,
//!   the golden runs and the propagation study all run on;
//! * [`golden`] — golden runs and baselines;
//! * [`critical`] — critical-field analysis (F2) and the
//!   semantics-specific data-set values;
//! * [`propagation`] — the §V-C4 study of injections on the
//!   component→apiserver channels (Table VI);
//! * [`ffda`] — the 81-incident real-world failure dataset (Table I);
//! * [`coverage`] — Table VII, what Mutiny can and cannot replicate;
//! * [`tables`] — builders regenerating Tables II–VI and Figures 6–7;
//! * [`findings`] — the paper's findings F1–F4 computed from our data;
//! * [`report`] — plain-text table rendering.
//!
//! Scenarios (the paper's three workloads plus rolling-update and
//! node-drain, and any third-party registration) come from the
//! [`mutiny_scenarios`] registry; everything here keys on the scenario
//! name, so a newly registered scenario extends the campaign, the
//! baselines, and Tables III–V without touching this crate.
//!
//! ```no_run
//! use mutiny_core::campaign::{run_experiment, ExperimentConfig};
//! use mutiny_core::classify::{ClientFailure, OrchestratorFailure};
//! use mutiny_scenarios::DEPLOY;
//!
//! let out = run_experiment(&ExperimentConfig::golden(DEPLOY, 42));
//! assert_eq!(out.orchestrator_failure, OrchestratorFailure::No);
//! assert_eq!(out.client_failure, ClientFailure::Nsi);
//! ```

pub mod ablation;
pub mod campaign;
pub mod classify;
pub mod coverage;
pub mod critical;
pub mod exec;
pub mod ffda;
pub mod findings;
pub mod golden;
pub mod propagation;
pub mod report;
pub mod tables;

// The injector and the field recorder are re-homed in `mutiny_faults`
// (the pluggable fault engine); the old `mutiny_core::injector` /
// `mutiny_core::recorder` paths keep working through these re-exports.
pub use mutiny_faults::{injector, recorder};

pub use campaign::{
    run_experiment, run_experiment_with_baseline, CampaignResults, CampaignRow, ExperimentConfig,
    ExperimentOutcome,
};
pub use classify::{ClientFailure, OrchestratorFailure};
pub use golden::{build_baseline, Baseline};
pub use injector::{FaultKind, FieldMutation, InjectionPoint, InjectionSpec, Mutiny};
pub use mutiny_faults::{ArmedFault, Fault, FaultActuator, FaultDef, WorldAction};
pub use mutiny_scenarios::{Scenario, ScenarioDef};
