//! The campaign executor: deterministic work-stealing over an index space.
//!
//! A campaign is thousands of independent experiments with wildly varying
//! cost (a Drop on occurrence 10 simulates much further than a field flip
//! that kills the workload early, and the three workloads have different
//! horizons). The seed's static-chunk split handed each thread one
//! contiguous slice of the plan, so a thread that drew a cheap slice idled
//! while a straggler thread worked through an expensive one. Here workers
//! pull the next index from a shared atomic counter instead: no thread is
//! ever idle while work remains, and because each result lands at its plan
//! index and every experiment derives its seed from that index, the output
//! is byte-identical to a serial run regardless of interleaving.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Picks the worker count for `n` items: `MUTINY_THREADS` when set (the
/// determinism tests and benches pin it), otherwise the machine's
/// available parallelism, never more than `n`.
pub fn default_threads(n: usize) -> usize {
    let hw = std::env::var("MUTINY_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
        });
    hw.min(n.max(1)).min(256)
}

/// Runs `f(0..n)` on `threads` workers stealing indices from a shared
/// counter; `out[i] == f(i)`, exactly as a serial run would produce.
///
/// `f` must be deterministic in its index (the campaign derives every
/// experiment seed from the plan index, so this holds by construction).
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n <= 1 {
        let out = (0..n).map(f).collect();
        mutiny_telemetry::flush_thread();
        return out;
    }

    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i)));
                }
                // Merge this worker's telemetry before the thread dies;
                // the sink aggregates deterministically (key-sorted), so
                // flush order does not matter.
                mutiny_telemetry::flush_thread();
                local
            }));
        }
        for h in handles {
            for (i, v) in h.join().expect("executor worker panicked") {
                out[i] = Some(v);
            }
        }
    });
    out.into_iter().map(|o| o.expect("every index executed")).collect()
}

/// The seed's static-chunk split, kept for the throughput bench so the
/// work-stealing gain stays measurable release over release. Produces the
/// same results as [`run_indexed`] (both are index-deterministic), only
/// slower under imbalance.
pub fn run_chunked<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n <= 1 {
        let out = (0..n).map(f).collect();
        mutiny_telemetry::flush_thread();
        return out;
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            let hi = (lo + chunk).min(n);
            if lo >= hi {
                break;
            }
            let f = &f;
            handles.push(scope.spawn(move || {
                let vals = (lo..hi).map(f).collect::<Vec<T>>();
                mutiny_telemetry::flush_thread();
                (lo, vals)
            }));
        }
        for h in handles {
            let (lo, vals) = h.join().expect("executor worker panicked");
            for (off, v) in vals.into_iter().enumerate() {
                out[lo + off] = Some(v);
            }
        }
    });
    out.into_iter().map(|o| o.expect("every index executed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_land_at_their_index() {
        for threads in [1, 2, 3, 8] {
            let out = run_indexed(37, threads, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn chunked_matches_stealing() {
        for threads in [1, 2, 5] {
            assert_eq!(
                run_chunked(23, threads, |i| i as u64 * 3),
                run_indexed(23, threads, |i| i as u64 * 3),
            );
        }
    }

    #[test]
    fn uneven_work_still_complete() {
        // Index 0 is a big straggler; stealing must not lose or reorder.
        let out = run_indexed(16, 4, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn thread_count_is_bounded_by_items() {
        assert_eq!(default_threads(1), 1);
        assert!(default_threads(1_000_000) >= 1);
    }
}
