//! Mitigation ablations: replay the critical injections with the §VI-B
//! defenses switched on.
//!
//! The paper stops at *proposing* mitigations (redundancy codes on
//! critical fields, systematic circuit breakers, change logging with
//! rollback, stricter checks). This module closes the loop: it takes the
//! campaign's critical experiments — the injections that caused Stall,
//! Outage, or an unreachable service — replays them against clusters with
//! one or all defenses enabled, and reports how many critical failures
//! each defense removes.

use crate::campaign::{run_campaign, CampaignResults, PlannedExperiment};
use crate::classify::{ClientFailure, OrchestratorFailure};
use crate::golden::{build_baseline, Baseline};
use k8s_cluster::{ClusterConfig, MitigationsConfig};
use mutiny_scenarios::Scenario;
use std::collections::HashMap;

/// One ablation arm: a label and the defenses it enables.
#[derive(Debug, Clone)]
pub struct AblationArm {
    /// Human-readable arm name (printed by the bench).
    pub label: String,
    /// The defenses this arm enables.
    pub mitigations: MitigationsConfig,
}

impl AblationArm {
    /// The standard arms: unmitigated baseline, each defense alone, all
    /// defenses together.
    pub fn standard() -> Vec<AblationArm> {
        vec![
            AblationArm { label: "unmitigated".into(), mitigations: MitigationsConfig::default() },
            AblationArm {
                label: "integrity".into(),
                mitigations: MitigationsConfig { integrity: true, ..Default::default() },
            },
            AblationArm {
                label: "breaker".into(),
                mitigations: MitigationsConfig { breaker: true, ..Default::default() },
            },
            AblationArm {
                label: "guard".into(),
                mitigations: MitigationsConfig { guard: true, ..Default::default() },
            },
            AblationArm {
                label: "policies".into(),
                mitigations: MitigationsConfig { policies: true, ..Default::default() },
            },
            AblationArm {
                label: "validating".into(),
                mitigations: MitigationsConfig { validating: true, ..Default::default() },
            },
            AblationArm { label: "all".into(), mitigations: MitigationsConfig::all() },
        ]
    }
}

/// Failure counts of one finished arm.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationSummary {
    /// Arm name.
    pub label: String,
    /// Experiments run.
    pub total: usize,
    /// Stall failures.
    pub sta: usize,
    /// Outage failures.
    pub out: usize,
    /// Service-unreachable client failures.
    pub su: usize,
    /// Experiments that were critical (Sta, Out, or SU).
    pub critical: usize,
    /// Experiments with any orchestrator-level failure.
    pub any_of: usize,
}

impl AblationSummary {
    /// Summarizes one arm's results.
    pub fn of(label: &str, results: &CampaignResults) -> AblationSummary {
        let sta = results.count(|r| r.of == OrchestratorFailure::Sta);
        let out = results.count(|r| r.of == OrchestratorFailure::Out);
        let su = results.count(|r| r.cf == ClientFailure::Su);
        let critical = results.count(|r| r.of.is_system_wide() || r.cf == ClientFailure::Su);
        let any_of = results.count(|r| r.of != OrchestratorFailure::No);
        AblationSummary { label: label.to_owned(), total: results.len(), sta, out, su, critical, any_of }
    }

    /// Fraction of experiments that ended critical.
    pub fn critical_rate(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.critical as f64 / self.total as f64
    }
}

impl std::fmt::Display for AblationSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<12} n={:<5} Sta={:<4} Out={:<4} SU={:<4} critical={:<4} ({:.1}%) any-OF={}",
            self.label,
            self.total,
            self.sta,
            self.out,
            self.su,
            self.critical,
            100.0 * self.critical_rate(),
            self.any_of,
        )
    }
}

/// Extracts the critical experiments (Sta/Out/SU outcomes) from campaign
/// results as a replayable plan — the paper's critical-field follow-up
/// set (§V-C2 re-runs "the injections targeting the critical data
/// fields").
pub fn critical_replay_plan(results: &CampaignResults) -> Vec<PlannedExperiment> {
    results
        .rows
        .iter()
        .filter(|r| r.of.is_system_wide() || r.cf == ClientFailure::Su)
        .map(|r| PlannedExperiment { scenario: r.scenario, fault: r.fault, spec: r.spec.clone() })
        .collect()
}

/// Extracts every *fired* config-defect experiment from campaign results
/// as a replayable plan. Unlike [`critical_replay_plan`] this keeps the
/// non-critical rows too: a validating-admission webhook is judged on
/// how many defective specs it catches overall, not only on the ones
/// that escalated to Sta/Out/SU.
pub fn config_replay_plan(results: &CampaignResults) -> Vec<PlannedExperiment> {
    results
        .rows
        .iter()
        .filter(|r| r.fired && matches!(r.spec.point, crate::injector::InjectionPoint::Config { .. }))
        .map(|r| PlannedExperiment { scenario: r.scenario, fault: r.fault, spec: r.spec.clone() })
        .collect()
}

/// Per-family detection coverage of one defended arm against the
/// unmitigated arm, over the *same* plan (rows correspond index-wise).
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyCoverage {
    /// The fault family.
    pub family: mutiny_faults::Fault,
    /// Experiments replayed for this family.
    pub n: usize,
    /// Rows that failed (any OF, or a client failure) unmitigated.
    pub failed_unmitigated: usize,
    /// Failing rows the defense turned fully clean (No/Nsi).
    pub neutralized: usize,
    /// Rows where the defense surfaced a rejection (user-visible API
    /// error absent in the unmitigated run).
    pub rejects: usize,
    /// Rejections of specs whose unmitigated run was clean anyway — the
    /// policy's false-reject count.
    pub false_rejects: usize,
}

impl FamilyCoverage {
    /// Fraction of unmitigated failures this defense neutralized.
    pub fn coverage(&self) -> f64 {
        if self.failed_unmitigated == 0 {
            return 1.0;
        }
        self.neutralized as f64 / self.failed_unmitigated as f64
    }

    /// Fraction of replayed rows the defense rejected spuriously.
    pub fn false_reject_rate(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.false_rejects as f64 / self.n as f64
    }
}

impl std::fmt::Display for FamilyCoverage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<14} n={:<4} failed={:<4} neutralized={:<4} ({:>5.1}%) rejects={:<3} false-rejects={} ({:.1}%)",
            self.family.to_string(),
            self.n,
            self.failed_unmitigated,
            self.neutralized,
            100.0 * self.coverage(),
            self.rejects,
            self.false_rejects,
            100.0 * self.false_reject_rate(),
        )
    }
}

/// Compares two arms of the same plan row-by-row and aggregates
/// detection coverage per fault family. Panics if the arms ran
/// different plans (row counts must match).
pub fn family_coverage(
    unmitigated: &CampaignResults,
    defended: &CampaignResults,
) -> Vec<FamilyCoverage> {
    assert_eq!(
        unmitigated.len(),
        defended.len(),
        "coverage arms must replay the same plan"
    );
    let mut out: Vec<FamilyCoverage> = Vec::new();
    for (base, def) in unmitigated.rows.iter().zip(&defended.rows) {
        let cov = match out.iter_mut().find(|c| c.family == base.fault) {
            Some(c) => c,
            None => {
                out.push(FamilyCoverage {
                    family: base.fault,
                    n: 0,
                    failed_unmitigated: 0,
                    neutralized: 0,
                    rejects: 0,
                    false_rejects: 0,
                });
                out.last_mut().unwrap()
            }
        };
        cov.n += 1;
        let base_clean =
            base.of == OrchestratorFailure::No && base.cf == ClientFailure::Nsi;
        let def_clean = def.of == OrchestratorFailure::No && def.cf == ClientFailure::Nsi;
        if !base_clean {
            cov.failed_unmitigated += 1;
            if def_clean {
                cov.neutralized += 1;
            }
        }
        if def.user_error && !base.user_error {
            cov.rejects += 1;
            if base_clean {
                cov.false_rejects += 1;
            }
        }
    }
    out
}

/// Runs `plan` once per arm and returns the per-arm results, in arm
/// order. Baselines are rebuilt per arm so classification always compares
/// against the arm's own golden behaviour.
pub fn run_ablation(
    cluster: &ClusterConfig,
    plan: &[PlannedExperiment],
    arms: &[AblationArm],
    golden_runs: usize,
    seed: u64,
) -> Vec<(AblationArm, CampaignResults)> {
    let scenarios: Vec<Scenario> = {
        let mut w: Vec<Scenario> = plan.iter().map(|p| p.scenario).collect();
        w.sort();
        w.dedup();
        w
    };
    let mut out = Vec::with_capacity(arms.len());
    for arm in arms {
        let cfg = ClusterConfig { mitigations: arm.mitigations.clone(), ..cluster.clone() };
        let mut baselines: HashMap<Scenario, Baseline> = HashMap::new();
        for sc in &scenarios {
            baselines.insert(*sc, build_baseline(&cfg, *sc, golden_runs, seed));
        }
        let results = run_campaign(&cfg, plan, &baselines, seed);
        out.push((arm.clone(), results));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignRow;
    use crate::injector::{FieldMutation, InjectionPoint, InjectionSpec};
    use k8s_model::{Channel, Kind};
    use protowire::reflect::Value;

    fn row(of: OrchestratorFailure, cf: ClientFailure) -> CampaignRow {
        CampaignRow {
            scenario: mutiny_scenarios::DEPLOY,
            spec: InjectionSpec {
                channel: Channel::ApiToEtcd.into(),
                kind: Kind::ReplicaSet,
                point: InjectionPoint::Field {
                    path: "spec.replicas".into(),
                    mutation: FieldMutation::Set(Value::Int(0)),
                },
                occurrence: 1,
            },
            fault: mutiny_faults::VALUE_SET,
            of,
            cf,
            z: 0.0,
            fired: true,
            activated: true,
            user_error: false,
            path: Some("spec.replicas".into()),
        }
    }

    #[test]
    fn critical_replay_selects_sta_out_su() {
        let results = CampaignResults {
            rows: vec![
                row(OrchestratorFailure::No, ClientFailure::Nsi),
                row(OrchestratorFailure::Sta, ClientFailure::Nsi),
                row(OrchestratorFailure::Out, ClientFailure::Su),
                row(OrchestratorFailure::Net, ClientFailure::Su),
                row(OrchestratorFailure::LeR, ClientFailure::Hrt),
            ],
        };
        let plan = critical_replay_plan(&results);
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn summary_counts_and_rate() {
        let results = CampaignResults {
            rows: vec![
                row(OrchestratorFailure::No, ClientFailure::Nsi),
                row(OrchestratorFailure::Sta, ClientFailure::Nsi),
                row(OrchestratorFailure::Out, ClientFailure::Su),
                row(OrchestratorFailure::MoR, ClientFailure::Nsi),
            ],
        };
        let s = AblationSummary::of("test", &results);
        assert_eq!(s.total, 4);
        assert_eq!(s.sta, 1);
        assert_eq!(s.out, 1);
        assert_eq!(s.su, 1);
        assert_eq!(s.critical, 2);
        assert_eq!(s.any_of, 3);
        assert!((s.critical_rate() - 0.5).abs() < 1e-9);
        let rendered = s.to_string();
        assert!(rendered.contains("Sta=1"));
    }

    fn config_row(of: OrchestratorFailure, cf: ClientFailure, user_error: bool) -> CampaignRow {
        CampaignRow {
            spec: InjectionSpec {
                channel: Channel::KcmToApi.into(),
                kind: Kind::ReplicaSet,
                point: InjectionPoint::Config { defect: "selector".into(), param: 0 },
                occurrence: 1,
            },
            fault: mutiny_faults::CFG_SELECTOR,
            user_error,
            ..row(of, cf)
        }
    }

    #[test]
    fn config_replay_keeps_noncritical_fired_rows() {
        let results = CampaignResults {
            rows: vec![
                config_row(OrchestratorFailure::LeR, ClientFailure::Nsi, false),
                config_row(OrchestratorFailure::No, ClientFailure::Nsi, false),
                row(OrchestratorFailure::Sta, ClientFailure::Su), // wire fault: excluded
                CampaignRow {
                    fired: false,
                    ..config_row(OrchestratorFailure::No, ClientFailure::Nsi, false)
                },
            ],
        };
        let plan = config_replay_plan(&results);
        assert_eq!(plan.len(), 2, "fired config rows only, critical or not");
        assert!(plan.iter().all(|p| p.fault == mutiny_faults::CFG_SELECTOR));
    }

    #[test]
    fn family_coverage_counts_neutralizations_and_false_rejects() {
        let unmitigated = CampaignResults {
            rows: vec![
                config_row(OrchestratorFailure::Sta, ClientFailure::Nsi, false),
                config_row(OrchestratorFailure::LeR, ClientFailure::Hrt, false),
                config_row(OrchestratorFailure::No, ClientFailure::Nsi, false),
            ],
        };
        let defended = CampaignResults {
            rows: vec![
                config_row(OrchestratorFailure::No, ClientFailure::Nsi, false), // neutralized
                config_row(OrchestratorFailure::LeR, ClientFailure::Hrt, false), // missed
                config_row(OrchestratorFailure::No, ClientFailure::Nsi, true), // false reject
            ],
        };
        let cov = family_coverage(&unmitigated, &defended);
        assert_eq!(cov.len(), 1);
        let c = &cov[0];
        assert_eq!(c.family, mutiny_faults::CFG_SELECTOR);
        assert_eq!((c.n, c.failed_unmitigated, c.neutralized), (3, 2, 1));
        assert_eq!((c.rejects, c.false_rejects), (1, 1));
        assert!((c.coverage() - 0.5).abs() < 1e-9);
        assert!((c.false_reject_rate() - 1.0 / 3.0).abs() < 1e-9);
        let rendered = c.to_string();
        assert!(rendered.contains("neutralized=1"), "{rendered}");
    }

    #[test]
    fn standard_arms_cover_each_defense() {
        let arms = AblationArm::standard();
        assert_eq!(arms.len(), 7);
        assert!(arms.iter().any(|a| a.mitigations == MitigationsConfig::all()));
        assert!(arms.iter().any(|a| !a.mitigations.any()));
        // Each single-defense arm enables exactly one defense.
        let singles = arms
            .iter()
            .filter(|a| {
                let m = &a.mitigations;
                usize::from(m.integrity)
                    + usize::from(m.breaker)
                    + usize::from(m.guard)
                    + usize::from(m.policies)
                    + usize::from(m.validating)
                    == 1
            })
            .count();
        assert_eq!(singles, 5);
    }
}
