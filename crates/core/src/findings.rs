//! The paper's four key findings (F1–F4), computed from this
//! reproduction's own data.
//!
//! Paper reference values: F1 — 3.2% of injections caused system-wide
//! failures, 24.2% under/over-provisioning, 3.6% networking, ~70% no
//! effect, 82% activation; F2 — 51% of critical-failure injections hit
//! dependency-relationship fields; F3 — misconfigurations overloaded the
//! system in 13 of 81 real-world incidents; F4 — in more than 85% of
//! experiments the user received no error.

use crate::campaign::CampaignResults;
use crate::classify::OrchestratorFailure;
use crate::critical::dependency_share;
use crate::ffda::{self, ErrorCat, Fault};

/// F1: single-value corruption propagates to system-wide failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Finding1 {
    /// Share of injections causing Sta or Out.
    pub system_wide: f64,
    /// Share causing LeR or MoR.
    pub under_over_provisioning: f64,
    /// Share causing Net.
    pub service_networking: f64,
    /// Share with no perceivable effect.
    pub no_effect: f64,
    /// Share of fired injections whose instance was requested afterwards.
    pub activation_rate: f64,
}

/// Computes F1 from campaign results.
pub fn finding1(results: &CampaignResults) -> Finding1 {
    let total = results.len().max(1) as f64;
    Finding1 {
        system_wide: results.count(|r| r.of.is_system_wide()) as f64 / total,
        under_over_provisioning: results.count(|r| {
            matches!(r.of, OrchestratorFailure::LeR | OrchestratorFailure::MoR)
        }) as f64
            / total,
        service_networking: results.count(|r| r.of == OrchestratorFailure::Net) as f64 / total,
        no_effect: results.count(|r| r.of == OrchestratorFailure::No) as f64 / total,
        activation_rate: results.activation_rate(),
    }
}

/// F2: dependency-relationship fields dominate critical failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Finding2 {
    /// Share of critical-failure injections targeting dependency fields.
    pub dependency_share: f64,
    /// Number of distinct critical fields.
    pub critical_fields: usize,
}

/// Computes F2 from campaign results.
pub fn finding2(results: &CampaignResults) -> Finding2 {
    Finding2 {
        dependency_share: dependency_share(results),
        critical_fields: crate::critical::critical_fields(results).len(),
    }
}

/// F3: misconfigurations easily overload the system (from the FFDA).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Finding3 {
    /// Misconfiguration incidents that exhausted resources.
    pub misconfig_overload: usize,
    /// Total real-world incidents.
    pub total_incidents: usize,
}

/// Computes F3 from the FFDA dataset.
pub fn finding3() -> Finding3 {
    let data = ffda::incidents();
    Finding3 {
        misconfig_overload: ffda::count(&data, |i| {
            i.fault == Fault::HumanMistake && i.errors.contains(&ErrorCat::ResourceExhaustion)
        }),
        total_incidents: data.len(),
    }
}

/// F4: errors escape monitoring; the user stays unaware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Finding4 {
    /// Share of failure experiments (OF ≠ No) with no user-visible error.
    pub silent_failure_share: f64,
    /// Share of all experiments with no user-visible error.
    pub silent_share: f64,
}

/// Computes F4 from campaign results.
pub fn finding4(results: &CampaignResults) -> Finding4 {
    let failures = results.count(|r| r.of != OrchestratorFailure::No);
    let silent_failures =
        results.count(|r| r.of != OrchestratorFailure::No && !r.user_error);
    let total = results.len().max(1);
    let silent = results.count(|r| !r.user_error);
    Finding4 {
        silent_failure_share: if failures == 0 {
            1.0
        } else {
            silent_failures as f64 / failures as f64
        },
        silent_share: silent as f64 / total as f64,
    }
}

/// Renders all findings next to the paper's reference values.
pub fn render_findings(results: &CampaignResults) -> String {
    let f1 = finding1(results);
    let f2 = finding2(results);
    let f3 = finding3();
    let f4 = finding4(results);
    format!(
        "F1 — system-wide {:.1}% (paper 3.2%) | under/over-provisioning {:.1}% (24.2%) | \
         networking {:.1}% (3.6%) | no effect {:.1}% (~70%) | activation {:.0}% (82%)\n\
         F2 — dependency-field share of critical failures {:.0}% (paper 51%), \
         {} distinct critical fields (paper 34)\n\
         F3 — misconfiguration→overload incidents {}/{} (paper 13/81)\n\
         F4 — failures invisible to the user {:.0}% (paper >85%)",
        f1.system_wide * 100.0,
        f1.under_over_provisioning * 100.0,
        f1.service_networking * 100.0,
        f1.no_effect * 100.0,
        f1.activation_rate * 100.0,
        f2.dependency_share * 100.0,
        f2.critical_fields,
        f3.misconfig_overload,
        f3.total_incidents,
        f4.silent_failure_share * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignRow;
    use crate::classify::ClientFailure;
    use crate::injector::{FieldMutation, InjectionPoint, InjectionSpec};
    use k8s_model::{Channel, Kind};
    use protowire::reflect::Value;

    fn row(of: OrchestratorFailure, user_error: bool, path: &str) -> CampaignRow {
        CampaignRow {
            scenario: mutiny_scenarios::DEPLOY,
            spec: InjectionSpec {
                channel: Channel::ApiToEtcd.into(),
                kind: Kind::Pod,
                point: InjectionPoint::Field {
                    path: path.into(),
                    mutation: FieldMutation::Set(Value::Int(0)),
                },
                occurrence: 1,
            },
            fault: mutiny_faults::VALUE_SET,
            of,
            cf: ClientFailure::Nsi,
            z: 0.0,
            fired: true,
            activated: true,
            user_error,
            path: Some(path.into()),
        }
    }

    fn results() -> CampaignResults {
        CampaignResults {
            rows: vec![
                row(OrchestratorFailure::No, false, "spec.priority"),
                row(OrchestratorFailure::No, false, "spec.priority"),
                row(OrchestratorFailure::MoR, false, "spec.replicas"),
                row(OrchestratorFailure::Sta, false, "spec.selector.matchLabels['app']"),
                row(OrchestratorFailure::Out, true, "spec.template.metadata.labels['app']"),
            ],
        }
    }

    #[test]
    fn f1_fractions() {
        let f1 = finding1(&results());
        assert!((f1.system_wide - 0.4).abs() < 1e-9);
        assert!((f1.no_effect - 0.4).abs() < 1e-9);
        assert!((f1.under_over_provisioning - 0.2).abs() < 1e-9);
        assert!((f1.activation_rate - 1.0).abs() < 1e-9);
    }

    #[test]
    fn f2_counts_dependency_fields() {
        let f2 = finding2(&results());
        assert_eq!(f2.critical_fields, 2);
        assert!((f2.dependency_share - 1.0).abs() < 1e-9);
    }

    #[test]
    fn f3_matches_ffda() {
        let f3 = finding3();
        assert_eq!(f3.misconfig_overload, 13);
        assert_eq!(f3.total_incidents, 81);
    }

    #[test]
    fn f4_silent_failures() {
        let f4 = finding4(&results());
        // 3 failures, 2 silent.
        assert!((f4.silent_failure_share - 2.0 / 3.0).abs() < 1e-9);
        assert!((f4.silent_share - 0.8).abs() < 1e-9);
    }

    #[test]
    fn findings_render_all_four() {
        let s = render_findings(&results());
        for tag in ["F1", "F2", "F3", "F4", "paper"] {
            assert!(s.contains(tag), "missing {tag} in {s}");
        }
    }
}
