//! Critical-field analysis (§V-C2, finding F2).
//!
//! After the main campaign, the paper derives the set of *critical
//! fields* — those whose injections caused Stall, Outage, or Service
//! Unreachable — and finds that 20 of 34 belong to the fields managing
//! dependency relationships among resource instances (labels, label
//! selectors, ownerReferences, targetRef), with the identity triple
//! (name, namespace, uid) accounting for most of the rest. This module
//! categorizes field paths, extracts critical fields from campaign
//! results, and provides the semantics-specific data-set values used for
//! the follow-up injections.

use crate::campaign::{CampaignResults, PlannedExperiment};
use crate::classify::ClientFailure;
use crate::injector::{FieldMutation, InjectionPoint, InjectionSpec};
use crate::recorder::RecordedField;
use mutiny_scenarios::Scenario;
use protowire::reflect::Value;
use std::collections::BTreeMap;

/// The paper's grouping of critical fields (§V-C2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FieldCategory {
    /// Fields tracking dependency relationships: labels, selectors,
    /// ownerReferences, endpoint target references.
    Dependency,
    /// Identity fields: name, namespace, uid (they appear in the URL).
    Identity,
    /// Networking fields: protocols, addresses, ports, CIDRs.
    Networking,
    /// Replica counts.
    Replication,
    /// Remaining specification fields (images, commands, …).
    SpecOther,
}

impl FieldCategory {
    /// All categories.
    pub const ALL: [FieldCategory; 5] = [
        FieldCategory::Dependency,
        FieldCategory::Identity,
        FieldCategory::Networking,
        FieldCategory::Replication,
        FieldCategory::SpecOther,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            FieldCategory::Dependency => "dependency relationships",
            FieldCategory::Identity => "identity (name/namespace/uid)",
            FieldCategory::Networking => "networking",
            FieldCategory::Replication => "replica counts",
            FieldCategory::SpecOther => "other specification",
        }
    }
}

impl std::fmt::Display for FieldCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Categorizes a reflection path.
pub fn field_category(path: &str) -> FieldCategory {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    if path.contains("labels[")
        || path.contains("matchLabels[")
        || path.contains("selector[")
        || path.contains("ownerReferences[")
        || path.contains("annotations[")
        || leaf == "podName"
    {
        return FieldCategory::Dependency;
    }
    if matches!(leaf, "name" | "namespace" | "uid") && path.contains("metadata.") {
        return FieldCategory::Identity;
    }
    if matches!(
        leaf,
        "clusterIP" | "port" | "targetPort" | "protocol" | "podCIDR" | "ip" | "internalIP"
            | "podIP" | "nodeName"
    ) {
        return FieldCategory::Networking;
    }
    if leaf == "replicas" {
        return FieldCategory::Replication;
    }
    FieldCategory::SpecOther
}

/// One critical field: a path whose injections caused Sta, Out, or SU.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalField {
    /// Reflection path.
    pub path: String,
    /// Paper category.
    pub category: FieldCategory,
    /// Number of critical-failure experiments targeting it.
    pub critical_injections: usize,
}

/// Extracts the critical fields from campaign results.
pub fn critical_fields(results: &CampaignResults) -> Vec<CriticalField> {
    let mut by_path: BTreeMap<String, usize> = BTreeMap::new();
    for row in &results.rows {
        let critical = row.of.is_system_wide() || row.cf == ClientFailure::Su;
        if !critical {
            continue;
        }
        if let Some(path) = &row.path {
            *by_path.entry(path.clone()).or_insert(0) += 1;
        }
    }
    by_path
        .into_iter()
        .map(|(path, critical_injections)| CriticalField {
            category: field_category(&path),
            path,
            critical_injections,
        })
        .collect()
}

/// Share of critical-failure experiments that targeted dependency fields
/// (the paper reports 51%).
pub fn dependency_share(results: &CampaignResults) -> f64 {
    let critical: Vec<_> = results
        .rows
        .iter()
        .filter(|r| (r.of.is_system_wide() || r.cf == ClientFailure::Su) && r.path.is_some())
        .collect();
    if critical.is_empty() {
        return 0.0;
    }
    let dep = critical
        .iter()
        .filter(|r| {
            matches!(
                field_category(r.path.as_deref().unwrap_or("")),
                FieldCategory::Dependency
            )
        })
        .count();
    dep as f64 / critical.len() as f64
}

/// Semantics-specific data-set values for a critical field (the second
/// injection pass of §IV-C).
pub fn semantic_values(path: &str, sample: &Value) -> Vec<Value> {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    match (field_category(path), sample) {
        (FieldCategory::Replication, _) => {
            vec![Value::Int(1), Value::Int(64)]
        }
        (FieldCategory::Networking, Value::Int(_)) => {
            vec![Value::Int(81), Value::Int(8443)]
        }
        (FieldCategory::Networking, Value::Str(_)) if leaf == "nodeName" => {
            vec![Value::Str("ghost-node".into())]
        }
        (FieldCategory::Networking, Value::Str(_)) if leaf == "clusterIP" || leaf == "ip" => {
            vec![Value::Str("10.99.99.99".into()), Value::Str("not-an-ip".into())]
        }
        (FieldCategory::Networking, Value::Str(_)) if leaf == "podCIDR" => {
            vec![Value::Str("10.99.0.0/16".into()), Value::Str("garbage".into())]
        }
        (FieldCategory::Dependency, Value::Str(_)) => {
            vec![Value::Str("corrupted-value".into())]
        }
        (FieldCategory::Identity, Value::Str(_)) => {
            vec![Value::Str("ghost".into())]
        }
        (_, Value::Str(_)) => vec![Value::Str("invalid".into())],
        (_, Value::Int(_)) => vec![Value::Int(-1)],
        (_, Value::Bool(b)) => vec![Value::Bool(!b)],
    }
}

/// Builds the critical-field follow-up plan: data-set injections with
/// semantics-specific values on the critical paths.
pub fn generate_critical_plan(
    fields: &[RecordedField],
    critical: &[CriticalField],
    scenario: Scenario,
) -> Vec<PlannedExperiment> {
    let mut plan = Vec::new();
    for cf in critical {
        let Some(rf) = fields.iter().find(|f| f.path == cf.path) else { continue };
        for value in semantic_values(&cf.path, &rf.sample) {
            for occurrence in 1..=2u32 {
                plan.push(PlannedExperiment {
                    scenario,
                    fault: mutiny_faults::VALUE_SET,
                    spec: InjectionSpec {
                        channel: rf.channel,
                        kind: rf.kind,
                        point: InjectionPoint::Field {
                            path: cf.path.clone(),
                            mutation: FieldMutation::Set(value.clone()),
                        },
                        occurrence,
                    },
                });
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignRow;
    use crate::classify::OrchestratorFailure;
    use k8s_model::{Channel, Kind};

    #[test]
    fn categorizes_paper_fields() {
        assert_eq!(
            field_category("spec.template.metadata.labels['app']"),
            FieldCategory::Dependency
        );
        assert_eq!(field_category("spec.selector.matchLabels['app']"), FieldCategory::Dependency);
        assert_eq!(
            field_category("metadata.ownerReferences[0].uid"),
            FieldCategory::Dependency
        );
        assert_eq!(field_category("spec.selector['app']"), FieldCategory::Dependency);
        assert_eq!(field_category("metadata.name"), FieldCategory::Identity);
        assert_eq!(field_category("metadata.namespace"), FieldCategory::Identity);
        assert_eq!(field_category("metadata.uid"), FieldCategory::Identity);
        assert_eq!(field_category("spec.clusterIP"), FieldCategory::Networking);
        assert_eq!(field_category("spec.port"), FieldCategory::Networking);
        assert_eq!(field_category("spec.nodeName"), FieldCategory::Networking);
        assert_eq!(field_category("spec.podCIDR"), FieldCategory::Networking);
        assert_eq!(field_category("spec.replicas"), FieldCategory::Replication);
        assert_eq!(field_category("spec.containers[0].image"), FieldCategory::SpecOther);
        assert_eq!(field_category("spec.containers[0].command[0]"), FieldCategory::SpecOther);
    }

    fn row(path: &str, of: OrchestratorFailure, cf: ClientFailure) -> CampaignRow {
        CampaignRow {
            scenario: mutiny_scenarios::DEPLOY,
            spec: InjectionSpec {
                channel: Channel::ApiToEtcd.into(),
                kind: Kind::ReplicaSet,
                point: InjectionPoint::Field {
                    path: path.into(),
                    mutation: FieldMutation::Set(Value::Int(0)),
                },
                occurrence: 1,
            },
            fault: mutiny_faults::VALUE_SET,
            of,
            cf,
            z: 0.0,
            fired: true,
            activated: true,
            user_error: false,
            path: Some(path.into()),
        }
    }

    #[test]
    fn critical_extraction_and_dependency_share() {
        let results = CampaignResults {
            rows: vec![
                row("spec.selector.matchLabels['app']", OrchestratorFailure::Sta, ClientFailure::Nsi),
                row("spec.selector.matchLabels['app']", OrchestratorFailure::Out, ClientFailure::Su),
                row("metadata.name", OrchestratorFailure::Sta, ClientFailure::Nsi),
                row("spec.replicas", OrchestratorFailure::MoR, ClientFailure::Nsi), // not critical
            ],
        };
        let crit = critical_fields(&results);
        assert_eq!(crit.len(), 2);
        assert!(crit.iter().any(|c| c.category == FieldCategory::Dependency
            && c.critical_injections == 2));
        let share = dependency_share(&results);
        assert!((share - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn semantic_values_are_type_consistent() {
        for (path, sample) in [
            ("spec.replicas", Value::Int(2)),
            ("spec.port", Value::Int(80)),
            ("spec.nodeName", Value::Str("w1".into())),
            ("spec.clusterIP", Value::Str("10.96.0.1".into())),
            ("spec.podCIDR", Value::Str("10.244.0.0/24".into())),
            ("metadata.labels['app']", Value::Str("web".into())),
            ("metadata.name", Value::Str("web-1".into())),
            ("spec.paused", Value::Bool(false)),
        ] {
            let values = semantic_values(path, &sample);
            assert!(!values.is_empty(), "{path}");
            for v in values {
                assert_eq!(
                    std::mem::discriminant(&v),
                    std::mem::discriminant(&sample),
                    "type drift for {path}"
                );
            }
        }
    }

    #[test]
    fn critical_plan_generation() {
        let fields = vec![RecordedField {
            channel: Channel::ApiToEtcd.into(),
            kind: Kind::ReplicaSet,
            path: "spec.replicas".into(),
            field_type: protowire::reflect::FieldType::Int,
            sample: Value::Int(2),
            message_count: 3,
            max_occurrence: 2,
        }];
        let critical = vec![CriticalField {
            path: "spec.replicas".into(),
            category: FieldCategory::Replication,
            critical_injections: 1,
        }];
        let plan = generate_critical_plan(&fields, &critical, mutiny_scenarios::DEPLOY);
        // 2 semantic values × 2 occurrences.
        assert_eq!(plan.len(), 4);
    }
}
