//! # mutiny-mitigations — the paper's §VI-B proposals, implemented
//!
//! The Mutiny paper closes with a list of defenses that Kubernetes lacks
//! and that its injection campaign shows are needed ("What can we do about
//! failures?", §VI-B). This crate implements each one against the
//! simulated control plane, so the ablation benches can quantify how many
//! of the campaign's critical failures each defense removes:
//!
//! * [`catalog`] — the critical-field catalog: which field paths carry
//!   dependency-tracking, identity, networking, or replication semantics
//!   (the fields behind 51% of critical failures, F2), and the paper's
//!   observation that they are <10% of all fields;
//! * [`checksum`] — redundancy codes (CRC-32) sealed over the critical
//!   fields of every stored object and verified on every decode, with
//!   roll-back-to-last-good repair ("simple data redundancy mechanisms …
//!   can protect the cluster from hardware faults with a negligible
//!   overhead");
//! * [`breaker`] — a replication circuit breaker that detects uncontrolled
//!   pod creation per owner and suspends the runaway controller
//!   ("circuit breakers must be systematically designed to cover all the
//!   resource kinds that can cause overload errors, for example, when the
//!   relationship between resource instances is broken");
//! * [`guard`] — a critical-field change journal with health monitoring
//!   and automatic rollback ("the system should log changes to labels that
//!   can cause critical failures, monitor whether those changes alter
//!   system availability, and possibly roll back to the old values");
//! * [`policy`] — stricter admission checks ("scaling of coreDNS to 0
//!   should be denied", "reject the spawning of a large number of Pods
//!   without resource limits", namespace resource quotas);
//! * [`validating`] — validating admission against the configuration-
//!   defect fault dimension (`cfg-*` families): repairs or rejects
//!   semantically broken specs — wrong requests/limits, broken
//!   selector/template invariants, flappy probes, pathological grace
//!   periods, runaway replica counts — before they reach a controller.
//!
//! ## Quickstart
//!
//! ```
//! use k8s_apiserver::ApiServer;
//! use mutiny_mitigations::{checksum::CriticalFieldSealer, policy};
//! use std::rc::Rc;
//! # use etcd_sim::Etcd;
//! # use k8s_model::NoopInterceptor;
//! # use simkit::Trace;
//! # use std::cell::RefCell;
//!
//! # let etcd = Etcd::new(1, 1 << 20);
//! # let interceptor: k8s_apiserver::InterceptorHandle =
//! #     Rc::new(RefCell::new(NoopInterceptor));
//! # let trace: k8s_apiserver::TraceHandle = Rc::new(RefCell::new(Trace::new(64)));
//! let mut api = ApiServer::new(etcd, interceptor, trace);
//! api.install_integrity(Rc::new(CriticalFieldSealer::default()));
//! api.install_policy(Box::new(policy::DenyCriticalScaleToZero));
//! ```

pub mod breaker;
pub mod catalog;
pub mod checksum;
pub mod guard;
pub mod policy;
pub mod validating;

pub use breaker::{BreakerConfig, BreakerMetrics, ReplicationBreaker};
pub use catalog::{critical_paths, is_critical_path, CriticalFieldCatalog};
pub use checksum::{crc32, CriticalFieldSealer};
pub use guard::{ChangeRecord, CriticalFieldGuard, GuardConfig, GuardMetrics, HealthSample};
pub use policy::{
    DenyCriticalScaleToZero, NamespacePodQuota, ReplicaCeiling, RequireResourceLimits,
};
pub use validating::ValidatingAdmission;

/// Which mitigations a cluster enables. All off by default, so installing
/// the default bundle changes nothing — mirrors how each defense must be
/// opted into in a real deployment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MitigationsConfig {
    /// Seal + verify redundancy codes over critical fields.
    pub integrity: bool,
    /// Suspend controllers that create children uncontrollably.
    pub breaker: bool,
    /// Journal critical-field changes, monitor health, roll back.
    pub guard: bool,
    /// Install the stricter admission policies.
    pub policies: bool,
    /// Install validating admission against config defects.
    pub validating: bool,
}

impl MitigationsConfig {
    /// Every defense enabled.
    pub fn all() -> MitigationsConfig {
        MitigationsConfig {
            integrity: true,
            breaker: true,
            guard: true,
            policies: true,
            validating: true,
        }
    }

    /// True when at least one defense is enabled.
    pub fn any(&self) -> bool {
        self.integrity || self.breaker || self.guard || self.policies || self.validating
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_inert() {
        assert!(!MitigationsConfig::default().any());
    }

    #[test]
    fn all_config_enables_everything() {
        let c = MitigationsConfig::all();
        assert!(c.integrity && c.breaker && c.guard && c.policies && c.validating);
        assert!(c.any());
    }
}
