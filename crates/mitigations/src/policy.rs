//! Stricter admission checks.
//!
//! §VI-B proposes concrete denials Kubernetes does not enforce out of the
//! box: "stricter checks can be enforced: e.g., scaling of coreDNS to 0
//! should be denied"; "user requests that can overload the system should
//! be blocked, e.g., reject the spawning of a large number of Pods
//! without resource limits"; and namespace quotas to "limit resource
//! counts … and mitigate failures". Each proposal is one
//! [`AdmissionPolicy`] here.

use k8s_apiserver::{AdmissionPolicy, PolicyCtx};
use k8s_model::{Object, Op};

/// Label marking a Deployment as critical: scaling it to zero (or deleting
/// it) is denied, like coreDNS.
pub const CRITICAL_LABEL: &str = "mutiny.io/critical";

fn is_critical_deployment(d: &k8s_model::Deployment) -> bool {
    d.metadata.labels.get("k8s-app").map(String::as_str) == Some("kube-dns")
        || d.metadata.labels.get(CRITICAL_LABEL).map(String::as_str) == Some("true")
}

/// Denies scaling critical Deployments (coreDNS, anything labelled
/// `mutiny.io/critical=true`) to zero replicas, and denies deleting them.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenyCriticalScaleToZero;

impl AdmissionPolicy for DenyCriticalScaleToZero {
    fn clone_box(&self) -> Box<dyn AdmissionPolicy> {
        Box::new(*self)
    }

    fn name(&self) -> &str {
        "deny-critical-scale-to-zero"
    }

    fn review(&mut self, ctx: &PolicyCtx<'_>) -> Result<(), String> {
        let Object::Deployment(d) = ctx.object else { return Ok(()) };
        if !is_critical_deployment(d) {
            return Ok(());
        }
        match ctx.op {
            Op::Delete => Err(format!(
                "deployment {}/{} is critical and must not be deleted",
                d.metadata.namespace, d.metadata.name
            )),
            Op::Create | Op::Update if d.spec.replicas < 1 => Err(format!(
                "deployment {}/{} is critical and must keep at least 1 replica",
                d.metadata.namespace, d.metadata.name
            )),
            _ => Ok(()),
        }
    }
}

/// Rejects pods (and pod templates) without CPU and memory requests — the
/// unbounded-pod overload guard.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequireResourceLimits;

impl RequireResourceLimits {
    fn check_containers(containers: &[k8s_model::Container], what: &str) -> Result<(), String> {
        for c in containers {
            if c.cpu_milli <= 0 || c.memory_mb <= 0 {
                return Err(format!(
                    "{what} container {:?} has no resource requests; unbounded pods can \
                     overload nodes",
                    c.name
                ));
            }
        }
        Ok(())
    }
}

impl AdmissionPolicy for RequireResourceLimits {
    fn clone_box(&self) -> Box<dyn AdmissionPolicy> {
        Box::new(*self)
    }

    fn name(&self) -> &str {
        "require-resource-limits"
    }

    fn review(&mut self, ctx: &PolicyCtx<'_>) -> Result<(), String> {
        if ctx.op == Op::Delete {
            return Ok(());
        }
        match ctx.object {
            Object::Pod(p) => Self::check_containers(&p.spec.containers, "pod"),
            Object::Deployment(d) => {
                Self::check_containers(&d.spec.template.spec.containers, "template")
            }
            Object::ReplicaSet(rs) => {
                Self::check_containers(&rs.spec.template.spec.containers, "template")
            }
            Object::DaemonSet(ds) => {
                Self::check_containers(&ds.spec.template.spec.containers, "template")
            }
            _ => Ok(()),
        }
    }
}

/// Caps the replica count of any single workload (the "reject the spawning
/// of a large number of Pods" guard).
#[derive(Debug, Clone, Copy)]
pub struct ReplicaCeiling {
    /// Maximum replicas accepted for one workload.
    pub max: i64,
}

impl Default for ReplicaCeiling {
    fn default() -> Self {
        ReplicaCeiling { max: 50 }
    }
}

impl AdmissionPolicy for ReplicaCeiling {
    fn clone_box(&self) -> Box<dyn AdmissionPolicy> {
        Box::new(*self)
    }

    fn name(&self) -> &str {
        "replica-ceiling"
    }

    fn review(&mut self, ctx: &PolicyCtx<'_>) -> Result<(), String> {
        if ctx.op == Op::Delete {
            return Ok(());
        }
        let replicas = match ctx.object {
            Object::Deployment(d) => d.spec.replicas,
            Object::ReplicaSet(rs) => rs.spec.replicas,
            Object::HorizontalPodAutoscaler(h) => h.spec.max_replicas,
            _ => return Ok(()),
        };
        if replicas > self.max {
            return Err(format!("replicas {replicas} exceed the cluster ceiling {}", self.max));
        }
        Ok(())
    }
}

/// Per-namespace pod-count quota (the §VI-B namespace resource-quota
/// mitigation). Exempt namespaces (typically `kube-system`) are not
/// counted or capped.
#[derive(Debug, Clone)]
pub struct NamespacePodQuota {
    /// Maximum pods per non-exempt namespace.
    pub max_pods: usize,
    /// Namespaces the quota does not apply to.
    pub exempt: Vec<String>,
}

impl Default for NamespacePodQuota {
    fn default() -> Self {
        NamespacePodQuota { max_pods: 60, exempt: vec!["kube-system".to_owned()] }
    }
}

impl AdmissionPolicy for NamespacePodQuota {
    fn clone_box(&self) -> Box<dyn AdmissionPolicy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        "namespace-pod-quota"
    }

    fn review(&mut self, ctx: &PolicyCtx<'_>) -> Result<(), String> {
        if ctx.op != Op::Create {
            return Ok(());
        }
        let Object::Pod(p) = ctx.object else { return Ok(()) };
        let ns = &p.metadata.namespace;
        if self.exempt.iter().any(|e| e == ns) {
            return Ok(());
        }
        let prefix = format!("/registry/pods/{ns}/");
        let current = ctx.view.keys().filter(|k| k.starts_with(&prefix)).count();
        if current >= self.max_pods {
            return Err(format!(
                "namespace {ns:?} is at its pod quota ({current}/{})",
                self.max_pods
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_model::{Channel, Container, Deployment, ObjectMeta, Pod};
    use std::collections::HashMap;

    fn ctx<'a>(
        op: Op,
        object: &'a Object,
        view: &'a HashMap<String, std::rc::Rc<Object>>,
    ) -> PolicyCtx<'a> {
        PolicyCtx { op, channel: Channel::UserToApi, object, existing: None, now: 0, view }
    }

    fn dns_deployment(replicas: i64) -> Object {
        let mut d = Deployment::default();
        d.metadata = ObjectMeta::named("kube-system", "coredns");
        d.metadata.labels.insert("k8s-app".into(), "kube-dns".into());
        d.spec.replicas = replicas;
        Object::Deployment(d)
    }

    #[test]
    fn coredns_scale_to_zero_denied() {
        let view = HashMap::new();
        let mut p = DenyCriticalScaleToZero;
        let zero = dns_deployment(0);
        assert!(p.review(&ctx(Op::Update, &zero, &view)).is_err());
        let one = dns_deployment(1);
        assert!(p.review(&ctx(Op::Update, &one, &view)).is_ok());
        assert!(p.review(&ctx(Op::Delete, &one, &view)).is_err());
    }

    #[test]
    fn ordinary_deployment_may_scale_to_zero() {
        let view = HashMap::new();
        let mut p = DenyCriticalScaleToZero;
        let mut d = Deployment::default();
        d.metadata = ObjectMeta::named("default", "web");
        d.spec.replicas = 0;
        assert!(p.review(&ctx(Op::Update, &Object::Deployment(d), &view)).is_ok());
    }

    #[test]
    fn critical_label_protects_any_deployment() {
        let view = HashMap::new();
        let mut p = DenyCriticalScaleToZero;
        let mut d = Deployment::default();
        d.metadata = ObjectMeta::named("default", "payments");
        d.metadata.labels.insert(CRITICAL_LABEL.into(), "true".into());
        d.spec.replicas = 0;
        assert!(p.review(&ctx(Op::Update, &Object::Deployment(d), &view)).is_err());
    }

    fn pod_with_resources(cpu: i64, mem: i64) -> Object {
        let mut p = Pod::default();
        p.metadata = ObjectMeta::named("default", "p");
        p.spec.containers.push(Container {
            name: "c".into(),
            image: "img:1".into(),
            cpu_milli: cpu,
            memory_mb: mem,
            ..Default::default()
        });
        Object::Pod(p)
    }

    #[test]
    fn unbounded_pod_denied() {
        let view = HashMap::new();
        let mut p = RequireResourceLimits;
        assert!(p.review(&ctx(Op::Create, &pod_with_resources(0, 64), &view)).is_err());
        assert!(p.review(&ctx(Op::Create, &pod_with_resources(100, 0), &view)).is_err());
        assert!(p.review(&ctx(Op::Create, &pod_with_resources(100, 64), &view)).is_ok());
    }

    #[test]
    fn replica_ceiling_caps_workloads_and_hpa() {
        let view = HashMap::new();
        let mut p = ReplicaCeiling { max: 10 };
        let mut d = Deployment::default();
        d.metadata = ObjectMeta::named("default", "web");
        d.spec.replicas = 11;
        assert!(p.review(&ctx(Op::Create, &Object::Deployment(d.clone()), &view)).is_err());
        d.spec.replicas = 10;
        assert!(p.review(&ctx(Op::Create, &Object::Deployment(d), &view)).is_ok());

        let mut h = k8s_model::HorizontalPodAutoscaler::default();
        h.metadata = ObjectMeta::named("default", "hpa");
        h.spec.max_replicas = 500; // a corrupted bound
        assert!(
            p.review(&ctx(Op::Create, &Object::HorizontalPodAutoscaler(h), &view)).is_err()
        );
    }

    #[test]
    fn pod_quota_counts_namespace_pods() {
        let mut view = HashMap::new();
        for i in 0..3 {
            let key = format!("/registry/pods/default/p{i}");
            view.insert(key, std::rc::Rc::new(pod_with_resources(100, 64)));
        }
        let mut p = NamespacePodQuota { max_pods: 3, exempt: vec!["kube-system".into()] };
        assert!(p.review(&ctx(Op::Create, &pod_with_resources(100, 64), &view)).is_err());

        // kube-system is exempt.
        let mut sys = Pod::default();
        sys.metadata = ObjectMeta::named("kube-system", "sys");
        sys.spec.containers.push(Container {
            name: "c".into(),
            image: "img:1".into(),
            ..Default::default()
        });
        assert!(p.review(&ctx(Op::Create, &Object::Pod(sys), &view)).is_ok());
    }

    #[test]
    fn quota_ignores_updates_and_deletes() {
        let view = HashMap::new();
        let mut p = NamespacePodQuota { max_pods: 0, exempt: Vec::new() };
        let pod = pod_with_resources(100, 64);
        assert!(p.review(&ctx(Op::Update, &pod, &view)).is_ok());
        assert!(p.review(&ctx(Op::Delete, &pod, &view)).is_ok());
    }
}
