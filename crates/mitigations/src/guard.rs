//! The critical-field change guard: journal, health monitor, rollback.
//!
//! The paper's headline recommendation (§I, §VI-B): "the system should log
//! changes to labels that can cause critical failures, monitor whether
//! those changes alter system availability, and possibly roll back to the
//! old values when needed."
//!
//! [`CriticalFieldGuard`] watches the apiserver's event stream and keeps a
//! journal of every change to a critical field (the [`crate::catalog`]
//! subset). After each guarded change it watches cluster health for a
//! configurable window; if health degrades while changes are in the
//! window, the guard rolls the changed objects back to their pre-change
//! snapshots. The journal alone also fixes the paper's F4 (user
//! unawareness): the divergence is *recorded* even when the apiserver
//! acknowledged the original request without error.

use crate::catalog::critical_paths;
use k8s_apiserver::ApiServer;
use k8s_model::{Channel, Kind, Object};
use protowire::reflect::Value;
use std::collections::HashMap;

/// Guard tunables.
#[derive(Debug, Clone)]
pub struct GuardConfig {
    /// How long after a guarded change health is attributed to it.
    pub observe_window_ms: u64,
    /// Rollback attempts per object key (prevents rollback loops).
    pub max_rollbacks_per_key: u32,
    /// Pod-count growth per window considered a storm.
    pub storm_threshold: usize,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            observe_window_ms: 20_000,
            max_rollbacks_per_key: 1,
            storm_threshold: 15,
        }
    }
}

/// One journaled critical-field change.
#[derive(Debug, Clone)]
pub struct ChangeRecord {
    /// When the change was observed.
    pub at: u64,
    /// Registry key of the changed object (shared with the watch event
    /// that produced it).
    pub key: std::rc::Rc<str>,
    /// Kind of the changed object.
    pub kind: Kind,
    /// Changed paths as `(path, old, new)`; `None` means absent.
    pub changes: Vec<(String, Option<Value>, Option<Value>)>,
    /// True once the guard rolled this change back.
    pub rolled_back: bool,
}

/// A point-in-time health assessment derived from the API state.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HealthSample {
    /// At least one DNS pod is ready.
    pub dns_ready: bool,
    /// Some networking pod (net-agent / kube-proxy) is not ready.
    pub netpods_failed: bool,
    /// Pod count grew faster than the storm threshold.
    pub pod_storm: bool,
    /// The data store refused writes (disk full).
    pub etcd_stalled: bool,
    /// Nodes currently reporting not ready.
    pub nodes_not_ready: usize,
}

impl HealthSample {
    /// True when any degradation signal is raised.
    pub fn degraded(&self) -> bool {
        !self.dns_ready
            || self.netpods_failed
            || self.pod_storm
            || self.etcd_stalled
            || self.nodes_not_ready > 0
    }
}

/// Guard counters, exposed to the ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardMetrics {
    /// Critical-field changes journaled.
    pub journaled: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Rollbacks skipped because the per-key budget was spent.
    pub rollback_budget_exhausted: u64,
    /// Compactions requested in response to a degraded store.
    pub store_compactions: u64,
}

/// Watches for critical-field changes and rolls them back when cluster
/// health degrades inside the observation window.
#[derive(Clone)]
pub struct CriticalFieldGuard {
    cfg: GuardConfig,
    cursor: u64,
    /// Last known state per key (the rollback target).
    snapshots: HashMap<std::rc::Rc<str>, std::rc::Rc<Object>>,
    /// Journal of guarded changes (pre-change snapshot retained until the
    /// window expires).
    journal: Vec<ChangeRecord>,
    /// Pre-change snapshots for journal entries still in the window.
    pending: Vec<(usize, std::rc::Rc<Object>)>,
    /// Rollbacks already spent per key.
    rollbacks_done: HashMap<std::rc::Rc<str>, u32>,
    /// Pod count at the last step (storm detection).
    last_pod_count: usize,
    last_step: u64,
    /// True once the cluster finished bootstrapping (first healthy step);
    /// the guard does not attribute bootstrap churn to user changes.
    armed: bool,
    /// Counters.
    pub metrics: GuardMetrics,
}

impl std::fmt::Debug for CriticalFieldGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CriticalFieldGuard")
            .field("journal", &self.journal.len())
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl CriticalFieldGuard {
    /// Creates a guard watching from the apiserver's current event head,
    /// seeded with a snapshot of every object already stored (a controller
    /// re-list on startup).
    pub fn new(cfg: GuardConfig, api: &mut ApiServer) -> CriticalFieldGuard {
        let cursor = api.watch_head();
        let mut snapshots = HashMap::new();
        for kind in Kind::ALL {
            for obj in api.list(kind, None) {
                snapshots.insert(obj.key().into(), obj);
            }
        }
        CriticalFieldGuard {
            cfg,
            cursor,
            snapshots,
            journal: Vec::new(),
            pending: Vec::new(),
            rollbacks_done: HashMap::new(),
            last_pod_count: 0,
            last_step: 0,
            armed: false,
            metrics: GuardMetrics::default(),
        }
    }

    /// The journal of observed critical-field changes.
    pub fn journal(&self) -> &[ChangeRecord] {
        &self.journal
    }

    /// Computes the current health sample from the API state.
    pub fn sample_health(&mut self, api: &mut ApiServer) -> HealthSample {
        let mut dns_ready = false;
        let mut netpods_failed = false;
        api.for_each(Kind::Pod, Some("kube-system"), |obj| {
            if let Object::Pod(p) = obj {
                if p.metadata.labels.get("k8s-app").map(String::as_str) == Some("kube-dns")
                    && p.is_ready()
                {
                    dns_ready = true;
                }
                if matches!(
                    p.metadata.labels.get("app").map(String::as_str),
                    Some("net-agent") | Some("kube-proxy")
                ) && !p.is_ready()
                {
                    netpods_failed = true;
                }
            }
        });
        let pods = api.count(Kind::Pod, None);
        let pod_storm = pods > self.last_pod_count + self.cfg.storm_threshold;
        self.last_pod_count = pods;
        let mut nodes_not_ready = 0usize;
        api.for_each(Kind::Node, None, |obj| {
            if let Object::Node(n) = obj {
                if !n.status.ready {
                    nodes_not_ready += 1;
                }
            }
        });
        HealthSample {
            dns_ready,
            netpods_failed,
            pod_storm,
            etcd_stalled: api.etcd().is_degraded(),
            nodes_not_ready,
        }
    }

    /// Runs one guard step at simulated time `now`: journal new changes,
    /// sample health, roll back if degraded.
    pub fn step(&mut self, api: &mut ApiServer, now: u64) {
        self.last_step = now;
        self.observe_changes(api, now);

        let health = self.sample_health(api);
        // Storage-pressure response: a degraded store (disk budget
        // exhausted or writes already rejected) gets an operator-style
        // compaction — semantics-preserving, reclaims the log engine's
        // physical bytes, and trims the watch log so lagging watchers
        // re-list instead of replaying into the stall.
        if health.etcd_stalled {
            api.etcd_mut().compact();
            self.metrics.store_compactions += 1;
        }
        if !self.armed {
            // Arm once the cluster is healthy; bootstrap churn is not a
            // guarded change's fault.
            if health.dns_ready && !health.netpods_failed && health.nodes_not_ready == 0 {
                self.armed = true;
            }
            self.expire_pending(now);
            return;
        }

        if health.degraded() {
            self.rollback_pending(api, now);
        }
        self.expire_pending(now);
    }

    fn observe_changes(&mut self, api: &mut ApiServer, now: u64) {
        let (events, next) = api.poll_events(self.cursor);
        self.cursor = next;
        for ev in events {
            // Pods and Endpoints are *derived* state: controllers rebuild
            // them from their owners, and their critical fields legitimately
            // churn through the lifecycle (bindings, IPs, readiness). The
            // guard protects the authored objects those derivations come
            // from; rolling back derived state would fight the controllers.
            if matches!(ev.kind, Kind::Pod | Kind::Endpoints) {
                continue;
            }
            match ev.object {
                Some(new_obj) => {
                    let old = self.snapshots.insert(ev.key.clone(), new_obj.clone());
                    let Some(old) = old else { continue };
                    let diffs = diff_critical(&old, &new_obj);
                    if diffs.is_empty() {
                        continue;
                    }
                    self.metrics.journaled += 1;
                    let idx = self.journal.len();
                    self.journal.push(ChangeRecord {
                        at: now,
                        key: ev.key.clone(),
                        kind: ev.kind,
                        changes: diffs,
                        rolled_back: false,
                    });
                    if self.armed {
                        self.pending.push((idx, old));
                    }
                }
                None => {
                    self.snapshots.remove(&ev.key);
                    // Deletions are not rolled back: recreating objects the
                    // user meant to delete would fight legitimate cleanup.
                    self.pending.retain(|(idx, _)| self.journal[*idx].key != ev.key);
                }
            }
        }
    }

    fn rollback_pending(&mut self, api: &mut ApiServer, now: u64) {
        let pending = std::mem::take(&mut self.pending);
        for (idx, old_obj) in pending {
            let record = &mut self.journal[idx];
            if now.saturating_sub(record.at) > self.cfg.observe_window_ms {
                continue; // expired while degraded for other reasons
            }
            let spent = self.rollbacks_done.entry(record.key.clone()).or_insert(0);
            if *spent >= self.cfg.max_rollbacks_per_key {
                self.metrics.rollback_budget_exhausted += 1;
                continue;
            }
            *spent += 1;
            let mut restore = (*old_obj).clone();
            // Bypass optimistic concurrency: the rollback wins.
            restore.meta_mut().resource_version = 0;
            if api.update(Channel::UserToApi, restore).is_ok() {
                record.rolled_back = true;
                self.metrics.rollbacks += 1;
            }
        }
    }

    fn expire_pending(&mut self, now: u64) {
        let window = self.cfg.observe_window_ms;
        let journal = &self.journal;
        self.pending
            .retain(|(idx, _)| now.saturating_sub(journal[*idx].at) <= window);
    }
}

/// True for a default/unset value: overwriting one is an initialization
/// (first assignment), not a suspicious change.
fn is_default(v: &Value) -> bool {
    match v {
        Value::Int(i) => *i == 0,
        Value::Str(s) => s.is_empty(),
        Value::Bool(b) => !*b,
    }
}

/// Critical-field differences between two versions of an object. First
/// assignments (default → value) are not reported: initialization is part
/// of the normal lifecycle, and "rolling back" to an unset value would
/// undo legitimate work.
fn diff_critical(
    old: &Object,
    new: &Object,
) -> Vec<(String, Option<Value>, Option<Value>)> {
    let old_fields: HashMap<String, Value> = critical_paths(old).into_iter().collect();
    let new_fields: HashMap<String, Value> = critical_paths(new).into_iter().collect();
    let mut out = Vec::new();
    for (path, old_v) in &old_fields {
        if is_default(old_v) {
            continue;
        }
        match new_fields.get(path) {
            Some(new_v) if new_v == old_v => {}
            other => out.push((path.clone(), Some(old_v.clone()), other.cloned())),
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcd_sim::Etcd;
    use k8s_apiserver::{InterceptorHandle, TraceHandle};
    use k8s_model::{Container, NoopInterceptor, ObjectMeta, Pod, Service};
    use simkit::Trace;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn api() -> ApiServer {
        let interceptor: InterceptorHandle = Rc::new(RefCell::new(NoopInterceptor));
        let trace: TraceHandle = Rc::new(RefCell::new(Trace::new(256)));
        ApiServer::new(Etcd::new(1, 8 << 20), interceptor, trace)
    }

    /// Installs a minimal healthy cluster: a ready DNS pod and one node.
    fn install_healthy(api: &mut ApiServer) {
        let node = k8s_model::Node::worker("w1", 8000, 4096);
        let mut node = node;
        node.status.ready = true;
        api.create(Channel::KubeletToApi, Object::Node(node)).unwrap();
        let mut dns = Pod::default();
        dns.metadata = ObjectMeta::named("kube-system", "coredns-1");
        dns.metadata.labels.insert("k8s-app".into(), "kube-dns".into());
        dns.spec.containers.push(Container {
            name: "c".into(),
            image: "dns:1".into(),
            ..Default::default()
        });
        dns.status.phase = "Running".into();
        dns.status.ready = true;
        api.create(Channel::ApiToEtcd, Object::Pod(dns)).unwrap();
    }

    fn install_service(api: &mut ApiServer) {
        let mut svc = Service::default();
        svc.metadata = ObjectMeta::named("default", "web-svc");
        svc.spec.selector.insert("app".into(), "web".into());
        svc.spec.cluster_ip = "10.96.0.20".into();
        svc.spec.port = 80;
        api.create(Channel::UserToApi, Object::Service(svc)).unwrap();
    }

    #[test]
    fn journals_critical_changes() {
        let mut a = api();
        install_healthy(&mut a);
        install_service(&mut a);
        let mut g = CriticalFieldGuard::new(GuardConfig::default(), &mut a);
        g.step(&mut a, 1_000); // snapshot + arm

        if let Some(Object::Service(svc)) = a.get(Kind::Service, "default", "web-svc").as_deref() {
            let mut svc = svc.clone();
            svc.spec.selector.insert("app".into(), "wea".into()); // corrupted
            a.update(Channel::ApiToEtcd, Object::Service(svc)).unwrap();
        }
        g.step(&mut a, 2_000);
        assert_eq!(g.metrics.journaled, 1);
        let rec = &g.journal()[0];
        assert!(rec.key.contains("web-svc"));
        assert!(rec.changes.iter().any(|(p, _, _)| p.contains("selector['app']")));
    }

    #[test]
    fn noncritical_changes_are_not_journaled() {
        let mut a = api();
        install_healthy(&mut a);
        install_service(&mut a);
        let mut g = CriticalFieldGuard::new(GuardConfig::default(), &mut a);
        g.step(&mut a, 1_000);
        // Touch nothing critical: generation/annotations churn only.
        if let Some(svc) = a.get(Kind::Service, "default", "web-svc") {
            let mut svc = (*svc).clone();
            svc.meta_mut().annotations.insert("note".into(), "hello".into());
            a.update(Channel::UserToApi, svc).unwrap();
        }
        g.step(&mut a, 2_000);
        assert_eq!(g.metrics.journaled, 0);
    }

    #[test]
    fn rolls_back_when_health_degrades_in_window() {
        let mut a = api();
        install_healthy(&mut a);
        install_service(&mut a);
        let mut g = CriticalFieldGuard::new(GuardConfig::default(), &mut a);
        g.step(&mut a, 1_000); // arm

        // Corrupt the service selector (critical) …
        if let Some(Object::Service(svc)) = a.get(Kind::Service, "default", "web-svc").as_deref() {
            let mut svc = svc.clone();
            svc.spec.selector.insert("app".into(), "wea".into());
            a.update(Channel::ApiToEtcd, Object::Service(svc)).unwrap();
        }
        g.step(&mut a, 2_000);
        // … then degrade health inside the window (DNS pod dies).
        if let Some(Object::Pod(dns)) = a.get(Kind::Pod, "kube-system", "coredns-1").as_deref() {
            let mut dns = dns.clone();
            dns.status.ready = false;
            a.update(Channel::KubeletToApi, Object::Pod(dns)).unwrap();
        }
        g.step(&mut a, 5_000);
        assert_eq!(g.metrics.rollbacks, 1);
        let svc = a.get(Kind::Service, "default", "web-svc").unwrap();
        if let Object::Service(svc) = &*svc {
            assert_eq!(svc.spec.selector["app"], "web", "selector not restored");
        }
        assert!(g.journal()[0].rolled_back);
    }

    #[test]
    fn healthy_changes_expire_without_rollback() {
        let mut a = api();
        install_healthy(&mut a);
        install_service(&mut a);
        let mut g = CriticalFieldGuard::new(GuardConfig::default(), &mut a);
        g.step(&mut a, 1_000);

        if let Some(Object::Service(svc)) = a.get(Kind::Service, "default", "web-svc").as_deref() {
            let mut svc = svc.clone();
            svc.spec.port = 8080; // a legitimate (if critical) change
            a.update(Channel::UserToApi, Object::Service(svc)).unwrap();
        }
        g.step(&mut a, 2_000);
        g.step(&mut a, 30_000); // window expires, health fine
        // Degrade health *after* the window: no rollback.
        if let Some(Object::Pod(dns)) = a.get(Kind::Pod, "kube-system", "coredns-1").as_deref() {
            let mut dns = dns.clone();
            dns.status.ready = false;
            a.update(Channel::KubeletToApi, Object::Pod(dns)).unwrap();
        }
        g.step(&mut a, 31_000);
        assert_eq!(g.metrics.rollbacks, 0);
        let svc = a.get(Kind::Service, "default", "web-svc").unwrap();
        if let Object::Service(svc) = &*svc {
            assert_eq!(svc.spec.port, 8080, "legitimate change must survive");
        }
    }

    #[test]
    fn rollback_budget_is_respected() {
        let cfg = GuardConfig { max_rollbacks_per_key: 0, ..GuardConfig::default() };
        let mut a = api();
        install_healthy(&mut a);
        install_service(&mut a);
        let mut g = CriticalFieldGuard::new(cfg, &mut a);
        g.step(&mut a, 1_000);
        if let Some(Object::Service(svc)) = a.get(Kind::Service, "default", "web-svc").as_deref() {
            let mut svc = svc.clone();
            svc.spec.selector.insert("app".into(), "wea".into());
            a.update(Channel::ApiToEtcd, Object::Service(svc)).unwrap();
        }
        g.step(&mut a, 2_000);
        if let Some(Object::Pod(dns)) = a.get(Kind::Pod, "kube-system", "coredns-1").as_deref() {
            let mut dns = dns.clone();
            dns.status.ready = false;
            a.update(Channel::KubeletToApi, Object::Pod(dns)).unwrap();
        }
        g.step(&mut a, 5_000);
        assert_eq!(g.metrics.rollbacks, 0);
        assert_eq!(g.metrics.rollback_budget_exhausted, 1);
    }

    #[test]
    fn degraded_store_triggers_compaction() {
        let mut a = api();
        install_healthy(&mut a);
        let mut g = CriticalFieldGuard::new(GuardConfig::default(), &mut a);
        g.step(&mut a, 1_000); // arm on a healthy cluster
        assert_eq!(g.metrics.store_compactions, 0);
        let before = a.etcd().compactions();
        a.etcd_mut().clamp_disk_budget(); // the etcd-disk-full actuation
        g.step(&mut a, 2_000);
        assert_eq!(g.metrics.store_compactions, 1);
        assert!(a.etcd().compactions() > before, "compaction must reach the engine");
        a.etcd_mut().restore_disk_budget();
        g.step(&mut a, 3_000);
        assert_eq!(g.metrics.store_compactions, 1, "a healthy store is not compacted");
    }

    #[test]
    fn diff_detects_removals_but_not_first_assignments() {
        let mut a = Service::default();
        a.metadata = ObjectMeta::named("default", "s");
        a.spec.selector.insert("app".into(), "web".into());
        let mut b = a.clone();
        b.spec.selector.remove("app");
        b.spec.selector.insert("tier".into(), "backend".into());
        let diffs = diff_critical(&Object::Service(a.clone()), &Object::Service(b));
        // Losing a selector entry is a guarded change …
        assert!(diffs.iter().any(|(p, o, n)| p.contains("app") && o.is_some() && n.is_none()));
        // … but a new entry (first assignment) is not: rolling it back
        // would undo legitimate initialization.
        assert!(!diffs.iter().any(|(p, _, _)| p.contains("tier")));

        // A scheduler binding ("" → node) must not be journaled.
        let mut before = k8s_model::Pod::default();
        before.metadata = ObjectMeta::named("default", "p");
        let mut after = before.clone();
        after.spec.node_name = "w1".into();
        let diffs = diff_critical(&Object::Pod(before), &Object::Pod(after));
        assert!(diffs.is_empty(), "first assignment journaled: {diffs:?}");
    }
}
