//! Redundancy codes over critical fields.
//!
//! §VI-B: "Simple data redundancy mechanisms, like redundancy codes on
//! critical fields, can protect the cluster from hardware faults with a
//! negligible overhead in terms of resource usage (the critical fields are
//! <10% of total)."
//!
//! [`CriticalFieldSealer`] computes a CRC-32 over the critical-field
//! subset of each object right before the apiserver→etcd transaction is
//! encoded, and stores it in the `mutiny.io/critical-crc` annotation. The
//! apiserver verifies the code on every decode; a mismatch means a
//! protected field was altered *in flight or at rest* — exactly the fault
//! Mutiny injects — and triggers the configured [`IntegrityAction`]
//! (default: roll back to the last known-good value).

use crate::catalog::critical_paths;
use k8s_apiserver::{IntegrityAction, IntegrityChecker};
use k8s_model::{Object, INTEGRITY_ANNOTATION};
use protowire::reflect::Value;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes`.
///
/// Bitwise implementation: the protected payloads are tens of bytes, so a
/// lookup table would buy nothing.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

/// Seals and verifies CRC-32 codes over the critical-field subset.
#[derive(Debug, Clone)]
pub struct CriticalFieldSealer {
    action: IntegrityAction,
}

impl Default for CriticalFieldSealer {
    fn default() -> Self {
        CriticalFieldSealer { action: IntegrityAction::Repair }
    }
}

impl CriticalFieldSealer {
    /// A sealer with an explicit failure action.
    pub fn with_action(action: IntegrityAction) -> CriticalFieldSealer {
        CriticalFieldSealer { action }
    }

    /// The code over an object's current critical fields.
    pub fn digest(obj: &Object) -> u32 {
        let mut payload = Vec::with_capacity(256);
        for (path, value) in critical_paths(obj) {
            payload.extend_from_slice(path.as_bytes());
            payload.push(0);
            match value {
                Value::Int(v) => payload.extend_from_slice(&v.to_le_bytes()),
                Value::Str(s) => payload.extend_from_slice(s.as_bytes()),
                Value::Bool(b) => payload.push(u8::from(b)),
            }
            payload.push(0xFF);
        }
        crc32(&payload)
    }
}

impl IntegrityChecker for CriticalFieldSealer {
    fn seal(&self, obj: &mut Object) {
        let code = Self::digest(obj);
        obj.meta_mut()
            .annotations
            .insert(INTEGRITY_ANNOTATION.to_owned(), format!("{code:08x}"));
    }

    fn verify(&self, obj: &Object) -> bool {
        let Some(stored) = obj.meta().annotations.get(INTEGRITY_ANNOTATION) else {
            return true; // written before the sealer was installed
        };
        let Ok(stored) = u32::from_str_radix(stored, 16) else {
            return false; // the annotation itself was corrupted
        };
        stored == Self::digest(obj)
    }

    fn action(&self) -> IntegrityAction {
        self.action
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_model::{Container, LabelSelector, ObjectMeta, ReplicaSet};

    fn sample() -> Object {
        let mut rs = ReplicaSet::default();
        rs.metadata = ObjectMeta::named("default", "web-rs");
        rs.metadata.uid = "uid-1".into();
        rs.spec.replicas = 2;
        rs.spec.selector = LabelSelector::eq("app", "web");
        rs.spec.template.metadata.labels.insert("app".into(), "web".into());
        rs.spec.template.spec.containers.push(Container {
            name: "c".into(),
            image: "img:1".into(),
            ..Default::default()
        });
        Object::ReplicaSet(rs)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn seal_then_verify_roundtrips() {
        let sealer = CriticalFieldSealer::default();
        let mut obj = sample();
        sealer.seal(&mut obj);
        assert!(obj.meta().annotations.contains_key(INTEGRITY_ANNOTATION));
        assert!(sealer.verify(&obj));
    }

    #[test]
    fn unsealed_objects_verify() {
        let sealer = CriticalFieldSealer::default();
        assert!(sealer.verify(&sample()));
    }

    #[test]
    fn critical_corruption_is_detected() {
        use protowire::reflect::Reflect;
        let sealer = CriticalFieldSealer::default();
        let mut obj = sample();
        sealer.seal(&mut obj);
        // The paper's flagship injection: one character of a template label.
        assert!(obj.set_field("spec.template.metadata.labels['app']", Value::Str("wea".into())));
        assert!(!sealer.verify(&obj));
    }

    #[test]
    fn noncritical_change_passes_verification() {
        let sealer = CriticalFieldSealer::default();
        let mut obj = sample();
        sealer.seal(&mut obj);
        // Status is not protected: controllers update it constantly and a
        // wrong status is overwritten by the next reconcile anyway.
        if let Object::ReplicaSet(rs) = &mut obj {
            rs.status.ready_replicas = 99;
        }
        assert!(sealer.verify(&obj));
    }

    #[test]
    fn corrupted_annotation_fails_verification() {
        let sealer = CriticalFieldSealer::default();
        let mut obj = sample();
        sealer.seal(&mut obj);
        obj.meta_mut()
            .annotations
            .insert(INTEGRITY_ANNOTATION.to_owned(), "not-hex!".to_owned());
        assert!(!sealer.verify(&obj));
    }

    #[test]
    fn reseal_after_legitimate_change_verifies() {
        let sealer = CriticalFieldSealer::default();
        let mut obj = sample();
        sealer.seal(&mut obj);
        if let Object::ReplicaSet(rs) = &mut obj {
            rs.spec.replicas = 5; // a legitimate scale-up
        }
        sealer.seal(&mut obj);
        assert!(sealer.verify(&obj));
    }

    #[test]
    fn digest_ignores_the_code_annotation_itself() {
        let mut a = sample();
        let before = CriticalFieldSealer::digest(&a);
        CriticalFieldSealer::default().seal(&mut a);
        assert_eq!(CriticalFieldSealer::digest(&a), before);
    }
}
