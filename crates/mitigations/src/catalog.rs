//! The critical-field catalog.
//!
//! The paper's critical-field analysis (§V-C2) finds 34 fields behind
//! every Stall/Outage/Service-Unreachable failure: 20 manage dependency
//! relationships (labels, label selectors, ownerReferences, targetRef),
//! the identity triple (name, namespace, uid) covers most of the rest,
//! plus a handful of networking fields, the replica count, and the
//! image/command fields of critical pods. It also observes that the
//! critical fields are "<10% of total" — which is what makes protecting
//! exactly this subset cheap.
//!
//! This module decides, from a reflection path, whether a field belongs to
//! that protected subset.

use k8s_model::Object;
use protowire::reflect::{Reflect, Value};

/// True when `path` belongs to the paper's critical subset.
///
/// The predicate deliberately mirrors the grouping of §V-C2:
/// dependency-tracking metadata, identity, networking, replication, and
/// the image/command specification fields.
pub fn is_critical_path(path: &str) -> bool {
    // Dependency-tracking fields (20 of the paper's 34).
    if path.contains("labels[")
        || path.contains("matchLabels[")
        || path.contains("selector[")
        || path.contains("ownerReferences[")
    {
        // The integrity annotation itself is never part of the code.
        return !path.contains("annotations[");
    }
    let leaf = path.rsplit('.').next().unwrap_or(path);
    // Identity triple (name/namespace/uid appear in the URL).
    if matches!(leaf, "name" | "namespace" | "uid") && path.starts_with("metadata.") {
        return true;
    }
    // Networking fields (protocols, addresses, ports).
    if matches!(
        leaf,
        "clusterIP" | "port" | "targetPort" | "protocol" | "podCIDR" | "ip" | "nodeName"
            | "holderIdentity"
    ) {
        return true;
    }
    // Replica counts and the spec fields that prevent critical pods from
    // starting.
    if matches!(leaf, "replicas" | "minReplicas" | "maxReplicas") && path.starts_with("spec.") {
        return true;
    }
    if matches!(leaf, "image") || path.contains("command[") {
        return true;
    }
    false
}

/// Collects the critical field paths (and their values) of an object, in
/// deterministic (sorted) order.
pub fn critical_paths(obj: &Object) -> Vec<(String, Value)> {
    let mut out: Vec<(String, Value)> = Vec::new();
    obj.visit_fields("", &mut |path, value| {
        if is_critical_path(path) {
            out.push((path.to_owned(), value));
        }
    });
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Catalog statistics for one object (used to check the paper's "<10% of
/// total" overhead claim on our own resource model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalFieldCatalog {
    /// Fields in the protected subset.
    pub critical: usize,
    /// All reflected fields.
    pub total: usize,
}

impl CriticalFieldCatalog {
    /// Computes the catalog statistics for an object.
    pub fn of(obj: &Object) -> CriticalFieldCatalog {
        let mut critical = 0usize;
        let mut total = 0usize;
        obj.visit_fields("", &mut |path, _| {
            total += 1;
            if is_critical_path(path) {
                critical += 1;
            }
        });
        CriticalFieldCatalog { critical, total }
    }

    /// Fraction of fields in the protected subset.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.critical as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_model::{Container, LabelSelector, ObjectMeta, Pod, ReplicaSet};

    #[test]
    fn dependency_fields_are_critical() {
        assert!(is_critical_path("metadata.labels['app']"));
        assert!(is_critical_path("spec.selector.matchLabels['app']"));
        assert!(is_critical_path("spec.template.metadata.labels['app']"));
        assert!(is_critical_path("metadata.ownerReferences[0].uid"));
        assert!(is_critical_path("spec.selector['app']"));
    }

    #[test]
    fn identity_and_networking_are_critical() {
        assert!(is_critical_path("metadata.name"));
        assert!(is_critical_path("metadata.namespace"));
        assert!(is_critical_path("metadata.uid"));
        assert!(is_critical_path("spec.clusterIP"));
        assert!(is_critical_path("spec.nodeName"));
        assert!(is_critical_path("spec.podCIDR"));
        assert!(is_critical_path("spec.replicas"));
        assert!(is_critical_path("spec.containers[0].image"));
    }

    #[test]
    fn noncritical_fields_are_excluded() {
        assert!(!is_critical_path("status.readyReplicas"));
        assert!(!is_critical_path("metadata.resourceVersion"));
        assert!(!is_critical_path("metadata.generation"));
        assert!(!is_critical_path("spec.restartPolicy"));
        assert!(!is_critical_path("metadata.annotations['mutiny.io/critical-crc']"));
        // Template *names* are not identity: only metadata.-rooted paths.
        assert!(!is_critical_path("spec.template.metadata.resourceVersion"));
    }

    fn sample_rs() -> Object {
        let mut rs = ReplicaSet::default();
        rs.metadata = ObjectMeta::named("default", "web-rs");
        rs.metadata.uid = "uid-1".into();
        rs.spec.replicas = 2;
        rs.spec.selector = LabelSelector::eq("app", "web");
        rs.spec.template.metadata.labels.insert("app".into(), "web".into());
        rs.spec.template.spec.containers.push(Container {
            name: "c".into(),
            image: "img:1".into(),
            ..Default::default()
        });
        Object::ReplicaSet(rs)
    }

    #[test]
    fn critical_paths_are_sorted_and_nonempty() {
        let paths = critical_paths(&sample_rs());
        assert!(!paths.is_empty());
        let mut sorted = paths.clone();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(paths, sorted);
        assert!(paths.iter().any(|(p, _)| p == "spec.replicas"));
        assert!(paths.iter().any(|(p, _)| p.contains("matchLabels")));
    }

    #[test]
    fn overhead_stays_small() {
        // The paper's claim: critical fields are a small fraction of the
        // total, so redundancy codes are cheap. Our model is much smaller
        // than the real API surface, so the fraction is higher, but it
        // must remain a strict minority on a busy object.
        let mut pod = Pod::default();
        pod.metadata = ObjectMeta::named("default", "p");
        pod.metadata.uid = "u".into();
        pod.status.phase = "Running".into();
        pod.status.pod_ip = "10.244.0.5".into();
        pod.status.ready = true;
        pod.spec.containers.push(Container {
            name: "c".into(),
            image: "img:1".into(),
            cpu_milli: 100,
            memory_mb: 64,
            port: 8080,
            ..Default::default()
        });
        let cat = CriticalFieldCatalog::of(&Object::Pod(pod));
        assert!(cat.critical > 0);
        assert!(cat.fraction() < 0.5, "fraction {} too high", cat.fraction());
    }
}
