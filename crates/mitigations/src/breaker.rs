//! The replication circuit breaker.
//!
//! The paper's most severe failure pattern is uncontrolled replication: a
//! corrupted label or selector leaves a controller unable to recognize its
//! own children, so it creates replacements in an infinite loop until the
//! cluster's capacity (and eventually etcd's disk) is exhausted (§V-C1).
//! Kubernetes has per-pod crash-loop breakers but nothing that covers the
//! *creation* side; §VI-B calls for "circuit breakers … systematically
//! designed to cover all the resource kinds that can cause overload
//! errors, for example, when the relationship between resource instances
//! is broken".
//!
//! [`ReplicationBreaker`] watches pod creations per owning controller in a
//! sliding window. A controller that creates far more children than its
//! desired scale within one window is *suspended* — the
//! `mutiny.io/suspended` annotation is set, which every workload
//! controller checks before reconciling — and the surplus not-ready
//! children are deleted.

use k8s_apiserver::ApiServer;
use k8s_model::{Channel, Kind, Object, SUSPEND_ANNOTATION};
use std::collections::{HashMap, HashSet, VecDeque};

/// Breaker tunables.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Sliding-window length.
    pub window_ms: u64,
    /// Creations beyond the owner's desired scale tolerated per window
    /// (rolling updates legitimately create `desired + surge` pods).
    pub allowance: i64,
    /// Delete the suspended owner's surplus not-ready children.
    pub delete_surplus: bool,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { window_ms: 10_000, allowance: 10, delete_surplus: true }
    }
}

/// Breaker counters, exposed to the ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerMetrics {
    /// Controllers suspended.
    pub trips: u64,
    /// Surplus pods deleted after a trip.
    pub surplus_deleted: u64,
    /// Trips whose suspend annotation could not land (store refusing
    /// writes); surplus deletion still ran and the trip is retried.
    pub trips_deferred: u64,
}

/// Watches pod-creation rates per owner and suspends runaway controllers.
#[derive(Clone)]
pub struct ReplicationBreaker {
    cfg: BreakerConfig,
    cursor: u64,
    /// Pod keys already observed (to distinguish creates from updates).
    seen: HashSet<std::rc::Rc<str>>,
    /// Creation timestamps per owner key, pruned to the window.
    creates: HashMap<String, VecDeque<u64>>,
    /// Owners already suspended by this breaker.
    tripped: HashSet<String>,
    /// Counters.
    pub metrics: BreakerMetrics,
}

impl std::fmt::Debug for ReplicationBreaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicationBreaker")
            .field("tripped", &self.tripped)
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl ReplicationBreaker {
    /// Creates a breaker watching from the apiserver's current event head.
    pub fn new(cfg: BreakerConfig, api: &ApiServer) -> ReplicationBreaker {
        ReplicationBreaker {
            cfg,
            cursor: api.watch_head(),
            seen: HashSet::new(),
            creates: HashMap::new(),
            tripped: HashSet::new(),
            metrics: BreakerMetrics::default(),
        }
    }

    /// Owners currently suspended by this breaker.
    pub fn tripped(&self) -> impl Iterator<Item = &str> {
        self.tripped.iter().map(String::as_str)
    }

    /// Runs one breaker step at simulated time `now`.
    pub fn step(&mut self, api: &mut ApiServer, now: u64) {
        let (events, next) = api.poll_events(self.cursor);
        self.cursor = next;

        let mut to_check: HashSet<String> = HashSet::new();
        for ev in events {
            if ev.kind != Kind::Pod {
                continue;
            }
            match ev.object.as_deref() {
                Some(Object::Pod(pod)) => {
                    if !self.seen.insert(ev.key.clone()) {
                        continue; // update, not a create
                    }
                    let Some(ctrl) = pod.metadata.controller_ref() else { continue };
                    let owner = owner_key(&ctrl.kind, &pod.metadata.namespace, &ctrl.name);
                    self.creates.entry(owner.clone()).or_default().push_back(now);
                    to_check.insert(owner);
                }
                Some(_) => {}
                None => {
                    self.seen.remove(&ev.key);
                }
            }
        }

        for owner in to_check {
            if self.tripped.contains(&owner) {
                continue;
            }
            let in_window = {
                let q = self.creates.get_mut(&owner).expect("owner just inserted");
                while q.front().copied().unwrap_or(u64::MAX) + self.cfg.window_ms < now {
                    q.pop_front();
                }
                q.len() as i64
            };
            let Some((kind, ns, name)) = parse_owner_key(&owner) else { continue };
            let desired = desired_scale(api, kind, &ns, &name);
            if in_window > desired + self.cfg.allowance {
                self.trip(api, kind, &ns, &name, in_window, desired);
            }
        }
    }

    fn trip(
        &mut self,
        api: &mut ApiServer,
        kind: Kind,
        ns: &str,
        name: &str,
        created: i64,
        desired: i64,
    ) {
        let Some(owner) = api.get(kind, ns, name) else { return };
        let mut owner = (*owner).clone();
        owner
            .meta_mut()
            .annotations
            .insert(SUSPEND_ANNOTATION.to_owned(), "true".to_owned());
        if api.update(Channel::UserToApi, owner).is_err() {
            // The store may be refusing writes (disk-full): the suspend
            // annotation cannot land, but deleting surplus children still
            // frees store space and stops the storm's write pressure. Do
            // that now; the annotation is retried on the next runaway
            // create.
            self.metrics.trips_deferred += 1;
            if self.cfg.delete_surplus {
                self.delete_surplus_children(api, kind, ns, name, desired);
            }
            return;
        }
        self.tripped.insert(owner_key(&kind.to_string(), ns, name));
        self.metrics.trips += 1;

        if self.cfg.delete_surplus {
            self.delete_surplus_children(api, kind, ns, name, desired);
        }
        let _ = created;
    }

    /// Deletes the suspended owner's not-ready children beyond its desired
    /// scale (youngest first — the storm pods).
    fn delete_surplus_children(
        &mut self,
        api: &mut ApiServer,
        kind: Kind,
        ns: &str,
        name: &str,
        desired: i64,
    ) {
        let owner_uid = api.get(kind, ns, name).map(|o| o.meta().uid.clone()).unwrap_or_default();
        let kind_name = kind.to_string();
        let mut children: Vec<(i64, String, bool)> = Vec::new();
        api.for_each(Kind::Pod, Some(ns), |obj| {
            if let Object::Pod(p) = obj {
                let mine = p
                    .metadata
                    .controller_ref()
                    .map(|c| c.kind == kind_name && (c.uid == owner_uid || c.name == name))
                    .unwrap_or(false);
                if mine && !p.metadata.is_terminating() {
                    children.push((
                        p.metadata.creation_timestamp,
                        p.metadata.name.clone(),
                        p.is_ready(),
                    ));
                }
            }
        });
        // Keep the oldest `desired` ready pods; delete the rest.
        children.sort_by_key(|(created, _, ready)| (*ready, std::cmp::Reverse(*created)));
        let keep = desired.max(0) as usize;
        let surplus = children.len().saturating_sub(keep);
        for (_, pod_name, _) in children.into_iter().take(surplus) {
            if api.delete(Channel::UserToApi, Kind::Pod, ns, &pod_name).is_ok() {
                self.metrics.surplus_deleted += 1;
            }
        }
    }
}

fn owner_key(kind: &str, ns: &str, name: &str) -> String {
    format!("{kind}/{ns}/{name}")
}

fn parse_owner_key(key: &str) -> Option<(Kind, String, String)> {
    let mut parts = key.splitn(3, '/');
    let kind = Kind::parse(parts.next()?)?;
    let ns = parts.next()?.to_owned();
    let name = parts.next()?.to_owned();
    Some((kind, ns, name))
}

/// The desired child count of a workload controller (DaemonSets: one per
/// node).
fn desired_scale(api: &mut ApiServer, kind: Kind, ns: &str, name: &str) -> i64 {
    match api.get(kind, ns, name).as_deref() {
        Some(Object::ReplicaSet(rs)) => rs.spec.replicas.max(0),
        Some(Object::Deployment(d)) => d.spec.replicas.max(0),
        Some(Object::DaemonSet(_)) => api.count(Kind::Node, None) as i64,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcd_sim::Etcd;
    use k8s_apiserver::{InterceptorHandle, TraceHandle};
    use k8s_model::{Container, LabelSelector, NoopInterceptor, ObjectMeta, Pod, ReplicaSet};
    use simkit::Trace;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn api() -> ApiServer {
        let interceptor: InterceptorHandle = Rc::new(RefCell::new(NoopInterceptor));
        let trace: TraceHandle = Rc::new(RefCell::new(Trace::new(256)));
        ApiServer::new(Etcd::new(1, 8 << 20), interceptor, trace)
    }

    fn install_rs(api: &mut ApiServer, replicas: i64) -> ReplicaSet {
        let mut rs = ReplicaSet::default();
        rs.metadata = ObjectMeta::named("default", "web-rs");
        rs.spec.replicas = replicas;
        rs.spec.selector = LabelSelector::eq("app", "web");
        rs.spec.template.metadata.labels.insert("app".into(), "web".into());
        rs.spec.template.spec.containers.push(Container {
            name: "c".into(),
            image: "img:1".into(),
            ..Default::default()
        });
        let created = api.create(Channel::UserToApi, Object::ReplicaSet(rs)).unwrap();
        match &*created {
            Object::ReplicaSet(rs) => rs.clone(),
            _ => unreachable!(),
        }
    }

    fn storm_pod(api: &mut ApiServer, rs: &ReplicaSet, i: usize) {
        let mut p = Pod::default();
        p.metadata = ObjectMeta::named("default", &format!("web-rs-{i:04}"));
        p.metadata.labels.insert("app".into(), "web".into());
        p.metadata.set_controller_ref("ReplicaSet", &rs.metadata.name, &rs.metadata.uid);
        p.spec.containers.push(Container {
            name: "c".into(),
            image: "img:1".into(),
            ..Default::default()
        });
        api.create(Channel::KcmToApi, Object::Pod(p)).unwrap();
    }

    #[test]
    fn normal_scale_does_not_trip() {
        let mut a = api();
        let rs = install_rs(&mut a, 5);
        let mut b = ReplicationBreaker::new(BreakerConfig::default(), &a);
        for i in 0..5 {
            storm_pod(&mut a, &rs, i);
        }
        b.step(&mut a, 1_000);
        assert_eq!(b.metrics.trips, 0);
        let fresh = a.get(Kind::ReplicaSet, "default", "web-rs").unwrap();
        assert!(!k8s_model::is_suspended(fresh.meta()));
    }

    #[test]
    fn storm_trips_and_suspends_owner() {
        let mut a = api();
        let rs = install_rs(&mut a, 2);
        let mut b = ReplicationBreaker::new(BreakerConfig::default(), &a);
        for i in 0..30 {
            storm_pod(&mut a, &rs, i);
        }
        b.step(&mut a, 2_000);
        assert_eq!(b.metrics.trips, 1);
        let fresh = a.get(Kind::ReplicaSet, "default", "web-rs").unwrap();
        assert!(k8s_model::is_suspended(fresh.meta()));
        assert_eq!(b.tripped().count(), 1);
    }

    #[test]
    fn trip_deletes_surplus_children() {
        let mut a = api();
        let rs = install_rs(&mut a, 2);
        let mut b = ReplicationBreaker::new(BreakerConfig::default(), &a);
        for i in 0..30 {
            storm_pod(&mut a, &rs, i);
        }
        b.step(&mut a, 2_000);
        assert!(b.metrics.surplus_deleted >= 28 - BreakerConfig::default().allowance as u64);
        assert!(a.count(Kind::Pod, Some("default")) <= 2 + 10);
    }

    #[test]
    fn slow_creation_outside_window_does_not_trip() {
        let mut a = api();
        let rs = install_rs(&mut a, 2);
        let mut b = ReplicationBreaker::new(BreakerConfig::default(), &a);
        // 30 creates spread over 60 s: never more than a few per window.
        for i in 0..30 {
            storm_pod(&mut a, &rs, i);
            b.step(&mut a, (i as u64 + 1) * 2_000);
        }
        assert_eq!(b.metrics.trips, 0);
    }

    #[test]
    fn disk_full_trip_defers_annotation_but_still_sheds_surplus() {
        let mut a = api();
        let rs = install_rs(&mut a, 2);
        let mut b = ReplicationBreaker::new(BreakerConfig::default(), &a);
        for i in 0..30 {
            storm_pod(&mut a, &rs, i);
        }
        a.etcd_mut().clamp_disk_budget(); // the etcd-disk-full actuation
        b.step(&mut a, 2_000);
        assert_eq!(b.metrics.trips, 0, "annotation cannot land on a full store");
        assert_eq!(b.metrics.trips_deferred, 1);
        assert!(
            b.metrics.surplus_deleted > 0,
            "surplus shedding must not wait for the annotation"
        );
        let fresh = a.get(Kind::ReplicaSet, "default", "web-rs").unwrap();
        assert!(!k8s_model::is_suspended(fresh.meta()));
        // Budget restored (window closes): the next runaway create
        // re-trips and the suspension lands.
        a.etcd_mut().restore_disk_budget();
        storm_pod(&mut a, &rs, 30);
        b.step(&mut a, 2_500);
        assert_eq!(b.metrics.trips, 1);
        let fresh = a.get(Kind::ReplicaSet, "default", "web-rs").unwrap();
        assert!(k8s_model::is_suspended(fresh.meta()));
    }

    #[test]
    fn second_step_does_not_retrip() {
        let mut a = api();
        let rs = install_rs(&mut a, 2);
        let mut b = ReplicationBreaker::new(BreakerConfig::default(), &a);
        for i in 0..30 {
            storm_pod(&mut a, &rs, i);
        }
        b.step(&mut a, 2_000);
        for i in 30..35 {
            storm_pod(&mut a, &rs, i);
        }
        b.step(&mut a, 2_500);
        assert_eq!(b.metrics.trips, 1);
    }
}
