//! Validating admission for configuration defects.
//!
//! The config-defect fault families (`cfg-*` in `mutiny_faults`) submit
//! specs that are *valid and decodable* but semantically broken — wrong
//! resource requests, selector/template mismatches, flappy probes,
//! pathological grace periods, runaway replica counts. The built-in
//! validation accepts all of them; this policy is the §VI-B-style
//! mitigation that closes the gap: a validating-admission pass that
//! **repairs** the deterministically repairable defect classes and
//! **rejects** the rest.
//!
//! Detection is anchored on the same invariants the defects break, most
//! of them over fields the critical-field catalog ([`crate::catalog`])
//! already marks as critical (selectors, labels, replicas):
//!
//! | defect class | invariant                                  | action |
//! |--------------|--------------------------------------------|--------|
//! | `resources`  | requests present and node-sized            | reject |
//! | `resources`  | limit ≥ request                            | repair |
//! | `selector`   | selector non-empty and matches template    | repair |
//! | `probe`      | probe window ≥ the kubelet's flap bound    | repair |
//! | `grace`      | grace in the sane band                     | repair |
//! | `replicas`   | replicas ≤ the workload ceiling            | repair |
//!
//! Repairs run before reviews in the apiserver's policy chain, so a
//! repaired spec is never also rejected. Each detection is counted per
//! defect class, and the campaign's ablation bench toggles the whole
//! policy per arm to measure detection coverage and false rejects per
//! family.

use crate::catalog::is_critical_path;
use k8s_apiserver::{AdmissionPolicy, PolicyCtx};
use k8s_model::workloads::selector_matches_template;
use k8s_model::{Object, Op, PodSpec};

/// Largest CPU request (millicores) any simulated node could host; a
/// request above it can never schedule and is rejected outright.
pub const MAX_NODE_CPU_MILLI: i64 = 16_000;

/// Largest memory request (MiB) any simulated node could host.
pub const MAX_NODE_MEMORY_MB: i64 = 65_536;

/// Probe windows strictly below this flap healthy pods — the same bound
/// the kubelet's probe loop uses (`AGGRESSIVE_PROBE_WINDOW_MS`).
pub const MIN_PROBE_WINDOW_MS: u64 = 3_000;

/// Longest accepted `terminationGracePeriodSeconds`; above it, deleted
/// pods camp in Terminating and stall rolling updates.
pub const MAX_GRACE_SECONDS: i64 = 600;

/// Grace the repair clamps an out-of-band value back to.
pub const REPAIRED_GRACE_SECONDS: i64 = 30;

/// Largest accepted replica count for one workload.
pub const MAX_REPLICAS: i64 = 50;

/// The validating-admission policy: repairs or rejects config-defect
/// classes at admission. Counters are per defect class, keyed by the
/// same class strings the `cfg-*` fault families inject
/// (`resources`, `selector`, `probe`, `grace`, `replicas`).
#[derive(Debug, Clone, Default)]
pub struct ValidatingAdmission {
    /// (defect class, repaired) detections, in admission order.
    pub detections: Vec<(&'static str, bool)>,
}

impl ValidatingAdmission {
    /// Detections per defect class: (class, repairs, rejects).
    pub fn coverage(&self) -> Vec<(&'static str, u64, u64)> {
        let mut out: Vec<(&'static str, u64, u64)> = Vec::new();
        for &(class, repaired) in &self.detections {
            match out.iter_mut().find(|(c, _, _)| *c == class) {
                Some((_, rep, rej)) => {
                    if repaired {
                        *rep += 1;
                    } else {
                        *rej += 1;
                    }
                }
                None => out.push((class, u64::from(repaired), u64::from(!repaired))),
            }
        }
        out
    }
}

/// The pod spec an object carries (its own, or its template's).
fn pod_spec(obj: &Object) -> Option<&PodSpec> {
    match obj {
        Object::Pod(p) => Some(&p.spec),
        Object::ReplicaSet(r) => Some(&r.spec.template.spec),
        Object::Deployment(d) => Some(&d.spec.template.spec),
        Object::DaemonSet(d) => Some(&d.spec.template.spec),
        _ => None,
    }
}

fn pod_spec_mut(obj: &mut Object) -> Option<&mut PodSpec> {
    match obj {
        Object::Pod(p) => Some(&mut p.spec),
        Object::ReplicaSet(r) => Some(&mut r.spec.template.spec),
        Object::Deployment(d) => Some(&mut d.spec.template.spec),
        Object::DaemonSet(d) => Some(&mut d.spec.template.spec),
        _ => None,
    }
}

/// The probe window of a pod spec, mirroring `Pod::probe_window_ms`.
fn probe_window_ms(spec: &PodSpec) -> Option<u64> {
    let (p, t) = (spec.probe_period_seconds, spec.probe_failure_threshold);
    if p > 0 && t > 0 {
        Some((p as u64).saturating_mul(t as u64).saturating_mul(1_000))
    } else {
        None
    }
}

impl AdmissionPolicy for ValidatingAdmission {
    fn clone_box(&self) -> Box<dyn AdmissionPolicy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        "validating-admission"
    }

    fn repair(&mut self, ctx: &PolicyCtx<'_>) -> Option<Object> {
        if ctx.op == Op::Delete {
            return None;
        }
        let mut fixed = ctx.object.clone();
        let mut classes: Vec<&'static str> = Vec::new();

        // resources: an explicit limit below the request dooms the
        // container; raising the limit to the request (0 = "same as
        // request") is the only repair that preserves intent.
        if let Some(spec) = pod_spec_mut(&mut fixed) {
            for c in &mut spec.containers {
                if c.request_exceeds_limit() {
                    c.cpu_limit_milli = 0;
                    c.memory_limit_mb = 0;
                    classes.push("resources");
                }
            }
            // probe: windows below the kubelet's flap bound mark healthy
            // pods NotReady; reset to cluster-default probing.
            if probe_window_ms(spec).is_some_and(|w| w < MIN_PROBE_WINDOW_MS) {
                spec.probe_period_seconds = 0;
                spec.probe_failure_threshold = 0;
                classes.push("probe");
            }
            // grace: clamp pathological values back into the sane band
            // (0 means the cluster default and is left alone).
            let grace = spec.termination_grace_period_seconds;
            if grace > MAX_GRACE_SECONDS {
                spec.termination_grace_period_seconds = REPAIRED_GRACE_SECONDS;
                classes.push("grace");
            } else if grace == 1 {
                spec.termination_grace_period_seconds = 0;
                classes.push("grace");
            }
        }

        // selector: the selector/template invariant is over fields the
        // critical-field catalog protects. When the selector is intact,
        // the template labels are the corrupted side — restore them from
        // the selector (services key on the same labels, so this repair
        // also keeps endpoints converging). An emptied selector is
        // restored from the template instead.
        let selector_template = match &mut fixed {
            Object::ReplicaSet(r) => Some((&mut r.spec.selector, &mut r.spec.template)),
            Object::Deployment(d) => Some((&mut d.spec.selector, &mut d.spec.template)),
            Object::DaemonSet(d) => Some((&mut d.spec.selector, &mut d.spec.template)),
            _ => None,
        };
        if let Some((selector, template)) = selector_template {
            debug_assert!(is_critical_path("spec.selector.matchLabels['app']"));
            if !selector_matches_template(selector, template) {
                if !selector.match_labels.is_empty() {
                    for (k, v) in &selector.match_labels {
                        template.metadata.labels.insert(k.clone(), v.clone());
                    }
                    classes.push("selector");
                } else if !template.metadata.labels.is_empty() {
                    selector.match_labels = template.metadata.labels.clone();
                    classes.push("selector");
                }
            }
        }

        // replicas: clamp runaway counts to the ceiling (scale-to-zero
        // is a legitimate operation and is left to the critical-scale
        // policy — a deliberate coverage gap the ablation measures).
        let replicas = match &mut fixed {
            Object::ReplicaSet(r) => Some(&mut r.spec.replicas),
            Object::Deployment(d) => Some(&mut d.spec.replicas),
            _ => None,
        };
        if let Some(replicas) = replicas {
            if *replicas > MAX_REPLICAS {
                *replicas = MAX_REPLICAS;
                classes.push("replicas");
            }
        }

        if classes.is_empty() {
            return None;
        }
        for class in classes {
            self.detections.push((class, true));
        }
        Some(fixed)
    }

    fn review(&mut self, ctx: &PolicyCtx<'_>) -> Result<(), String> {
        if ctx.op == Op::Delete {
            return Ok(());
        }
        let Some(spec) = pod_spec(ctx.object) else { return Ok(()) };
        for c in &spec.containers {
            if c.cpu_milli <= 0 || c.memory_mb <= 0 {
                self.detections.push(("resources", false));
                return Err(format!(
                    "container {:?} has no resource requests; repair is ambiguous, rejecting",
                    c.name
                ));
            }
            if c.cpu_milli > MAX_NODE_CPU_MILLI || c.memory_mb > MAX_NODE_MEMORY_MB {
                self.detections.push(("resources", false));
                return Err(format!(
                    "container {:?} requests {}m/{}MiB; no node can host it",
                    c.name, c.cpu_milli, c.memory_mb
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_model::{Channel, Container, Deployment, LabelSelector, ObjectMeta, Pod, ReplicaSet};
    use std::collections::HashMap;
    use std::rc::Rc;

    fn ctx<'a>(
        op: Op,
        object: &'a Object,
        view: &'a HashMap<String, Rc<Object>>,
    ) -> PolicyCtx<'a> {
        PolicyCtx { op, channel: Channel::UserToApi, object, existing: None, now: 0, view }
    }

    fn pod() -> Object {
        let mut p = Pod::default();
        p.metadata = ObjectMeta::named("default", "p");
        p.spec.containers.push(Container {
            name: "c".into(),
            image: "img:1".into(),
            cpu_milli: 500,
            memory_mb: 256,
            ..Default::default()
        });
        Object::Pod(p)
    }

    fn rs() -> ReplicaSet {
        let mut rs = ReplicaSet::default();
        rs.metadata = ObjectMeta::named("default", "web-rs");
        rs.spec.replicas = 2;
        rs.spec.selector = LabelSelector::eq("app", "web");
        rs.spec.template.metadata.labels.insert("app".into(), "web".into());
        rs.spec.template.spec.containers.push(Container {
            name: "web".into(),
            image: "img:1".into(),
            cpu_milli: 500,
            memory_mb: 256,
            ..Default::default()
        });
        rs
    }

    #[test]
    fn clean_specs_pass_untouched() {
        let view = HashMap::new();
        let mut v = ValidatingAdmission::default();
        for obj in [pod(), Object::ReplicaSet(rs())] {
            assert_eq!(v.repair(&ctx(Op::Create, &obj, &view)), None, "{obj:?}");
            assert!(v.review(&ctx(Op::Create, &obj, &view)).is_ok());
        }
        assert!(v.detections.is_empty());
    }

    #[test]
    fn limit_below_request_is_repaired() {
        let view = HashMap::new();
        let mut v = ValidatingAdmission::default();
        let mut obj = pod();
        if let Object::Pod(p) = &mut obj {
            p.spec.containers[0].cpu_limit_milli = 100;
        }
        let fixed = v.repair(&ctx(Op::Create, &obj, &view)).expect("repair");
        assert!(!fixed.as_pod().unwrap().request_exceeds_limit());
        assert_eq!(v.coverage(), vec![("resources", 1, 0)]);
    }

    #[test]
    fn missing_and_unhostable_requests_are_rejected() {
        let view = HashMap::new();
        let mut v = ValidatingAdmission::default();
        let mut zero = pod();
        if let Object::Pod(p) = &mut zero {
            p.spec.containers[0].cpu_milli = 0;
        }
        assert!(v.review(&ctx(Op::Create, &zero, &view)).is_err());
        let mut huge = pod();
        if let Object::Pod(p) = &mut huge {
            p.spec.containers[0].cpu_milli = 64_000;
        }
        assert!(v.review(&ctx(Op::Create, &huge, &view)).is_err());
        assert_eq!(v.coverage(), vec![("resources", 0, 2)]);
    }

    #[test]
    fn broken_selector_is_restored_from_the_template() {
        let view = HashMap::new();
        let mut v = ValidatingAdmission::default();
        // Template-label typo: the intact selector restores the label,
        // so downstream services keep matching the created pods.
        let mut typo = rs();
        typo.spec.template.metadata.labels.insert("app".into(), "web-typo".into());
        let fixed = v.repair(&ctx(Op::Create, &Object::ReplicaSet(typo), &view)).expect("repair");
        let Object::ReplicaSet(r) = &fixed else { unreachable!() };
        assert!(selector_matches_template(&r.spec.selector, &r.spec.template));
        assert_eq!(
            r.spec.template.metadata.labels.get("app").map(String::as_str),
            Some("web")
        );
        // Emptied selector.
        let mut empty = rs();
        empty.spec.selector.match_labels.clear();
        let fixed = v.repair(&ctx(Op::Create, &Object::ReplicaSet(empty), &view)).expect("repair");
        let Object::ReplicaSet(r) = &fixed else { unreachable!() };
        assert!(selector_matches_template(&r.spec.selector, &r.spec.template));
        assert_eq!(v.coverage(), vec![("selector", 2, 0)]);
    }

    #[test]
    fn flappy_probe_and_bad_grace_are_repaired() {
        let view = HashMap::new();
        let mut v = ValidatingAdmission::default();
        let mut obj = pod();
        if let Object::Pod(p) = &mut obj {
            p.spec.probe_period_seconds = 1;
            p.spec.probe_failure_threshold = 1;
            p.spec.termination_grace_period_seconds = 3_600;
        }
        let fixed = v.repair(&ctx(Op::Create, &obj, &view)).expect("repair");
        let p = fixed.as_pod().unwrap();
        assert_eq!(p.probe_window_ms(), None, "repaired to default probing");
        assert_eq!(p.spec.termination_grace_period_seconds, REPAIRED_GRACE_SECONDS);
        assert_eq!(v.coverage(), vec![("probe", 1, 0), ("grace", 1, 0)]);

        // A sane explicit probe (at the bound) is left alone.
        let mut sane = pod();
        if let Object::Pod(p) = &mut sane {
            p.spec.probe_period_seconds = 10;
            p.spec.probe_failure_threshold = 3;
        }
        let mut v2 = ValidatingAdmission::default();
        assert_eq!(v2.repair(&ctx(Op::Create, &sane, &view)), None);
    }

    #[test]
    fn runaway_replicas_are_clamped_and_zero_is_left_alone() {
        let view = HashMap::new();
        let mut v = ValidatingAdmission::default();
        let mut d = Deployment::default();
        d.metadata = ObjectMeta::named("default", "web");
        d.spec.replicas = 200;
        d.spec.selector = LabelSelector::eq("app", "web");
        d.spec.template.metadata.labels.insert("app".into(), "web".into());
        let fixed = v.repair(&ctx(Op::Create, &Object::Deployment(d.clone()), &view)).expect("repair");
        let Object::Deployment(fd) = &fixed else { unreachable!() };
        assert_eq!(fd.spec.replicas, MAX_REPLICAS);
        // Scale-to-zero is a legitimate operation: the known coverage gap.
        d.spec.replicas = 0;
        assert_eq!(v.repair(&ctx(Op::Update, &Object::Deployment(d), &view)), None);
        assert_eq!(v.coverage(), vec![("replicas", 1, 0)]);
    }
}
