//! The log-structured engine (`MUTINY_STORAGE=log`): an append-only
//! segment log plus an in-memory index, the architecture real etcd's
//! bbolt/WAL pair approximates. Every commit appends one durable
//! [`LogRecord`]; reads go through the index; a crash recovery
//! ([`StorageBackend::recover`]) rebuilds the index by replaying the
//! segments instead of trusting memory.
//!
//! Observable behaviour — revisions, logical disk accounting, quorum
//! votes, watch-log semantics — is byte-identical to
//! [`MemBackend`](crate::MemBackend) (the campaign TSV is diffed across
//! backends). What differs is *invisible* mechanics: sealed segments,
//! physical bytes including garbage, and deterministic background
//! compaction that rewrites the log once garbage dominates.
//!
//! At-rest corruption is modelled as a durable per-replica overlay (the
//! corruption lives on that replica's disk), so it survives `recover()`
//! — exactly the §V-C1 threat a quorum read has to mask.

use crate::backend::{quorum_vote, StorageBackend, Versioned, WatchLog};
use crate::{Bytes, EtcdError, WatchEvent};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Records per segment before the active segment is sealed.
pub const SEGMENT_TARGET: usize = 256;

/// Per-record on-disk framing overhead (key/value lengths, revision).
const RECORD_HEADER_BYTES: u64 = 16;

/// Background compaction never fires below this physical size, so tiny
/// stores don't churn the log.
const MIN_COMPACT_BYTES: u64 = 64 * 1024;

/// One durable log entry: `value: None` is a tombstone.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LogRecord {
    key: String,
    value: Option<Bytes>,
    rev: u64,
}

fn record_size(rec: &LogRecord) -> u64 {
    rec.key.len() as u64
        + rec.value.as_ref().map(|b| b.len() as u64).unwrap_or(0)
        + RECORD_HEADER_BYTES
}

/// The log-structured storage engine.
#[derive(Debug, Clone)]
pub struct LogBackend {
    replicas: usize,
    revision: u64,
    /// Sealed segments, immutable and `Arc`-shared across forks.
    sealed: Vec<Arc<Vec<LogRecord>>>,
    /// The open segment (bounded by [`SEGMENT_TARGET`], cloned on fork).
    active: Vec<LogRecord>,
    /// The in-memory index the log replays into; replicas share it
    /// (consensus runs before the seam, so committed state is equal)
    /// and diverge only through `tampered`.
    index: Arc<BTreeMap<String, Versioned>>,
    /// Per-replica at-rest corruption overlay: durable, so it survives
    /// `recover()`.
    tampered: Vec<BTreeMap<String, Bytes>>,
    /// Logical live bytes (the budget basis, identical to `mem`).
    disk_used: u64,
    /// Physical log bytes including garbage (superseded records).
    physical: u64,
    log: WatchLog,
    compactions: u64,
}

impl LogBackend {
    /// An empty engine with `replicas` replicas (≥ 1).
    pub fn new(replicas: usize) -> LogBackend {
        assert!(replicas >= 1, "etcd needs at least one replica");
        LogBackend {
            replicas,
            revision: 0,
            sealed: Vec::new(),
            active: Vec::new(),
            index: Arc::new(BTreeMap::new()),
            tampered: vec![BTreeMap::new(); replicas],
            disk_used: 0,
            physical: 0,
            log: WatchLog::default(),
            compactions: 0,
        }
    }

    /// Replica `r`'s view of `key`: the durable corruption overlay wins
    /// over the shared index (corruption replaced the bytes on that
    /// replica's disk; MVCC metadata is untouched, as in `mem`).
    fn replica_value(&self, replica: usize, key: &str) -> Option<(&Bytes, u64)> {
        if replica >= self.replicas {
            return None;
        }
        let v = self.index.get(key)?;
        match self.tampered[replica].get(key) {
            Some(b) => Some((b, v.mod_rev)),
            None => Some((&v.bytes, v.mod_rev)),
        }
    }

    fn append(&mut self, rec: LogRecord) {
        self.physical += record_size(&rec);
        self.active.push(rec);
        if self.active.len() >= SEGMENT_TARGET {
            self.sealed.push(Arc::new(std::mem::take(&mut self.active)));
            mutiny_telemetry::gauge_set("etcd.segments", self.segments());
        }
        // Deterministic background compaction: once garbage dominates
        // the log (physical > 2× logical), rewrite it. Purely a
        // function of the committed operation sequence, so both fork
        // and replay execution reach the same layout.
        if self.physical > MIN_COMPACT_BYTES && self.physical > 2 * self.disk_used {
            self.rewrite_log();
        }
    }

    /// Rewrites the whole log as one segment holding only live
    /// versions. Shared (`Arc`ed) sealed segments are dropped, not
    /// mutated, so forks keep their own history.
    fn rewrite_log(&mut self) {
        self.sealed.clear();
        self.active.clear();
        self.physical = 0;
        let mut seg = Vec::with_capacity(self.index.len());
        for (k, v) in self.index.iter() {
            let rec = LogRecord { key: k.clone(), value: Some(v.bytes.clone()), rev: v.mod_rev };
            self.physical += record_size(&rec);
            seg.push(rec);
        }
        if !seg.is_empty() {
            self.sealed.push(Arc::new(seg));
        }
        self.compactions += 1;
        mutiny_telemetry::counter_add("etcd.compactions", 1);
        mutiny_telemetry::gauge_set("etcd.segments", self.segments());
    }
}

impl StorageBackend for LogBackend {
    fn name(&self) -> &'static str {
        "log"
    }

    fn replica_count(&self) -> usize {
        self.replicas
    }

    fn revision(&self) -> u64 {
        self.revision
    }

    fn disk_used(&self) -> u64 {
        self.disk_used
    }

    fn physical_bytes(&self) -> u64 {
        self.physical
    }

    fn object_count(&self) -> usize {
        self.index.len()
    }

    fn live_size(&self, key: &str) -> u64 {
        // Leader view, corruption drift included — the same accounting
        // basis `mem` reads off its leader replica.
        self.replica_value(0, key)
            .map(|(b, _)| b.len() as u64 + key.len() as u64)
            .unwrap_or(0)
    }

    fn nth_key(&self, nth: usize) -> Option<String> {
        self.index.keys().nth(nth).cloned()
    }

    fn commit(&mut self, key: &str, bytes: Bytes) -> u64 {
        self.revision += 1;
        let rev = self.revision;
        let old = self.live_size(key);
        let new = bytes.len() as u64 + key.len() as u64;
        // A committed write overwrites any at-rest corruption: the new
        // bytes land on every replica's disk.
        for t in &mut self.tampered {
            t.remove(key);
        }
        let idx = Arc::make_mut(&mut self.index);
        match idx.get_mut(key) {
            Some(v) => {
                v.bytes = bytes.clone();
                v.mod_rev = rev;
            }
            None => {
                idx.insert(
                    key.to_owned(),
                    Versioned { bytes: bytes.clone(), create_rev: rev, mod_rev: rev },
                );
            }
        }
        self.disk_used = self.disk_used + new - old;
        self.append(LogRecord { key: key.to_owned(), value: Some(bytes.clone()), rev });
        self.log.push(WatchEvent { revision: rev, key: key.to_owned(), value: Some(bytes) });
        rev
    }

    fn delete(&mut self, key: &str) -> Option<u64> {
        if !self.index.contains_key(key) {
            return None;
        }
        let old = self.live_size(key);
        Arc::make_mut(&mut self.index).remove(key);
        for t in &mut self.tampered {
            t.remove(key);
        }
        self.disk_used -= old;
        self.revision += 1;
        let rev = self.revision;
        self.append(LogRecord { key: key.to_owned(), value: None, rev });
        self.log.push(WatchEvent { revision: rev, key: key.to_owned(), value: None });
        Some(rev)
    }

    fn get(&self, key: &str) -> Option<(Bytes, u64)> {
        // Single-replica fast path, mirroring `mem`: one index probe
        // plus a refcount bump.
        if self.replicas == 1 {
            return self.replica_value(0, key).map(|(b, rev)| (b.clone(), rev));
        }
        let values: Vec<(&Bytes, u64)> =
            (0..self.replicas).filter_map(|r| self.replica_value(r, key)).collect();
        quorum_vote(&values, self.replicas)
    }

    fn range(&self, prefix: &str) -> Vec<(String, Bytes, u64)> {
        self.index
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .filter_map(|(k, _)| self.get(k).map(|(b, rev)| (k.clone(), b, rev)))
            .collect()
    }

    fn events_since(&self, cursor: u64) -> Result<(Vec<WatchEvent>, u64), EtcdError> {
        self.log.events_since(cursor)
    }

    fn events_after_revision(&self, revision: u64) -> Result<(Vec<WatchEvent>, u64), EtcdError> {
        self.log.events_after_revision(revision, self.revision)
    }

    fn event_head(&self) -> u64 {
        self.log.head()
    }

    fn compact(&mut self) {
        self.log.compact();
        self.rewrite_log();
    }

    fn recover(&mut self) {
        // Replay the durable log into a fresh index — the acceleration
        // structure a crash would have lost. Logical disk accounting is
        // journalled metadata and is kept as-is (it can legitimately
        // drift from the clean replay when at-rest corruption changed a
        // leader value's length, exactly as in `mem`).
        let mut index: BTreeMap<String, Versioned> = BTreeMap::new();
        for rec in self.sealed.iter().flat_map(|s| s.iter()).chain(self.active.iter()) {
            match &rec.value {
                Some(b) => match index.get_mut(&rec.key) {
                    Some(v) => {
                        v.bytes = b.clone();
                        v.mod_rev = rec.rev;
                    }
                    None => {
                        index.insert(
                            rec.key.clone(),
                            Versioned { bytes: b.clone(), create_rev: rec.rev, mod_rev: rec.rev },
                        );
                    }
                },
                None => {
                    index.remove(&rec.key);
                }
            }
        }
        debug_assert!(
            index.len() == self.index.len()
                && index.iter().zip(self.index.iter()).all(|((ak, av), (bk, bv))| {
                    ak == bk && av.mod_rev == bv.mod_rev && av.bytes == bv.bytes
                }),
            "log replay diverged from the live index"
        );
        self.index = Arc::new(index);
    }

    fn corrupt_at_rest(&mut self, replica: usize, key: &str, bytes: Bytes) -> bool {
        if replica >= self.replicas || !self.index.contains_key(key) {
            return false;
        }
        self.tampered[replica].insert(key.to_owned(), bytes);
        true
    }

    fn get_unquorum(&self, replica: usize, key: &str) -> Option<(Bytes, u64)> {
        self.replica_value(replica, key).map(|(b, rev)| (b.clone(), rev))
    }

    fn fork(&self) -> Box<dyn StorageBackend> {
        // Sealed segments and the index are refcount bumps; the open
        // segment and overlays are small (bounded by SEGMENT_TARGET and
        // the handful of corrupted keys).
        Box::new(self.clone())
    }

    fn segments(&self) -> u64 {
        self.sealed.len() as u64 + u64::from(!self.active.is_empty())
    }

    fn compactions(&self) -> u64 {
        self.compactions
    }
}
