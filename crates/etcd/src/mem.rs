//! The default in-memory engine: per-replica `BTreeMap`s behind
//! copy-on-write `Arc`s. This is the store the campaign has always run
//! on, now behind the [`StorageBackend`] seam; its answers define the
//! observable contract the log engine must match byte-for-byte.

use crate::backend::{quorum_vote, StorageBackend, Versioned, WatchLog};
use crate::{Bytes, EtcdError, WatchEvent};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A single etcd replica: a byte map plus disk accounting. The map is
/// `Arc`-wrapped so [`StorageBackend::fork`] is a refcount bump; the
/// first post-fork write clones via [`Arc::make_mut`].
#[derive(Debug, Clone, Default)]
struct Replica {
    data: Arc<BTreeMap<String, Versioned>>,
    disk_used: u64,
}

impl Replica {
    fn put(&mut self, key: &str, bytes: Bytes, rev: u64) {
        let len = bytes.len() as u64 + key.len() as u64;
        let data = Arc::make_mut(&mut self.data);
        match data.get_mut(key) {
            Some(v) => {
                self.disk_used =
                    self.disk_used + len - (v.bytes.len() as u64 + key.len() as u64);
                v.bytes = bytes;
                v.mod_rev = rev;
            }
            None => {
                self.disk_used += len;
                data.insert(
                    key.to_owned(),
                    Versioned { bytes, create_rev: rev, mod_rev: rev },
                );
            }
        }
    }

    fn delete(&mut self, key: &str) -> bool {
        if !self.data.contains_key(key) {
            return false;
        }
        let data = Arc::make_mut(&mut self.data);
        if let Some(v) = data.remove(key) {
            self.disk_used -= v.bytes.len() as u64 + key.len() as u64;
            true
        } else {
            false
        }
    }
}

/// The in-memory storage engine (`MUTINY_STORAGE=mem`, the default).
#[derive(Debug, Clone, Default)]
pub struct MemBackend {
    replicas: Vec<Replica>,
    revision: u64,
    log: WatchLog,
    compactions: u64,
}

impl MemBackend {
    /// An empty engine with `replicas` replicas (≥ 1).
    pub fn new(replicas: usize) -> MemBackend {
        assert!(replicas >= 1, "etcd needs at least one replica");
        MemBackend {
            replicas: vec![Replica::default(); replicas],
            revision: 0,
            log: WatchLog::default(),
            compactions: 0,
        }
    }
}

impl StorageBackend for MemBackend {
    fn name(&self) -> &'static str {
        "mem"
    }

    fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    fn revision(&self) -> u64 {
        self.revision
    }

    fn disk_used(&self) -> u64 {
        self.replicas[0].disk_used
    }

    fn physical_bytes(&self) -> u64 {
        // No log, no garbage: the heap footprint is the logical size.
        self.disk_used()
    }

    fn object_count(&self) -> usize {
        self.replicas[0].data.len()
    }

    fn live_size(&self, key: &str) -> u64 {
        self.replicas[0]
            .data
            .get(key)
            .map(|v| v.bytes.len() as u64 + key.len() as u64)
            .unwrap_or(0)
    }

    fn nth_key(&self, nth: usize) -> Option<String> {
        self.replicas[0].data.keys().nth(nth).cloned()
    }

    fn commit(&mut self, key: &str, bytes: Bytes) -> u64 {
        self.revision += 1;
        let rev = self.revision;
        for r in &mut self.replicas {
            r.put(key, bytes.clone(), rev);
        }
        self.log.push(WatchEvent { revision: rev, key: key.to_owned(), value: Some(bytes) });
        rev
    }

    fn delete(&mut self, key: &str) -> Option<u64> {
        let mut any = false;
        for r in &mut self.replicas {
            any |= r.delete(key);
        }
        if !any {
            return None;
        }
        self.revision += 1;
        let rev = self.revision;
        self.log.push(WatchEvent { revision: rev, key: key.to_owned(), value: None });
        Some(rev)
    }

    fn get(&self, key: &str) -> Option<(Bytes, u64)> {
        // Single-replica fast path: nothing to vote over, so the read is
        // a map probe plus one refcount bump — no scratch vectors. The
        // default campaign config runs one replica, which makes this the
        // store's hottest read shape.
        if self.replicas.len() == 1 {
            return self.replicas[0].data.get(key).map(|v| (v.bytes.clone(), v.mod_rev));
        }
        let values: Vec<(&Bytes, u64)> = self
            .replicas
            .iter()
            .filter_map(|r| r.data.get(key).map(|v| (&v.bytes, v.mod_rev)))
            .collect();
        quorum_vote(&values, self.replicas.len())
    }

    fn range(&self, prefix: &str) -> Vec<(String, Bytes, u64)> {
        let leader = &self.replicas[0];
        leader
            .data
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .filter_map(|(k, _)| self.get(k).map(|(b, rev)| (k.clone(), b, rev)))
            .collect()
    }

    fn events_since(&self, cursor: u64) -> Result<(Vec<WatchEvent>, u64), EtcdError> {
        self.log.events_since(cursor)
    }

    fn events_after_revision(&self, revision: u64) -> Result<(Vec<WatchEvent>, u64), EtcdError> {
        self.log.events_after_revision(revision, self.revision)
    }

    fn event_head(&self) -> u64 {
        self.log.head()
    }

    fn compact(&mut self) {
        self.log.compact();
        self.compactions += 1;
        mutiny_telemetry::counter_add("etcd.compactions", 1);
    }

    fn recover(&mut self) {
        // Everything is in memory already; a crash recovery has nothing
        // to replay.
    }

    fn corrupt_at_rest(&mut self, replica: usize, key: &str, bytes: Bytes) -> bool {
        match self.replicas.get_mut(replica) {
            Some(r) if r.data.contains_key(key) => {
                if let Some(v) = Arc::make_mut(&mut r.data).get_mut(key) {
                    v.bytes = bytes;
                }
                true
            }
            _ => false,
        }
    }

    fn get_unquorum(&self, replica: usize, key: &str) -> Option<(Bytes, u64)> {
        self.replicas.get(replica)?.data.get(key).map(|v| (v.bytes.clone(), v.mod_rev))
    }

    fn fork(&self) -> Box<dyn StorageBackend> {
        Box::new(self.clone())
    }

    fn compactions(&self) -> u64 {
        self.compactions
    }
}
