//! # etcd-sim — the simulated cluster data store
//!
//! Kubernetes confines all state to etcd, which the paper identifies as the
//! dependability bottleneck: "any corruption of the data in the data store
//! may propagate and cause failures in every system component" (§I). This
//! crate models the store at the fidelity the campaign needs:
//!
//! * **MVCC byte store** with a global revision counter and per-key
//!   create/mod revisions;
//! * **watch log** — an ordered event stream with compaction, from which
//!   the apiserver's watch cache feeds controllers;
//! * **quorum replication** — writes reach every replica (consensus runs
//!   *after* the injection point, so replicas agree on faulty values,
//!   exactly as §V-C1 observes); reads take a majority vote, which masks
//!   single-replica at-rest corruption;
//! * **disk-usage model** — uncontrolled object replication eventually
//!   fills the control-plane disk and stalls the store (the terminal state
//!   of the paper's uncontrolled-replication example).
//!
//! Values are stored as [`Bytes`] (`Arc<[u8]>`): committing a write to N
//! replicas is one allocation plus N reference-count bumps, and `get`,
//! `range` and watch replay hand out refcounted views instead of copying
//! payloads — the store is zero-copy on the campaign's hot path.
//!
//! ```
//! use etcd_sim::Etcd;
//!
//! let mut etcd = Etcd::new(1, 64 * 1024);
//! let rev = etcd.put("/registry/pods/default/web-0", b"pod-bytes".to_vec()).unwrap();
//! let (bytes, mod_rev) = etcd.get("/registry/pods/default/web-0").unwrap();
//! assert_eq!(&bytes[..], b"pod-bytes");
//! assert_eq!(mod_rev, rev);
//! ```

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// A stored value: immutable, refcounted, shared between replicas, the
/// watch log, and readers without copying.
pub type Bytes = Arc<[u8]>;

/// Errors returned by store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EtcdError {
    /// The store's disk budget is exhausted; writes are rejected and the
    /// cluster state can no longer evolve (a Stall condition).
    DiskFull,
    /// A watcher asked for events older than the compaction horizon and
    /// must re-list.
    Compacted,
}

impl fmt::Display for EtcdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtcdError::DiskFull => write!(f, "etcd disk full: write rejected"),
            EtcdError::Compacted => write!(f, "requested watch revision was compacted"),
        }
    }
}

impl std::error::Error for EtcdError {}

/// One change in the watch stream: `value: None` is a delete. Cloning an
/// event bumps the payload's refcount instead of copying it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEvent {
    /// Store revision at which the change committed.
    pub revision: u64,
    /// Registry key that changed.
    pub key: String,
    /// New value (`None` for deletions).
    pub value: Option<Bytes>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Versioned {
    bytes: Bytes,
    create_rev: u64,
    mod_rev: u64,
}

/// A single etcd replica: a byte map plus disk accounting.
#[derive(Debug, Clone, Default)]
struct Replica {
    data: BTreeMap<String, Versioned>,
    disk_used: u64,
}

impl Replica {
    fn put(&mut self, key: &str, bytes: Bytes, rev: u64) {
        let len = bytes.len() as u64 + key.len() as u64;
        match self.data.get_mut(key) {
            Some(v) => {
                self.disk_used =
                    self.disk_used + len - (v.bytes.len() as u64 + key.len() as u64);
                v.bytes = bytes;
                v.mod_rev = rev;
            }
            None => {
                self.disk_used += len;
                self.data.insert(
                    key.to_owned(),
                    Versioned { bytes, create_rev: rev, mod_rev: rev },
                );
            }
        }
    }

    fn delete(&mut self, key: &str) -> bool {
        if let Some(v) = self.data.remove(key) {
            self.disk_used -= v.bytes.len() as u64 + key.len() as u64;
            true
        } else {
            false
        }
    }
}

/// How many watch events are retained before compaction.
pub const WATCH_LOG_RETENTION: usize = 200_000;

/// The replicated data store front-end used by the apiserver.
#[derive(Debug, Clone)]
pub struct Etcd {
    replicas: Vec<Replica>,
    revision: u64,
    capacity_bytes: u64,
    events: VecDeque<WatchEvent>,
    /// Log index of `events[0]`.
    first_event_index: u64,
    writes_rejected: u64,
}

impl Etcd {
    /// Creates a store with `replicas` replicas (≥ 1) and a per-replica
    /// disk budget of `capacity_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn new(replicas: usize, capacity_bytes: u64) -> Etcd {
        assert!(replicas >= 1, "etcd needs at least one replica");
        Etcd {
            replicas: vec![Replica::default(); replicas],
            revision: 0,
            capacity_bytes,
            events: VecDeque::new(),
            first_event_index: 0,
            writes_rejected: 0,
        }
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Current global revision.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Bytes stored on the leader replica.
    pub fn disk_used(&self) -> u64 {
        self.replicas[0].disk_used
    }

    /// True once the disk budget is exhausted (writes are being rejected).
    pub fn is_stalled(&self) -> bool {
        self.disk_used() >= self.capacity_bytes
    }

    /// Number of writes rejected because the disk was full.
    pub fn writes_rejected(&self) -> u64 {
        self.writes_rejected
    }

    /// Number of keys stored.
    pub fn object_count(&self) -> usize {
        self.replicas[0].data.len()
    }

    /// Commits a write to every replica (post-consensus, so all replicas
    /// carry the same — possibly faulty — value). Returns the new revision.
    ///
    /// The value is shared: one allocation, refcount bumps per replica and
    /// per watch-log entry.
    ///
    /// # Errors
    ///
    /// [`EtcdError::DiskFull`] when the disk budget is exhausted.
    pub fn put(&mut self, key: &str, bytes: impl Into<Bytes>) -> Result<u64, EtcdError> {
        let bytes: Bytes = bytes.into();
        let grow = bytes.len() as u64 + key.len() as u64;
        let existing = self.replicas[0]
            .data
            .get(key)
            .map(|v| v.bytes.len() as u64 + key.len() as u64)
            .unwrap_or(0);
        if self.disk_used() + grow.saturating_sub(existing) > self.capacity_bytes {
            self.writes_rejected = self.writes_rejected.saturating_add(1);
            mutiny_telemetry::counter_add("etcd.writes_rejected", 1);
            return Err(EtcdError::DiskFull);
        }
        self.revision += 1;
        let rev = self.revision;
        for r in &mut self.replicas {
            r.put(key, bytes.clone(), rev);
        }
        self.push_event(WatchEvent { revision: rev, key: key.to_owned(), value: Some(bytes) });
        mutiny_telemetry::gauge_set("etcd.revision", rev);
        mutiny_telemetry::gauge_max("etcd.store_bytes_hw", self.disk_used());
        Ok(rev)
    }

    /// Deletes a key from every replica. Returns the deletion revision, or
    /// `None` when the key did not exist.
    pub fn delete(&mut self, key: &str) -> Option<u64> {
        let mut any = false;
        for r in &mut self.replicas {
            any |= r.delete(key);
        }
        if !any {
            return None;
        }
        self.revision += 1;
        let rev = self.revision;
        self.push_event(WatchEvent { revision: rev, key: key.to_owned(), value: None });
        Some(rev)
    }

    fn push_event(&mut self, ev: WatchEvent) {
        if self.events.len() == WATCH_LOG_RETENTION {
            self.events.pop_front();
            self.first_event_index += 1;
        }
        self.events.push_back(ev);
    }

    /// Quorum read: per-replica values are majority-voted, masking
    /// single-replica at-rest corruption. Returns `(bytes, mod_revision)`.
    ///
    /// The returned [`Bytes`] is a refcount bump, not a copy. Uncorrupted
    /// replicas share one allocation, so the vote is pointer comparisons
    /// until `corrupt_at_rest` has diverged a replica.
    pub fn get(&self, key: &str) -> Option<(Bytes, u64)> {
        // Single-replica fast path: nothing to vote over, so the read is
        // a map probe plus one refcount bump — no scratch vectors. The
        // default campaign config runs one replica, which makes this the
        // store's hottest read shape.
        if self.replicas.len() == 1 {
            return self.replicas[0].data.get(key).map(|v| (v.bytes.clone(), v.mod_rev));
        }
        let values: Vec<&Versioned> =
            self.replicas.iter().filter_map(|r| r.data.get(key)).collect();
        if values.is_empty() || values.len() * 2 < self.replicas.len() {
            return None; // no majority holds the key
        }
        // Majority vote on the byte content (pointer-equality fast path:
        // replicas that share the committed Arc agree by construction).
        let mut counts: Vec<(usize, &Versioned)> = Vec::new();
        for v in &values {
            match counts
                .iter_mut()
                .find(|(_, u)| Arc::ptr_eq(&u.bytes, &v.bytes) || u.bytes == v.bytes)
            {
                Some((c, _)) => *c += 1,
                None => counts.push((1, v)),
            }
        }
        counts.sort_by_key(|&(c, _)| std::cmp::Reverse(c));
        let (_, winner) = counts[0];
        Some((winner.bytes.clone(), winner.mod_rev))
    }

    /// Quorum range read over a key prefix, in key order. Values are
    /// refcounted views, not copies.
    pub fn range(&self, prefix: &str) -> Vec<(String, Bytes, u64)> {
        let leader = &self.replicas[0];
        leader
            .data
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .filter_map(|(k, _)| self.get(k).map(|(b, rev)| (k.clone(), b, rev)))
            .collect()
    }

    /// Returns watch events with log index ≥ `cursor` plus the next cursor.
    ///
    /// Replay is a tail view: the deque is indexed directly (no walk over
    /// already-consumed events) and payload clones are refcount bumps.
    ///
    /// # Errors
    ///
    /// [`EtcdError::Compacted`] when `cursor` precedes the retention window.
    pub fn events_since(&self, cursor: u64) -> Result<(Vec<WatchEvent>, u64), EtcdError> {
        if cursor < self.first_event_index {
            return Err(EtcdError::Compacted);
        }
        let start = ((cursor - self.first_event_index) as usize).min(self.events.len());
        let out: Vec<WatchEvent> = self.events.range(start..).cloned().collect();
        let next = self.first_event_index + self.events.len() as u64;
        Ok((out, next))
    }

    /// Returns watch events that committed at a revision > `revision`,
    /// plus the new resume revision (the store's current revision). Every
    /// committed write bumps the revision by exactly one and appends one
    /// event, so the log is contiguous in revision and the tail is
    /// located by arithmetic, not a scan. This is the apiserver's watch
    /// drain: its cursor is a store revision, exactly like real etcd.
    ///
    /// # Errors
    ///
    /// [`EtcdError::Compacted`] when events after `revision` have already
    /// been compacted away (the watcher must re-list).
    pub fn events_after_revision(
        &self,
        revision: u64,
    ) -> Result<(Vec<WatchEvent>, u64), EtcdError> {
        let first_rev = match self.events.front() {
            Some(ev) => ev.revision,
            None => {
                // Empty log: fine unless history before `revision` is gone.
                return if revision >= self.revision {
                    Ok((Vec::new(), self.revision))
                } else {
                    Err(EtcdError::Compacted)
                };
            }
        };
        if revision + 1 < first_rev {
            return Err(EtcdError::Compacted);
        }
        let start = ((revision + 1 - first_rev) as usize).min(self.events.len());
        debug_assert!(
            self.events.get(start).map(|ev| ev.revision > revision).unwrap_or(true),
            "watch log not contiguous in revision"
        );
        let out: Vec<WatchEvent> = self.events.range(start..).cloned().collect();
        Ok((out, self.revision))
    }

    /// Log index one past the newest event (initial cursor for watchers).
    pub fn event_head(&self) -> u64 {
        self.first_event_index + self.events.len() as u64
    }

    /// Silently corrupts the bytes stored on one replica without bumping
    /// revisions or emitting watch events — at-rest corruption (§V-C1).
    ///
    /// Returns `false` when the replica or key does not exist.
    pub fn corrupt_at_rest(&mut self, replica: usize, key: &str, bytes: impl Into<Bytes>) -> bool {
        match self.replicas.get_mut(replica).and_then(|r| r.data.get_mut(key)) {
            Some(v) => {
                v.bytes = bytes.into();
                true
            }
            None => false,
        }
    }

    /// Reads a single replica without quorum (models a client that talks
    /// to one replica directly, bypassing linearizable reads).
    pub fn get_unquorum(&self, replica: usize, key: &str) -> Option<(Bytes, u64)> {
        self.replicas.get(replica)?.data.get(key).map(|v| (v.bytes.clone(), v.mod_rev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip_and_revisions() {
        let mut e = Etcd::new(1, 4096);
        let r1 = e.put("/a", vec![1]).unwrap();
        let r2 = e.put("/b", vec![2]).unwrap();
        assert!(r2 > r1);
        assert_eq!(e.get("/a").unwrap().0.to_vec(), vec![1]);
        let r3 = e.put("/a", vec![9]).unwrap();
        let (bytes, rev) = e.get("/a").unwrap();
        assert_eq!(bytes.to_vec(), vec![9]);
        assert_eq!(rev, r3);
        assert_eq!(e.revision(), 3);
    }

    #[test]
    fn delete_and_missing() {
        let mut e = Etcd::new(1, 4096);
        e.put("/a", vec![1]).unwrap();
        assert!(e.delete("/a").is_some());
        assert!(e.get("/a").is_none());
        assert!(e.delete("/a").is_none());
    }

    #[test]
    fn range_is_prefix_scoped_and_ordered() {
        let mut e = Etcd::new(1, 4096);
        e.put("/registry/pods/default/b", vec![2]).unwrap();
        e.put("/registry/pods/default/a", vec![1]).unwrap();
        e.put("/registry/pods/kube-system/c", vec![3]).unwrap();
        e.put("/registry/services/default/s", vec![4]).unwrap();
        let r = e.range("/registry/pods/default/");
        let keys: Vec<&str> = r.iter().map(|(k, _, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["/registry/pods/default/a", "/registry/pods/default/b"]);
    }

    #[test]
    fn watch_events_stream_in_order() {
        let mut e = Etcd::new(1, 4096);
        let c0 = e.event_head();
        e.put("/a", vec![1]).unwrap();
        e.delete("/a");
        let (evs, next) = e.events_since(c0).unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].value.as_deref(), Some(&[1u8][..]));
        assert_eq!(evs[1].value, None);
        let (evs2, _) = e.events_since(next).unwrap();
        assert!(evs2.is_empty());
    }

    #[test]
    fn revision_indexed_replay_returns_only_the_tail() {
        let mut e = Etcd::new(1, 4096);
        e.put("/a", vec![1]).unwrap(); // rev 1
        e.put("/b", vec![2]).unwrap(); // rev 2
        e.delete("/a"); // rev 3
        let (evs, resume) = e.events_after_revision(1).unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].revision, 2);
        assert_eq!(evs[1].revision, 3);
        assert_eq!(resume, e.revision());
        let (all, _) = e.events_after_revision(0).unwrap();
        assert_eq!(all.len(), 3);
        let (none, _) = e.events_after_revision(3).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn replay_and_reads_share_the_stored_allocation() {
        // The zero-copy property: quorum reads and watch replay hand out
        // the same Arc the committed write produced.
        let mut e = Etcd::new(3, 4096);
        e.put("/a", vec![9; 64]).unwrap();
        let (stored, _) = e.get("/a").unwrap();
        let (evs, _) = e.events_since(0).unwrap();
        let replayed = evs[0].value.clone().unwrap();
        assert!(Arc::ptr_eq(&stored, &replayed), "payload was copied, not shared");
        let (direct, _) = e.get_unquorum(2, "/a").unwrap();
        assert!(Arc::ptr_eq(&stored, &direct));
    }

    #[test]
    fn disk_fill_stalls_writes() {
        let mut e = Etcd::new(1, 64);
        let mut wrote = 0;
        loop {
            match e.put(&format!("/k{wrote}"), vec![0u8; 16]) {
                Ok(_) => wrote += 1,
                Err(EtcdError::DiskFull) => break,
                Err(other) => panic!("unexpected: {other}"),
            }
            assert!(wrote < 100, "disk never filled");
        }
        assert!(e.is_stalled() || e.writes_rejected() > 0);
        // Updating an existing key to a smaller value still works.
        assert!(e.put("/k0", vec![0u8; 1]).is_ok());
    }

    #[test]
    fn single_replica_fast_path_matches_quorum_semantics() {
        // The 1-replica fast path must behave exactly like the voting
        // path: same hit/miss results, shared (not copied) payloads, and
        // at-rest corruption visible (a 1-replica store has no quorum to
        // mask it — same answer the vote would give).
        let mut e = Etcd::new(1, 4096);
        assert!(e.get("/missing").is_none());
        let rev = e.put("/a", vec![5, 6]).unwrap();
        let (bytes, mod_rev) = e.get("/a").unwrap();
        assert_eq!((bytes.to_vec(), mod_rev), (vec![5, 6], rev));
        let (direct, _) = e.get_unquorum(0, "/a").unwrap();
        assert!(Arc::ptr_eq(&bytes, &direct), "fast path must not copy");
        e.corrupt_at_rest(0, "/a", vec![9]);
        assert_eq!(e.get("/a").unwrap().0.to_vec(), vec![9]);
    }

    #[test]
    fn quorum_masks_single_replica_at_rest_corruption() {
        let mut e = Etcd::new(3, 4096);
        e.put("/a", vec![7, 7, 7]).unwrap();
        assert!(e.corrupt_at_rest(1, "/a", vec![0, 0, 0]));
        // Quorum read returns the uncorrupted majority value.
        assert_eq!(e.get("/a").unwrap().0.to_vec(), vec![7, 7, 7]);
        // Direct unquorum read of the corrupted replica sees the bad value.
        assert_eq!(e.get_unquorum(1, "/a").unwrap().0.to_vec(), vec![0, 0, 0]);
    }

    #[test]
    fn in_flight_corruption_reaches_all_replicas() {
        // The §V-C1 result: injections before consensus are NOT masked.
        let mut e = Etcd::new(3, 4096);
        e.put("/a", vec![0xBA, 0xD0]).unwrap(); // already-faulty value
        for i in 0..3 {
            assert_eq!(e.get_unquorum(i, "/a").unwrap().0.to_vec(), vec![0xBA, 0xD0]);
        }
        assert_eq!(e.get("/a").unwrap().0.to_vec(), vec![0xBA, 0xD0]);
    }

    #[test]
    fn at_rest_corruption_emits_no_watch_event() {
        let mut e = Etcd::new(1, 4096);
        e.put("/a", vec![1]).unwrap();
        let head = e.event_head();
        e.corrupt_at_rest(0, "/a", vec![2]);
        assert_eq!(e.event_head(), head);
        assert_eq!(e.revision(), 1);
    }

    #[test]
    fn compaction_forces_relist() {
        let mut e = Etcd::new(1, u64::MAX);
        for i in 0..(WATCH_LOG_RETENTION + 10) {
            e.put(&format!("/k{}", i % 7), vec![1]).unwrap();
        }
        assert!(matches!(e.events_since(0), Err(EtcdError::Compacted)));
        assert!(matches!(e.events_after_revision(0), Err(EtcdError::Compacted)));
        let head = e.event_head();
        assert!(e.events_since(head).is_ok());
        assert!(e.events_after_revision(e.revision()).is_ok());
    }

    #[test]
    fn corrupt_missing_key_or_replica_is_false() {
        let mut e = Etcd::new(1, 4096);
        assert!(!e.corrupt_at_rest(0, "/nope", vec![]));
        e.put("/a", vec![1]).unwrap();
        assert!(!e.corrupt_at_rest(5, "/a", vec![]));
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_panics() {
        let _ = Etcd::new(0, 1);
    }
}
