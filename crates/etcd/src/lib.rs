//! # etcd-sim — the simulated cluster data store
//!
//! Kubernetes confines all state to etcd, which the paper identifies as the
//! dependability bottleneck: "any corruption of the data in the data store
//! may propagate and cause failures in every system component" (§I). This
//! crate models the store at the fidelity the campaign needs:
//!
//! * **MVCC byte store** with a global revision counter and per-key
//!   create/mod revisions;
//! * **watch log** — an ordered event stream with compaction, from which
//!   the apiserver's watch cache feeds controllers;
//! * **quorum replication** — writes reach every replica (consensus runs
//!   *after* the injection point, so replicas agree on faulty values,
//!   exactly as §V-C1 observes); reads take a majority vote, which masks
//!   single-replica at-rest corruption;
//! * **disk-usage model** — uncontrolled object replication eventually
//!   fills the control-plane disk and stalls the store (the terminal state
//!   of the paper's uncontrolled-replication example).
//!
//! Values are stored as [`Bytes`] (`Arc<[u8]>`): committing a write to N
//! replicas is one allocation plus N reference-count bumps, and `get`,
//! `range` and watch replay hand out refcounted views instead of copying
//! payloads — the store is zero-copy on the campaign's hot path.
//!
//! ## The storage seam
//!
//! [`Etcd`] is a *front-end*: the disk budget, write rejection, the
//! inconsistent-view fault overlay and telemetry live here, while the
//! actual engine sits behind the [`StorageBackend`] trait. Two engines
//! ship — the default in-memory [`MemBackend`] and the log-structured
//! [`LogBackend`] (append-only segments + in-memory index + explicit
//! compaction) — selected campaign-wide by `MUTINY_STORAGE=mem|log`
//! ([`StorageKind::from_env`]). Both engines produce byte-identical
//! campaign TSVs (pinned by `tests/storage_determinism.rs`); only
//! invisible mechanics (segment layout, physical bytes, telemetry
//! counters) may differ. Third-party engines plug in through
//! [`Etcd::from_backend`] — `crates/etcd/README.md` has a worked
//! example.
//!
//! ```
//! use etcd_sim::{Etcd, StorageKind};
//!
//! for kind in [StorageKind::Mem, StorageKind::Log] {
//!     let mut etcd = Etcd::with_backend(kind, 1, 64 * 1024);
//!     let rev = etcd.put("/registry/pods/default/web-0", b"pod-bytes".to_vec()).unwrap();
//!     let (bytes, mod_rev) = etcd.get("/registry/pods/default/web-0").unwrap();
//!     assert_eq!(&bytes[..], b"pod-bytes");
//!     assert_eq!(mod_rev, rev);
//! }
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

pub mod backend;
mod log;
mod mem;

pub use backend::StorageBackend;
pub use log::{LogBackend, SEGMENT_TARGET};
pub use mem::MemBackend;

/// A stored value: immutable, refcounted, shared between replicas, the
/// watch log, and readers without copying.
pub type Bytes = Arc<[u8]>;

/// Errors returned by store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EtcdError {
    /// The store's disk budget is exhausted; writes are rejected and the
    /// cluster state can no longer evolve (a Stall condition).
    DiskFull,
    /// A watcher asked for events older than the compaction horizon and
    /// must re-list.
    Compacted,
}

impl fmt::Display for EtcdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtcdError::DiskFull => write!(f, "etcd disk full: write rejected"),
            EtcdError::Compacted => write!(f, "requested watch revision was compacted"),
        }
    }
}

impl std::error::Error for EtcdError {}

/// One change in the watch stream: `value: None` is a delete. Cloning an
/// event bumps the payload's refcount instead of copying it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEvent {
    /// Store revision at which the change committed.
    pub revision: u64,
    /// Registry key that changed.
    pub key: String,
    /// New value (`None` for deletions).
    pub value: Option<Bytes>,
}

/// How many watch events are retained before compaction.
pub const WATCH_LOG_RETENTION: usize = 200_000;

/// Environment variable selecting the storage engine (`mem` | `log`).
/// Read once per process ([`StorageKind::from_env`]); like
/// `MUTINY_DECODE_CACHE` it is a documented exception to the
/// "simulation never reads the environment" rule, safe because both
/// engines are observably identical.
pub const STORAGE_ENV: &str = "MUTINY_STORAGE";

/// Which storage engine backs the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageKind {
    /// Per-replica in-memory maps ([`MemBackend`], the default).
    #[default]
    Mem,
    /// Append-only segment log + in-memory index ([`LogBackend`]).
    Log,
}

impl StorageKind {
    /// The engine name as spelled in `MUTINY_STORAGE`.
    pub fn name(self) -> &'static str {
        match self {
            StorageKind::Mem => "mem",
            StorageKind::Log => "log",
        }
    }

    /// Parses an engine name (`"mem"` / `"log"`).
    pub fn parse(s: &str) -> Option<StorageKind> {
        match s {
            "mem" => Some(StorageKind::Mem),
            "log" => Some(StorageKind::Log),
            _ => None,
        }
    }

    /// The engine selected by [`STORAGE_ENV`], cached on first read.
    ///
    /// # Panics
    ///
    /// Panics on an unknown value — a typo must not silently run the
    /// wrong engine.
    pub fn from_env() -> StorageKind {
        static KIND: std::sync::OnceLock<StorageKind> = std::sync::OnceLock::new();
        *KIND.get_or_init(|| match std::env::var(STORAGE_ENV) {
            Ok(v) => StorageKind::parse(&v).unwrap_or_else(|| {
                panic!("unknown {STORAGE_ENV} value `{v}` (expected `mem` or `log`)")
            }),
            Err(_) => StorageKind::Mem,
        })
    }
}

impl fmt::Display for StorageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A frozen per-replica view served while an inconsistent-view fault is
/// active: stale `(bytes, mod_rev)` per key, snapshotted from one
/// replica's disk at fault onset.
#[derive(Debug, Clone)]
struct StaleView {
    data: BTreeMap<String, (Bytes, u64)>,
}

/// The replicated data store front-end used by the apiserver: budget
/// policy and fault overlays over a pluggable [`StorageBackend`].
#[derive(Debug)]
pub struct Etcd {
    backend: Box<dyn StorageBackend>,
    capacity_bytes: u64,
    /// The real budget while a disk-full fault window holds `capacity_bytes`
    /// clamped down ([`Etcd::clamp_disk_budget`]).
    saved_capacity: Option<u64>,
    writes_rejected: u64,
    /// While `Some`, quorum reads serve this stale snapshot instead of
    /// the backend — different readers of the same revision see
    /// different bytes (arXiv:1904.06206).
    stale_view: Option<StaleView>,
}

impl Clone for Etcd {
    /// Cloning forks the backend copy-on-write — this is what keeps
    /// `World::fork` / `ApiServer::fork` refcount-cheap on both engines.
    fn clone(&self) -> Etcd {
        Etcd {
            backend: self.backend.fork(),
            capacity_bytes: self.capacity_bytes,
            saved_capacity: self.saved_capacity,
            writes_rejected: self.writes_rejected,
            stale_view: self.stale_view.clone(),
        }
    }
}

impl Etcd {
    /// Creates a store with `replicas` replicas (≥ 1) and a per-replica
    /// disk budget of `capacity_bytes`, on the default in-memory engine.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn new(replicas: usize, capacity_bytes: u64) -> Etcd {
        Etcd::with_backend(StorageKind::Mem, replicas, capacity_bytes)
    }

    /// Creates a store on the given engine kind. Campaign worlds pass
    /// `ClusterConfig::storage` here so the engine is part of the
    /// config (and of the fork-snapshot cache key), never re-read from
    /// the environment mid-run.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn with_backend(kind: StorageKind, replicas: usize, capacity_bytes: u64) -> Etcd {
        let backend: Box<dyn StorageBackend> = match kind {
            StorageKind::Mem => Box::new(MemBackend::new(replicas)),
            StorageKind::Log => Box::new(LogBackend::new(replicas)),
        };
        Etcd::from_backend(backend, capacity_bytes)
    }

    /// Wraps an arbitrary engine (the third-party extension point; see
    /// `crates/etcd/README.md` for a worked implementation).
    pub fn from_backend(backend: Box<dyn StorageBackend>, capacity_bytes: u64) -> Etcd {
        Etcd {
            backend,
            capacity_bytes,
            saved_capacity: None,
            writes_rejected: 0,
            stale_view: None,
        }
    }

    /// The active engine's name (`"mem"`, `"log"`, …).
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.backend.replica_count()
    }

    /// Current global revision.
    pub fn revision(&self) -> u64 {
        self.backend.revision()
    }

    /// Logical live bytes stored on the leader replica (the disk-budget
    /// basis, identical across engines).
    pub fn disk_used(&self) -> u64 {
        self.backend.disk_used()
    }

    /// Engine-specific physical footprint (log garbage included); equals
    /// [`Etcd::disk_used`] on the in-memory engine.
    pub fn physical_bytes(&self) -> u64 {
        self.backend.physical_bytes()
    }

    /// True once the disk budget is exhausted (writes are being rejected).
    pub fn is_stalled(&self) -> bool {
        self.disk_used() >= self.capacity_bytes
    }

    /// Number of writes rejected because the disk was full.
    pub fn writes_rejected(&self) -> u64 {
        self.writes_rejected
    }

    /// True when the store is in a degraded state an operator would page
    /// on: the disk budget is exhausted *or* any write has already been
    /// rejected (rejections are permanent evidence — the state machine
    /// may have missed updates). The single stall predicate the health
    /// samplers (`cluster`) and the mitigation guard share.
    pub fn is_degraded(&self) -> bool {
        self.is_stalled() || self.writes_rejected() > 0
    }

    /// Number of keys stored.
    pub fn object_count(&self) -> usize {
        self.backend.object_count()
    }

    /// Storage segments the engine keeps on disk (`0` for `mem`).
    pub fn segments(&self) -> u64 {
        self.backend.segments()
    }

    /// Compactions the engine has performed (explicit and background).
    pub fn compactions(&self) -> u64 {
        self.backend.compactions()
    }

    /// Commits a write to every replica (post-consensus, so all replicas
    /// carry the same — possibly faulty — value). Returns the new revision.
    ///
    /// The value is shared: one allocation, refcount bumps per replica and
    /// per watch-log entry.
    ///
    /// # Errors
    ///
    /// [`EtcdError::DiskFull`] when the disk budget is exhausted.
    pub fn put(&mut self, key: &str, bytes: impl Into<Bytes>) -> Result<u64, EtcdError> {
        let bytes: Bytes = bytes.into();
        let grow = bytes.len() as u64 + key.len() as u64;
        let existing = self.backend.live_size(key);
        if self.disk_used() + grow.saturating_sub(existing) > self.capacity_bytes {
            self.writes_rejected = self.writes_rejected.saturating_add(1);
            mutiny_telemetry::counter_add("etcd.writes_rejected", 1);
            return Err(EtcdError::DiskFull);
        }
        let rev = self.backend.commit(key, bytes);
        mutiny_telemetry::gauge_set("etcd.revision", rev);
        mutiny_telemetry::gauge_max("etcd.store_bytes_hw", self.disk_used());
        Ok(rev)
    }

    /// Deletes a key from every replica. Returns the deletion revision, or
    /// `None` when the key did not exist.
    pub fn delete(&mut self, key: &str) -> Option<u64> {
        self.backend.delete(key)
    }

    /// Quorum read: per-replica values are majority-voted, masking
    /// single-replica at-rest corruption. Returns `(bytes, mod_revision)`.
    ///
    /// The returned [`Bytes`] is a refcount bump, not a copy. Uncorrupted
    /// replicas share one allocation, so the vote is pointer comparisons
    /// until `corrupt_at_rest` has diverged a replica.
    ///
    /// While an inconsistent-view fault is active
    /// ([`Etcd::begin_inconsistent_view`]), the read serves the frozen
    /// snapshot instead.
    pub fn get(&self, key: &str) -> Option<(Bytes, u64)> {
        if let Some(sv) = &self.stale_view {
            return sv.data.get(key).map(|(b, rev)| (b.clone(), *rev));
        }
        self.backend.get(key)
    }

    /// Quorum range read over a key prefix, in key order. Values are
    /// refcounted views, not copies. Serves the frozen snapshot while an
    /// inconsistent-view fault is active.
    pub fn range(&self, prefix: &str) -> Vec<(String, Bytes, u64)> {
        if let Some(sv) = &self.stale_view {
            return sv
                .data
                .range(prefix.to_owned()..)
                .take_while(|(k, _)| k.starts_with(prefix))
                .map(|(k, (b, rev))| (k.clone(), b.clone(), *rev))
                .collect();
        }
        self.backend.range(prefix)
    }

    /// Returns watch events with log index ≥ `cursor` plus the next cursor.
    ///
    /// Replay is a tail view: the log is indexed directly (no walk over
    /// already-consumed events) and payload clones are refcount bumps.
    ///
    /// # Errors
    ///
    /// [`EtcdError::Compacted`] when `cursor` precedes the retention window.
    pub fn events_since(&self, cursor: u64) -> Result<(Vec<WatchEvent>, u64), EtcdError> {
        self.backend.events_since(cursor)
    }

    /// Returns watch events that committed at a revision > `revision`,
    /// plus the new resume revision (the store's current revision). Every
    /// committed write bumps the revision by exactly one and appends one
    /// event, so the log is contiguous in revision and the tail is
    /// located by arithmetic, not a scan. This is the apiserver's watch
    /// drain: its cursor is a store revision, exactly like real etcd.
    ///
    /// # Errors
    ///
    /// [`EtcdError::Compacted`] when events after `revision` have already
    /// been compacted away (the watcher must re-list).
    pub fn events_after_revision(
        &self,
        revision: u64,
    ) -> Result<(Vec<WatchEvent>, u64), EtcdError> {
        self.backend.events_after_revision(revision)
    }

    /// Log index one past the newest event (initial cursor for watchers).
    pub fn event_head(&self) -> u64 {
        self.backend.event_head()
    }

    /// Explicit compaction: lagging watch cursors are invalidated
    /// (subsequent replays return [`EtcdError::Compacted`]) and the
    /// engine reclaims storage garbage. The compaction-pressure fault
    /// family drives this; store contents and revisions are untouched.
    pub fn compact(&mut self) {
        self.backend.compact();
    }

    /// Crash recovery: the engine rebuilds its in-memory state from
    /// durable storage (the log engine replays its segments). Called by
    /// `ApiServer::restart` before the watch cache re-lists, so a
    /// crash-restart recovers *from the backend*, not from memory.
    pub fn recover(&mut self) {
        self.backend.recover();
    }

    /// Clamps the disk budget down to the bytes already used, so any
    /// growing write starts rejecting — the reversible disk-full fault
    /// actuation. A later [`Etcd::restore_disk_budget`] lifts it; the
    /// original budget survives nested clamps.
    pub fn clamp_disk_budget(&mut self) {
        if self.saved_capacity.is_none() {
            self.saved_capacity = Some(self.capacity_bytes);
        }
        self.capacity_bytes = self.disk_used();
    }

    /// Restores the budget a [`Etcd::clamp_disk_budget`] clamped. No-op
    /// when no clamp is active.
    pub fn restore_disk_budget(&mut self) {
        if let Some(cap) = self.saved_capacity.take() {
            self.capacity_bytes = cap;
        }
    }

    /// Silently corrupts the bytes stored on one replica without bumping
    /// revisions or emitting watch events — at-rest corruption (§V-C1).
    ///
    /// Returns `false` when the replica or key does not exist.
    pub fn corrupt_at_rest(&mut self, replica: usize, key: &str, bytes: impl Into<Bytes>) -> bool {
        self.backend.corrupt_at_rest(replica, key, bytes.into())
    }

    /// Corrupts the `nth` live key (modulo the key count) on `replica`
    /// (modulo the replica count) by inverting its bytes — the
    /// deterministic victim selection the etcd-corrupt-at-rest fault
    /// family uses. Returns `false` on an empty store.
    pub fn corrupt_nth_at_rest(&mut self, replica: usize, nth: usize) -> bool {
        let count = self.object_count();
        if count == 0 {
            return false;
        }
        let replica = replica % self.replica_count();
        let Some(key) = self.backend.nth_key(nth % count) else {
            return false;
        };
        let Some((bytes, _)) = self.backend.get_unquorum(replica, &key) else {
            return false;
        };
        let flipped: Vec<u8> = bytes.iter().map(|b| !b).collect();
        self.backend.corrupt_at_rest(replica, &key, flipped.into())
    }

    /// Reads a single replica without quorum (models a client that talks
    /// to one replica directly, bypassing linearizable reads).
    pub fn get_unquorum(&self, replica: usize, key: &str) -> Option<(Bytes, u64)> {
        self.backend.get_unquorum(replica, key)
    }

    /// Starts an inconsistent-view fault (arXiv:1904.06206): quorum
    /// reads ([`Etcd::get`] / [`Etcd::range`]) freeze on a snapshot of
    /// `replica`'s current disk state while writes, revisions and the
    /// watch stream move on — different readers of the same revision
    /// observe different bytes until [`Etcd::end_inconsistent_view`].
    pub fn begin_inconsistent_view(&mut self, replica: usize) {
        let replica = replica % self.replica_count();
        let mut data = BTreeMap::new();
        for (key, _, _) in self.backend.range("") {
            if let Some((bytes, rev)) = self.backend.get_unquorum(replica, &key) {
                data.insert(key, (bytes, rev));
            }
        }
        self.stale_view = Some(StaleView { data });
    }

    /// Ends an inconsistent-view fault; reads are linearizable again.
    pub fn end_inconsistent_view(&mut self) {
        self.stale_view = None;
    }

    /// True while an inconsistent-view fault is being served.
    pub fn inconsistent_view_active(&self) -> bool {
        self.stale_view.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs a check against a store on each engine; the observable
    /// contract is engine-independent.
    fn on_both(capacity: u64, replicas: usize, check: impl Fn(Etcd)) {
        for kind in [StorageKind::Mem, StorageKind::Log] {
            check(Etcd::with_backend(kind, replicas, capacity));
        }
    }

    #[test]
    fn put_get_roundtrip_and_revisions() {
        on_both(4096, 1, |mut e| {
            let r1 = e.put("/a", vec![1]).unwrap();
            let r2 = e.put("/b", vec![2]).unwrap();
            assert!(r2 > r1);
            assert_eq!(e.get("/a").unwrap().0.to_vec(), vec![1]);
            let r3 = e.put("/a", vec![9]).unwrap();
            let (bytes, rev) = e.get("/a").unwrap();
            assert_eq!(bytes.to_vec(), vec![9]);
            assert_eq!(rev, r3);
            assert_eq!(e.revision(), 3);
        });
    }

    #[test]
    fn delete_and_missing() {
        on_both(4096, 1, |mut e| {
            e.put("/a", vec![1]).unwrap();
            assert!(e.delete("/a").is_some());
            assert!(e.get("/a").is_none());
            assert!(e.delete("/a").is_none());
        });
    }

    #[test]
    fn range_is_prefix_scoped_and_ordered() {
        on_both(4096, 1, |mut e| {
            e.put("/registry/pods/default/b", vec![2]).unwrap();
            e.put("/registry/pods/default/a", vec![1]).unwrap();
            e.put("/registry/pods/kube-system/c", vec![3]).unwrap();
            e.put("/registry/services/default/s", vec![4]).unwrap();
            let r = e.range("/registry/pods/default/");
            let keys: Vec<&str> = r.iter().map(|(k, _, _)| k.as_str()).collect();
            assert_eq!(keys, vec!["/registry/pods/default/a", "/registry/pods/default/b"]);
        });
    }

    #[test]
    fn watch_events_stream_in_order() {
        on_both(4096, 1, |mut e| {
            let c0 = e.event_head();
            e.put("/a", vec![1]).unwrap();
            e.delete("/a");
            let (evs, next) = e.events_since(c0).unwrap();
            assert_eq!(evs.len(), 2);
            assert_eq!(evs[0].value.as_deref(), Some(&[1u8][..]));
            assert_eq!(evs[1].value, None);
            let (evs2, _) = e.events_since(next).unwrap();
            assert!(evs2.is_empty());
        });
    }

    #[test]
    fn revision_indexed_replay_returns_only_the_tail() {
        on_both(4096, 1, |mut e| {
            e.put("/a", vec![1]).unwrap(); // rev 1
            e.put("/b", vec![2]).unwrap(); // rev 2
            e.delete("/a"); // rev 3
            let (evs, resume) = e.events_after_revision(1).unwrap();
            assert_eq!(evs.len(), 2);
            assert_eq!(evs[0].revision, 2);
            assert_eq!(evs[1].revision, 3);
            assert_eq!(resume, e.revision());
            let (all, _) = e.events_after_revision(0).unwrap();
            assert_eq!(all.len(), 3);
            let (none, _) = e.events_after_revision(3).unwrap();
            assert!(none.is_empty());
        });
    }

    #[test]
    fn replay_and_reads_share_the_stored_allocation() {
        // The zero-copy property: quorum reads and watch replay hand out
        // the same Arc the committed write produced — on both engines.
        on_both(4096, 3, |mut e| {
            e.put("/a", vec![9; 64]).unwrap();
            let (stored, _) = e.get("/a").unwrap();
            let (evs, _) = e.events_since(0).unwrap();
            let replayed = evs[0].value.clone().unwrap();
            assert!(Arc::ptr_eq(&stored, &replayed), "payload was copied, not shared");
            let (direct, _) = e.get_unquorum(2, "/a").unwrap();
            assert!(Arc::ptr_eq(&stored, &direct));
        });
    }

    #[test]
    fn disk_fill_stalls_writes() {
        on_both(64, 1, |mut e| {
            let mut wrote = 0;
            loop {
                match e.put(&format!("/k{wrote}"), vec![0u8; 16]) {
                    Ok(_) => wrote += 1,
                    Err(EtcdError::DiskFull) => break,
                    Err(other) => panic!("unexpected: {other}"),
                }
                assert!(wrote < 100, "disk never filled");
            }
            assert!(e.is_stalled() || e.writes_rejected() > 0);
            assert!(e.is_degraded());
            // Updating an existing key to a smaller value still works.
            assert!(e.put("/k0", vec![0u8; 1]).is_ok());
        });
    }

    #[test]
    fn single_replica_fast_path_matches_quorum_semantics() {
        // The 1-replica fast path must behave exactly like the voting
        // path: same hit/miss results, shared (not copied) payloads, and
        // at-rest corruption visible (a 1-replica store has no quorum to
        // mask it — same answer the vote would give).
        on_both(4096, 1, |mut e| {
            assert!(e.get("/missing").is_none());
            let rev = e.put("/a", vec![5, 6]).unwrap();
            let (bytes, mod_rev) = e.get("/a").unwrap();
            assert_eq!((bytes.to_vec(), mod_rev), (vec![5, 6], rev));
            let (direct, _) = e.get_unquorum(0, "/a").unwrap();
            assert!(Arc::ptr_eq(&bytes, &direct), "fast path must not copy");
            e.corrupt_at_rest(0, "/a", vec![9]);
            assert_eq!(e.get("/a").unwrap().0.to_vec(), vec![9]);
        });
    }

    #[test]
    fn quorum_masks_single_replica_at_rest_corruption() {
        on_both(4096, 3, |mut e| {
            e.put("/a", vec![7, 7, 7]).unwrap();
            assert!(e.corrupt_at_rest(1, "/a", vec![0, 0, 0]));
            // Quorum read returns the uncorrupted majority value.
            assert_eq!(e.get("/a").unwrap().0.to_vec(), vec![7, 7, 7]);
            // Direct unquorum read of the corrupted replica sees the bad value.
            assert_eq!(e.get_unquorum(1, "/a").unwrap().0.to_vec(), vec![0, 0, 0]);
        });
    }

    #[test]
    fn in_flight_corruption_reaches_all_replicas() {
        // The §V-C1 result: injections before consensus are NOT masked.
        on_both(4096, 3, |mut e| {
            e.put("/a", vec![0xBA, 0xD0]).unwrap(); // already-faulty value
            for i in 0..3 {
                assert_eq!(e.get_unquorum(i, "/a").unwrap().0.to_vec(), vec![0xBA, 0xD0]);
            }
            assert_eq!(e.get("/a").unwrap().0.to_vec(), vec![0xBA, 0xD0]);
        });
    }

    #[test]
    fn at_rest_corruption_emits_no_watch_event() {
        on_both(4096, 1, |mut e| {
            e.put("/a", vec![1]).unwrap();
            let head = e.event_head();
            e.corrupt_at_rest(0, "/a", vec![2]);
            assert_eq!(e.event_head(), head);
            assert_eq!(e.revision(), 1);
        });
    }

    #[test]
    fn compaction_forces_relist() {
        // Retention-overflow compaction; slow (fills the whole watch
        // log), so run it on the mem engine only — the log is shared
        // machinery and the explicit-compaction test covers both.
        let mut e = Etcd::new(1, u64::MAX);
        for i in 0..(WATCH_LOG_RETENTION + 10) {
            e.put(&format!("/k{}", i % 7), vec![1]).unwrap();
        }
        assert!(matches!(e.events_since(0), Err(EtcdError::Compacted)));
        assert!(matches!(e.events_after_revision(0), Err(EtcdError::Compacted)));
        let head = e.event_head();
        assert!(e.events_since(head).is_ok());
        assert!(e.events_after_revision(e.revision()).is_ok());
    }

    #[test]
    fn explicit_compaction_invalidates_lagging_cursors() {
        on_both(4096, 1, |mut e| {
            e.put("/a", vec![1]).unwrap();
            e.put("/b", vec![2]).unwrap();
            let lagging = e.event_head() - 1;
            e.compact();
            // Lagging watchers must re-list…
            assert!(matches!(e.events_since(lagging - 1), Err(EtcdError::Compacted)));
            assert!(matches!(e.events_since(lagging), Err(EtcdError::Compacted)));
            assert!(matches!(e.events_after_revision(1), Err(EtcdError::Compacted)));
            // …caught-up watchers and fresh cursors are unaffected…
            assert!(e.events_since(e.event_head()).is_ok());
            assert!(e.events_after_revision(e.revision()).is_ok());
            // …and the store itself is untouched.
            assert_eq!(e.get("/a").unwrap().0.to_vec(), vec![1]);
            assert_eq!(e.revision(), 2);
            assert!(e.compactions() >= 1);
            // The stream resumes cleanly after the compaction.
            let cursor = e.event_head();
            e.put("/c", vec![3]).unwrap();
            let (evs, _) = e.events_since(cursor).unwrap();
            assert_eq!(evs.len(), 1);
            assert_eq!(evs[0].key, "/c");
        });
    }

    #[test]
    fn events_since_cursor_lag_is_typed_not_fatal() {
        // The watch-pipeline contract the compaction-pressure family
        // leans on: a lagging cursor is a typed error and the stream
        // recovers once the watcher re-lists from the head.
        on_both(4096, 1, |mut e| {
            for i in 0..4 {
                e.put(&format!("/k{i}"), vec![i as u8]).unwrap();
            }
            let (evs, next) = e.events_since(2).unwrap();
            assert_eq!(evs.len(), 2, "tail view from a mid-log cursor");
            assert_eq!(next, e.event_head());
            e.compact();
            assert_eq!(e.events_since(2), Err(EtcdError::Compacted));
            let (empty, resumed) = e.events_since(e.event_head()).unwrap();
            assert!(empty.is_empty());
            assert_eq!(resumed, e.event_head());
        });
    }

    #[test]
    fn corrupt_missing_key_or_replica_is_false() {
        on_both(4096, 1, |mut e| {
            assert!(!e.corrupt_at_rest(0, "/nope", vec![]));
            e.put("/a", vec![1]).unwrap();
            assert!(!e.corrupt_at_rest(5, "/a", vec![]));
        });
    }

    #[test]
    fn corrupt_nth_flips_a_deterministic_victim() {
        on_both(4096, 1, |mut e| {
            assert!(!e.corrupt_nth_at_rest(0, 0), "empty store has no victim");
            e.put("/a", vec![0x0F]).unwrap();
            e.put("/b", vec![0xF0]).unwrap();
            // nth wraps modulo the key count: 3 % 2 == 1 → "/b".
            assert!(e.corrupt_nth_at_rest(0, 3));
            assert_eq!(e.get("/b").unwrap().0.to_vec(), vec![0x0F]);
            assert_eq!(e.get("/a").unwrap().0.to_vec(), vec![0x0F], "/a untouched");
        });
    }

    #[test]
    fn clamp_and_restore_disk_budget() {
        on_both(1 << 20, 1, |mut e| {
            e.put("/a", vec![1; 32]).unwrap();
            assert!(!e.is_degraded());
            e.clamp_disk_budget();
            assert!(e.is_stalled(), "clamped budget equals usage");
            assert!(matches!(e.put("/grow", vec![1; 8]), Err(EtcdError::DiskFull)));
            // Same-size rewrites still fit (no growth).
            assert!(e.put("/a", vec![2; 32]).is_ok());
            // Nested clamps keep the original budget.
            e.clamp_disk_budget();
            e.restore_disk_budget();
            assert!(!e.is_stalled());
            assert!(e.put("/grow", vec![1; 8]).is_ok());
            // The rejection remains permanent degradation evidence.
            assert!(e.is_degraded());
        });
    }

    #[test]
    fn inconsistent_view_serves_stale_reads_while_writes_advance() {
        on_both(4096, 1, |mut e| {
            e.put("/a", vec![1]).unwrap();
            e.begin_inconsistent_view(0);
            assert!(e.inconsistent_view_active());
            let rev = e.put("/a", vec![2]).unwrap();
            e.put("/new", vec![3]).unwrap();
            // Quorum readers are frozen at fault onset…
            assert_eq!(e.get("/a").unwrap().0.to_vec(), vec![1]);
            assert!(e.get("/new").is_none());
            assert_eq!(e.range("/").len(), 1);
            // …while the revision and the watch stream carry the truth:
            // different readers of the same revision see different bytes.
            assert_eq!(e.revision(), 3);
            let (evs, _) = e.events_after_revision(rev - 1).unwrap();
            assert_eq!(evs[0].value.as_deref(), Some(&[2u8][..]));
            e.end_inconsistent_view();
            assert_eq!(e.get("/a").unwrap().0.to_vec(), vec![2]);
            assert_eq!(e.range("/").len(), 2);
        });
    }

    #[test]
    fn log_backend_seals_segments_and_compacts_garbage() {
        let mut e = Etcd::with_backend(StorageKind::Log, 1, u64::MAX);
        // Enough distinct keys to seal at least one segment…
        for i in 0..SEGMENT_TARGET + 8 {
            e.put(&format!("/k{i:04}"), vec![7; 8]).unwrap();
        }
        assert!(e.segments() >= 2, "active segment should have sealed");
        let before = e.physical_bytes();
        assert!(before > e.disk_used(), "framing overhead makes physical > logical");
        // …then churn one key until garbage triggers background
        // compaction (physical > 2× logical and above the floor).
        let snapshot = e.range("");
        for _ in 0..40_000 {
            e.put("/churn", vec![9; 64]).unwrap();
        }
        assert!(e.compactions() >= 1, "garbage never triggered compaction");
        // Churn appended ~2.8 MB; compaction keeps the log near the
        // 64 KiB trigger floor instead of letting it grow unbounded.
        assert!(e.physical_bytes() <= 66 * 1024, "log kept garbage: {}", e.physical_bytes());
        // Background compaction is invisible to readers.
        for (k, b, _) in snapshot {
            if k != "/churn" {
                assert_eq!(e.get(&k).unwrap().0, b);
            }
        }
    }

    #[test]
    fn log_backend_recovers_index_from_segments() {
        let mut e = Etcd::with_backend(StorageKind::Log, 1, u64::MAX);
        for i in 0..SEGMENT_TARGET * 2 {
            e.put(&format!("/k{:03}", i % 300), vec![(i % 251) as u8; 8]).unwrap();
        }
        e.delete("/k000");
        let objects = e.object_count();
        let revision = e.revision();
        let disk = e.disk_used();
        let snapshot = e.range("");
        e.recover();
        assert_eq!(e.object_count(), objects);
        assert_eq!(e.revision(), revision);
        assert_eq!(e.disk_used(), disk);
        assert_eq!(e.range(""), snapshot);
        // Replayed values still share the committed allocation.
        let (bytes, _) = e.get("/k001").unwrap();
        let (again, _) = e.get("/k001").unwrap();
        assert!(Arc::ptr_eq(&bytes, &again));
    }

    #[test]
    fn at_rest_corruption_is_durable_across_recovery() {
        // Corruption lives on the replica's disk: a crash recovery
        // replays the log *and* the tampered bytes survive (the §V-C1
        // threat a quorum vote exists to mask).
        for replicas in [1usize, 3] {
            let mut e = Etcd::with_backend(StorageKind::Log, replicas, u64::MAX);
            e.put("/a", vec![7, 7]).unwrap();
            assert!(e.corrupt_at_rest(0, "/a", vec![0, 0]));
            e.recover();
            assert_eq!(e.get_unquorum(0, "/a").unwrap().0.to_vec(), vec![0, 0]);
            if replicas == 3 {
                // Quorum still masks the single corrupted replica.
                assert_eq!(e.get("/a").unwrap().0.to_vec(), vec![7, 7]);
            }
        }
    }

    #[test]
    fn fork_is_copy_on_write_on_both_engines() {
        on_both(1 << 20, 1, |mut e| {
            e.put("/a", vec![1]).unwrap();
            let mut fork = e.clone();
            fork.put("/a", vec![2]).unwrap();
            fork.put("/b", vec![3]).unwrap();
            fork.compact();
            // The original never sees the fork's writes (or vice versa).
            assert_eq!(e.get("/a").unwrap().0.to_vec(), vec![1]);
            assert!(e.get("/b").is_none());
            assert_eq!(e.revision(), 1);
            assert!(e.events_since(0).is_ok(), "fork's compaction leaked");
            e.put("/c", vec![4]).unwrap();
            assert!(fork.get("/c").is_none());
            // Untouched payloads stay shared (refcount, not copy).
            let (orig, _) = e.get("/a").unwrap();
            let (evs, _) = e.events_since(0).unwrap();
            assert!(Arc::ptr_eq(&orig, evs[0].value.as_ref().unwrap()));
        });
    }

    #[test]
    fn log_backend_fork_recovery_is_independent() {
        let mut e = Etcd::with_backend(StorageKind::Log, 1, u64::MAX);
        for i in 0..SEGMENT_TARGET + 4 {
            e.put(&format!("/k{i:04}"), vec![1; 4]).unwrap();
        }
        let mut fork = e.clone();
        fork.put("/fork-only", vec![9]).unwrap();
        fork.recover();
        assert!(fork.get("/fork-only").is_some());
        e.recover();
        assert!(e.get("/fork-only").is_none());
        assert_eq!(e.object_count() + 1, fork.object_count());
    }

    #[test]
    fn storage_kind_parses_and_names() {
        assert_eq!(StorageKind::parse("mem"), Some(StorageKind::Mem));
        assert_eq!(StorageKind::parse("log"), Some(StorageKind::Log));
        assert_eq!(StorageKind::parse("bolt"), None);
        assert_eq!(StorageKind::Mem.name(), "mem");
        assert_eq!(StorageKind::Log.to_string(), "log");
        assert_eq!(StorageKind::default(), StorageKind::Mem);
        assert_eq!(Etcd::new(1, 1).backend_name(), "mem");
        assert_eq!(Etcd::with_backend(StorageKind::Log, 1, 1).backend_name(), "log");
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_panics() {
        let _ = Etcd::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_panics_on_log_engine() {
        let _ = Etcd::with_backend(StorageKind::Log, 0, 1);
    }
}
