//! The storage seam: [`StorageBackend`] is the engine interface the
//! [`Etcd`](crate::Etcd) front-end drives.
//!
//! The front-end owns *policy* — the disk budget and write rejection,
//! the inconsistent-view overlay, telemetry — while a backend owns
//! *mechanism*: where bytes live, how the watch log is kept, what a
//! crash recovery replays. Two engines ship with the crate
//! ([`MemBackend`](crate::MemBackend), [`LogBackend`](crate::LogBackend));
//! third parties can implement the trait and plug in via
//! [`Etcd::from_backend`](crate::Etcd::from_backend) — see
//! `crates/etcd/README.md` for a worked example.
//!
//! Every observable behind the seam — revisions, logical disk
//! accounting, quorum votes, watch-log retention and compaction — must
//! be **byte-identical across backends**: the campaign TSV is diffed
//! between `MUTINY_STORAGE=mem` and `=log`, so only invisible state
//! (segment layout, physical bytes, telemetry counters) may differ.

use crate::{Bytes, EtcdError, WatchEvent, WATCH_LOG_RETENTION};
use std::collections::VecDeque;
use std::sync::Arc;

/// A pluggable storage engine.
///
/// Contract highlights (all pinned by the cross-backend tests in
/// `crates/etcd/src/lib.rs`):
///
/// * [`commit`](StorageBackend::commit) never rejects — the *front-end*
///   enforces the disk budget before calling it, so both engines reject
///   the exact same writes;
/// * [`disk_used`](StorageBackend::disk_used) is **logical** live bytes
///   (`key.len() + value.len()` summed over the leader's live keys) —
///   the budget basis, identical across engines.
///   [`physical_bytes`](StorageBackend::physical_bytes) is the
///   engine-specific on-disk footprint (the log engine's garbage);
/// * [`fork`](StorageBackend::fork) is a copy-on-write snapshot:
///   `World::fork` clones the store once per experiment, so it must be
///   refcount bumps, not deep copies;
/// * [`recover`](StorageBackend::recover) is a crash-recovery: rebuild
///   any in-memory acceleration state from durable state, changing
///   nothing observable (at-rest corruption is durable and survives).
pub trait StorageBackend: std::fmt::Debug {
    /// Engine name (`"mem"`, `"log"`), exported to `BENCH_campaign.json`.
    fn name(&self) -> &'static str;

    /// Number of replicas.
    fn replica_count(&self) -> usize;

    /// Current global revision.
    fn revision(&self) -> u64;

    /// Logical live bytes on the leader replica (the budget basis).
    fn disk_used(&self) -> u64;

    /// Engine-specific on-disk footprint (≥ [`disk_used`] for a log
    /// engine carrying garbage; equal for the in-memory engine).
    ///
    /// [`disk_used`]: StorageBackend::disk_used
    fn physical_bytes(&self) -> u64;

    /// Number of live keys.
    fn object_count(&self) -> usize;

    /// `key.len() + value.len()` of the leader's live version of `key`,
    /// `0` when absent. The front-end's capacity check subtracts this
    /// from a rewrite's growth.
    fn live_size(&self, key: &str) -> u64;

    /// The `nth` live key in key order (victim selection for at-rest
    /// corruption).
    fn nth_key(&self, nth: usize) -> Option<String>;

    /// Commits a write to every replica and appends the watch event.
    /// Returns the new revision. Capacity is the front-end's job;
    /// `commit` must always succeed.
    fn commit(&mut self, key: &str, bytes: Bytes) -> u64;

    /// Deletes a key from every replica. Returns the deletion revision,
    /// or `None` when the key did not exist.
    fn delete(&mut self, key: &str) -> Option<u64>;

    /// Quorum read (majority vote across replicas).
    fn get(&self, key: &str) -> Option<(Bytes, u64)>;

    /// Quorum range read over a key prefix, in key order.
    fn range(&self, prefix: &str) -> Vec<(String, Bytes, u64)>;

    /// Watch events with log index ≥ `cursor`, plus the next cursor.
    ///
    /// # Errors
    ///
    /// [`EtcdError::Compacted`] when `cursor` precedes the retention
    /// window.
    fn events_since(&self, cursor: u64) -> Result<(Vec<WatchEvent>, u64), EtcdError>;

    /// Watch events committed at a revision > `revision`, plus the new
    /// resume revision.
    ///
    /// # Errors
    ///
    /// [`EtcdError::Compacted`] when that history is gone.
    fn events_after_revision(&self, revision: u64) -> Result<(Vec<WatchEvent>, u64), EtcdError>;

    /// Log index one past the newest event.
    fn event_head(&self) -> u64;

    /// Explicit compaction: drops the retained watch history (lagging
    /// watchers get [`EtcdError::Compacted`] and must re-list) and lets
    /// the engine reclaim storage garbage. Store contents, revisions
    /// and disk accounting are untouched.
    fn compact(&mut self);

    /// Crash recovery: rebuild in-memory acceleration state from the
    /// engine's durable state. Observably a no-op — durable at-rest
    /// corruption survives it.
    fn recover(&mut self);

    /// Silently corrupts one replica's bytes for `key` (no revision
    /// bump, no watch event). Returns `false` when the replica or key
    /// does not exist.
    fn corrupt_at_rest(&mut self, replica: usize, key: &str, bytes: Bytes) -> bool;

    /// Reads a single replica without quorum.
    fn get_unquorum(&self, replica: usize, key: &str) -> Option<(Bytes, u64)>;

    /// Copy-on-write snapshot of the engine (refcount bumps, no deep
    /// copy); writes to either side never reach the other.
    fn fork(&self) -> Box<dyn StorageBackend>;

    /// Storage segments currently on disk (`0` for engines without a
    /// segmented layout).
    fn segments(&self) -> u64 {
        0
    }

    /// Compactions performed so far (explicit and engine-internal).
    fn compactions(&self) -> u64;
}

/// One stored version: refcounted bytes plus MVCC metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Versioned {
    pub(crate) bytes: Bytes,
    pub(crate) create_rev: u64,
    pub(crate) mod_rev: u64,
}

/// The shared watch-log implementation: a bounded event deque behind an
/// `Arc` so a fork is one refcount bump (the first post-fork append
/// clones). Both engines embed it, which is what makes their watch
/// semantics — retention, compaction, replay errors — identical by
/// construction.
#[derive(Debug, Clone, Default)]
pub(crate) struct WatchLog {
    events: Arc<VecDeque<WatchEvent>>,
    /// Log index of `events[0]`.
    first_event_index: u64,
}

impl WatchLog {
    pub(crate) fn push(&mut self, ev: WatchEvent) {
        let events = Arc::make_mut(&mut self.events);
        if events.len() == WATCH_LOG_RETENTION {
            events.pop_front();
            self.first_event_index += 1;
        }
        events.push_back(ev);
    }

    /// Drops all retained events: any cursor short of the head now
    /// replays as [`EtcdError::Compacted`].
    pub(crate) fn compact(&mut self) {
        self.first_event_index = self.head();
        Arc::make_mut(&mut self.events).clear();
    }

    pub(crate) fn head(&self) -> u64 {
        self.first_event_index + self.events.len() as u64
    }

    pub(crate) fn events_since(&self, cursor: u64) -> Result<(Vec<WatchEvent>, u64), EtcdError> {
        if cursor < self.first_event_index {
            return Err(EtcdError::Compacted);
        }
        let start = ((cursor - self.first_event_index) as usize).min(self.events.len());
        let out: Vec<WatchEvent> = self.events.range(start..).cloned().collect();
        Ok((out, self.head()))
    }

    pub(crate) fn events_after_revision(
        &self,
        revision: u64,
        current: u64,
    ) -> Result<(Vec<WatchEvent>, u64), EtcdError> {
        let first_rev = match self.events.front() {
            Some(ev) => ev.revision,
            None => {
                // Empty log: fine unless history before `revision` is gone.
                return if revision >= current {
                    Ok((Vec::new(), current))
                } else {
                    Err(EtcdError::Compacted)
                };
            }
        };
        if revision + 1 < first_rev {
            return Err(EtcdError::Compacted);
        }
        let start = ((revision + 1 - first_rev) as usize).min(self.events.len());
        debug_assert!(
            self.events.get(start).map(|ev| ev.revision > revision).unwrap_or(true),
            "watch log not contiguous in revision"
        );
        let out: Vec<WatchEvent> = self.events.range(start..).cloned().collect();
        Ok((out, current))
    }
}

/// Majority vote over per-replica `(bytes, mod_rev)` views, shared by
/// both engines so the vote (including its pointer-equality fast path
/// and first-seen tie-break) cannot drift between them. `None` unless a
/// strict majority of `replicas` holds the key.
pub(crate) fn quorum_vote(values: &[(&Bytes, u64)], replicas: usize) -> Option<(Bytes, u64)> {
    if values.is_empty() || values.len() * 2 < replicas {
        return None; // no majority holds the key
    }
    // Majority vote on the byte content (pointer-equality fast path:
    // replicas that share the committed Arc agree by construction).
    let mut counts: Vec<(usize, (&Bytes, u64))> = Vec::new();
    for v in values {
        match counts
            .iter_mut()
            .find(|(_, u)| Arc::ptr_eq(u.0, v.0) || u.0 == v.0)
        {
            Some((c, _)) => *c += 1,
            None => counts.push((1, *v)),
        }
    }
    counts.sort_by_key(|&(c, _)| std::cmp::Reverse(c));
    let (_, (bytes, mod_rev)) = counts[0];
    Some((bytes.clone(), mod_rev))
}
