//! Seeded, forkable pseudo-random number generation.
//!
//! Experiments must be reproducible from `(campaign seed, experiment id)`
//! alone, and adding a component to the world must not perturb the random
//! sequences of unrelated components. [`Rng::fork`] derives an independent
//! stream per component from a parent seed, so every part of the simulation
//! owns its own deterministic sequence.
//!
//! The generator is SplitMix64 (Steele et al., "Fast splittable pseudorandom
//! number generators", OOPSLA 2014): tiny, fast, and statistically adequate
//! for simulation jitter — cryptographic quality is not required here.

/// A deterministic SplitMix64 pseudo-random number generator.
///
/// ```
/// use simkit::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Forked streams are independent of the parent's subsequent draws.
/// let mut fork = a.fork("scheduler");
/// let x = fork.next_u64();
/// let mut fork2 = b.fork("scheduler");
/// assert_eq!(x, fork2.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rng {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal sequences.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix(self.state)
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Forking does not consume randomness from `self`, so adding a fork for
    /// a new component leaves all existing streams untouched.
    pub fn fork(&self, label: &str) -> Rng {
        let mut h = self.state ^ 0x517c_c1b7_2722_0a95;
        for b in label.as_bytes() {
            h = (h ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
        }
        Rng { state: mix(h) }
    }

    /// Derives an independent generator for a numbered sub-stream.
    pub fn fork_n(&self, n: u64) -> Rng {
        Rng { state: mix(self.state ^ n.wrapping_mul(GOLDEN_GAMMA) ^ 0xd1b5_4a32_d192_ed03) }
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below bound must be positive");
        // Multiply-shift bounded generation (Lemire); the bias for our
        // simulation-sized bounds (≪ 2^32) is negligible.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "Rng::range requires lo <= hi");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Normal deviate with the given mean and standard deviation
    /// (Box–Muller; one of the pair is discarded for simplicity).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = self.f64().max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Picks a uniformly random element of `items`, or `None` if empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.below(items.len() as u64) as usize;
            Some(&items[i])
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_stable_and_independent() {
        let parent = Rng::new(99);
        let mut f1 = parent.fork("kubelet-0");
        let mut f2 = parent.fork("kubelet-0");
        let mut f3 = parent.fork("kubelet-1");
        assert_eq!(f1.next_u64(), f2.next_u64());
        assert_ne!(f1.next_u64(), f3.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = Rng::new(4);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.range(2, 4);
            assert!((2..=4).contains(&v));
            saw_lo |= v == 2;
            saw_hi |= v == 4;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = Rng::new(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn normal_has_requested_moments() {
        let mut r = Rng::new(6);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
        assert!((var.sqrt() - 2.0).abs() < 0.1);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pick_none_on_empty() {
        let mut r = Rng::new(9);
        let empty: [u8; 0] = [];
        assert_eq!(r.pick(&empty), None);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(10);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
