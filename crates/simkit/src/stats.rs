//! Statistics used by the paper's failure classifiers.
//!
//! The Mutiny paper classifies client-level failures by comparing the
//! response-time series of an injection run against a baseline averaged over
//! golden runs: the Mean Absolute Error of each golden run against the
//! baseline forms a distribution, and an experiment is flagged when the
//! z-score of its MAE against that distribution exceeds a threshold (§V-B).
//! Orchestrator-level timing failures use the same z-score machinery over
//! pod-startup statistics.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; `0.0` for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// z-score of `x` against the distribution of `samples`.
///
/// Degenerate distributions (σ = 0) return `0.0` when `x` equals the mean and
/// a large sentinel (`±1e9`) otherwise, so downstream thresholds still fire
/// on clear deviations from a perfectly stable baseline.
pub fn z_score(x: f64, samples: &[f64]) -> f64 {
    let m = mean(samples);
    let s = std_dev(samples);
    if s > f64::EPSILON {
        (x - m) / s
    } else if (x - m).abs() <= f64::EPSILON {
        0.0
    } else if x > m {
        1e9
    } else {
        -1e9
    }
}

/// Mean Absolute Error between two series.
///
/// Series of different lengths are compared over the longer length with the
/// shorter one padded with zeros — the paper pads failed requests with a
/// response time of zero, so a truncated series reads as failures.
pub fn mae(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().max(b.len());
    if n == 0 {
        return 0.0;
    }
    let get = |xs: &[f64], i: usize| xs.get(i).copied().unwrap_or(0.0);
    (0..n).map(|i| (get(a, i) - get(b, i)).abs()).sum::<f64>() / n as f64
}

/// Element-wise mean of several equally ordered series (ragged tails are
/// averaged over the series that reach them).
pub fn average_series(series: &[Vec<f64>]) -> Vec<f64> {
    let n = series.iter().map(Vec::len).max().unwrap_or(0);
    let mut out = vec![0.0; n];
    for (i, slot) in out.iter_mut().enumerate() {
        let mut sum = 0.0;
        let mut cnt = 0usize;
        for s in series {
            if let Some(v) = s.get(i) {
                sum += v;
                cnt += 1;
            }
        }
        if cnt > 0 {
            *slot = sum / cnt as f64;
        }
    }
    out
}

/// Linear-interpolated percentile (`p` in `[0, 100]`); `0.0` when empty.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Maximum value; `0.0` when empty (startup-time series are non-negative).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(mae(&[], &[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(max(&[]), 0.0);
    }

    #[test]
    fn z_score_basic() {
        let samples = [10.0, 12.0, 8.0, 10.0, 10.0];
        let z = z_score(14.0, &samples);
        assert!(z > 2.0, "z = {z}");
        assert!(z_score(10.0, &samples).abs() < 0.01);
    }

    #[test]
    fn z_score_degenerate_sigma() {
        let flat = [5.0; 10];
        assert_eq!(z_score(5.0, &flat), 0.0);
        assert!(z_score(6.0, &flat) > 1e8);
        assert!(z_score(4.0, &flat) < -1e8);
    }

    #[test]
    fn mae_pads_shorter_series_with_zeros() {
        // A truncated (failed) series must register as a large error.
        let golden = [1.0, 1.0, 1.0, 1.0];
        let failed = [1.0, 1.0];
        assert!((mae(&golden, &failed) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn average_series_handles_ragged() {
        let s = vec![vec![1.0, 3.0], vec![3.0], vec![5.0, 5.0, 9.0]];
        let avg = average_series(&s);
        assert_eq!(avg.len(), 3);
        assert!((avg[0] - 3.0).abs() < 1e-12);
        assert!((avg[1] - 4.0).abs() < 1e-12);
        assert!((avg[2] - 9.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 4.0).abs() < 1e-12);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn max_of_series() {
        assert_eq!(max(&[1.0, 9.0, 3.0]), 9.0);
    }
}
