//! Bounded in-memory trace buffer standing in for component logs.
//!
//! The paper's data collection retrieves control-plane logs at debug
//! verbosity and analyses them for error reports (Figure 7: most injections
//! never surface an error to the user). Components in this reproduction
//! write to a shared [`Trace`]; classifiers query it afterwards.

use crate::SimTime;

/// Severity of a trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// Verbose progress information (kubelet pod transitions, reconciles).
    Debug,
    /// Notable state changes (leader elections, evictions).
    Info,
    /// Degraded but tolerated conditions (retries, backoff).
    Warn,
    /// A component reported an operation failure.
    Error,
}

impl std::fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TraceLevel::Debug => "DEBUG",
            TraceLevel::Info => "INFO",
            TraceLevel::Warn => "WARN",
            TraceLevel::Error => "ERROR",
        };
        f.write_str(s)
    }
}

/// One log line: time, severity, emitting component, message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Simulated time at which the entry was emitted.
    pub at: SimTime,
    /// Severity.
    pub level: TraceLevel,
    /// Component tag, e.g. `"kcm/replicaset"` or `"apiserver"`.
    pub component: String,
    /// Human-readable message.
    pub message: String,
}

/// A bounded ring buffer of [`TraceEntry`] values plus per-level counters.
///
/// The buffer keeps the most recent `capacity` entries; counters are exact
/// over the whole run so classifiers can ask "did any ERROR occur?" even
/// after older lines were evicted.
///
/// ```
/// use simkit::{Trace, TraceLevel};
///
/// let mut trace = Trace::new(128);
/// trace.log(5, TraceLevel::Error, "apiserver", "etcd write rejected");
/// assert_eq!(trace.count(TraceLevel::Error), 1);
/// assert!(trace.any_matching(TraceLevel::Error, "etcd"));
/// ```
#[derive(Debug, Clone)]
pub struct Trace {
    entries: std::collections::VecDeque<TraceEntry>,
    capacity: usize,
    counts: [u64; 4],
    /// When false, `Debug` entries are counted but not stored.
    pub store_debug: bool,
}

impl Trace {
    /// Creates a trace buffer retaining at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Trace {
            entries: std::collections::VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            counts: [0; 4],
            store_debug: true,
        }
    }

    fn idx(level: TraceLevel) -> usize {
        match level {
            TraceLevel::Debug => 0,
            TraceLevel::Info => 1,
            TraceLevel::Warn => 2,
            TraceLevel::Error => 3,
        }
    }

    /// Appends an entry, evicting the oldest when full.
    pub fn log(
        &mut self,
        at: SimTime,
        level: TraceLevel,
        component: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.counts[Self::idx(level)] += 1;
        if level == TraceLevel::Debug && !self.store_debug {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(TraceEntry {
            at,
            level,
            component: component.into(),
            message: message.into(),
        });
    }

    /// Exact number of entries ever logged at `level`.
    pub fn count(&self, level: TraceLevel) -> u64 {
        self.counts[Self::idx(level)]
    }

    /// Iterates over retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Returns retained entries at exactly `level`.
    pub fn at_level(&self, level: TraceLevel) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.level == level)
    }

    /// True if any retained entry at `level` mentions `needle` in its
    /// component tag or message.
    pub fn any_matching(&self, level: TraceLevel, needle: &str) -> bool {
        self.at_level(level)
            .any(|e| e.component.contains(needle) || e.message.contains(needle))
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the retained tail as text (for examples and debugging).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(out, "[{:>8} ms] {:5} {} — {}", e.at, e.level, e.component, e.message);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_survive_eviction() {
        let mut t = Trace::new(2);
        for i in 0..10 {
            t.log(i, TraceLevel::Warn, "c", "m");
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.count(TraceLevel::Warn), 10);
    }

    #[test]
    fn matching_searches_component_and_message() {
        let mut t = Trace::new(8);
        t.log(1, TraceLevel::Error, "apiserver", "rejected update");
        assert!(t.any_matching(TraceLevel::Error, "apiserver"));
        assert!(t.any_matching(TraceLevel::Error, "rejected"));
        assert!(!t.any_matching(TraceLevel::Error, "kubelet"));
        assert!(!t.any_matching(TraceLevel::Warn, "apiserver"));
    }

    #[test]
    fn debug_can_be_suppressed_but_still_counted() {
        let mut t = Trace::new(8);
        t.store_debug = false;
        t.log(1, TraceLevel::Debug, "kcm", "reconcile");
        assert_eq!(t.len(), 0);
        assert_eq!(t.count(TraceLevel::Debug), 1);
    }

    #[test]
    fn render_contains_fields() {
        let mut t = Trace::new(8);
        t.log(42, TraceLevel::Info, "scheduler", "elected leader");
        let s = t.render();
        assert!(s.contains("42"));
        assert!(s.contains("scheduler"));
        assert!(s.contains("elected leader"));
    }

    #[test]
    fn at_level_filters() {
        let mut t = Trace::new(8);
        t.log(1, TraceLevel::Info, "a", "x");
        t.log(2, TraceLevel::Error, "b", "y");
        assert_eq!(t.at_level(TraceLevel::Error).count(), 1);
        assert_eq!(t.at_level(TraceLevel::Info).count(), 1);
    }
}
