//! # simkit — deterministic discrete-event simulation kernel
//!
//! The Mutiny reproduction runs thousands of fault-injection experiments;
//! every experiment must be exactly reproducible from its seed. This crate
//! provides the minimal kernel that makes that possible:
//!
//! * [`Sim`] — a virtual clock plus a monotonic event queue (events at equal
//!   timestamps are delivered in insertion order, so runs are deterministic);
//! * [`Rng`] — a seeded SplitMix64 generator with forkable streams so each
//!   component draws from an independent, reproducible sequence;
//! * [`Trace`] — a bounded in-memory trace buffer standing in for component
//!   logs (the paper collects control-plane logs at verbosity 6);
//! * [`stats`] — the small statistics toolbox (mean/std, MAE, z-score,
//!   percentiles) used by the golden-run classifiers.
//!
//! ```
//! use simkit::Sim;
//!
//! let mut sim: Sim<&'static str> = Sim::new();
//! sim.schedule_after(10, "second");
//! sim.schedule_after(5, "first");
//! assert_eq!(sim.next(), Some((5, "first")));
//! assert_eq!(sim.next(), Some((10, "second")));
//! assert_eq!(sim.now(), 10);
//! ```

pub mod rng;
pub mod stats;
pub mod trace;

pub use rng::Rng;
pub use trace::{Trace, TraceLevel};

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in milliseconds since the start of the experiment.
pub type SimTime = u64;

#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// Ordering is (at, seq) only — `seq` is unique per queue, so the event
// payload never participates in comparisons and `E` needs no bounds.
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic discrete-event simulator: a virtual clock driving a
/// priority queue of events.
///
/// `Sim` is generic over the event payload `E`; the embedding world defines
/// its own event enum and drives the loop:
///
/// ```
/// use simkit::Sim;
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Tick, Stop }
///
/// let mut sim = Sim::new();
/// sim.schedule(0, Ev::Tick);
/// sim.schedule(100, Ev::Stop);
/// let mut ticks = 0;
/// while let Some((_, ev)) = sim.next() {
///     match ev {
///         Ev::Tick if sim.now() < 50 => {
///             ticks += 1;
///             sim.schedule_after(10, Ev::Tick);
///         }
///         Ev::Tick => ticks += 1,
///         Ev::Stop => break,
///     }
/// }
/// assert_eq!(ticks, 6);
/// ```
#[derive(Debug, Clone)]
pub struct Sim<E> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
}

impl<E> Default for Sim<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Sim<E> {
    /// Creates an empty simulator with the clock at time zero.
    pub fn new() -> Self {
        Sim { now: 0, seq: 0, heap: BinaryHeap::new() }
    }

    /// Current simulated time. Advances only when events are consumed.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events currently scheduled.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events remain.
    pub fn is_idle(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Events scheduled in the past are clamped to `now`: the simulation
    /// never travels backwards. Events with equal timestamps are delivered
    /// in the order they were scheduled.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Schedules `event` `delay` milliseconds after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Deliberately not an `Iterator`: popping mutates the clock, and
    /// callers interleave pops with scheduling.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let Reverse(s) = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "event queue went backwards");
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Pops the next event only if it fires at or before `horizon`.
    ///
    /// Events beyond the horizon stay queued; the clock advances to
    /// `horizon` when the queue runs dry or only later events remain.
    pub fn next_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.heap.peek() {
            Some(Reverse(s)) if s.at <= horizon => self.next(),
            _ => {
                self.now = self.now.max(horizon);
                None
            }
        }
    }

    /// Timestamp of the next scheduled event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Drops every scheduled event (used when tearing a world down early).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_at_equal_timestamps() {
        let mut sim = Sim::new();
        for i in 0..100 {
            sim.schedule(7, i);
        }
        for i in 0..100 {
            assert_eq!(sim.next(), Some((7, i)));
        }
    }

    #[test]
    fn orders_by_time() {
        let mut sim = Sim::new();
        sim.schedule(30, "c");
        sim.schedule(10, "a");
        sim.schedule(20, "b");
        assert_eq!(sim.next().unwrap().1, "a");
        assert_eq!(sim.next().unwrap().1, "b");
        assert_eq!(sim.next().unwrap().1, "c");
        assert!(sim.is_idle());
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut sim = Sim::new();
        sim.schedule(50, "x");
        sim.next();
        sim.schedule(10, "past");
        let (t, _) = sim.next().unwrap();
        assert_eq!(t, 50);
        assert_eq!(sim.now(), 50);
    }

    #[test]
    fn horizon_stops_delivery_and_advances_clock() {
        let mut sim = Sim::new();
        sim.schedule(100, "late");
        assert_eq!(sim.next_until(60), None);
        assert_eq!(sim.now(), 60);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.next_until(200), Some((100, "late")));
    }

    #[test]
    fn schedule_after_accumulates() {
        let mut sim = Sim::new();
        sim.schedule_after(5, ());
        sim.next();
        sim.schedule_after(5, ());
        let (t, _) = sim.next().unwrap();
        assert_eq!(t, 10);
    }

    #[test]
    fn clear_empties_queue() {
        let mut sim = Sim::new();
        sim.schedule(1, ());
        sim.schedule(2, ());
        sim.clear();
        assert!(sim.is_idle());
        assert_eq!(sim.next(), None);
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut sim = Sim::new();
        assert_eq!(sim.peek_time(), None);
        sim.schedule(9, ());
        sim.schedule(4, ());
        assert_eq!(sim.peek_time(), Some(4));
    }
}
