//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real criterion cannot be fetched. This shim implements the API surface
//! our benches use (`Criterion::bench_function`, `benchmark_group`,
//! `Bencher::iter`, the `criterion_group!`/`criterion_main!` macros) with a
//! simple wall-clock measurement loop. Numbers are comparable across runs
//! on the same machine, which is all the perf-trajectory benches need.

use std::time::{Duration, Instant};

/// Minimum measurement window per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly until the measurement budget is spent and
    /// records mean iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One warmup iteration outside the measured window.
        std::hint::black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(f());
            iters += 1;
            if start.elapsed() >= MEASURE_BUDGET && iters >= 5 {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{name:<40} (no iterations)");
        return;
    }
    let per = b.total.as_secs_f64() / b.iters as f64;
    let (value, unit) = if per < 1e-6 {
        (per * 1e9, "ns")
    } else if per < 1e-3 {
        (per * 1e6, "µs")
    } else if per < 1.0 {
        (per * 1e3, "ms")
    } else {
        (per, "s")
    };
    println!("{name:<40} time: {value:10.3} {unit}/iter ({} iters)", b.iters);
}

/// Shim for criterion's benchmark groups.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: 0, total: Duration::ZERO };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Shim for the criterion driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: 0, total: Duration::ZERO };
        f(&mut b);
        report(id, &b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_owned(), _parent: self }
    }
}

/// Declares a group-runner function, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}
