//! Scenario primitives: the reusable workload fragments the built-ins
//! are made of.
//!
//! Each primitive renders one orchestration gesture — a staggered deploy,
//! a scale staircase, a taint, a staged rollout, a cordon-and-drain — as
//! timed [`UserOp`]s relative to the workload start. The built-in
//! scenarios compose them with the paper's parameters (§V-A), and the
//! trace generator (`mutiny_trace`) composes them with seeded parameters
//! into arbitrarily many synthetic-but-deterministic workload programs.
//!
//! Primitives are pure planning: they allocate no world state and read no
//! clocks, so the same arguments always render the same schedule — the
//! property that keeps generated campaign TSVs byte-identical across
//! thread counts.

use k8s_cluster::{UserOp, World};
use k8s_model::{Channel, HorizontalPodAutoscaler, Object};
use std::ops::RangeInclusive;

/// Creates `count` applications (`web-<first_index>` onward) of
/// `replicas` each, one every `stagger_ms` starting at `at`.
pub fn deploy(
    at: u64,
    stagger_ms: u64,
    first_index: u32,
    count: u32,
    replicas: i64,
) -> Vec<(u64, UserOp)> {
    (0..count)
        .map(|i| {
            (at + stagger_ms * u64::from(i), UserOp::CreateApp { index: first_index + i, replicas })
        })
        .collect()
}

/// Scales every application in `indices` through each target in
/// `targets`, one staircase step every `step_ms`; within a step the
/// applications are scaled `stagger_ms` apart in the given order.
pub fn scale_staircase(
    at: u64,
    stagger_ms: u64,
    step_ms: u64,
    indices: &[u32],
    targets: RangeInclusive<i64>,
) -> Vec<(u64, UserOp)> {
    let mut ops = Vec::new();
    for (step, replicas) in targets.enumerate() {
        for (pos, index) in indices.iter().enumerate() {
            ops.push((
                at + step_ms * step as u64 + stagger_ms * pos as u64,
                UserOp::Scale { index: *index, replicas },
            ));
        }
    }
    ops
}

/// Applies a NoExecute taint to `node` at `at` (abrupt node failure).
pub fn taint(at: u64, node: &str) -> Vec<(u64, UserOp)> {
    vec![(at, UserOp::TaintNode { node: node.into() })]
}

/// Rolls every application in `indices` to `image`, one stage every
/// `step_ms` (the next stage begins while the previous is — or has just
/// finished — rolling, as a CD pipeline would).
pub fn rolling_update(
    at: u64,
    step_ms: u64,
    indices: &[u32],
    image: &str,
) -> Vec<(u64, UserOp)> {
    indices
        .iter()
        .enumerate()
        .map(|(stage, index)| {
            (at + step_ms * stage as u64, UserOp::SetImage { index: *index, image: image.into() })
        })
        .collect()
}

/// Planned maintenance on `node`: cordon at `at` (NoSchedule taint), then
/// evict one application pod per slot, `slots` slots every
/// `evict_every_ms` starting `evict_delay_ms` after the cordon. Slots on
/// an already-empty node are no-ops, so over-provisioning slots for the
/// worst-case packing is safe.
pub fn drain(
    at: u64,
    node: &str,
    evict_delay_ms: u64,
    evict_every_ms: u64,
    slots: u64,
) -> Vec<(u64, UserOp)> {
    let mut ops = vec![(at, UserOp::CordonNode { node: node.into() })];
    for slot in 0..slots {
        ops.push((
            at + evict_delay_ms + evict_every_ms * slot,
            UserOp::EvictPodOn { node: node.into() },
        ));
    }
    ops
}

/// Installs a HorizontalPodAutoscaler `web-<index>-hpa` over
/// `web-<index>` during scenario setup. The metric source additionally
/// needs `cfg.net.publish_metrics = true` at configure time.
pub fn install_autoscaler(
    world: &mut World,
    index: u32,
    min_replicas: i64,
    max_replicas: i64,
    target_load: i64,
) {
    let mut hpa = HorizontalPodAutoscaler::default();
    hpa.metadata = k8s_model::ObjectMeta::named("default", &format!("web-{index}-hpa"));
    hpa.spec.scale_target = format!("web-{index}");
    hpa.spec.min_replicas = min_replicas;
    hpa.spec.max_replicas = max_replicas;
    hpa.spec.target_load = target_load;
    world
        .api
        .create(Channel::UserToApi, Object::HorizontalPodAutoscaler(hpa))
        .expect("create scenario hpa");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deploy_staggers_indices() {
        let ops = deploy(2_000, 200, 2, 3, 2);
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0], (2_000, UserOp::CreateApp { index: 2, replicas: 2 }));
        assert_eq!(ops[2], (2_400, UserOp::CreateApp { index: 4, replicas: 2 }));
    }

    #[test]
    fn staircase_orders_steps_then_apps() {
        let ops = scale_staircase(2_000, 100, 10_000, &[1, 2], 3..=5);
        assert_eq!(ops.len(), 6);
        assert_eq!(ops[0], (2_000, UserOp::Scale { index: 1, replicas: 3 }));
        assert_eq!(ops[1], (2_100, UserOp::Scale { index: 2, replicas: 3 }));
        assert_eq!(ops[4], (22_000, UserOp::Scale { index: 1, replicas: 5 }));
    }

    #[test]
    fn drain_cordons_before_evicting() {
        let ops = drain(2_000, "w1", 3_000, 4_000, 6);
        assert_eq!(ops.len(), 7);
        assert!(matches!(ops[0].1, UserOp::CordonNode { .. }));
        assert_eq!(ops[1].0, 5_000);
        assert_eq!(ops[6].0, 25_000);
    }

    #[test]
    fn rolling_update_stages() {
        let ops = rolling_update(2_000, 10_000, &[1, 2], "registry.local/web:2.0");
        assert_eq!(ops[0].0, 2_000);
        assert_eq!(ops[1].0, 12_000);
    }
}
