//! # mutiny-scenarios — the pluggable scenario engine
//!
//! The paper's fault campaigns run three orchestration workloads (deploy,
//! scale-up, failover, §V-A) that used to be a closed enum. This crate
//! turns a workload into a *scenario*: a [`ScenarioDef`] implementation
//! describing the preinstalled applications, the timed [`UserOp`]
//! schedule, the cluster [`Topology`] (SimKube-style virtual-node counts
//! included), and the pass/fail expectations a golden run must meet.
//!
//! Scenarios live in a **registry**: the six [`BUILTIN`] entries (the
//! paper's three plus rolling-update, node-drain, and hpa-autoscale) are
//! always present, and third parties add their own with [`register`] —
//! no change to `mutiny_core` required. Campaign plans, baselines,
//! result rows, and table builders all key on the scenario *name*, so a
//! registered scenario automatically extends Tables III–V, the figures,
//! and the bench TSV schema.
//!
//! Everything stays deterministic: a scenario's op schedule is a pure
//! function of the scenario, and experiment seeds derive from plan
//! indices, so campaign rows are byte-identical for any worker count.
//!
//! ```
//! use mutiny_scenarios::{registry, Scenario, DEPLOY, ROLLING_UPDATE};
//!
//! assert_eq!(DEPLOY.name(), "deploy");
//! assert_eq!(registry::find("rolling-update"), Some(ROLLING_UPDATE));
//! assert!(registry::all().len() >= 6);
//! ```

mod builtin;
pub mod primitives;

pub use builtin::{DEPLOY, FAILOVER, HPA_AUTOSCALE, NODE_DRAIN, ROLLING_UPDATE, SCALE_UP};

use k8s_apiserver::InterceptorHandle;
use k8s_cluster::{ClusterConfig, RunStats, Topology, UserOp, World};
use k8s_model::Channel;

/// A scenario definition: everything the campaign machinery needs to set
/// up, drive, and judge one orchestration workload.
///
/// Implementations must be deterministic — [`ScenarioDef::ops`] is called
/// once per experiment and must always return the same schedule.
pub trait ScenarioDef: Send + Sync {
    /// Short stable name, used in the paper-style tables, the campaign
    /// TSV cache, and `MUTINY_SCENARIOS` filters. Must be unique across
    /// the registry and must not contain whitespace, tabs, or commas.
    fn name(&self) -> &'static str;

    /// Application Deployments created during scenario setup (before the
    /// fault window). The client always targets `web-1`.
    fn preinstalled_apps(&self) -> &'static [u32];

    /// The timed user operations, as offsets from the workload start
    /// (`t0`).
    fn ops(&self) -> Vec<(u64, UserOp)>;

    /// Cluster topology this scenario runs on. Defaults to the paper's
    /// 4-worker testbed; scenarios may request e.g.
    /// `Topology::virtual_workers(20)` and the bootstrap builds every
    /// node from the worker template.
    fn topology(&self) -> Topology {
        Topology::paper()
    }

    /// Adjusts non-topology cluster knobs before the world is built
    /// (e.g. the hpa-autoscale scenario turns on service-load metric
    /// publication). Seed and mitigations are experiment-owned — leave
    /// them alone. The default changes nothing.
    fn configure(&self, _cfg: &mut ClusterConfig) {}

    /// Installs scenario-specific objects after [`World::prepare`] and
    /// before the op schedule runs (e.g. a HorizontalPodAutoscaler).
    /// Runs during scenario setup, so it predates the fault window. The
    /// default installs nothing.
    fn setup(&self, _world: &mut World) {}

    /// The component→apiserver channels the propagation study (Table VI)
    /// injects on for this scenario. Defaults to the paper's full set;
    /// controller-only scenarios (rolling-update, hpa-autoscale) narrow
    /// it to the controller channels, because their kubelet traffic is
    /// steady-state only and the cell would measure bootstrap noise.
    /// Node-lifecycle scenarios keep `KubeletToApi` — node-drain's
    /// eviction window opens that channel and earns a dedicated cell.
    fn propagation_channels(&self) -> Vec<Channel> {
        vec![Channel::KcmToApi, Channel::SchedulerToApi, Channel::KubeletToApi]
    }

    /// Pass/fail expectations for a **golden** (fault-free) run: called
    /// with the finished world and its statistics, returns a description
    /// of the first violated expectation. The default accepts anything;
    /// built-ins check convergence, client health, and scenario-specific
    /// postconditions (e.g. node-drain requires the drained node to be
    /// empty).
    fn check_golden(&self, _stats: &RunStats, _world: &mut World) -> Result<(), String> {
        Ok(())
    }
}

/// A cheap copyable handle to a registered scenario.
///
/// Equality, ordering, and hashing are by [`Scenario::name`], so handles
/// work as `HashMap` keys (baselines) and sort keys (table rows).
#[derive(Clone, Copy)]
pub struct Scenario(&'static dyn ScenarioDef);

impl Scenario {
    /// Wraps a static definition. Exposed so `register` and tests can
    /// build handles; campaign code normally gets handles from the
    /// registry.
    pub const fn new(def: &'static dyn ScenarioDef) -> Scenario {
        Scenario(def)
    }

    /// Short stable name (see [`ScenarioDef::name`]).
    pub fn name(self) -> &'static str {
        self.0.name()
    }

    /// Preinstalled application indexes.
    pub fn preinstalled_apps(self) -> &'static [u32] {
        self.0.preinstalled_apps()
    }

    /// The timed op schedule.
    pub fn ops(self) -> Vec<(u64, UserOp)> {
        self.0.ops()
    }

    /// Requested cluster topology.
    pub fn topology(self) -> Topology {
        self.0.topology()
    }

    /// Propagation-study channel set (see
    /// [`ScenarioDef::propagation_channels`]).
    pub fn propagation_channels(self) -> Vec<Channel> {
        self.0.propagation_channels()
    }

    /// Golden-run expectations (see [`ScenarioDef::check_golden`]).
    pub fn check_golden(self, stats: &RunStats, world: &mut World) -> Result<(), String> {
        self.0.check_golden(stats, world)
    }

    /// Builds a world for this scenario: applies the scenario topology
    /// and [`ScenarioDef::configure`] to `base` (every other knob — seed,
    /// mitigations, client settings — is kept) and runs scenario setup,
    /// including [`ScenarioDef::setup`]. Schedule the ops with
    /// [`Scenario::schedule`] next.
    pub fn build_world(self, base: &ClusterConfig, interceptor: InterceptorHandle) -> World {
        let mut cfg = self.topology().apply(base.clone());
        self.0.configure(&mut cfg);
        let mut world = World::new(cfg, interceptor);
        world.prepare(self.preinstalled_apps());
        self.0.setup(&mut world);
        world
    }

    /// Schedules this scenario's ops (plus the client and metrics
    /// sampling) on a prepared world.
    pub fn schedule(self, world: &mut World) {
        world.schedule_ops(self.ops());
    }
}

impl PartialEq for Scenario {
    fn eq(&self, other: &Scenario) -> bool {
        self.name() == other.name()
    }
}

impl Eq for Scenario {}

impl PartialOrd for Scenario {
    fn partial_cmp(&self, other: &Scenario) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scenario {
    fn cmp(&self, other: &Scenario) -> std::cmp::Ordering {
        registry::order_key(*self)
            .cmp(&registry::order_key(*other))
            .then_with(|| self.name().cmp(other.name()))
    }
}

impl std::hash::Hash for Scenario {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name().hash(state);
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Scenario").field(&self.name()).finish()
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The scenario registry: the built-ins plus anything added at runtime.
pub mod registry {
    use super::{builtin, Scenario, ScenarioDef};
    use std::sync::{OnceLock, RwLock};

    /// The built-in scenarios, in paper-table order (the paper's three
    /// first, then the engine additions).
    pub static BUILTIN: [Scenario; 6] = [
        builtin::DEPLOY,
        builtin::SCALE_UP,
        builtin::FAILOVER,
        builtin::ROLLING_UPDATE,
        builtin::NODE_DRAIN,
        builtin::HPA_AUTOSCALE,
    ];

    fn extras() -> &'static RwLock<Vec<Scenario>> {
        static EXTRAS: OnceLock<RwLock<Vec<Scenario>>> = OnceLock::new();
        EXTRAS.get_or_init(|| RwLock::new(Vec::new()))
    }

    /// Every registered scenario, built-ins first, then third-party
    /// registrations in registration order.
    pub fn all() -> Vec<Scenario> {
        let mut out: Vec<Scenario> = BUILTIN.to_vec();
        out.extend(extras().read().expect("scenario registry poisoned").iter().copied());
        out
    }

    /// Looks a scenario up by name.
    pub fn find(name: &str) -> Option<Scenario> {
        all().into_iter().find(|s| s.name() == name)
    }

    /// Registers a third-party scenario and returns its handle. The
    /// definition is leaked (registries live for the program); names must
    /// be unique, non-empty, and free of whitespace/commas (they key the
    /// TSV cache and env filters).
    ///
    /// # Errors
    ///
    /// Returns an error naming the conflict when the name is invalid or
    /// already taken.
    pub fn register(def: Box<dyn ScenarioDef>) -> Result<Scenario, String> {
        let name = def.name();
        if name.is_empty() || name.contains(|c: char| c.is_whitespace() || c == ',') {
            return Err(format!("invalid scenario name {name:?}"));
        }
        let mut extras = extras().write().expect("scenario registry poisoned");
        if BUILTIN.iter().chain(extras.iter()).any(|s| s.name() == name) {
            return Err(format!("scenario name {name:?} already registered"));
        }
        let scenario = Scenario::new(Box::leak(def));
        extras.push(scenario);
        Ok(scenario)
    }

    /// Stable sort key: position in the registry (built-ins keep paper
    /// order), unknown handles after everything else by name.
    pub(super) fn order_key(s: Scenario) -> usize {
        BUILTIN
            .iter()
            .position(|b| b.name() == s.name())
            .or_else(|| {
                extras()
                    .read()
                    .ok()?
                    .iter()
                    .position(|e| e.name() == s.name())
                    .map(|i| BUILTIN.len() + i)
            })
            .unwrap_or(usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registered_names_are_unique_and_stable() {
        let all = registry::all();
        assert!(all.len() >= 5, "registry lost built-ins: {all:?}");
        let names: Vec<&str> = all.iter().map(|s| s.name()).collect();
        let unique: HashSet<&str> = names.iter().copied().collect();
        assert_eq!(unique.len(), names.len(), "duplicate scenario names: {names:?}");
        // The paper's table names and the two engine additions are pinned:
        // the TSV cache, MUTINY_SCENARIOS filters, and the tables key on
        // these exact strings.
        for expect in
            ["deploy", "scale", "failover", "rolling-update", "node-drain", "hpa-autoscale"]
        {
            assert!(names.contains(&expect), "{expect} missing from {names:?}");
            assert_eq!(registry::find(expect).map(|s| s.name()), Some(expect));
        }
        assert_eq!(registry::find("no-such-scenario"), None);
    }

    #[test]
    fn registry_rejects_duplicates_and_bad_names() {
        struct Dup;
        impl ScenarioDef for Dup {
            fn name(&self) -> &'static str {
                "deploy"
            }
            fn preinstalled_apps(&self) -> &'static [u32] {
                &[1]
            }
            fn ops(&self) -> Vec<(u64, UserOp)> {
                Vec::new()
            }
        }
        assert!(registry::register(Box::new(Dup)).is_err());

        struct Bad;
        impl ScenarioDef for Bad {
            fn name(&self) -> &'static str {
                "has space"
            }
            fn preinstalled_apps(&self) -> &'static [u32] {
                &[1]
            }
            fn ops(&self) -> Vec<(u64, UserOp)> {
                Vec::new()
            }
        }
        assert!(registry::register(Box::new(Bad)).is_err());
    }

    #[test]
    fn handles_compare_and_hash_by_name() {
        use std::collections::HashMap;
        assert_eq!(DEPLOY, registry::find("deploy").unwrap());
        assert_ne!(DEPLOY, SCALE_UP);
        let mut m: HashMap<Scenario, u32> = HashMap::new();
        m.insert(DEPLOY, 1);
        m.insert(NODE_DRAIN, 2);
        assert_eq!(m.get(&registry::find("deploy").unwrap()), Some(&1));
        // Registry order is paper order.
        let mut v = vec![NODE_DRAIN, DEPLOY, FAILOVER];
        v.sort();
        assert_eq!(v, vec![DEPLOY, FAILOVER, NODE_DRAIN]);
        assert_eq!(SCALE_UP.to_string(), "scale");
    }

    #[test]
    fn third_party_scenario_requests_virtual_topology() {
        // A custom scenario asks for a 20-worker cluster; the bootstrap
        // builds every node from the worker template — no per-node
        // fixtures anywhere.
        struct WideDrain;
        impl ScenarioDef for WideDrain {
            fn name(&self) -> &'static str {
                "wide-drain-test"
            }
            fn preinstalled_apps(&self) -> &'static [u32] {
                &[1]
            }
            fn ops(&self) -> Vec<(u64, UserOp)> {
                vec![(2_000, UserOp::CordonNode { node: "w7".into() })]
            }
            fn topology(&self) -> Topology {
                Topology::virtual_workers(20)
            }
        }
        let sc = registry::register(Box::new(WideDrain)).expect("register");
        assert_eq!(registry::find("wide-drain-test"), Some(sc));

        let base = ClusterConfig { seed: 31, ..Default::default() };
        let mut world = sc.build_world(
            &base,
            std::rc::Rc::new(std::cell::RefCell::new(k8s_model::NoopInterceptor)),
        );
        assert_eq!(world.api.count(k8s_model::Kind::Node, None), 21);
        sc.schedule(&mut world);
        world.run_to_horizon();
        assert_eq!(world.stats.client_failures(), 0, "wide cluster golden run failed");
    }
}
