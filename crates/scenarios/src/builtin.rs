//! The built-in scenarios: the paper's three orchestration workloads
//! (§V-A) plus the two engine additions.
//!
//! * **deploy** — creates three new Deployments (two replicas each) with
//!   their Services;
//! * **scale** — scales two existing Deployments 2 → 3 → 4 → 5, with
//!   10 s between steps;
//! * **failover** — applies a NoExecute taint to one worker, forcing its
//!   pods to respawn elsewhere;
//! * **rolling-update** — a staged image change on two Deployments; the
//!   Deployment controller replaces pods under the maxSurge /
//!   maxUnavailable budget while the client keeps hitting the service;
//! * **node-drain** — planned maintenance: cordon one worker (NoSchedule
//!   taint), then evict its application pods one at a time, the
//!   cooperative counterpart to failover's abrupt NoExecute taint;
//! * **hpa-autoscale** — scale-under-load: a HorizontalPodAutoscaler
//!   follows the client load via the published service-load metric,
//!   scaling `web-1` up while the client hammers it and back down to the
//!   minimum afterwards (the FFDA's *Wrong Autoscale Trigger* surface).

use crate::{primitives, Scenario, ScenarioDef};
use k8s_cluster::{ClusterConfig, RunStats, UserOp, World};
use k8s_model::{Channel, Kind, Object};

/// The image the rolling-update scenario rolls out to.
pub const ROLLOUT_IMAGE: &str = "registry.local/web:2.0";
/// The worker the failover and node-drain scenarios target.
const TARGET_NODE: &str = "w1";

/// Asserts that the applications named by `apps` converged to `replicas`
/// ready replicas and the client saw a clean run.
fn check_converged(
    stats: &RunStats,
    expected: &[(&str, i64)],
    world: &mut World,
) -> Result<(), String> {
    let last = stats.last_sample().ok_or("no metrics samples")?;
    for (name, replicas) in expected {
        let got = last.app_ready.get(*name).copied().unwrap_or(0);
        if got != *replicas {
            return Err(format!("{name}: {got} ready, expected {replicas}"));
        }
    }
    if stats.client_failures() > 0 {
        return Err(format!("{} client failures in a golden run", stats.client_failures()));
    }
    if world.api.audit().user_errors() > 0 {
        return Err(format!("{} user-visible API errors", world.api.audit().user_errors()));
    }
    Ok(())
}

/// Counts non-terminating application pods on a node.
fn web_pods_on(world: &mut World, node: &str) -> usize {
    let mut n = 0;
    world.api.for_each(Kind::Pod, Some("default"), |obj| {
        if let Object::Pod(p) = obj {
            if p.spec.node_name == node && !p.metadata.is_terminating() {
                n += 1;
            }
        }
    });
    n
}

// --- deploy ----------------------------------------------------------------

struct Deploy;

impl ScenarioDef for Deploy {
    fn name(&self) -> &'static str {
        "deploy"
    }

    fn preinstalled_apps(&self) -> &'static [u32] {
        &[1]
    }

    fn ops(&self) -> Vec<(u64, UserOp)> {
        primitives::deploy(2_000, 200, 2, 3, 2)
    }

    fn check_golden(&self, stats: &RunStats, world: &mut World) -> Result<(), String> {
        check_converged(stats, &[("web-1", 2), ("web-2", 2), ("web-3", 2), ("web-4", 2)], world)
    }
}

static DEPLOY_DEF: Deploy = Deploy;
/// The paper's deploy workload.
pub static DEPLOY: Scenario = Scenario::new(&DEPLOY_DEF);

// --- scale -----------------------------------------------------------------

struct ScaleUp;

impl ScenarioDef for ScaleUp {
    fn name(&self) -> &'static str {
        "scale"
    }

    fn preinstalled_apps(&self) -> &'static [u32] {
        &[1, 2, 3]
    }

    fn ops(&self) -> Vec<(u64, UserOp)> {
        primitives::scale_staircase(2_000, 100, 10_000, &[1, 2], 3..=5)
    }

    fn check_golden(&self, stats: &RunStats, world: &mut World) -> Result<(), String> {
        check_converged(stats, &[("web-1", 5), ("web-2", 5), ("web-3", 2)], world)
    }
}

static SCALE_UP_DEF: ScaleUp = ScaleUp;
/// The paper's scale-up workload.
pub static SCALE_UP: Scenario = Scenario::new(&SCALE_UP_DEF);

// --- failover --------------------------------------------------------------

struct Failover;

impl ScenarioDef for Failover {
    fn name(&self) -> &'static str {
        "failover"
    }

    fn preinstalled_apps(&self) -> &'static [u32] {
        &[1, 2, 3]
    }

    fn ops(&self) -> Vec<(u64, UserOp)> {
        primitives::taint(2_000, TARGET_NODE)
    }

    fn check_golden(&self, stats: &RunStats, world: &mut World) -> Result<(), String> {
        check_converged(stats, &[("web-1", 2), ("web-2", 2), ("web-3", 2)], world)?;
        let stranded = web_pods_on(world, TARGET_NODE);
        if stranded > 0 {
            return Err(format!("{stranded} pods still on the tainted node"));
        }
        if world.kcm.metrics.pods_evicted == 0 {
            return Err("no pods were evicted from the tainted node".into());
        }
        Ok(())
    }
}

static FAILOVER_DEF: Failover = Failover;
/// The paper's failover workload.
pub static FAILOVER: Scenario = Scenario::new(&FAILOVER_DEF);

// --- rolling-update --------------------------------------------------------

struct RollingUpdate;

impl ScenarioDef for RollingUpdate {
    fn name(&self) -> &'static str {
        "rolling-update"
    }

    fn propagation_channels(&self) -> Vec<Channel> {
        // Controller-driven: the rollout flows through Kcm and the
        // scheduler; kubelet traffic is steady-state only.
        vec![Channel::KcmToApi, Channel::SchedulerToApi]
    }

    fn preinstalled_apps(&self) -> &'static [u32] {
        &[1, 2, 3]
    }

    fn ops(&self) -> Vec<(u64, UserOp)> {
        // Staged: web-1 first, web-2 ten seconds later.
        primitives::rolling_update(2_000, 10_000, &[1, 2], ROLLOUT_IMAGE)
    }

    fn check_golden(&self, stats: &RunStats, world: &mut World) -> Result<(), String> {
        check_converged(stats, &[("web-1", 2), ("web-2", 2), ("web-3", 2)], world)?;
        // Every surviving pod of the updated apps must run the new image.
        let mut stale = 0usize;
        world.api.for_each(Kind::Pod, Some("default"), |obj| {
            if let Object::Pod(p) = obj {
                let app = p.metadata.labels.get("app").map(String::as_str);
                if matches!(app, Some("web-1") | Some("web-2"))
                    && !p.metadata.is_terminating()
                    && p.spec.containers.first().map(|c| c.image.as_str()) != Some(ROLLOUT_IMAGE)
                {
                    stale += 1;
                }
            }
        });
        if stale > 0 {
            return Err(format!("{stale} pods still run the old image after the rollout"));
        }
        Ok(())
    }
}

static ROLLING_UPDATE_DEF: RollingUpdate = RollingUpdate;
/// Staged image rollout under maxSurge/maxUnavailable.
pub static ROLLING_UPDATE: Scenario = Scenario::new(&ROLLING_UPDATE_DEF);

// --- node-drain ------------------------------------------------------------

struct NodeDrain;

impl ScenarioDef for NodeDrain {
    fn name(&self) -> &'static str {
        "node-drain"
    }

    fn preinstalled_apps(&self) -> &'static [u32] {
        &[1, 2, 3]
    }

    fn ops(&self) -> Vec<(u64, UserOp)> {
        // Cordon, then evict one pod every four seconds. Six eviction
        // slots cover the worst possible packing of the six application
        // pods.
        primitives::drain(2_000, TARGET_NODE, 3_000, 4_000, 6)
    }

    fn check_golden(&self, stats: &RunStats, world: &mut World) -> Result<(), String> {
        check_converged(stats, &[("web-1", 2), ("web-2", 2), ("web-3", 2)], world)?;
        let stranded = web_pods_on(world, TARGET_NODE);
        if stranded > 0 {
            return Err(format!("{stranded} pods still on the drained node"));
        }
        Ok(())
    }
}

static NODE_DRAIN_DEF: NodeDrain = NodeDrain;
/// Planned maintenance: cordon plus sequential evictions.
pub static NODE_DRAIN: Scenario = Scenario::new(&NODE_DRAIN_DEF);

// --- hpa-autoscale ---------------------------------------------------------

/// Client requests per second one replica is expected to absorb (the
/// HPA's `targetLoadPerReplica`): 20 rps of client load / 5 → four
/// replicas at peak.
const HPA_TARGET_LOAD: i64 = 5;
/// The autoscaler's replica bounds.
const HPA_MIN_REPLICAS: i64 = 2;
const HPA_MAX_REPLICAS: i64 = 8;

struct HpaAutoscale;

impl ScenarioDef for HpaAutoscale {
    fn name(&self) -> &'static str {
        "hpa-autoscale"
    }

    fn propagation_channels(&self) -> Vec<Channel> {
        // Controller-driven, like rolling-update: the autoscale loop is
        // Kcm (metric read + scale write) plus scheduler placements.
        vec![Channel::KcmToApi, Channel::SchedulerToApi]
    }

    fn preinstalled_apps(&self) -> &'static [u32] {
        &[1, 2]
    }

    fn ops(&self) -> Vec<(u64, UserOp)> {
        // The workload *is* the client load: the autoscaler reacts to the
        // 20 rps the kbench client sends from t0, no user ops needed.
        Vec::new()
    }

    fn configure(&self, cfg: &mut ClusterConfig) {
        // The autoscaler's metric source: per-service request rates
        // published into the `service-load` ConfigMap by the fabric.
        cfg.net.publish_metrics = true;
    }

    fn setup(&self, world: &mut World) {
        // minReplicas matches the deployed size, so the idle pre-workload
        // phase takes no scale action (and spends no cooldown).
        primitives::install_autoscaler(
            world,
            1,
            HPA_MIN_REPLICAS,
            HPA_MAX_REPLICAS,
            HPA_TARGET_LOAD,
        );
    }

    fn check_golden(&self, stats: &RunStats, world: &mut World) -> Result<(), String> {
        // After the load stops and the observation window passes, the
        // service is back at minReplicas; web-2 never moved.
        check_converged(
            stats,
            &[("web-1", HPA_MIN_REPLICAS), ("web-2", 2)],
            world,
        )?;
        if world.kcm.metrics.hpa_scalings < 2 {
            return Err(format!(
                "expected a scale-up and a scale-down, saw {} scale actions",
                world.kcm.metrics.hpa_scalings
            ));
        }
        let peak = stats
            .samples
            .iter()
            .filter_map(|s| s.app_ready.get("web-1"))
            .max()
            .copied()
            .unwrap_or(0);
        if peak <= HPA_MIN_REPLICAS {
            return Err(format!("autoscaler never scaled above the minimum (peak {peak})"));
        }
        Ok(())
    }
}

static HPA_AUTOSCALE_DEF: HpaAutoscale = HpaAutoscale;
/// HPA-driven scale-under-load via the published service-load metric.
pub static HPA_AUTOSCALE: Scenario = Scenario::new(&HPA_AUTOSCALE_DEF);

#[cfg(test)]
mod tests {
    use super::*;
    use k8s_cluster::ClusterConfig;
    use k8s_model::NoopInterceptor;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Runs one golden world for a scenario and applies its own
    /// expectations — the engine's end-to-end self-check for all five
    /// built-ins.
    fn golden_check(sc: Scenario, seed: u64) {
        let base = ClusterConfig { seed, ..Default::default() };
        let mut world = sc.build_world(&base, Rc::new(RefCell::new(NoopInterceptor)));
        sc.schedule(&mut world);
        world.run_to_horizon();
        let stats = std::mem::take(&mut world.stats);
        if let Err(why) = sc.check_golden(&stats, &mut world) {
            panic!("golden {} run violated its expectations: {why}", sc.name());
        }
    }

    #[test]
    fn golden_deploy_meets_expectations() {
        golden_check(DEPLOY, 2);
    }

    #[test]
    fn golden_scale_meets_expectations() {
        golden_check(SCALE_UP, 3);
    }

    #[test]
    fn golden_failover_meets_expectations() {
        golden_check(FAILOVER, 4);
    }

    #[test]
    fn golden_rolling_update_meets_expectations() {
        golden_check(ROLLING_UPDATE, 5);
    }

    #[test]
    fn golden_node_drain_meets_expectations() {
        golden_check(NODE_DRAIN, 6);
    }

    #[test]
    fn golden_hpa_autoscale_meets_expectations() {
        golden_check(HPA_AUTOSCALE, 7);
    }

    #[test]
    fn builtin_parameters_match_paper() {
        // deploy: three Deployments, two replicas each.
        let ops = DEPLOY.ops();
        assert_eq!(ops.len(), 3);
        assert!(ops.iter().all(|(_, op)| matches!(op, UserOp::CreateApp { replicas: 2, .. })));

        // scale-up: two Deployments, 2→3→4→5 with 10 s steps.
        let ops = SCALE_UP.ops();
        assert_eq!(ops.len(), 6);
        let times: Vec<u64> = ops.iter().map(|(t, _)| *t).collect();
        assert!(times[2] - times[0] == 10_000 && times[4] - times[2] == 10_000);

        // failover: one taint.
        assert_eq!(FAILOVER.ops().len(), 1);

        // rolling-update: staged image changes, same target image.
        let ops = ROLLING_UPDATE.ops();
        assert_eq!(ops.len(), 2);
        assert!(ops
            .iter()
            .all(|(_, op)| matches!(op, UserOp::SetImage { image, .. } if image == ROLLOUT_IMAGE)));

        // node-drain: cordon before the first eviction.
        let ops = NODE_DRAIN.ops();
        assert!(matches!(ops[0].1, UserOp::CordonNode { .. }));
        assert!(ops[1..].iter().all(|(_, op)| matches!(op, UserOp::EvictPodOn { .. })));
        assert!(ops.len() >= 7, "not enough eviction slots for worst-case packing");
    }

    /// Pins the primitive-rendered schedules to the exact literal ops the
    /// built-ins shipped with before the extraction — scenario schedules
    /// key golden baselines and campaign TSVs, so they must never drift.
    #[test]
    fn primitive_extraction_is_byte_identical() {
        assert_eq!(
            DEPLOY.ops(),
            vec![
                (2_000, UserOp::CreateApp { index: 2, replicas: 2 }),
                (2_200, UserOp::CreateApp { index: 3, replicas: 2 }),
                (2_400, UserOp::CreateApp { index: 4, replicas: 2 }),
            ]
        );
        assert_eq!(
            SCALE_UP.ops(),
            vec![
                (2_000, UserOp::Scale { index: 1, replicas: 3 }),
                (2_100, UserOp::Scale { index: 2, replicas: 3 }),
                (12_000, UserOp::Scale { index: 1, replicas: 4 }),
                (12_100, UserOp::Scale { index: 2, replicas: 4 }),
                (22_000, UserOp::Scale { index: 1, replicas: 5 }),
                (22_100, UserOp::Scale { index: 2, replicas: 5 }),
            ]
        );
        assert_eq!(FAILOVER.ops(), vec![(2_000, UserOp::TaintNode { node: "w1".into() })]);
        assert_eq!(
            ROLLING_UPDATE.ops(),
            vec![
                (2_000, UserOp::SetImage { index: 1, image: ROLLOUT_IMAGE.into() }),
                (12_000, UserOp::SetImage { index: 2, image: ROLLOUT_IMAGE.into() }),
            ]
        );
        let mut drain = vec![(2_000, UserOp::CordonNode { node: "w1".into() })];
        for slot in 0..6u64 {
            drain.push((5_000 + 4_000 * slot, UserOp::EvictPodOn { node: "w1".into() }));
        }
        assert_eq!(NODE_DRAIN.ops(), drain);
        assert!(HPA_AUTOSCALE.ops().is_empty());
    }
}
