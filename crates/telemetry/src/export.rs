//! Versioned JSON export of everything the sink collected, plus a human
//! summary table.
//!
//! `MUTINY_METRICS=<path>` selects the destination;
//! [`export_if_requested`] writes it (the bench layer calls this after a
//! campaign). The format is versioned (`mutiny_metrics_version`) and
//! shipped with its own minimal parser ([`parse`]) and schema validator
//! ([`validate`]) so CI can round-trip the file without external
//! dependencies — `validate_metrics` (this crate's bin target) is the
//! command-line wrapper `scripts/verify.sh` runs.

use crate::{timeline, Metric};
use std::path::PathBuf;

/// Format version written to (and required from) the JSON export.
pub const METRICS_VERSION: u64 = 1;

/// The export path requested via `MUTINY_METRICS`, if any.
pub fn requested_path() -> Option<PathBuf> {
    match std::env::var(crate::METRICS_ENV) {
        Ok(v) if !v.is_empty() => Some(PathBuf::from(v)),
        _ => None,
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

/// Renders the full export document from the current sink and profiler
/// state. Flush recording threads first ([`crate::flush_thread`]).
pub fn render_json() -> String {
    let phases = crate::profile::snapshot();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"mutiny_metrics_version\": {METRICS_VERSION},\n"
    ));

    // Phase breakdown (wall-clock seconds).
    out.push_str("  \"phases\": {\n");
    for phase in crate::profile::ALL {
        out.push_str(&format!(
            "    \"{}_s\": {:.6},\n",
            phase.label(),
            phases.of(phase)
        ));
    }
    out.push_str(&format!(
        "    \"golden_prefix_share\": {:.6}\n  }},\n",
        phases.golden_prefix_share()
    ));

    // Metrics, in key order (BTreeMap: deterministic).
    out.push_str("  \"metrics\": [\n");
    {
        let sink = crate::sink().lock().expect("telemetry sink poisoned");
        let mut first = true;
        for (key, metric) in &sink.metrics {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            match metric {
                Metric::Counter { total, last_at } => out.push_str(&format!(
                    "    {{\"key\": \"{}\", \"type\": \"counter\", \"total\": {total}, \"last_at_ms\": {last_at}}}",
                    esc(key)
                )),
                Metric::Gauge { last, max, last_at } => out.push_str(&format!(
                    "    {{\"key\": \"{}\", \"type\": \"gauge\", \"last\": {last}, \"max\": {max}, \"last_at_ms\": {last_at}}}",
                    esc(key)
                )),
                Metric::Histogram(h) => {
                    let min = if h.count == 0 { 0 } else { h.min };
                    out.push_str(&format!(
                        "    {{\"key\": \"{}\", \"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"min\": {min}, \"max\": {}, \"p50\": {}, \"p95\": {}}}",
                        esc(key),
                        h.count,
                        h.sum,
                        h.max,
                        h.quantile(0.50),
                        h.quantile(0.95),
                    ));
                }
            }
        }
        if !first {
            out.push('\n');
        }
    }
    out.push_str("  ],\n");

    // Per-family detection-latency aggregates.
    out.push_str("  \"detection_latency\": [\n");
    let fams = timeline::percentiles_by_family();
    for (i, f) in fams.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"experiments\": {}, \"detected\": {}, \"p50_ms\": {:.1}, \"p95_ms\": {:.1}}}{}\n",
            esc(&f.family),
            f.experiments,
            f.detected,
            f.p50_ms,
            f.p95_ms,
            if i + 1 < fams.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");

    // Raw per-experiment timelines, in deterministic order.
    out.push_str("  \"timelines\": [\n");
    let recs = timeline::sorted_records();
    for (i, r) in recs.iter().enumerate() {
        let t = &r.timeline;
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"fault\": \"{}\", \"injected_at_ms\": {}, \"first_divergence_ms\": {}, \"detection_ms\": {}, \"recovery_ms\": {}, \"steady_at_end\": {}}}{}\n",
            esc(&r.scenario),
            esc(&r.fault),
            opt_u64(t.injected_at),
            opt_u64(t.first_divergence),
            opt_u64(t.detection),
            opt_u64(t.recovery),
            t.steady_at_end,
            if i + 1 < recs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The human summary: phases, top counters/gauges, per-family detection.
pub fn summary_table() -> String {
    let phases = crate::profile::snapshot();
    let mut out = String::new();
    out.push_str("campaign phase breakdown (wall-clock)\n");
    out.push_str("phase            seconds   share\n");
    let total = phases.total().max(1e-9);
    for phase in crate::profile::ALL {
        let s = phases.of(phase);
        out.push_str(&format!(
            "{:<15} {:>8.2}  {:>5.1}%\n",
            phase.label(),
            s,
            100.0 * s / total
        ));
    }
    out.push_str(&format!(
        "golden-prefix share of experiment time: {:.1}%\n",
        100.0 * phases.golden_prefix_share()
    ));

    {
        let sink = crate::sink().lock().expect("telemetry sink poisoned");
        if !sink.metrics.is_empty() {
            out.push_str("\nmetric                                        value\n");
            for (key, metric) in &sink.metrics {
                let v = match metric {
                    Metric::Counter { total, .. } => format!("{total}"),
                    Metric::Gauge { last, max, .. } => format!("{last} (hw {max})"),
                    Metric::Histogram(h) => format!(
                        "n={} p50={} p95={}",
                        h.count,
                        h.quantile(0.50),
                        h.quantile(0.95)
                    ),
                };
                out.push_str(&format!("{key:<45} {v}\n"));
            }
        }
    }

    let fams = timeline::percentiles_by_family();
    if !fams.is_empty() {
        out.push_str("\ndetection latency by fault family (sim-ms)\n");
        out.push_str("family                 runs  detected    p50      p95\n");
        for f in &fams {
            out.push_str(&format!(
                "{:<21} {:>5} {:>9} {:>8.0} {:>8.0}\n",
                f.family, f.experiments, f.detected, f.p50_ms, f.p95_ms
            ));
        }
    }
    out
}

/// Writes the JSON export to the `MUTINY_METRICS` path (flushing this
/// thread first) and prints the summary table to stderr. Returns the
/// path written, or `None` when no export was requested. IO failures
/// downgrade to warnings — telemetry must never abort a campaign.
pub fn export_if_requested() -> Option<PathBuf> {
    let path = requested_path()?;
    crate::flush_thread();
    let json = render_json();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    // Atomic promote, same template as the campaign TSV cache: a reader
    // never observes a half-written export.
    let tmp = path.with_extension("json.partial");
    let written = std::fs::write(&tmp, &json).and_then(|()| std::fs::rename(&tmp, &path));
    match written {
        Ok(()) => {
            eprintln!("[mutiny-telemetry] wrote {}", path.display());
            eprintln!("{}", summary_table());
            Some(path)
        }
        Err(e) => {
            eprintln!(
                "[mutiny-telemetry] warning: could not write {}: {e}",
                path.display()
            );
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON parser + schema validation (round-trip without deps)
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64; the export never needs > 2^53).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.ws();
                    self.eat(b':')?;
                    let val = self.value()?;
                    members.push((key, val));
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(format!("bad object at byte {}", self.pos)),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("bad array at byte {}", self.pos)),
                    }
                }
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(_) => {
                let start = self.pos;
                while self
                    .peek()
                    .map(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
                    .unwrap_or(false)
                {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8")?;
                text.parse::<f64>()
                    .map(Json::Num)
                    .map_err(|_| format!("bad number at byte {start}"))
            }
            None => Err("unexpected end of input".into()),
        }
    }
}

/// Parses a JSON document (the subset the export emits).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at {}", p.pos));
    }
    Ok(v)
}

/// Validates a parsed document against the version-1 export schema.
pub fn validate(doc: &Json) -> Result<(), String> {
    let version = doc
        .get("mutiny_metrics_version")
        .and_then(Json::as_num)
        .ok_or("missing mutiny_metrics_version")?;
    if version != METRICS_VERSION as f64 {
        return Err(format!("unsupported metrics version {version}"));
    }

    let phases = doc.get("phases").ok_or("missing phases section")?;
    for phase in crate::profile::ALL {
        let key = format!("{}_s", phase.label());
        let v = phases
            .get(&key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("phases.{key} missing or not a number"))?;
        if !(v.is_finite() && v >= 0.0) {
            return Err(format!("phases.{key} = {v} out of range"));
        }
    }
    let share = phases
        .get("golden_prefix_share")
        .and_then(Json::as_num)
        .ok_or("phases.golden_prefix_share missing")?;
    if !(0.0..=1.0).contains(&share) {
        return Err(format!("golden_prefix_share {share} outside [0, 1]"));
    }

    let metrics = doc
        .get("metrics")
        .and_then(Json::as_arr)
        .ok_or("metrics is not an array")?;
    for m in metrics {
        let key = m
            .get("key")
            .and_then(Json::as_str)
            .ok_or("metric without key")?;
        let ty = m
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("metric {key} without type"))?;
        let need: &[&str] = match ty {
            "counter" => &["total", "last_at_ms"],
            "gauge" => &["last", "max", "last_at_ms"],
            "histogram" => &["count", "sum", "min", "max", "p50", "p95"],
            other => return Err(format!("metric {key}: unknown type {other}")),
        };
        for field in need {
            if m.get(field).and_then(Json::as_num).is_none() {
                return Err(format!("metric {key}: field {field} missing"));
            }
        }
    }

    let detection = doc
        .get("detection_latency")
        .and_then(Json::as_arr)
        .ok_or("detection_latency is not an array")?;
    for d in detection {
        for field in ["experiments", "detected", "p50_ms", "p95_ms"] {
            if d.get(field).and_then(Json::as_num).is_none() {
                return Err(format!("detection_latency entry missing {field}"));
            }
        }
        if d.get("family").and_then(Json::as_str).is_none() {
            return Err("detection_latency entry missing family".into());
        }
    }

    let timelines = doc
        .get("timelines")
        .and_then(Json::as_arr)
        .ok_or("timelines is not an array")?;
    for t in timelines {
        if t.get("scenario").and_then(Json::as_str).is_none()
            || t.get("fault").and_then(Json::as_str).is_none()
        {
            return Err("timeline entry missing scenario/fault".into());
        }
        for field in [
            "injected_at_ms",
            "first_divergence_ms",
            "detection_ms",
            "recovery_ms",
        ] {
            match t.get(field) {
                Some(Json::Num(_)) | Some(Json::Null) => {}
                _ => return Err(format!("timeline entry: {field} must be number|null")),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_the_export_subset() {
        let doc = parse(r#"{"a": 1, "b": [true, false, null, "x\ty"], "c": {"d": -2.5e1}}"#)
            .expect("parse");
        assert_eq!(doc.get("a").and_then(Json::as_num), Some(1.0));
        assert_eq!(
            doc.get("c").and_then(|c| c.get("d")).and_then(Json::as_num),
            Some(-25.0)
        );
        let arr = doc.get("b").and_then(Json::as_arr).expect("array");
        assert_eq!(arr[3], Json::Str("x\ty".into()));
        assert!(parse("{").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "quote\" slash\\ tab\t nl\n";
        let json = format!("{{\"k\": \"{}\"}}", esc(nasty));
        let doc = parse(&json).expect("parse escaped");
        assert_eq!(doc.get("k").and_then(Json::as_str), Some(nasty));
    }
}
